//! lrf-lint — the workspace invariant linter (`cargo run -p lrf-lint`).
//!
//! Enforces, as hard CI failures, the correctness conventions the
//! concurrency harness depends on:
//!
//! * **service-panic** — no `.unwrap()` / `.expect(` / `panic!` /
//!   `unreachable!` / `todo!` / `unimplemented!` in `lrf-service` library
//!   code: everything reachable from the request path must produce typed
//!   `ServiceError`s, not poison locks. (Constructor `assert!`s are
//!   startup validation and stay allowed.)
//! * **std-sync** — no direct `std::sync` in facade-covered crates
//!   (`lrf-service`, `lrf-logdb`): synchronization goes through
//!   `lrf-sync`, so the model checker sees every lock the service takes.
//! * **wall-clock** — no `Instant` / `SystemTime` in first-party library
//!   code: timing goes through the injectable `lrf_obs::Clock`
//!   (`MonotonicClock` holds the only waived wall-clock reads), so session
//!   logic, eviction, TTL, and span timing stay deterministic and
//!   modelable.
//! * **no-println** — no `println!` / `eprintln!` / `print!` / `eprint!`
//!   / `dbg!` in library crates (binaries under `src/bin/` may print).
//! * **raw-fs** — no direct `std::fs` / `File::open` / `OpenOptions` in
//!   first-party library code outside `lrf-storage`: file IO goes through
//!   the injectable `StorageIo` layer, so every durability path stays
//!   fault-testable (`FaultIo`) and crash-simulable (`MemIo`). Vendored
//!   crates and `#[cfg(test)]` scaffolding are exempt.
//!
//! A violation can be waived in place with a justified annotation:
//!
//! ```text
//! // lrf-lint: allow(service-panic): why this cannot fire
//! ```
//!
//! on the offending line or a comment line above it (intervening comment
//! lines are fine). The justification is mandatory, and an annotation
//! that suppresses nothing is itself an error — stale waivers don't
//! accumulate.
//!
//! The scanner is comment- and string-aware (a `panic!` in a doc comment
//! or string literal is not a violation) and skips `#[cfg(test)]` /
//! `#[test]` items, where `unwrap` is idiomatic.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const RULES: [&str; 5] = [
    "service-panic",
    "std-sync",
    "wall-clock",
    "no-println",
    "raw-fs",
];

/// (rule, tokens that trigger it). Tokens starting with an identifier
/// character are matched with an identifier boundary on the left, so
/// `println!` does not also report the `print!` inside `eprintln!`.
fn rule_tokens(rule: &str) -> &'static [&'static str] {
    match rule {
        "service-panic" => &[
            ".unwrap()",
            ".expect(",
            "panic!",
            "unreachable!",
            "todo!",
            "unimplemented!",
        ],
        "std-sync" => &["std::sync"],
        "wall-clock" => &["Instant", "SystemTime"],
        "no-println" => &["println!", "eprintln!", "print!", "eprint!", "dbg!"],
        "raw-fs" => &["std::fs", "File::open", "File::create", "OpenOptions"],
        other => panic!("unknown rule {other}"),
    }
}

/// Per-rule remediation hint appended to every finding.
fn rule_hint(rule: &str) -> &'static str {
    match rule {
        "service-panic" => "return a typed `ServiceError` instead",
        "std-sync" => "synchronize through the `lrf-sync` facade",
        "wall-clock" => {
            "inject `lrf_obs::Clock` (`MonotonicClock` in production, `ManualClock` in tests)"
        }
        "no-println" => "library code stays silent; print from binaries",
        "raw-fs" => {
            "route file IO through an injected `lrf_storage::StorageIo` so faults stay testable"
        }
        other => panic!("unknown rule {other}"),
    }
}

/// One reported problem (violation, bad annotation, or stale annotation).
struct Finding {
    file: PathBuf,
    line: usize,
    rule: String,
    message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// A source file split into per-line code and comment channels, with
/// test-item lines marked. Line numbering is 1-based.
struct MaskedFile {
    /// Line text with comments and string/char literal *contents* blanked
    /// to spaces (delimiters kept), so token scans only see real code.
    code: Vec<String>,
    /// Line text with only comment interiors kept — where lint
    /// annotations live.
    comment: Vec<String>,
    /// Lines inside `#[cfg(test)]` / `#[test]` items.
    in_test: Vec<bool>,
}

fn mask(source: &str) -> MaskedFile {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(usize),
        Str,
        RawStr(usize),
        Char,
    }
    let bytes: Vec<char> = source.chars().collect();
    let mut code = String::with_capacity(source.len());
    let mut comment = String::with_capacity(source.len());
    let mut st = St::Code;
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        if c == '\n' {
            if st == St::LineComment {
                st = St::Code;
            }
            code.push('\n');
            comment.push('\n');
            i += 1;
            continue;
        }
        let (code_ch, comment_ch) = match st {
            St::Code => {
                if c == '/' && bytes.get(i + 1) == Some(&'/') {
                    st = St::LineComment;
                    (' ', ' ')
                } else if c == '/' && bytes.get(i + 1) == Some(&'*') {
                    st = St::BlockComment(1);
                    (' ', ' ')
                } else if c == '"' {
                    st = St::Str;
                    ('"', ' ')
                } else if c == 'r' || c == 'b' {
                    // Possible raw/byte string prefix: r", br", r#", ...
                    let mut j = i + 1;
                    if c == 'b' && bytes.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0usize;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&'"') && (c == 'r' || j > i + 1) {
                        // Emit the prefix as code, enter raw-string state
                        // at the opening quote.
                        for &p in &bytes[i..=j] {
                            code.push(p);
                            comment.push(' ');
                        }
                        i = j + 1;
                        st = St::RawStr(hashes);
                        continue;
                    }
                    (c, ' ')
                } else if c == '\'' {
                    // Lifetime ('a) vs char literal ('x', '\n').
                    let next_ident = bytes
                        .get(i + 1)
                        .is_some_and(|&n| n.is_alphanumeric() || n == '_');
                    if next_ident && bytes.get(i + 2) != Some(&'\'') {
                        (c, ' ') // lifetime
                    } else {
                        st = St::Char;
                        ('\'', ' ')
                    }
                } else {
                    (c, ' ')
                }
            }
            St::LineComment => (' ', c),
            St::BlockComment(depth) => {
                if c == '*' && bytes.get(i + 1) == Some(&'/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    code.push(' ');
                    comment.push(' ');
                    code.push(' ');
                    comment.push(' ');
                    i += 2;
                    continue;
                } else if c == '/' && bytes.get(i + 1) == Some(&'*') {
                    st = St::BlockComment(depth + 1);
                    code.push(' ');
                    comment.push(' ');
                    code.push(' ');
                    comment.push(' ');
                    i += 2;
                    continue;
                } else {
                    (' ', c)
                }
            }
            St::Str => {
                if c == '\\' {
                    i += 2;
                    code.push(' ');
                    comment.push(' ');
                    code.push(' ');
                    comment.push(' ');
                    continue;
                } else if c == '"' {
                    st = St::Code;
                    ('"', ' ')
                } else {
                    (' ', ' ')
                }
            }
            St::RawStr(hashes) => {
                if c == '"' {
                    let closed = (0..hashes).all(|k| bytes.get(i + 1 + k) == Some(&'#'));
                    if closed {
                        for _ in 0..=hashes {
                            code.push('"');
                            comment.push(' ');
                        }
                        i += 1 + hashes;
                        st = St::Code;
                        continue;
                    }
                    (' ', ' ')
                } else {
                    (' ', ' ')
                }
            }
            St::Char => {
                if c == '\\' {
                    i += 2;
                    code.push(' ');
                    comment.push(' ');
                    code.push(' ');
                    comment.push(' ');
                    continue;
                } else if c == '\'' {
                    st = St::Code;
                    ('\'', ' ')
                } else {
                    (' ', ' ')
                }
            }
        };
        code.push(code_ch);
        comment.push(comment_ch);
        i += 1;
    }

    let code_lines: Vec<String> = code.lines().map(str::to_string).collect();
    let comment_lines: Vec<String> = comment.lines().map(str::to_string).collect();
    let in_test = mark_test_items(&code_lines);
    MaskedFile {
        code: code_lines,
        comment: comment_lines,
        in_test,
    }
}

/// Marks every line belonging to a `#[cfg(test)]` or `#[test]` item: from
/// the attribute to the close of the brace block that follows it.
fn mark_test_items(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut line = 0usize;
    while line < code.len() {
        let l = &code[line];
        let is_test_attr = l.contains("#[cfg(test)]")
            || l.contains("#[cfg(all(test")
            || l.contains("#[test]")
            || l.contains("#[bench]");
        if !is_test_attr {
            line += 1;
            continue;
        }
        // Find the item's opening brace, then its matching close.
        let mut depth = 0usize;
        let mut opened = false;
        let mut end = line;
        'outer: for (li, lt) in code.iter().enumerate().skip(line) {
            for ch in lt.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if opened && depth == 0 {
                            end = li;
                            break 'outer;
                        }
                    }
                    _ => {}
                }
            }
            end = li;
        }
        for t in in_test.iter_mut().take(end + 1).skip(line) {
            *t = true;
        }
        line = end + 1;
    }
    in_test
}

/// A parsed `lrf-lint: allow(rule): justification` annotation.
struct Allow {
    line: usize,
    rule: String,
    /// Line numbers this annotation waives (its own + next code line).
    covers: Vec<usize>,
    used: bool,
}

/// Extracts annotations from the comment channel; malformed ones are
/// reported as findings immediately.
fn parse_allows(file: &Path, masked: &MaskedFile, findings: &mut Vec<Finding>) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (idx, text) in masked.comment.iter().enumerate() {
        let Some(pos) = text.find("lrf-lint:") else {
            continue;
        };
        let line = idx + 1;
        let rest = text[pos + "lrf-lint:".len()..].trim_start();
        let Some(inner) = rest.strip_prefix("allow(") else {
            findings.push(Finding {
                file: file.to_path_buf(),
                line,
                rule: "annotation".into(),
                message: "malformed lrf-lint annotation: expected `allow(<rule>): <why>`".into(),
            });
            continue;
        };
        let Some(close) = inner.find(')') else {
            findings.push(Finding {
                file: file.to_path_buf(),
                line,
                rule: "annotation".into(),
                message: "malformed lrf-lint annotation: unclosed `allow(`".into(),
            });
            continue;
        };
        let rule = inner[..close].trim().to_string();
        if !RULES.contains(&rule.as_str()) {
            findings.push(Finding {
                file: file.to_path_buf(),
                line,
                rule: "annotation".into(),
                message: format!("unknown lint rule `{rule}` in allow annotation"),
            });
            continue;
        }
        let after = inner[close + 1..].trim_start();
        let justification = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if justification.is_empty() {
            findings.push(Finding {
                file: file.to_path_buf(),
                line,
                rule: "annotation".into(),
                message: format!(
                    "allow({rule}) requires a justification: `lrf-lint: allow({rule}): <why>`"
                ),
            });
            continue;
        }
        // The annotation covers its own line and the next line that holds
        // code, skipping blank / comment-only lines (so multi-line
        // justification comments work).
        let mut covers = vec![line];
        for (j, code) in masked.code.iter().enumerate().skip(idx + 1) {
            covers.push(j + 1);
            if !code.trim().is_empty() {
                break;
            }
        }
        allows.push(Allow {
            line,
            rule,
            covers,
            used: false,
        });
    }
    allows
}

/// True if `code` contains `token` outside identifier context.
fn has_token(code: &str, token: &str) -> bool {
    let mut from = 0usize;
    while let Some(rel) = code[from..].find(token) {
        let at = from + rel;
        let ident_start = token
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let boundary_ok = !ident_start
            || at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if boundary_ok {
            return true;
        }
        from = at + token.len();
    }
    false
}

/// Scans one file's source for violations of `rules`.
fn lint_source(file: &Path, source: &str, rules: &[&str]) -> Vec<Finding> {
    let masked = mask(source);
    let mut findings = Vec::new();
    let mut allows = parse_allows(file, &masked, &mut findings);
    for (idx, code) in masked.code.iter().enumerate() {
        if masked.in_test[idx] {
            continue;
        }
        let line = idx + 1;
        for &rule in rules {
            for token in rule_tokens(rule) {
                if !has_token(code, token) {
                    continue;
                }
                if let Some(a) = allows
                    .iter_mut()
                    .find(|a| a.rule == rule && a.covers.contains(&line))
                {
                    a.used = true;
                    continue;
                }
                findings.push(Finding {
                    file: file.to_path_buf(),
                    line,
                    rule: rule.to_string(),
                    message: format!(
                        "`{token}` is not allowed here — {} (see tools/lint)",
                        rule_hint(rule)
                    ),
                });
            }
        }
    }
    for a in &allows {
        if !a.used {
            findings.push(Finding {
                file: file.to_path_buf(),
                line: a.line,
                rule: a.rule.clone(),
                message: "stale allow annotation: it suppresses nothing — remove it".into(),
            });
        }
    }
    findings
}

/// Recursively collects `.rs` files under `dir`, skipping `bin/`
/// subtrees, in sorted order for deterministic reports.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "bin") {
                continue;
            }
            rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// (scope directories, rules) pairs, relative to the workspace root.
fn scopes() -> Vec<(Vec<&'static str>, Vec<&'static str>)> {
    vec![
        // The request path must be panic-free; synchronization and time
        // are facade-only in the concurrency-bearing crates.
        (
            vec!["crates/service/src"],
            vec![
                "service-panic",
                "std-sync",
                "wall-clock",
                "no-println",
                "raw-fs",
            ],
        ),
        (
            vec!["crates/logdb/src"],
            vec!["std-sync", "wall-clock", "no-println", "raw-fs"],
        ),
        // `lrf-storage` is the one crate allowed to touch `std::fs`: its
        // `StdIo` backend is where raw file IO is supposed to live. It is
        // still held to the determinism rules.
        (vec!["crates/storage/src"], vec!["wall-clock", "no-println"]),
        // Every other first-party library crate: no stray prints, no
        // wall-clock reads — timing is injected via `lrf_obs::Clock` — and
        // no raw file IO, which goes through `lrf_storage::StorageIo`.
        // `crates/obs` itself is in scope: `MonotonicClock` carries the
        // only waived `Instant` reads in the workspace.
        (
            vec![
                "crates/imaging/src",
                "crates/features/src",
                "crates/svm/src",
                "crates/index/src",
                "crates/cbir/src",
                "crates/core/src",
                "crates/bench/src",
                "crates/sync/src",
                "crates/obs/src",
                "src",
            ],
            vec!["wall-clock", "no-println", "raw-fs"],
        ),
        // Vendored stand-ins are library code too, so no stray prints —
        // but they may read the wall clock internally. vendor/criterion is
        // fully exempt: timing iterations and printing bench reports to
        // the terminal is its purpose.
        (
            vec![
                "crates/vendor/rand/src",
                "crates/vendor/serde/src",
                "crates/vendor/serde_derive/src",
                "crates/vendor/serde_json/src",
                "crates/vendor/proptest/src",
                "crates/vendor/loom/src",
            ],
            vec!["no-println"],
        ),
    ]
}

fn workspace_root() -> PathBuf {
    // tools/lint/ -> workspace root is two levels up.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("tools/lint sits two levels under the workspace root")
        .to_path_buf()
}

fn main() -> ExitCode {
    let root = workspace_root();
    let mut findings = Vec::new();
    let mut n_files = 0usize;
    for (dirs, rules) in scopes() {
        for dir in dirs {
            let mut files = Vec::new();
            rs_files(&root.join(dir), &mut files);
            for file in files {
                let Ok(source) = std::fs::read_to_string(&file) else {
                    findings.push(Finding {
                        file: file.clone(),
                        line: 0,
                        rule: "io".into(),
                        message: "unreadable source file".into(),
                    });
                    continue;
                };
                n_files += 1;
                let rel = file.strip_prefix(&root).unwrap_or(&file);
                findings.extend(lint_source(rel, &source, &rules));
            }
        }
    }
    if findings.is_empty() {
        println!("lrf-lint: {n_files} files clean");
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            eprintln!("{f}");
        }
        eprintln!("lrf-lint: {} finding(s) in {n_files} files", findings.len());
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str, rules: &[&str]) -> Vec<Finding> {
        lint_source(Path::new("test.rs"), src, rules)
    }

    #[test]
    fn flags_panic_tokens_in_code() {
        let findings = lint(
            "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
            &["service-panic"],
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 2);
        assert!(findings[0].message.contains(".unwrap()"));
    }

    #[test]
    fn ignores_tokens_in_comments_and_strings() {
        let src = r###"
// this comment says panic! and .unwrap()
/* block comment: std::sync */
fn f() -> &'static str {
    let s = "contains panic! and Instant";
    let r = r#"raw with .unwrap()"#;
    let c = '"';
    let _ = (s, r, c);
    "done"
}
"###;
        let findings = lint(
            src,
            &["service-panic", "std-sync", "wall-clock", "no-println"],
        );
        let shown: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
        assert!(findings.is_empty(), "{shown:?}");
    }

    #[test]
    fn skips_cfg_test_modules_and_test_fns() {
        let src = "
fn real() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        Some(1).unwrap();
        panic!(\"fine in tests\");
    }
}
";
        assert!(lint(src, &["service-panic"]).is_empty());
        let src2 = "
#[test]
fn standalone() {
    Some(1).unwrap();
}

fn real(x: Option<u32>) -> u32 { x.unwrap() }
";
        let findings = lint(src2, &["service-panic"]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 7);
    }

    #[test]
    fn justified_allow_suppresses_and_is_marked_used() {
        let src = "
fn f(x: Option<u32>) -> u32 {
    // lrf-lint: allow(service-panic): x is Some by construction
    x.unwrap()
}
";
        assert!(lint(src, &["service-panic"]).is_empty());
        // Multi-line justification comments between annotation and code.
        let src2 = "
fn f(x: Option<u32>) -> u32 {
    // lrf-lint: allow(service-panic): x was checked
    // two lines above, so this cannot fire
    x.unwrap()
}
";
        assert!(lint(src2, &["service-panic"]).is_empty());
    }

    #[test]
    fn allow_without_justification_is_an_error() {
        let src = "
// lrf-lint: allow(service-panic)
fn f(x: Option<u32>) -> u32 { x.unwrap() }
";
        let findings = lint(src, &["service-panic"]);
        // The malformed annotation AND the unsuppressed violation.
        assert_eq!(findings.len(), 2);
        assert!(findings[0].message.contains("requires a justification"));
    }

    #[test]
    fn stale_allow_is_an_error() {
        let src = "
// lrf-lint: allow(service-panic): nothing here panics anymore
fn f() -> u32 { 7 }
";
        let findings = lint(src, &["service-panic"]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("stale allow"));
    }

    #[test]
    fn unknown_rule_in_allow_is_an_error() {
        let src = "// lrf-lint: allow(made-up-rule): because\nfn f() {}\n";
        let findings = lint(src, &["service-panic"]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("unknown lint rule"));
    }

    #[test]
    fn std_sync_and_wall_clock_flagged() {
        let src = "use std::sync::Mutex;\nuse std::time::Instant;\n";
        let findings = lint(src, &["std-sync", "wall-clock"]);
        assert_eq!(findings.len(), 2);
        assert_eq!(findings[0].rule, "std-sync");
        assert_eq!(findings[1].rule, "wall-clock");
    }

    #[test]
    fn println_boundaries_do_not_double_report() {
        let src = "fn f() { eprintln!(\"x\"); }\n";
        let findings = lint(src, &["no-println"]);
        assert_eq!(findings.len(), 1, "eprintln! must not also match println!");
        assert!(findings[0].message.contains("eprintln!"));
    }

    #[test]
    fn raw_fs_flags_direct_file_io_but_not_comments_or_tests() {
        let src = "
// std::fs in a comment is fine
fn load(p: &std::path::Path) -> Vec<u8> {
    std::fs::read(p).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    fn scratch() {
        std::fs::create_dir_all(\"/tmp/x\").unwrap();
    }
}
";
        let findings = lint(src, &["raw-fs"]);
        assert_eq!(findings.len(), 1, "only the non-test read is a finding");
        assert_eq!(findings[0].line, 4);
        assert!(
            findings[0].message.contains("lrf_storage::StorageIo"),
            "raw-fs findings must route the author to the storage layer: {}",
            findings[0].message
        );
    }

    #[test]
    fn raw_fs_waiver_works_like_any_other() {
        let src = "
fn probe() -> bool {
    // lrf-lint: allow(raw-fs): startup-only existence probe, no IO injected yet
    std::fs::metadata(\"/etc/hosts\").is_ok()
}
";
        assert!(lint(src, &["raw-fs"]).is_empty());
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        // A naive char-literal scanner would treat 'a as opening a
        // literal and swallow the .unwrap() that follows.
        let src = "fn f<'a>(x: &'a Option<u32>) -> u32 { x.as_ref().copied().unwrap() }\n";
        let findings = lint(src, &["service-panic"]);
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn wall_clock_hint_points_at_the_clock_trait() {
        let findings = lint("use std::time::Instant;\n", &["wall-clock"]);
        assert_eq!(findings.len(), 1);
        assert!(
            findings[0].message.contains("lrf_obs::Clock"),
            "wall-clock findings must route the author to the injectable clock: {}",
            findings[0].message
        );
    }

    #[test]
    fn waived_wall_clock_read_is_allowed() {
        // The shape MonotonicClock uses: a justified waiver on the comment
        // line directly above the sanctioned read.
        let src = "
fn origin() -> std::time::Instant {
    // lrf-lint: allow(wall-clock): the sanctioned production read
    std::time::Instant::now()
}
";
        let findings = lint(src, &["wall-clock"]);
        // The fn signature's `Instant` (line 2) is still flagged — only
        // the waived read is suppressed.
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn first_party_scopes_cover_wall_clock_but_vendor_does_not() {
        let all = scopes();
        let rules_for = |dir: &str| -> Vec<&'static str> {
            all.iter()
                .filter(|(dirs, _)| dirs.contains(&dir))
                .flat_map(|(_, rules)| rules.iter().copied())
                .collect()
        };
        for dir in ["crates/obs/src", "crates/bench/src", "crates/svm/src"] {
            assert!(
                rules_for(dir).contains(&"wall-clock"),
                "{dir} must be held to the wall-clock rule"
            );
        }
        // Vendored stand-ins time things internally; criterion is exempt
        // from everything.
        assert!(!rules_for("crates/vendor/proptest/src").contains(&"wall-clock"));
        assert!(rules_for("crates/vendor/criterion/src").is_empty());
        // Raw file IO is storage's job and nobody else's: every other
        // first-party crate is held to raw-fs, storage itself is not.
        for dir in [
            "crates/service/src",
            "crates/logdb/src",
            "crates/cbir/src",
            "src",
        ] {
            assert!(
                rules_for(dir).contains(&"raw-fs"),
                "{dir} must be held to the raw-fs rule"
            );
        }
        assert!(!rules_for("crates/storage/src").contains(&"raw-fs"));
        assert!(rules_for("crates/storage/src").contains(&"no-println"));
    }

    #[test]
    fn expect_err_is_not_expect() {
        let src = "fn f(r: Result<u32, u32>) -> u32 { r.expect_err(\"msg\") }\n";
        // .expect_err is a different (equally panicking) API — flagged via
        // its own token? No: the panic-free rule targets the request path
        // conversions; expect_err does not appear there. The token
        // `.expect(` must not match `.expect_err(`.
        assert!(lint(src, &["service-panic"]).is_empty());
    }
}
