#!/usr/bin/env bash
# Bench regression gate: runs the quick-mode perf benches and fails if the
# optimized paths lost to their baselines on a multi-core runner.
#
#   svm_score           serial decision loop  vs  decision_batch_rows
#   service_throughput  N sessions one-by-one vs  N sessions on N threads
#   svm_train/round     cold retrain          vs  warm-started retrain
#   svm_train/gram      eager Gram precompute vs  lazy kernel-row cache
#   obs_overhead        untimed baseline      vs  fully instrumented service
#   wal_flush           volatile close path   vs  WAL-fsynced close path
#
# The obs_overhead pair is held to OVERHEAD_MARGIN_PCT (5%): the
# instrumented service must stay within 5% of the counters-only baseline,
# the budget that keeps tracing always-on in production.
#
# The wal_flush pair is held to WAL_MARGIN_PCT (50%): a durably
# acknowledged session (WAL framing + CRC + fsync on the close) may cost
# at most half again the volatile close path. That is the documented
# durability tax — a blown margin means the WAL hot path regressed.
#
# The service_throughput and wal_flush benches also print
# `service_latency/<stage>/<pN>` percentile lines read back from the
# service's own metrics endpoint (wal_flush contributes the
# flush_durability stage); they are persisted to
# bench-results/BENCH_latency.json (and their presence is enforced — a
# silent loss of the metrics endpoint would otherwise look like a green
# run).
#
# The load_gen example additionally boots the sharded NetServer on an
# ephemeral port and drives it over real TCP with Zipfian clients; its
# `service_latency/load_gen/<stage>/<pN>` client-side percentiles join
# BENCH_latency.json, and their presence is enforced separately — a
# transport that stopped answering would otherwise vanish silently from
# the latency report.
#
# On a single-core machine the parallel paths fall back to (or degenerate
# into) the serial ones, so the gate only *reports* there — the comparison
# is enforced when `nproc > 1` (the CI bench job). The training-path
# checks additionally require the warm round to actually be faster than
# the cold one by the margin, not merely no slower. Parsed numbers are
# written to bench-results/BENCH_ci.json as a workflow artifact, in the
# same shape as BENCH_scoring.json's "runs" entries.
#
# Usage: tools/bench_check.sh [output-dir]   (default: bench-results)

set -euo pipefail
cd "$(dirname "$0")/.."

OUT_DIR="${1:-bench-results}"
mkdir -p "$OUT_DIR"
RAW="$OUT_DIR/bench_raw.txt"
JSON="$OUT_DIR/BENCH_ci.json"
LAT_JSON="$OUT_DIR/BENCH_latency.json"

# The relative slowdown the parallel path is allowed before the gate trips
# (absorbs runner noise; any real regression is far larger than 10%).
MARGIN_PCT=10
# The instrumentation budget: timed metrics may cost at most this much
# over the untimed baseline.
OVERHEAD_MARGIN_PCT=5
# The durability budget: a WAL-fsynced close path may cost at most this
# much over the volatile one.
WAL_MARGIN_PCT=50

# Portable core detection: nproc (GNU), sysctl (macOS/BSD), getconf
# (POSIX); 1 if all else fails so the gate degrades to report-only.
CORES="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
echo "bench_check: running quick-mode benches on ${CORES} core(s)"

: > "$RAW"
BENCH_QUICK=1 cargo bench -p lrf-bench --bench svm_score | tee -a "$RAW"
BENCH_QUICK=1 cargo bench -p lrf-bench --bench service_throughput | tee -a "$RAW"
BENCH_QUICK=1 cargo bench -p lrf-bench --bench svm_train | tee -a "$RAW"
BENCH_QUICK=1 cargo bench -p lrf-bench --bench obs_overhead | tee -a "$RAW"
BENCH_QUICK=1 cargo bench -p lrf-bench --bench wal_flush | tee -a "$RAW"
BENCH_QUICK=1 cargo run --release --example load_gen | tee -a "$RAW"

# Lines look like:  bench svm_score/nsv8/serial/2000   344,467 ns/iter
# The harness prints "123.4" below 1e3, comma-grouped integers below 1e9,
# and "1.234e9" above; normalize all three to integer nanoseconds so the
# shell arithmetic below never sees a decimal point or exponent.
parse() {
    awk '$1 == "bench" && $NF == "ns/iter" {
        v = $(NF-1); gsub(",", "", v); printf "%s %.0f\n", $2, v + 0
    }' "$RAW"
}

lookup() { # lookup <name> -> ns (empty if absent)
    parse | awk -v n="$1" '$1 == n { print $2 }'
}

fail=0
checks_json=""

check_pair() { # check_pair <label> <serial_name> <parallel_name>
    local label="$1" serial_name="$2" parallel_name="$3"
    local serial_ns parallel_ns verdict
    serial_ns="$(lookup "$serial_name")"
    parallel_ns="$(lookup "$parallel_name")"
    if [ -z "$serial_ns" ] || [ -z "$parallel_ns" ]; then
        echo "bench_check: FAIL ${label}: missing bench output (${serial_name}=${serial_ns:-?} ${parallel_name}=${parallel_ns:-?})"
        fail=1
        return
    fi
    local limit=$(( serial_ns + serial_ns * MARGIN_PCT / 100 ))
    local speedup
    speedup="$(awk -v s="$serial_ns" -v p="$parallel_ns" 'BEGIN { printf "%.2f", s / p }')"
    if [ "$CORES" -gt 1 ] && [ "$parallel_ns" -gt "$limit" ]; then
        verdict="fail"
        fail=1
        echo "bench_check: FAIL ${label}: parallel ${parallel_ns} ns > serial ${serial_ns} ns (+${MARGIN_PCT}% margin) on ${CORES} cores"
    else
        verdict="ok"
        echo "bench_check: ok   ${label}: serial ${serial_ns} ns, parallel ${parallel_ns} ns (speedup ${speedup}x)"
    fi
    checks_json="${checks_json}${checks_json:+,}
    { \"check\": \"${label}\", \"serial_ns\": ${serial_ns}, \"parallel_ns\": ${parallel_ns}, \"speedup\": ${speedup}, \"verdict\": \"${verdict}\" }"
}

check_faster() { # check_faster <label> <baseline_name> <optimized_name>
    # Stricter than check_pair: the optimized path must beat the baseline
    # by at least MARGIN_PCT on a multi-core runner (a warm start that is
    # merely "no slower" means the seeding is broken).
    local label="$1" baseline_name="$2" optimized_name="$3"
    local baseline_ns optimized_ns verdict
    baseline_ns="$(lookup "$baseline_name")"
    optimized_ns="$(lookup "$optimized_name")"
    if [ -z "$baseline_ns" ] || [ -z "$optimized_ns" ]; then
        echo "bench_check: FAIL ${label}: missing bench output (${baseline_name}=${baseline_ns:-?} ${optimized_name}=${optimized_ns:-?})"
        fail=1
        return
    fi
    local limit=$(( baseline_ns - baseline_ns * MARGIN_PCT / 100 ))
    local speedup
    speedup="$(awk -v s="$baseline_ns" -v p="$optimized_ns" 'BEGIN { printf "%.2f", s / p }')"
    if [ "$CORES" -gt 1 ] && [ "$optimized_ns" -gt "$limit" ]; then
        verdict="fail"
        fail=1
        echo "bench_check: FAIL ${label}: optimized ${optimized_ns} ns not ${MARGIN_PCT}% under baseline ${baseline_ns} ns on ${CORES} cores"
    else
        verdict="ok"
        echo "bench_check: ok   ${label}: baseline ${baseline_ns} ns, optimized ${optimized_ns} ns (speedup ${speedup}x)"
    fi
    checks_json="${checks_json}${checks_json:+,}
    { \"check\": \"${label}\", \"serial_ns\": ${baseline_ns}, \"parallel_ns\": ${optimized_ns}, \"speedup\": ${speedup}, \"verdict\": \"${verdict}\" }"
}

check_overhead() { # check_overhead <label> <baseline_name> <instrumented_name> [margin_pct]
    # Like check_pair but with an explicit overhead budget: the
    # instrumented path may cost at most that much over the baseline
    # (default: the OVERHEAD_MARGIN_PCT instrumentation budget).
    local label="$1" baseline_name="$2" instrumented_name="$3"
    local OVERHEAD_MARGIN_PCT="${4:-$OVERHEAD_MARGIN_PCT}"
    local baseline_ns instrumented_ns verdict
    baseline_ns="$(lookup "$baseline_name")"
    instrumented_ns="$(lookup "$instrumented_name")"
    if [ -z "$baseline_ns" ] || [ -z "$instrumented_ns" ]; then
        echo "bench_check: FAIL ${label}: missing bench output (${baseline_name}=${baseline_ns:-?} ${instrumented_name}=${instrumented_ns:-?})"
        fail=1
        return
    fi
    local limit=$(( baseline_ns + baseline_ns * OVERHEAD_MARGIN_PCT / 100 ))
    local overhead
    overhead="$(awk -v s="$baseline_ns" -v p="$instrumented_ns" 'BEGIN { printf "%.2f", (p - s) * 100.0 / s }')"
    if [ "$CORES" -gt 1 ] && [ "$instrumented_ns" -gt "$limit" ]; then
        verdict="fail"
        fail=1
        echo "bench_check: FAIL ${label}: instrumented ${instrumented_ns} ns > baseline ${baseline_ns} ns (+${OVERHEAD_MARGIN_PCT}% budget) — overhead ${overhead}%"
    else
        verdict="ok"
        echo "bench_check: ok   ${label}: baseline ${baseline_ns} ns, instrumented ${instrumented_ns} ns (overhead ${overhead}%)"
    fi
    checks_json="${checks_json}${checks_json:+,}
    { \"check\": \"${label}\", \"serial_ns\": ${baseline_ns}, \"parallel_ns\": ${instrumented_ns}, \"overhead_pct\": ${overhead}, \"verdict\": \"${verdict}\" }"
}

# Quick mode pins svm_score to N=2000, service_throughput to 4 sessions,
# and svm_train to round N=120 / gram N=240.
check_pair "svm_score/nsv8/n2000" "svm_score/nsv8/serial/2000" "svm_score/nsv8/batch/2000"
check_pair "svm_score/nsv64/n2000" "svm_score/nsv64/serial/2000" "svm_score/nsv64/batch/2000"
check_pair "service_throughput/4sessions" "service_throughput/serial/4" "service_throughput/concurrent/4"
check_faster "svm_train/round_warm_vs_cold" "svm_train/round/cold/120" "svm_train/round/warm/120"
check_pair "svm_train/gram_cached_vs_precomputed" "svm_train/gram/precomputed/240" "svm_train/gram/cached/240"
check_overhead "obs_overhead/4sessions" "obs_overhead/untimed" "obs_overhead/timed"
check_overhead "wal_flush/durability_tax" "wal_flush/volatile" "wal_flush/durable" "$WAL_MARGIN_PCT"

# Persist the service's self-reported latency percentiles. The lines come
# from the metrics endpoint driven by the service_throughput bench, so an
# empty set means the observability layer silently broke.
lat_entries="$(parse | awk '$1 ~ /^service_latency\// {
    printf "%s    { \"name\": \"%s\", \"ns\": %s }", (n++ ? ",\n" : ""), $1, $2
}')"
# The networked tier reports separately: client-side percentiles measured
# over real TCP against the sharded server must be present.
if ! parse | awk '$1 ~ /^service_latency\/load_gen\// { found = 1 } END { exit !found }'; then
    echo "bench_check: FAIL service_latency/load_gen: no TCP client percentile lines in bench output"
    fail=1
fi

if [ -z "$lat_entries" ]; then
    echo "bench_check: FAIL service_latency: no percentile lines in bench output"
    fail=1
else
    cat > "$LAT_JSON" <<EOF
{
  "bench": "service request/stage latency percentiles (self-reported by lrf-obs)",
  "command": "tools/bench_check.sh",
  "cpus": ${CORES},
  "quantile_error_bound": "1/64 relative (lrf-obs log-linear histogram)",
  "percentiles": [
${lat_entries}
  ]
}
EOF
    echo "bench_check: wrote ${LAT_JSON}"
fi

enforced=$([ "$CORES" -gt 1 ] && echo true || echo false)
cat > "$JSON" <<EOF
{
  "bench": "bench_check quick gate",
  "command": "tools/bench_check.sh",
  "cpus": ${CORES},
  "margin_pct": ${MARGIN_PCT},
  "enforced": ${enforced},
  "checks": [${checks_json}
  ]
}
EOF
echo "bench_check: wrote ${JSON}"

if [ "$fail" -ne 0 ]; then
    echo "bench_check: FAILED (parallel hot path regressed against its serial baseline)"
    exit 1
fi
echo "bench_check: all checks passed"
