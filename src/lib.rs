//! # corelog — facade crate
//!
//! Re-exports the public API of the LRF-CSVM reproduction workspace. See the
//! individual crates for detail:
//!
//! * [`imaging`] — image substrate (synthetic COREL, Canny, wavelets).
//! * [`features`] — 36-D low-level visual descriptors.
//! * [`svm`] — the SMO-based SVM solver.
//! * [`logdb`] — user-feedback log store and simulation.
//! * [`cbir`] — retrieval engine and evaluation protocol.
//! * [`core`] — coupled SVM, LRF-CSVM, and baselines.
//! * [`service`] — concurrent multi-session feedback service.
//! * [`storage`] — injectable storage IO, checksummed WAL, fault injection.
//! * [`obs`] — metrics registry, tracing spans, and the injectable clock.

pub use lrf_cbir as cbir;
pub use lrf_core as core;
pub use lrf_features as features;
pub use lrf_imaging as imaging;
pub use lrf_logdb as logdb;
pub use lrf_obs as obs;
pub use lrf_service as service;
pub use lrf_storage as storage;
pub use lrf_svm as svm;
