//! Load generator for the networked sharded serving tier.
//!
//! ```sh
//! cargo run --release --example load_gen            # full run
//! BENCH_QUICK=1 cargo run --release --example load_gen   # CI smoke
//! ```
//!
//! Boots a sharded [`NetServer`] on an ephemeral port, then drives it with
//! concurrent TCP clients replaying the paper's feedback workload:
//! query popularity is **Zipfian** (a few hot queries dominate, the long
//! tail keeps every shard warm) and session lengths are mixed (1–3
//! feedback rounds, like real users who give up early or iterate). Every
//! request is timed end-to-end — connect-to-parse — with the workspace's
//! [`MonotonicClock`], and per-stage p50/p99 percentiles are printed in
//! the `bench … ns/iter` line format that `tools/bench_check.sh` parses
//! into `bench-results/BENCH_latency.json`.
//!
//! Ends with a graceful [`NetServer::shutdown`]: in-flight sessions drain
//! through the durable-flush path and the example reports how much the
//! shared log grew — the paper's log-accumulation loop, under load.

use corelog::cbir::{collect_log, CorelDataset, CorelSpec};
use corelog::core::{LrfConfig, SchemeKind};
use corelog::logdb::SimulationConfig;
use corelog::obs::{Clock, MonotonicClock};
use corelog::service::{
    NetConfig, NetServer, Request, Service, ServiceConfig, ServiceMetrics, PROTO_VERSION,
};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

const N_SHARDS: usize = 4;

fn quick() -> bool {
    std::env::var_os("BENCH_QUICK").is_some()
}

/// xorshift64* — deterministic per-client randomness, no external deps.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn uniform(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Zipf(s = 1.05) over `n` ranks via inverse-CDF table lookup: rank 0 is
/// the hottest query, the tail is long but never cold.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize) -> Self {
        let weights: Vec<f64> = (1..=n).map(|rank| 1.0 / (rank as f64).powf(1.05)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Self { cdf }
    }

    fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.uniform();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Minimal keep-alive HTTP/1.1 client speaking the versioned envelope.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
}

impl Client {
    fn connect(addr: SocketAddr) -> Self {
        let writer = TcpStream::connect(addr).expect("connect");
        writer.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(writer.try_clone().expect("clone stream"));
        Self {
            writer,
            reader,
            next_id: 0,
        }
    }

    /// One envelope exchange; returns the raw response body JSON.
    fn call(&mut self, request: &Request) -> String {
        let id = self.next_id;
        self.next_id += 1;
        let body = serde_json::to_string(request).expect("serialize request");
        let frame = format!("{{\"v\":{PROTO_VERSION},\"id\":{id},\"body\":{body}}}");
        let message = format!(
            "POST /api HTTP/1.1\r\nHost: load\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{frame}",
            frame.len()
        );
        self.writer
            .write_all(message.as_bytes())
            .expect("write request");
        self.writer.flush().expect("flush");

        let mut status = String::new();
        self.reader.read_line(&mut status).expect("status line");
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            self.reader.read_line(&mut header).expect("header");
            let header = header.trim();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().expect("content-length");
                }
            }
        }
        let mut raw = vec![0u8; content_length];
        self.reader.read_exact(&mut raw).expect("body");
        String::from_utf8(raw).expect("utf-8")
    }
}

/// Pulls `"field": number` out of a response body without a full decode —
/// the load generator only needs session ids and screen contents.
fn json_u64(body: &str, field: &str) -> Option<u64> {
    let needle = format!("\"{field}\":");
    let at = body.find(&needle)? + needle.len();
    let digits: String = body[at..]
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn json_id_array(body: &str, field: &str) -> Vec<usize> {
    let needle = format!("\"{field}\":");
    let Some(at) = body.find(&needle) else {
        return Vec::new();
    };
    let rest = &body[at + needle.len()..];
    let Some(open) = rest.find('[') else {
        return Vec::new();
    };
    let Some(close) = rest.find(']') else {
        return Vec::new();
    };
    rest[open + 1..close]
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .collect()
}

/// One timed request: returns (stage, nanoseconds).
fn timed(
    clock: &dyn Clock,
    client: &mut Client,
    stage: &'static str,
    request: &Request,
) -> (String, (&'static str, u64)) {
    let t0 = clock.now_ns();
    let body = client.call(request);
    (body, (stage, clock.now_ns() - t0))
}

fn main() {
    let (clients, sessions_per_client) = if quick() { (2, 3) } else { (4, 12) };
    println!(
        "load_gen: {N_SHARDS} shards, {clients} clients x {sessions_per_client} sessions{}",
        if quick() { " (quick)" } else { "" }
    );

    let ds = CorelDataset::build(CorelSpec::tiny(5, 20, 7));
    let log = collect_log(
        &ds.db,
        &SimulationConfig {
            n_sessions: 30,
            judged_per_session: 12,
            rounds_per_query: 2,
            noise: 0.1,
            seed: 11,
        },
    );
    let log_before = log.n_sessions();
    let n_images = ds.db.len();
    let config = ServiceConfig {
        max_sessions: 64,
        ttl_requests: 0,
        screen_size: 8,
        pool_size: 40,
        lrf: LrfConfig {
            n_unlabeled: 8,
            ..LrfConfig::default()
        },
    };
    let service = Service::sharded_with_metrics(
        ds.db,
        log,
        N_SHARDS,
        config,
        ServiceMetrics::with_clock(MonotonicClock::shared()),
    );
    let server = NetServer::serve(
        service,
        NetConfig {
            workers: clients,
            ..NetConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.addr();
    println!("load_gen: serving on {addr}");

    let wall = MonotonicClock::new();
    let t_start = wall.now_ns();
    let mut handles = Vec::new();
    for worker in 0..clients {
        handles.push(std::thread::spawn(move || {
            let clock = MonotonicClock::new();
            let zipf = Zipf::new(n_images);
            let mut rng = Rng(0x9E37_79B9_7F4A_7C15 ^ ((worker as u64 + 1) * 0x1234_5678));
            let mut client = Client::connect(addr);
            let mut samples: Vec<(&'static str, u64)> = Vec::new();
            for _ in 0..sessions_per_client {
                let query = zipf.sample(&mut rng);
                let (body, s) = timed(
                    &clock,
                    &mut client,
                    "open",
                    &Request::Open {
                        query,
                        scheme: SchemeKind::LrfCsvm,
                    },
                );
                samples.push(s);
                let session = json_u64(&body, "session").expect("opened session id");
                let mut to_judge = json_id_array(&body, "screen");
                // Mixed session lengths: 1–3 feedback rounds.
                let rounds = 1 + (rng.next() % 3) as usize;
                for _ in 0..rounds {
                    for id in to_judge.iter().take(6) {
                        let (_, s) = timed(
                            &clock,
                            &mut client,
                            "mark",
                            &Request::Mark {
                                session,
                                image: *id,
                                // Noisy judge: mostly honest about the hot
                                // category, sometimes wrong — keeps the
                                // retrain non-trivial without DB access.
                                relevant: rng.uniform() < 0.7,
                            },
                        );
                        samples.push(s);
                    }
                    let (_, s) = timed(&clock, &mut client, "rerank", &Request::Rerank { session });
                    samples.push(s);
                    let (body, s) = timed(
                        &clock,
                        &mut client,
                        "page",
                        &Request::Page {
                            session,
                            offset: 0,
                            count: 16,
                        },
                    );
                    samples.push(s);
                    to_judge = json_id_array(&body, "ids");
                }
                let (_, s) = timed(&clock, &mut client, "close", &Request::Close { session });
                samples.push(s);
            }
            samples
        }));
    }

    let mut samples: Vec<(&'static str, u64)> = Vec::new();
    for handle in handles {
        samples.extend(handle.join().expect("client thread"));
    }
    let elapsed_ns = wall.now_ns() - t_start;
    let total = samples.len();
    println!(
        "load_gen: {total} requests in {:.2}s ({:.0} req/s)",
        elapsed_ns as f64 / 1e9,
        total as f64 * 1e9 / elapsed_ns as f64
    );

    // Per-stage + end-to-end percentiles, in the harness line format.
    let percentile = |sorted: &[u64], q: f64| -> u64 {
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx]
    };
    let mut stages: Vec<&'static str> = vec!["open", "mark", "rerank", "page", "close"];
    stages.push("e2e");
    for stage in stages {
        let mut ns: Vec<u64> = samples
            .iter()
            .filter(|(s, _)| stage == "e2e" || *s == stage)
            .map(|&(_, ns)| ns)
            .collect();
        if ns.is_empty() {
            continue;
        }
        ns.sort_unstable();
        for (q, q_label) in [(0.50, "p50"), (0.99, "p99")] {
            println!(
                "bench {:<40} {:>14} ns/iter",
                format!("service_latency/load_gen/{stage}/{q_label}"),
                percentile(&ns, q)
            );
        }
    }

    // Graceful shutdown: drain through the durable-flush path and report
    // the log growth (the paper's accumulation loop).
    let drained = server.shutdown().expect("sole owner at shutdown");
    println!(
        "load_gen: log grew {} -> {} sessions through the flush path",
        log_before,
        drained.n_sessions()
    );
    assert_eq!(
        drained.n_sessions(),
        log_before + clients * sessions_per_client,
        "every driven session must flush into the log"
    );
}
