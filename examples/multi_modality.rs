//! The paper's future-work generalization in action: a coupled machine
//! over *three* modalities.
//!
//! "Instead of two types of information, our model can be easily
//! generalized to learn the data with multiple types of information."
//! Here the third modality is the edge-histogram slice of the visual
//! descriptor treated as its own information source, next to the
//! color+texture slice and a dense projection of the feedback log.
//!
//! ```sh
//! cargo run --release --example multi_modality
//! ```

use corelog::cbir::{CorelDataset, CorelSpec, QueryProtocol};
use corelog::core::multi::{train_multi_coupled, DenseKernel, ModalityData, MultiCoupledConfig};
use corelog::core::{collect_feedback_log, LrfConfig};
use lrf_logdb::SimulationConfig;

fn main() {
    println!("building dataset (6 categories × 30 images) ...");
    let ds = CorelDataset::build(CorelSpec {
        n_categories: 6,
        per_category: 30,
        image_size: 64,
        seed: 77,
        ..CorelSpec::twenty_category(77)
    });
    let log = collect_feedback_log(
        &ds.db,
        &SimulationConfig {
            n_sessions: 40,
            judged_per_session: 12,
            rounds_per_query: 3,
            noise: 0.1,
            seed: 4,
        },
        &LrfConfig::default(),
    );

    // One feedback round.
    let protocol = QueryProtocol {
        n_queries: 1,
        n_labeled: 12,
        seed: 8,
    };
    let query = protocol.sample_queries(&ds.db)[0];
    let example = protocol.feedback_example(&ds.db, query);
    println!("query image {} (category {})", query, ds.db.category(query));

    // Three views per image: color+texture (18-D), edges (18-D), and the
    // log column densified over the collected sessions.
    let color_texture = |id: usize| -> Vec<f64> {
        let f = ds.db.feature(id);
        let mut v = f[..9].to_vec(); // color moments
        v.extend_from_slice(&f[27..]); // wavelet entropies
        v
    };
    let edges = |id: usize| -> Vec<f64> { ds.db.feature(id)[9..27].to_vec() };
    let log_view = |id: usize| -> Vec<f64> { log.log_vector(id).to_dense(log.n_sessions()) };

    let labeled_ids: Vec<usize> = example.labeled.iter().map(|&(id, _)| id).collect();
    let y: Vec<f64> = example.labeled.iter().map(|&(_, l)| l).collect();
    // A small unlabeled pool: the first 8 ids outside the labeled set.
    let pool: Vec<usize> = (0..ds.db.len())
        .filter(|id| !labeled_ids.contains(id))
        .take(8)
        .collect();
    let y_init: Vec<f64> = (0..pool.len())
        .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
        .collect();

    let modality = |view: &dyn Fn(usize) -> Vec<f64>, kernel, c| ModalityData {
        labeled: labeled_ids.iter().map(|&id| view(id)).collect(),
        unlabeled: pool.iter().map(|&id| view(id)).collect(),
        kernel,
        c,
    };
    let modalities = vec![
        modality(&color_texture, DenseKernel::Rbf { gamma: 1.0 }, 1.0),
        modality(&edges, DenseKernel::Rbf { gamma: 1.0 }, 1.0),
        modality(&log_view, DenseKernel::Rbf { gamma: 0.1 }, 0.5),
    ];

    let cfg = MultiCoupledConfig {
        rho: 0.05,
        ..Default::default()
    };
    let out = train_multi_coupled(&modalities, &y, &y_init, &cfg).expect("training");
    println!(
        "trained {} coupled machines: {} annealing steps, {} retrains, {} label flips",
        out.machines.len(),
        out.report.rho_steps,
        out.report.retrains,
        out.report.flips
    );

    // Rank the database by the summed decision of all three machines.
    let mut scored: Vec<(usize, f64)> = (0..ds.db.len())
        .map(|id| {
            let views = vec![color_texture(id), edges(id), log_view(id)];
            (id, out.coupled_score(&views))
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));

    let p20 = scored[..20]
        .iter()
        .filter(|&&(id, _)| ds.db.same_category(id, query))
        .count() as f64
        / 20.0;
    println!("3-modality coupled ranking P@20 = {p20:.2}");
    let cats: Vec<String> = scored[..10]
        .iter()
        .map(|&(id, _)| ds.db.category(id).to_string())
        .collect();
    println!("top-10 categories: [{}]", cats.join(" "));
}
