//! Feedback-log collection walkthrough: the relevance matrix of §2, its
//! sparsity structure, and persistence.
//!
//! ```sh
//! cargo run --release --example log_collection
//! ```

use corelog::cbir::{collect_log, CorelDataset, CorelSpec};
use corelog::core::{collect_feedback_log, LrfConfig};
use corelog::logdb::persist;
use lrf_logdb::{LogStore, SimulationConfig};

fn describe(label: &str, log: &LogStore, categories: &[usize]) {
    println!("\n== {label} ==");
    println!("sessions (rows M)        : {}", log.n_sessions());
    println!("images   (columns N)     : {}", log.n_images());
    println!("judgments (nonzeros)     : {}", log.nnz());
    println!("distinct judged images   : {}", log.n_judged_images());

    // How well does the log separate categories? Average signed agreement
    // between log vectors of same- vs cross-category image pairs.
    let mut same = (0.0, 0usize);
    let mut cross = (0.0, 0usize);
    for a in 0..log.n_images() {
        if log.log_vector(a).is_empty() {
            continue;
        }
        for b in (a + 1)..log.n_images() {
            if log.log_vector(b).is_empty() {
                continue;
            }
            let d = log.log_vector(a).dot(log.log_vector(b));
            if categories[a] == categories[b] {
                same = (same.0 + d, same.1 + 1);
            } else {
                cross = (cross.0 + d, cross.1 + 1);
            }
        }
    }
    println!(
        "mean co-judgment affinity: same-category {:+.4}, cross-category {:+.4}",
        same.0 / same.1.max(1) as f64,
        cross.0 / cross.1.max(1) as f64
    );
}

fn main() {
    println!("building dataset (6 categories × 30 images) ...");
    let ds = CorelDataset::build(CorelSpec {
        n_categories: 6,
        per_category: 30,
        image_size: 64,
        seed: 21,
        ..CorelSpec::twenty_category(21)
    });

    let cfg = SimulationConfig {
        n_sessions: 45,
        judged_per_session: 12,
        rounds_per_query: 3,
        noise: 0.1,
        seed: 5,
    };

    // Content-only screens (the ablation control) vs. the paper's protocol
    // (RF-refined screens): the latter produces a better-connected matrix.
    let content_only = collect_log(&ds.db, &cfg);
    describe(
        "content-only collection (control)",
        &content_only,
        ds.db.categories(),
    );

    let refined = collect_feedback_log(&ds.db, &cfg, &LrfConfig::default());
    describe(
        "RF-refined collection (paper §6.3)",
        &refined,
        ds.db.categories(),
    );

    // Persistence: the log database outlives the process.
    let dir = std::path::Path::new("target/log_collection");
    std::fs::create_dir_all(dir).expect("create output dir");
    let path = dir.join("feedback_log.json");
    persist::save(&refined, &path).expect("save log store");
    let reloaded = persist::load(&path).expect("load log store");
    assert_eq!(reloaded, refined);
    println!(
        "\nlog store round-tripped through {} ({} bytes)",
        path.display(),
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0)
    );
}
