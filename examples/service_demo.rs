//! Service demo: the multi-session feedback service end to end.
//!
//! ```sh
//! cargo run --release --example service_demo
//! ```
//!
//! Builds a synthetic corpus with an initial feedback log, starts the
//! service, drives several users concurrently (each a full open → judge →
//! retrain → close loop on its own thread), shows the JSON transport,
//! reads the live metrics endpoint back out (asserting it is well-formed,
//! so CI runs this demo as an observability smoke), and prints how the
//! shared log grew — the paper's loop, live: every finished session
//! becomes log evidence for the next user's coupled SVM.

use corelog::cbir::{build_flat_index, collect_log, CorelDataset, CorelSpec};
use corelog::core::{LrfConfig, SchemeKind};
use corelog::logdb::SimulationConfig;
use corelog::obs::{Clock, MonotonicClock};
use corelog::service::{DurabilityConfig, Request, Response, Service, ServiceConfig};
use corelog::storage::MemIo;

fn main() {
    // 1. Corpus: 6 categories × 30 images + a simulated historical log.
    println!("building corpus (6 categories x 30 images) ...");
    let ds = CorelDataset::build(CorelSpec::tiny(6, 30, 7));
    let log = collect_log(
        &ds.db,
        &SimulationConfig {
            n_sessions: 40,
            judged_per_session: 15,
            rounds_per_query: 2,
            noise: 0.1,
            seed: 11,
        },
    );
    println!(
        "  {} images, {} historical log sessions",
        ds.db.len(),
        log.n_sessions()
    );

    // 2. The service: one shared database + flat index + log.
    let svc = Service::new(
        ds.db,
        log,
        ServiceConfig {
            screen_size: 10,
            pool_size: 60,
            lrf: LrfConfig {
                n_unlabeled: 10,
                ..LrfConfig::default()
            },
            ..ServiceConfig::default()
        },
    );

    // 3. Four users, four threads, one service. Each runs the paper's
    //    loop: judge the initial screen, retrain (LRF-CSVM), judge the
    //    refined screen, retrain again, close (flushing into the log).
    let queries = [4usize, 40, 77, 130];
    println!("driving {} concurrent user sessions ...", queries.len());
    let clock = MonotonicClock::new();
    std::thread::scope(|scope| {
        for &query in &queries {
            let svc = &svc;
            scope.spawn(move || {
                let Response::Opened { session, screen } = svc.handle(Request::Open {
                    query,
                    scheme: SchemeKind::LrfCsvm,
                }) else {
                    panic!("open failed")
                };
                for round in 0..2 {
                    let ids = if round == 0 {
                        screen.clone()
                    } else {
                        match svc.handle(Request::Page {
                            session,
                            offset: 0,
                            count: 20,
                        }) {
                            Response::Page { ids, .. } => ids,
                            other => panic!("page failed: {other:?}"),
                        }
                    };
                    for id in ids {
                        let _ = svc.handle(Request::Mark {
                            session,
                            image: id,
                            relevant: svc.db().same_category(id, query),
                        });
                    }
                    let Response::Reranked { page, round, .. } =
                        svc.handle(Request::Rerank { session })
                    else {
                        panic!("rerank failed")
                    };
                    let hits = page
                        .iter()
                        .filter(|&&id| svc.db().same_category(id, query))
                        .count();
                    println!(
                        "  user(query {query:>3}) round {round}: top-{} precision {:.2}",
                        page.len(),
                        hits as f64 / page.len() as f64
                    );
                }
                svc.handle(Request::Close { session });
            });
        }
    });
    println!(
        "  all sessions closed in {:.1} ms",
        clock.now_ns() as f64 / 1e6
    );

    // 4. The JSON transport — what a network listener would relay.
    println!("JSON transport:");
    let reply = svc.handle_json(r#"{"Open": {"query": 9, "scheme": "RfSvm"}}"#);
    println!("  open  -> {reply}");
    let reply = svc.handle_json("{\"Stats\": null}");
    println!("  stats -> {reply}");
    let reply = svc.handle_json("definitely not json");
    println!("  junk  -> {reply}");

    // 5. The live metrics endpoint: the same JSON transport serves a full
    //    registry snapshot, and the typed API renders a Prometheus page.
    //    Asserted well-formed so this demo doubles as the CI smoke for the
    //    observability layer.
    let body = svc.handle_json(r#""Metrics""#);
    let parsed: Response =
        serde_json::from_str(&body).expect("metrics endpoint returned invalid JSON");
    let Response::Metrics { snapshot } = parsed else {
        panic!("metrics endpoint returned a non-Metrics response: {body}")
    };
    let requests = snapshot
        .counter("requests_total")
        .expect("requests_total registered");
    let retrains = snapshot
        .histogram("stage_retrain_ns")
        .expect("retrain histogram registered");
    assert!(
        requests > 0 && retrains.count > 0,
        "a driven service must have recorded requests and retrains"
    );
    println!("metrics endpoint:");
    println!(
        "  requests_total {requests}; {} retrains (p50 {:.2} ms, p99 {:.2} ms)",
        retrains.count,
        retrains.p50() as f64 / 1e6,
        retrains.p99() as f64 / 1e6,
    );
    let page = svc.metrics_prometheus();
    assert!(
        page.lines()
            .any(|l| l == "# TYPE request_latency_ns histogram"),
        "Prometheus page must type the latency histogram"
    );
    assert!(
        page.contains("request_latency_ns_bucket{le=\"+Inf\"}"),
        "histogram series must be capped by a +Inf bucket"
    );
    println!(
        "  prometheus page: {} lines, {} bytes",
        page.lines().count(),
        page.len()
    );

    // 6. The log grew by one session per closed user session: tomorrow's
    //    queries train on today's feedback.
    let log = svc.into_log();
    println!(
        "final log: {} sessions ({} judged images, {} judgments)",
        log.n_sessions(),
        log.n_judged_images(),
        log.nnz()
    );

    // 7. Crash safety. The same service rebuilt over a checksummed WAL on
    //    an in-memory disk with a power-cut model: a `Close` is only
    //    acknowledged as durable once the flush is fsynced, so judgments
    //    from acknowledged sessions survive the cut and feed recovery.
    println!("crash-recovery:");
    let spec = CorelSpec::tiny(4, 12, 19);
    let sim = SimulationConfig {
        n_sessions: 8,
        judged_per_session: 6,
        rounds_per_query: 2,
        noise: 0.1,
        seed: 5,
    };
    let ds = CorelDataset::build(spec.clone());
    let seed = collect_log(&ds.db, &sim);
    let index = Box::new(build_flat_index(&ds.db));
    let mem = MemIo::handle();
    let dir = std::path::Path::new("/srv/feedback-wal");

    let (svc, recovery) = Service::with_durability(
        ds.db,
        index,
        mem.clone(),
        dir,
        seed,
        ServiceConfig::default(),
        DurabilityConfig::default(),
    )
    .expect("empty in-memory disk must open cleanly");
    assert!(
        recovery.seeded,
        "an empty directory is seeded, not replayed"
    );
    let Response::Stats { log_sessions, .. } = svc.handle(Request::Stats) else {
        panic!("stats failed")
    };
    println!("  fresh WAL seeded with {log_sessions} historical sessions");

    // One user session: judge a few images and close. The ack carries the
    // durability of the flush.
    let Response::Opened { session, screen } = svc.handle(Request::Open {
        query: 3,
        scheme: SchemeKind::RfSvm,
    }) else {
        panic!("open failed")
    };
    for &id in screen.iter().take(5) {
        let _ = svc.handle(Request::Mark {
            session,
            image: id,
            relevant: svc.db().same_category(id, 3),
        });
    }
    let Response::Closed {
        log_session,
        durable,
        ..
    } = svc.handle(Request::Close { session })
    else {
        panic!("close failed")
    };
    assert!(durable, "a healthy disk must acknowledge a durable flush");
    println!(
        "  session closed: log session {:?}, durable = {durable}",
        log_session
    );

    // Power cut: everything not yet fsynced is gone.
    drop(svc);
    mem.crash();

    // Recovery replays the WAL: the acknowledged session is still there.
    let ds = CorelDataset::build(spec.clone());
    let index = Box::new(build_flat_index(&ds.db));
    let (svc, recovery) = Service::with_durability(
        ds.db,
        index,
        mem.clone(),
        dir,
        collect_log(&CorelDataset::build(spec.clone()).db, &sim), // ignored: disk wins
        ServiceConfig::default(),
        DurabilityConfig::default(),
    )
    .expect("recovery after a clean power cut must succeed");
    assert!(
        !recovery.seeded,
        "a non-empty directory replays, never seeds"
    );
    println!(
        "  after power cut: recovered {} sessions ({} replayed from the WAL, \
         {} torn records truncated)",
        recovery.recovered_sessions, recovery.replayed_sessions, recovery.truncated_records
    );
    let Response::Stats { log_sessions, .. } = svc.handle(Request::Stats) else {
        panic!("stats failed")
    };
    assert_eq!(
        log_sessions, 9,
        "8 seeded + 1 acknowledged session must survive the crash"
    );
    println!("  the acknowledged judgment set survived the crash");
}
