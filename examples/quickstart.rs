//! Quickstart: build a miniature CBIR system, collect a feedback log, and
//! run one log-based relevance-feedback query with every scheme.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Also writes a handful of synthetic sample images (PPM) to
//! `target/quickstart/` so you can eyeball the corpus (cf. the paper's
//! Fig. 2, "some images selected from COREL image CDs").

use corelog::cbir::{CorelDataset, CorelSpec, QueryProtocol};
use corelog::core::{
    collect_feedback_log, EuclideanScheme, Lrf2Svms, LrfConfig, LrfCsvm, QueryContext,
    RelevanceFeedback, RfSvm,
};
use lrf_logdb::SimulationConfig;

fn main() {
    // 1. A small synthetic COREL-like dataset: 8 categories × 40 images.
    println!("building dataset (8 categories × 40 images) ...");
    let spec = CorelSpec {
        n_categories: 8,
        per_category: 40,
        image_size: 64,
        seed: 7,
        ..CorelSpec::twenty_category(7)
    };
    let ds = CorelDataset::build(spec);
    println!(
        "  {} images, {} features each",
        ds.db.len(),
        ds.db.feature(0).len()
    );

    // Dump a few rendered samples for inspection.
    let out_dir = std::path::Path::new("target/quickstart");
    std::fs::create_dir_all(out_dir).expect("create output dir");
    for cat in 0..4 {
        for idx in 0..2 {
            let img = ds.generator.generate(cat, idx);
            let path = out_dir.join(format!("cat{cat}_img{idx}.ppm"));
            std::fs::write(&path, img.to_ppm()).expect("write sample image");
        }
    }
    println!("  sample images written to {}", out_dir.display());

    // 2. Collect a feedback log with the paper's protocol: simulated users
    //    run multi-round relevance feedback; every round becomes a session.
    let lrf = LrfConfig::default();
    let log_cfg = SimulationConfig {
        n_sessions: 60,
        judged_per_session: 15,
        rounds_per_query: 3,
        noise: 0.1,
        seed: 11,
    };
    let log = collect_feedback_log(&ds.db, &log_cfg, &lrf);
    println!(
        "collected log: {} sessions, {} judgments over {} distinct images",
        log.n_sessions(),
        log.nnz(),
        log.n_judged_images()
    );

    // 3. One query: take a random image, auto-judge its Euclidean top-15
    //    (the simulated user's feedback round), and rank with each scheme.
    let protocol = QueryProtocol {
        n_queries: 1,
        n_labeled: 15,
        seed: 3,
    };
    let query = protocol.sample_queries(&ds.db)[0];
    let example = protocol.feedback_example(&ds.db, query);
    let ctx = QueryContext {
        db: &ds.db,
        log: &log,
        example: &example,
    };
    println!(
        "\nquery image {} (category {}), {} labeled ({} relevant)",
        query,
        ds.db.category(query),
        example.labeled.len(),
        example.labeled.iter().filter(|&&(_, y)| y > 0.0).count()
    );

    let schemes: Vec<Box<dyn RelevanceFeedback>> = vec![
        Box::new(EuclideanScheme),
        Box::new(RfSvm::new(lrf)),
        Box::new(Lrf2Svms::new(lrf)),
        Box::new(LrfCsvm::new(lrf)),
    ];
    println!("\n{:<10} {:>6}  top-10 result categories", "scheme", "P@20");
    for scheme in &schemes {
        let ranked = scheme.rank(&ctx);
        let p20 = ranked[..20]
            .iter()
            .filter(|&&id| ds.db.same_category(id, query))
            .count() as f64
            / 20.0;
        let cats: Vec<String> = ranked[..10]
            .iter()
            .map(|&id| ds.db.category(id).to_string())
            .collect();
        println!("{:<10} {:>6.2}  [{}]", scheme.name(), p20, cats.join(" "));
    }
}
