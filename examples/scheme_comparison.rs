//! Scheme comparison at a reduced scale — a fast, self-contained version of
//! the paper's Table 1 evaluation (the full version lives in the
//! `reproduce` binary of `lrf-bench`).
//!
//! ```sh
//! cargo run --release --example scheme_comparison
//! ```

use corelog::cbir::{CorelDataset, CorelSpec, PrecisionCurve, QueryProtocol, CUTOFFS};
use corelog::core::{
    collect_feedback_log, EuclideanScheme, Lrf2Svms, LrfConfig, LrfCsvm, QueryContext,
    RelevanceFeedback, RfSvm,
};
use lrf_logdb::SimulationConfig;

fn main() {
    println!("building dataset (10 categories × 50 images) ...");
    let ds = CorelDataset::build(CorelSpec {
        n_categories: 10,
        per_category: 50,
        image_size: 64,
        seed: 42,
        ..CorelSpec::twenty_category(42)
    });
    let lrf = LrfConfig::default();
    let log = collect_feedback_log(
        &ds.db,
        &SimulationConfig {
            n_sessions: 80,
            judged_per_session: 20,
            rounds_per_query: 3,
            noise: 0.1,
            seed: 9,
        },
        &lrf,
    );

    let protocol = QueryProtocol {
        n_queries: 40,
        n_labeled: 20,
        seed: 17,
    };
    let schemes: Vec<Box<dyn RelevanceFeedback>> = vec![
        Box::new(EuclideanScheme),
        Box::new(RfSvm::new(lrf)),
        Box::new(Lrf2Svms::new(lrf)),
        Box::new(LrfCsvm::new(lrf)),
    ];

    let queries = protocol.sample_queries(&ds.db);
    let mut curves: Vec<PrecisionCurve> = schemes.iter().map(|_| PrecisionCurve::new()).collect();
    for &q in &queries {
        let example = protocol.feedback_example(&ds.db, q);
        let ctx = QueryContext {
            db: &ds.db,
            log: &log,
            example: &example,
        };
        for (scheme, curve) in schemes.iter().zip(&mut curves) {
            let ranked = scheme.rank(&ctx);
            curve.add(&ranked, |id| ds.db.same_category(id, q));
        }
    }
    let curves: Vec<PrecisionCurve> = curves.into_iter().map(|c| c.finish()).collect();

    print!("{:>6}", "#TOP");
    for s in &schemes {
        print!("  {:>10}", s.name());
    }
    println!();
    for (i, &k) in CUTOFFS.iter().enumerate() {
        print!("{k:>6}");
        for c in &curves {
            print!("  {:>10.3}", c.values[i]);
        }
        println!();
    }
    print!("{:>6}", "MAP");
    for c in &curves {
        print!("  {:>10.3}", c.map());
    }
    println!();
    println!("\n({} queries; see `cargo run -p lrf-bench --release --bin reproduce -- table1` for the paper-scale run)", queries.len());
}
