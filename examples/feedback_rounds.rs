//! Iterative relevance feedback: how precision improves round by round,
//! with and without the feedback log.
//!
//! The paper's motivation: "it is advantageous for the retrieval task ...
//! to achieve satisfactory results within as few feedback cycles as
//! possible." This example simulates a user running several feedback
//! rounds for one query and prints the per-round precision of RF-SVM
//! (content only) next to LRF-CSVM (log-based), showing the log shaving
//! off rounds.
//!
//! ```sh
//! cargo run --release --example feedback_rounds
//! ```

use corelog::cbir::{CorelDataset, CorelSpec, FeedbackExample};
use corelog::core::{
    collect_feedback_log, LrfConfig, LrfCsvm, QueryContext, RelevanceFeedback, RfSvm,
};
use lrf_logdb::SimulationConfig;

/// Simulates one user feedback round: judge the scheme's top-k unjudged
/// results by ground truth and add them to the labeled set.
fn judge_round(ds: &CorelDataset, ranked: &[usize], example: &mut FeedbackExample, k: usize) {
    let seen: std::collections::HashSet<usize> =
        example.labeled.iter().map(|&(id, _)| id).collect();
    let fresh: Vec<usize> = ranked
        .iter()
        .copied()
        .filter(|id| !seen.contains(id))
        .take(k)
        .collect();
    for id in fresh {
        let y = if ds.db.same_category(id, example.query) {
            1.0
        } else {
            -1.0
        };
        example.labeled.push((id, y));
    }
}

fn precision_at_20(ds: &CorelDataset, ranked: &[usize], query: usize) -> f64 {
    ranked[..20]
        .iter()
        .filter(|&&id| ds.db.same_category(id, query))
        .count() as f64
        / 20.0
}

fn main() {
    println!("building dataset (10 categories × 40 images) ...");
    let ds = CorelDataset::build(CorelSpec {
        n_categories: 10,
        per_category: 40,
        image_size: 64,
        seed: 33,
        ..CorelSpec::twenty_category(33)
    });
    let lrf = LrfConfig::default();
    let log = collect_feedback_log(
        &ds.db,
        &SimulationConfig {
            n_sessions: 90,
            judged_per_session: 15,
            rounds_per_query: 3,
            noise: 0.1,
            seed: 2,
        },
        &lrf,
    );

    let query = 57; // a fixed query for a reproducible walkthrough
    println!(
        "query image {} (category {})\n",
        query,
        ds.db.category(query)
    );
    println!("{:>5}  {:>10}  {:>10}", "round", "RF-SVM", "LRF-CSVM");

    let rf = RfSvm::new(lrf);
    let csvm = LrfCsvm::new(lrf);

    // Each scheme gets its own interaction state (its rounds depend on its
    // own refined rankings).
    let euclid_screen: Vec<usize> = corelog::cbir::top_k_euclidean(&ds.db, query, 15);
    let initial: Vec<(usize, f64)> = euclid_screen
        .into_iter()
        .map(|id| {
            (
                id,
                if ds.db.same_category(id, query) {
                    1.0
                } else {
                    -1.0
                },
            )
        })
        .collect();
    let mut rf_example = FeedbackExample {
        query,
        labeled: initial.clone(),
    };
    let mut csvm_example = FeedbackExample {
        query,
        labeled: initial,
    };

    for round in 1..=4 {
        let rf_ranked = rf.rank(&QueryContext {
            db: &ds.db,
            log: &log,
            example: &rf_example,
        });
        let csvm_ranked = csvm.rank(&QueryContext {
            db: &ds.db,
            log: &log,
            example: &csvm_example,
        });
        println!(
            "{:>5}  {:>10.3}  {:>10.3}",
            round,
            precision_at_20(&ds, &rf_ranked, query),
            precision_at_20(&ds, &csvm_ranked, query)
        );
        judge_round(&ds, &rf_ranked, &mut rf_example, 15);
        judge_round(&ds, &csvm_ranked, &mut csvm_example, 15);
    }

    println!(
        "\nafter 4 rounds: RF-SVM judged {} images, LRF-CSVM judged {}",
        rf_example.labeled.len(),
        csvm_example.labeled.len()
    );
}
