//! Observability endpoint integration: drive the service through the
//! paper's feedback loop, then read the telemetry back out three ways —
//! the typed `Request::Metrics` endpoint, the JSON transport, and the
//! Prometheus text page — and check they agree and are well-formed.

use corelog::cbir::{collect_log, CorelDataset, CorelSpec, ImageDatabase};
use corelog::core::{LrfConfig, SchemeKind};
use corelog::logdb::{LogStore, SimulationConfig};
use corelog::obs::RegistrySnapshot;
use corelog::service::{Request, Response, Service, ServiceConfig};
use std::collections::HashMap;

fn corpus() -> (ImageDatabase, LogStore) {
    let ds = CorelDataset::build(CorelSpec::tiny(4, 12, 19));
    let log = collect_log(
        &ds.db,
        &SimulationConfig {
            n_sessions: 24,
            judged_per_session: 10,
            rounds_per_query: 2,
            noise: 0.1,
            seed: 23,
        },
    );
    (ds.db, log)
}

fn config() -> ServiceConfig {
    ServiceConfig {
        max_sessions: 32,
        ttl_requests: 0,
        screen_size: 8,
        pool_size: 30,
        lrf: LrfConfig {
            n_unlabeled: 8,
            ..LrfConfig::default()
        },
    }
}

/// One complete two-round feedback loop: open → judge the screen →
/// retrain/rerank → judge the refined page → retrain/rerank → close.
fn drive_session(svc: &Service, query: usize) {
    let Response::Opened { session, screen } = svc.handle(Request::Open {
        query,
        scheme: SchemeKind::LrfCsvm,
    }) else {
        panic!("open failed")
    };
    for &id in &screen {
        svc.handle(Request::Mark {
            session,
            image: id,
            relevant: svc.db().same_category(id, query),
        });
    }
    let Response::Reranked { page, .. } = svc.handle(Request::Rerank { session }) else {
        panic!("rerank failed")
    };
    for &id in &page {
        let _ = svc.handle(Request::Mark {
            session,
            image: id,
            relevant: svc.db().same_category(id, query),
        });
    }
    let Response::Reranked { .. } = svc.handle(Request::Rerank { session }) else {
        panic!("rerank failed")
    };
    let Response::Closed { .. } = svc.handle(Request::Close { session }) else {
        panic!("close failed")
    };
}

fn driven_service() -> Service {
    let (db, log) = corpus();
    let svc = Service::new(db, log, config());
    for query in [3usize, 17] {
        drive_session(&svc, query);
    }
    svc
}

/// After a real feedback loop, every pipeline stage histogram has
/// recorded work and every subsystem counter has moved: the endpoint
/// reports the whole request path, not just the outer latency.
#[test]
fn metrics_endpoint_covers_every_stage_of_the_feedback_loop() {
    let svc = driven_service();
    let Response::Metrics { snapshot } = svc.handle(Request::Metrics) else {
        panic!("metrics endpoint failed")
    };

    for stage in [
        "request_latency_ns",
        "stage_session_lookup_ns",
        "stage_scoring_ns",
        "stage_retrain_ns",
        "stage_flush_ns",
    ] {
        let h = snapshot
            .histogram(stage)
            .unwrap_or_else(|| panic!("{stage} not registered"));
        assert!(h.count > 0, "{stage} recorded no samples");
        // Quantiles are monotone, and exceed the tracked exact max by at
        // most the histogram's documented 1/64 bucket-midpoint error.
        let (p50, p90, p99) = (h.p50(), h.p90(), h.p99());
        assert!(p50 <= p90 && p90 <= p99, "{stage} quantiles not monotone");
        assert!(p99 <= h.max + h.max / 64 + 1, "{stage} p99 above max+bound");
        assert_eq!(h.quantile(1.0), h.max, "{stage} q=1.0 must be exact");
    }
    // Two full retrains per session × two sessions drove the solver and
    // the kernel cache; scoring walked the index; closes flushed the log.
    for counter in [
        "requests_total",
        "smo_iterations_total",
        "kernel_cache_misses_total",
        "ann_distance_evals_total",
        "flushed_sessions_total",
        "log_appends_total",
    ] {
        let v = snapshot.counter(counter);
        assert!(v.is_some_and(|v| v > 0), "{counter} did not move: {v:?}");
    }
    assert_eq!(
        snapshot.counter("flushed_sessions_total"),
        Some(2),
        "both closed sessions must have flushed"
    );
    // Both sessions closed: the gauge is back to zero (present but flat).
    assert_eq!(snapshot.gauge("active_sessions"), Some(0));
}

/// The JSON transport serves the same snapshot as the typed endpoint, and
/// the snapshot round-trips exactly (it is integer-only by design).
#[test]
fn metrics_snapshot_round_trips_through_the_json_transport() {
    let svc = driven_service();
    let body = svc.handle_json(r#""Metrics""#);
    let parsed: Response = serde_json::from_str(&body).expect("transport returned invalid JSON");
    let Response::Metrics { snapshot } = parsed else {
        panic!("transport returned a non-Metrics response: {body}")
    };
    assert!(snapshot.histogram("request_latency_ns").is_some());

    let reencoded = serde_json::to_string(&snapshot).expect("snapshot serializes");
    let back: RegistrySnapshot = serde_json::from_str(&reencoded).expect("snapshot deserializes");
    assert_eq!(back, snapshot, "snapshot must round-trip losslessly");
}

/// The Prometheus page is well-formed exposition text: every metric is
/// typed, histogram bucket series are cumulative and capped by `+Inf`,
/// and the `+Inf` bucket agrees with the `_count` sample.
#[test]
fn prometheus_page_is_well_formed_exposition_text() {
    let svc = driven_service();
    let page = svc.metrics_prometheus();
    assert!(page.ends_with('\n'), "page must end with a newline");

    let mut types: HashMap<String, String> = HashMap::new();
    let mut samples: HashMap<String, u64> = HashMap::new();
    let mut bucket_series: HashMap<String, Vec<u64>> = HashMap::new();
    let mut inf_bucket: HashMap<String, u64> = HashMap::new();

    for line in page.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split(' ');
            let (name, kind) = (it.next().unwrap(), it.next().unwrap());
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown type on line: {line}"
            );
            types.insert(name.to_string(), kind.to_string());
            continue;
        }
        let (name_part, value_part) = line.rsplit_once(' ').expect("sample line has a value");
        let value: u64 = value_part.parse().unwrap_or_else(|_| {
            panic!("non-integer sample value on line: {line}");
        });
        let name = name_part.split('{').next().unwrap();
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "metric name outside the Prometheus alphabet: {line}"
        );
        if let Some(base) = name.strip_suffix("_bucket") {
            if name_part.contains("le=\"+Inf\"") {
                inf_bucket.insert(base.to_string(), value);
            } else {
                bucket_series
                    .entry(base.to_string())
                    .or_default()
                    .push(value);
            }
        } else {
            samples.insert(name.to_string(), value);
        }
    }

    // Every histogram the service registers shows up with a consistent
    // bucket series.
    for stage in ["request_latency_ns", "stage_retrain_ns"] {
        assert_eq!(types.get(stage).map(String::as_str), Some("histogram"));
        let series = &bucket_series[stage];
        assert!(
            series.windows(2).all(|w| w[0] <= w[1]),
            "{stage} bucket series must be cumulative"
        );
        let inf = inf_bucket[stage];
        assert!(*series.last().unwrap() <= inf);
        assert_eq!(
            samples[&format!("{stage}_count")],
            inf,
            "{stage}: +Inf bucket must equal _count"
        );
        assert!(samples.contains_key(&format!("{stage}_sum")));
    }
    assert_eq!(
        types.get("requests_total").map(String::as_str),
        Some("counter")
    );
    assert_eq!(
        types.get("active_sessions").map(String::as_str),
        Some("gauge")
    );
}
