//! Std-scheduler stress test for the session lifecycle's exactly-once
//! flush accounting.
//!
//! The model tests (`crates/service/tests/model_lifecycle.rs`) prove the
//! flush protocol over *every* schedule of a small model; this test
//! complements them from the other side: the *real* service, real OS
//! scheduling, and a few hundred mixed requests with tight capacity and
//! TTL limits so close, LRU eviction, TTL expiry, and shutdown drain all
//! fire while marks race them. The books must balance exactly:
//!
//! * every session that had at least one acknowledged judgment appears in
//!   the final log exactly once;
//! * every acknowledged judgment appears in the final log exactly once
//!   (an ack whose judgment misses the log would be a detached-session
//!   mutation; a judgment counted twice would be a double flush).

use corelog::cbir::{collect_log, CorelDataset, CorelSpec};
use corelog::core::{LrfConfig, SchemeKind};
use corelog::logdb::SimulationConfig;
use corelog::service::{Request, Response, Service, ServiceConfig};
use std::sync::Barrier;

/// Per-thread tally of what the service acknowledged.
#[derive(Default)]
struct Acked {
    /// Sessions with at least one acknowledged mark.
    sessions: usize,
    /// Total acknowledged marks.
    marks: usize,
}

/// Drives `n_sessions` sessions: mark a few images, occasionally rerank
/// and page, close half and abandon the rest to eviction/TTL/drain.
fn drive(svc: &Service, thread: usize, n_sessions: usize, scheme: SchemeKind) -> Acked {
    let n_images = svc.db().len();
    let mut acked = Acked::default();
    for round in 0..n_sessions {
        let Response::Opened { session, .. } = svc.handle(Request::Open {
            query: (thread * 7 + round) % n_images,
            scheme,
        }) else {
            panic!("open failed")
        };
        let mut marks_here = 0usize;
        for j in 0..3usize {
            // Distinct images per session, so every ack is one judgment.
            let image = (thread * 31 + round * 5 + j * 11) % n_images;
            let resp = svc.handle(Request::Mark {
                session,
                image,
                relevant: j % 2 == 0,
            });
            match resp {
                Response::Marked { .. } => marks_here += 1,
                // The session can expire under us (TTL or LRU) — that is
                // the point of the stress; duplicates cannot happen
                // (images are distinct) so any error means expiry.
                Response::Error { .. } => {}
                other => panic!("unexpected mark response: {other:?}"),
            }
        }
        if round % 2 == 0 {
            // Exercise the read paths; their acks don't affect the books.
            svc.handle(Request::Rerank { session });
            svc.handle(Request::Page {
                session,
                offset: 0,
                count: 4,
            });
            svc.handle(Request::Close { session });
        }
        // Odd rounds: abandon the session to eviction/TTL/final drain.
        if marks_here > 0 {
            acked.sessions += 1;
            acked.marks += marks_here;
        }
    }
    acked
}

#[test]
fn stress_traffic_balances_the_flush_books_exactly() {
    let ds = CorelDataset::build(CorelSpec::tiny(4, 12, 19));
    let log = collect_log(
        &ds.db,
        &SimulationConfig {
            n_sessions: 10,
            judged_per_session: 6,
            rounds_per_query: 1,
            noise: 0.1,
            seed: 23,
        },
    );
    let initial_sessions = log.n_sessions();
    let initial_judgments: usize = (0..initial_sessions).map(|s| log.session(s).len()).sum();
    let svc = Service::new(
        ds.db,
        log,
        ServiceConfig {
            // Tight limits so capacity eviction and TTL expiry both fire
            // constantly under the racing marks.
            max_sessions: 3,
            ttl_requests: 8,
            screen_size: 4,
            pool_size: 16,
            lrf: LrfConfig {
                n_unlabeled: 8,
                ..LrfConfig::default()
            },
        },
    );

    let n_threads = 4;
    let per_thread_sessions = 8;
    let barrier = Barrier::new(n_threads);
    let acked: Vec<Acked> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|t| {
                let svc = &svc;
                let barrier = &barrier;
                scope.spawn(move || {
                    // One thread retrains real SVMs; the rest hammer the
                    // table with the cheap scheme.
                    let scheme = if t == 0 {
                        SchemeKind::RfSvm
                    } else {
                        SchemeKind::Euclidean
                    };
                    barrier.wait();
                    drive(svc, t, per_thread_sessions, scheme)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let acked_sessions: usize = acked.iter().map(|a| a.sessions).sum();
    let acked_marks: usize = acked.iter().map(|a| a.marks).sum();
    assert!(
        acked_sessions > 0,
        "stress produced no acknowledged session"
    );

    // Shutdown drains whatever is still resident, so after this every
    // judged session has been flushed through exactly one of: close,
    // LRU eviction, TTL expiry, drain.
    let final_log = svc.into_log();
    assert_eq!(
        final_log.n_sessions(),
        initial_sessions + acked_sessions,
        "sessions with acknowledged judgments must flush exactly once"
    );
    let final_judgments: usize = (0..final_log.n_sessions())
        .map(|s| final_log.session(s).len())
        .sum();
    assert_eq!(
        final_judgments,
        initial_judgments + acked_marks,
        "acknowledged judgments must reach the log exactly once"
    );
}
