//! Fidelity checks against the paper's algorithm listing (Fig. 1) and the
//! formal setup of §2/§4, at the integration level.

use corelog::cbir::{CorelDataset, CorelSpec, QueryProtocol};
use corelog::core::{collect_feedback_log, LrfConfig, LrfCsvm, QueryContext};
use lrf_logdb::SimulationConfig;

fn fixture() -> (CorelDataset, lrf_logdb::LogStore) {
    let ds = CorelDataset::build(CorelSpec {
        n_categories: 4,
        per_category: 25,
        image_size: 32,
        seed: 555,
        ..CorelSpec::twenty_category(555)
    });
    let log = collect_feedback_log(
        &ds.db,
        &SimulationConfig {
            n_sessions: 30,
            judged_per_session: 10,
            rounds_per_query: 2,
            noise: 0.1,
            seed: 6,
        },
        &LrfConfig::default(),
    );
    (ds, log)
}

#[test]
fn relevance_matrix_encoding_matches_section_2() {
    // "+1" relevant, "−1" irrelevant, "0" unknown; each column is an
    // image's log vector of dimension M = number of sessions.
    let (ds, log) = fixture();
    assert_eq!(log.n_images(), ds.db.len());
    let m = log.n_sessions();
    for image in 0..log.n_images() {
        for (session, value) in log.log_vector(image).iter() {
            assert!((session as usize) < m, "session id within M");
            assert!(value == 1.0 || value == -1.0, "entries are ±1");
        }
    }
    // Cross-check the column view against the row (session) view.
    for sid in 0..m {
        for (image, judgment) in log.session(sid).iter() {
            assert_eq!(log.entry(image, sid), judgment.sign());
        }
    }
}

#[test]
fn fig1_pool_is_split_half_max_half_min() {
    let (ds, log) = fixture();
    let protocol = QueryProtocol {
        n_queries: 1,
        n_labeled: 10,
        seed: 2,
    };
    let q = protocol.sample_queries(&ds.db)[0];
    let example = protocol.feedback_example(&ds.db, q);
    let scheme = LrfCsvm::new(LrfConfig {
        n_unlabeled: 8,
        ..LrfConfig::default()
    });
    let out = scheme.run(&QueryContext {
        db: &ds.db,
        log: &log,
        example: &example,
    });
    assert_eq!(out.unlabeled_ids.len(), 8, "N' samples selected");
    // Initial labels recorded in the report may have been corrected, but
    // the pool split itself is 4 + 4 by construction; verify via a fresh
    // run's diagnostics (selection is deterministic).
    let out2 = scheme.run(&QueryContext {
        db: &ds.db,
        log: &log,
        example: &example,
    });
    assert_eq!(out.unlabeled_ids, out2.unlabeled_ids);
    assert_eq!(out.report.final_labels.len(), 8);
}

#[test]
fn fig1_annealing_schedule_doubles_from_rho_init() {
    // ρ* = 1e-4 doubling to ρ: the number of annealing steps in the report
    // must match ceil(log2(ρ/ρ_init)) + 1 (the final full-ρ pass).
    let (ds, log) = fixture();
    let protocol = QueryProtocol {
        n_queries: 1,
        n_labeled: 10,
        seed: 3,
    };
    let q = protocol.sample_queries(&ds.db)[0];
    let example = protocol.feedback_example(&ds.db, q);
    let cfg = LrfConfig {
        n_unlabeled: 6,
        ..LrfConfig::default()
    };
    let out = LrfCsvm::new(cfg).run(&QueryContext {
        db: &ds.db,
        log: &log,
        example: &example,
    });
    let expected = ((cfg.coupled.rho / cfg.coupled.rho_init).log2().ceil() as usize) + 1;
    assert_eq!(out.report.rho_steps, expected);
    assert!(out.report.retrains >= out.report.rho_steps);
}

#[test]
fn all_relevant_round_returns_constant_content_model_not_a_crash() {
    // §6: a user may mark everything relevant. The Fig. 1 pipeline must
    // stay total (degenerate single-class SVMs become constant deciders).
    let (ds, log) = fixture();
    let example = corelog::cbir::FeedbackExample {
        query: 0,
        labeled: (0..10).map(|id| (id, 1.0)).collect(),
    };
    let out = LrfCsvm::new(LrfConfig {
        n_unlabeled: 6,
        ..LrfConfig::default()
    })
    .run(&QueryContext {
        db: &ds.db,
        log: &log,
        example: &example,
    });
    assert_eq!(out.ranking.len(), ds.db.len());
}

#[test]
fn evaluation_metric_matches_section_6_definition() {
    // "Average Precision ... the number of relevant samples in the
    // returned images divided by the total number of returned images."
    let ranked: Vec<usize> = (0..100).collect();
    let p = corelog::cbir::precision_at(&ranked, |id| id < 30, 50);
    assert!((p - 30.0 / 50.0).abs() < 1e-12);
}
