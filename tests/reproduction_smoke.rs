//! Reproduction smoke test: a scaled-down §6.4 evaluation must reproduce
//! the paper's qualitative ordering. This is the repository's contract:
//! if a refactor breaks the science, this test goes red.

use corelog::cbir::{CorelDataset, CorelSpec, PrecisionCurve, QueryProtocol};
use corelog::core::{
    collect_feedback_log, EuclideanScheme, Lrf2Svms, LrfConfig, LrfCsvm, QueryContext,
    RelevanceFeedback, RfSvm,
};
use lrf_logdb::SimulationConfig;

/// Runs a reduced experiment (10 categories × 30, 25 queries) and returns
/// the per-scheme curves in [Euclidean, RF-SVM, LRF-2SVMs, LRF-CSVM] order.
fn run_reduced(seed: u64) -> Vec<PrecisionCurve> {
    let ds = CorelDataset::build(CorelSpec {
        n_categories: 10,
        per_category: 30,
        image_size: 64,
        seed,
        ..CorelSpec::twenty_category(seed)
    });
    let lrf = LrfConfig::default();
    let log = collect_feedback_log(
        &ds.db,
        &SimulationConfig {
            n_sessions: 60,
            judged_per_session: 15,
            rounds_per_query: 3,
            noise: 0.1,
            seed: seed ^ 0xa5,
        },
        &lrf,
    );
    let protocol = QueryProtocol {
        n_queries: 25,
        n_labeled: 15,
        seed: seed ^ 0x5a,
    };
    let schemes: Vec<Box<dyn RelevanceFeedback>> = vec![
        Box::new(EuclideanScheme),
        Box::new(RfSvm::new(lrf)),
        Box::new(Lrf2Svms::new(lrf)),
        Box::new(LrfCsvm::new(lrf)),
    ];
    let mut curves: Vec<PrecisionCurve> = schemes.iter().map(|_| PrecisionCurve::new()).collect();
    for &q in &protocol.sample_queries(&ds.db) {
        let example = protocol.feedback_example(&ds.db, q);
        let ctx = QueryContext {
            db: &ds.db,
            log: &log,
            example: &example,
        };
        for (scheme, curve) in schemes.iter().zip(&mut curves) {
            let ranked = scheme.rank(&ctx);
            curve.add(&ranked, |id| ds.db.same_category(id, q));
        }
    }
    curves.into_iter().map(|c| c.finish()).collect()
}

#[test]
fn paper_ordering_holds_at_reduced_scale() {
    let curves = run_reduced(2024);
    let (eu, rf, two, csvm) = (&curves[0], &curves[1], &curves[2], &curves[3]);

    // The semantic gap exists: Euclidean is far from perfect but above chance.
    assert!(
        eu.at(20) > 0.15 && eu.at(20) < 0.8,
        "Euclidean P@20 = {}",
        eu.at(20)
    );

    // Relevance feedback beats plain distance (paper's premise).
    assert!(
        rf.map() > eu.map() * 1.05,
        "RF-SVM MAP {} should beat Euclidean {}",
        rf.map(),
        eu.map()
    );

    // Log-based feedback beats content-only feedback at the headline cutoff
    // (paper's first empirical question, §6).
    assert!(
        two.at(20) > rf.at(20),
        "LRF-2SVMs P@20 {} should beat RF-SVM {}",
        two.at(20),
        rf.at(20)
    );

    // The coupled scheme stays competitive with the simple combination
    // (our reproduction finds parity, not the paper's further gain — see
    // EXPERIMENTS.md for the analysis; the contract here is "no collapse").
    assert!(
        csvm.at(20) > rf.at(20) * 0.97,
        "LRF-CSVM P@20 {} collapsed below RF-SVM {}",
        csvm.at(20),
        rf.at(20)
    );
    assert!(
        csvm.map() > two.map() * 0.93,
        "LRF-CSVM MAP {} collapsed below LRF-2SVMs {}",
        csvm.map(),
        two.map()
    );
}

#[test]
fn precision_decays_with_cutoff_for_all_schemes() {
    // Average precision must be non-increasing in k in aggregate (each
    // category has only 30 relevant images in this corpus).
    let curves = run_reduced(7);
    for curve in &curves {
        assert!(
            curve.at(20) > curve.at(100),
            "precision should decay: P@20 {} vs P@100 {}",
            curve.at(20),
            curve.at(100)
        );
    }
}
