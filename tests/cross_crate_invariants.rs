//! Property-based invariants that span crate boundaries: the coupled
//! trainer over realistic (database + log) inputs, scheme determinism, and
//! solver feasibility on real feature vectors.

use corelog::cbir::{CorelDataset, CorelSpec, QueryProtocol};
use corelog::core::{
    collect_feedback_log, train_coupled, CoupledConfig, LogRbfKernel, LrfConfig, LrfCsvm,
    QueryContext, RelevanceFeedback,
};
use lrf_logdb::SimulationConfig;
use lrf_svm::RbfKernel;
use proptest::prelude::*;

/// One shared fixture (building datasets inside proptest cases would be
/// prohibitively slow); the properties randomize over queries and
/// algorithm parameters instead.
fn fixture() -> (CorelDataset, lrf_logdb::LogStore) {
    let ds = CorelDataset::build(CorelSpec {
        n_categories: 4,
        per_category: 20,
        image_size: 32,
        seed: 99,
        ..CorelSpec::twenty_category(99)
    });
    let log = collect_feedback_log(
        &ds.db,
        &SimulationConfig {
            n_sessions: 24,
            judged_per_session: 8,
            rounds_per_query: 2,
            noise: 0.1,
            seed: 3,
        },
        &LrfConfig::default(),
    );
    (ds, log)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The coupled trainer, fed real features and real log vectors with a
    /// randomized feedback round, always (a) terminates, (b) keeps dual
    /// feasibility on both modalities, and (c) returns pseudo-labels in
    /// {±1}.
    #[test]
    fn coupled_training_feasible_on_real_data(
        query in 0usize..80,
        n_pool in 2usize..10,
        rho in 0.01f64..0.5,
        delta in 0.1f64..3.0,
    ) {
        let (ds, log) = fixture();
        let protocol = QueryProtocol { n_queries: 1, n_labeled: 8, seed: 0 };
        let example = protocol.feedback_example(&ds.db, query);

        // Borrowed row views straight out of the database/log — the
        // zero-copy shape every production scheme now feeds the trainer.
        let labeled_x: Vec<&[f64]> =
            example.labeled.iter().map(|&(id, _)| ds.db.feature(id)).collect();
        let labeled_r: Vec<_> =
            example.labeled.iter().map(|&(id, _)| log.log_vector(id)).collect();
        let y: Vec<f64> = example.labeled.iter().map(|&(_, l)| l).collect();
        // Pool: the first n_pool images not in the labeled set.
        let in_labeled: std::collections::HashSet<usize> =
            example.labeled.iter().map(|&(id, _)| id).collect();
        let pool: Vec<usize> =
            (0..ds.db.len()).filter(|id| !in_labeled.contains(id)).take(n_pool).collect();
        let unl_x: Vec<&[f64]> = pool.iter().map(|&id| ds.db.feature(id)).collect();
        let unl_r: Vec<_> = pool.iter().map(|&id| log.log_vector(id)).collect();
        let y_init: Vec<f64> =
            (0..pool.len()).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();

        let cfg = CoupledConfig { rho, rho_init: (rho / 16.0).max(1e-4), delta, ..Default::default() };
        let out = train_coupled(
            &labeled_x, &labeled_r, &y, &unl_x, &unl_r, &y_init,
            RbfKernel::new(1.0), LogRbfKernel::new(0.1), &cfg,
        ).expect("coupled training failed");

        // Dual feasibility, content side: Σ α_i y_i = 0 within tolerance.
        let all_labels: Vec<f64> =
            y.iter().chain(&out.report.final_labels).copied().collect();
        let balance: f64 = out.content.alpha.iter().zip(&all_labels).map(|(a, l)| a * l).sum();
        prop_assert!(balance.abs() < 1e-6, "content dual balance {balance}");
        let balance_log: f64 = out.log.alpha.iter().zip(&all_labels).map(|(a, l)| a * l).sum();
        prop_assert!(balance_log.abs() < 1e-6, "log dual balance {balance_log}");

        // Pseudo-labels stay in {±1}.
        prop_assert!(out.report.final_labels.iter().all(|&l| l == 1.0 || l == -1.0));
        // Report is internally consistent.
        prop_assert!(out.report.retrains >= out.report.rho_steps);
    }

    /// LRF-CSVM produces a permutation for arbitrary queries and pool
    /// sizes, and repeated runs agree exactly.
    #[test]
    fn lrf_csvm_permutation_and_determinism(
        query in 0usize..80,
        n_unlabeled in 2usize..12,
    ) {
        let (ds, log) = fixture();
        let protocol = QueryProtocol { n_queries: 1, n_labeled: 8, seed: 0 };
        let example = protocol.feedback_example(&ds.db, query);
        let ctx = QueryContext { db: &ds.db, log: &log, example: &example };
        let scheme = LrfCsvm::new(LrfConfig { n_unlabeled, ..LrfConfig::default() });
        let a = scheme.rank(&ctx);
        let b = scheme.rank(&ctx);
        prop_assert_eq!(&a, &b);
        let mut sorted = a;
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..ds.db.len()).collect::<Vec<_>>());
    }
}

#[test]
fn coupled_training_survives_hostile_log_noise() {
    // Failure injection: a log collected at 50% noise is close to garbage;
    // training must stay total and ranking valid.
    let ds = CorelDataset::build(CorelSpec {
        n_categories: 3,
        per_category: 15,
        image_size: 32,
        seed: 1,
        ..CorelSpec::twenty_category(1)
    });
    let log = collect_feedback_log(
        &ds.db,
        &SimulationConfig {
            n_sessions: 20,
            judged_per_session: 8,
            rounds_per_query: 2,
            noise: 0.5,
            seed: 8,
        },
        &LrfConfig::default(),
    );
    let protocol = QueryProtocol {
        n_queries: 3,
        n_labeled: 8,
        seed: 4,
    };
    let scheme = LrfCsvm::new(LrfConfig {
        n_unlabeled: 6,
        ..LrfConfig::default()
    });
    for &q in &protocol.sample_queries(&ds.db) {
        let example = protocol.feedback_example(&ds.db, q);
        let ranked = corelog::core::RelevanceFeedback::rank(
            &scheme,
            &QueryContext {
                db: &ds.db,
                log: &log,
                example: &example,
            },
        );
        assert_eq!(ranked.len(), ds.db.len());
    }
}
