//! Service lifecycle integration: concurrent multi-session serving against
//! the serial single-session reference, eviction/TTL behavior through the
//! public API, and the log-closure loop (sessions → log → future queries).

use corelog::cbir::{collect_log, CorelDataset, CorelSpec, ImageDatabase};
use corelog::core::{LrfConfig, SchemeKind};
use corelog::logdb::{LogStore, SimulationConfig};
use corelog::service::{Request, Response, Service, ServiceConfig, ServiceError};
use std::sync::Barrier;

fn corpus() -> (ImageDatabase, LogStore) {
    let ds = CorelDataset::build(CorelSpec::tiny(4, 12, 19));
    let log = collect_log(
        &ds.db,
        &SimulationConfig {
            n_sessions: 24,
            judged_per_session: 10,
            rounds_per_query: 2,
            noise: 0.1,
            seed: 23,
        },
    );
    (ds.db, log)
}

fn config() -> ServiceConfig {
    ServiceConfig {
        max_sessions: 32,
        ttl_requests: 0,
        screen_size: 8,
        pool_size: 30,
        lrf: LrfConfig {
            n_unlabeled: 8,
            ..LrfConfig::default()
        },
    }
}

/// Drives one complete two-round feedback loop and returns the full
/// ranking after each rerank. `sync` is waited on between the last page
/// read and the close, so concurrent drivers all retrain against the
/// *initial* log before any of them flushes into it.
fn drive_session(
    svc: &Service,
    query: usize,
    scheme: SchemeKind,
    sync: Option<&Barrier>,
) -> Vec<Vec<usize>> {
    let n = svc.db().len();
    let Response::Opened { session, screen } = svc.handle(Request::Open { query, scheme }) else {
        panic!("open failed")
    };
    let mut rankings = Vec::new();
    for round in 0..2usize {
        let to_judge: Vec<usize> = if round == 0 {
            screen.clone()
        } else {
            // Judge the still-unjudged head of the refined ranking.
            let Response::Page { ids, .. } = svc.handle(Request::Page {
                session,
                offset: 0,
                count: 2 * screen.len(),
            }) else {
                panic!("page failed")
            };
            ids
        };
        for &id in &to_judge {
            // Round 2 re-pages over judged images; duplicates are expected
            // and rejected with a typed error, which we ignore.
            let _ = svc.handle(Request::Mark {
                session,
                image: id,
                relevant: svc.db().same_category(id, query),
            });
        }
        let Response::Reranked { .. } = svc.handle(Request::Rerank { session }) else {
            panic!("rerank failed")
        };
        let Response::Page { ids, .. } = svc.handle(Request::Page {
            session,
            offset: 0,
            count: n,
        }) else {
            panic!("page failed")
        };
        assert_eq!(ids.len(), n, "ranking must cover the database");
        rankings.push(ids);
    }
    if let Some(barrier) = sync {
        barrier.wait();
    }
    let Response::Closed { .. } = svc.handle(Request::Close { session }) else {
        panic!("close failed")
    };
    rankings
}

/// The acceptance bar for the serving plane: N concurrent sessions on
/// distinct threads, against one shared service, produce rankings
/// bit-identical to running each session alone on its own service. The
/// barrier holds every close (log flush) until all reranks are done, so
/// each concurrent session trains on the same initial log that each serial
/// session sees.
#[test]
fn concurrent_sessions_match_serial_single_session_rankings() {
    let (db, log) = corpus();
    let queries = [3usize, 17, 29, 41];
    let scheme = SchemeKind::LrfCsvm;

    // Serial reference: one fresh service per query, session runs alone.
    let serial: Vec<Vec<Vec<usize>>> = queries
        .iter()
        .map(|&q| {
            let svc = Service::new(db.clone(), log.clone(), config());
            drive_session(&svc, q, scheme, None)
        })
        .collect();

    // Concurrent: all four sessions share one service, one thread each.
    let svc = Service::new(db.clone(), log.clone(), config());
    let barrier = Barrier::new(queries.len());
    let concurrent: Vec<Vec<Vec<usize>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .iter()
            .map(|&q| {
                let svc = &svc;
                let barrier = &barrier;
                scope.spawn(move || drive_session(svc, q, scheme, Some(barrier)))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("session thread panicked"))
            .collect()
    });

    assert!(queries.len() >= 2, "the acceptance bar needs >= 2 sessions");
    for ((q, serial_rounds), concurrent_rounds) in queries.iter().zip(&serial).zip(&concurrent) {
        assert_eq!(
            serial_rounds, concurrent_rounds,
            "query {q}: concurrent rankings diverged from the serial path"
        );
        // And they are genuine full-database permutations.
        for ranking in serial_rounds {
            let mut sorted = ranking.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..db.len()).collect::<Vec<_>>());
        }
    }

    // All four sessions closed after the barrier: their judgments flushed.
    assert_eq!(svc.log_sessions(), log.n_sessions() + queries.len());
}

/// Session residency policies observed through the public API: LRU
/// capacity eviction and idle TTL both expire sessions with a typed error
/// on next touch — never a panic — and salvage judgments into the log.
#[test]
fn eviction_and_ttl_yield_typed_errors_and_flush_the_log() {
    let (db, log) = corpus();
    let logged = log.n_sessions();

    // Capacity 1: opening B evicts A (which had a judgment to flush).
    let svc = Service::new(
        db.clone(),
        log.clone(),
        ServiceConfig {
            max_sessions: 1,
            ..config()
        },
    );
    let Response::Opened { session: a, .. } = svc.handle(Request::Open {
        query: 0,
        scheme: SchemeKind::RfSvm,
    }) else {
        panic!("open failed")
    };
    svc.handle(Request::Mark {
        session: a,
        image: 0,
        relevant: true,
    });
    let Response::Opened { session: b, .. } = svc.handle(Request::Open {
        query: 1,
        scheme: SchemeKind::RfSvm,
    }) else {
        panic!("open failed")
    };
    assert_eq!(
        svc.handle(Request::Rerank { session: a }),
        Response::Error {
            error: ServiceError::SessionExpired { session: a }
        }
    );
    assert_eq!(svc.log_sessions(), logged + 1, "evicted judgments flushed");
    // A session id that was never issued is distinguished from an evicted
    // one.
    assert_eq!(
        svc.handle(Request::Close { session: 10_000 }),
        Response::Error {
            error: ServiceError::UnknownSession { session: 10_000 }
        }
    );
    let _ = b;

    // Idle TTL: an untouched session expires after `ttl_requests` touches
    // of the service's logical clock.
    let svc = Service::new(
        db,
        log,
        ServiceConfig {
            ttl_requests: 2,
            ..config()
        },
    );
    let Response::Opened { session: idle, .. } = svc.handle(Request::Open {
        query: 2,
        scheme: SchemeKind::Euclidean,
    }) else {
        panic!("open failed")
    };
    for _ in 0..4 {
        svc.handle(Request::Stats);
    }
    assert_eq!(
        svc.handle(Request::Page {
            session: idle,
            offset: 0,
            count: 1
        }),
        Response::Error {
            error: ServiceError::SessionExpired { session: idle }
        }
    );
}

/// The paper's loop, end to end through the service: sessions flushed into
/// the log become new log-vector dimensions that later coupled-SVM
/// sessions actually train on.
#[test]
fn flushed_sessions_feed_future_coupled_queries() {
    let (db, log) = corpus();
    let initial_log_sessions = log.n_sessions();
    let svc = Service::new(db.clone(), log, config());

    for q in [5usize, 13, 22] {
        let rounds = drive_session(&svc, q, SchemeKind::LrfCsvm, None);
        assert_eq!(rounds.len(), 2);
    }
    assert_eq!(svc.log_sessions(), initial_log_sessions + 3);

    // Shutdown persists the grown log; a fresh service over it serves a
    // session that sees the larger relevance matrix.
    let grown = svc.into_log();
    assert_eq!(grown.n_sessions(), initial_log_sessions + 3);
    let svc2 = Service::new(db, grown, config());
    let rounds = drive_session(&svc2, 7, SchemeKind::LrfCsvm, None);
    assert_eq!(rounds.len(), 2);
    assert_eq!(svc2.log_sessions(), initial_log_sessions + 4);
}
