//! End-to-end pipeline integration: synthetic corpus → features → database
//! → feedback log → every retrieval scheme, crossing all seven crates.

use corelog::cbir::{CorelDataset, CorelSpec, QueryProtocol};
use corelog::core::{
    collect_feedback_log, EuclideanScheme, Lrf2Svms, LrfConfig, LrfCsvm, QueryContext,
    RelevanceFeedback, RfSvm,
};
use lrf_logdb::SimulationConfig;

fn build() -> (CorelDataset, lrf_logdb::LogStore, LrfConfig) {
    let ds = CorelDataset::build(CorelSpec {
        n_categories: 5,
        per_category: 24,
        image_size: 32,
        seed: 404,
        ..CorelSpec::twenty_category(404)
    });
    let lrf = LrfConfig {
        n_unlabeled: 8,
        ..LrfConfig::default()
    };
    let log = collect_feedback_log(
        &ds.db,
        &SimulationConfig {
            n_sessions: 30,
            judged_per_session: 10,
            rounds_per_query: 2,
            noise: 0.1,
            seed: 7,
        },
        &lrf,
    );
    (ds, log, lrf)
}

#[test]
fn every_scheme_returns_a_full_permutation_for_every_query() {
    let (ds, log, lrf) = build();
    let schemes: Vec<Box<dyn RelevanceFeedback>> = vec![
        Box::new(EuclideanScheme),
        Box::new(RfSvm::new(lrf)),
        Box::new(Lrf2Svms::new(lrf)),
        Box::new(LrfCsvm::new(lrf)),
    ];
    let protocol = QueryProtocol {
        n_queries: 5,
        n_labeled: 10,
        seed: 1,
    };
    let expected: Vec<usize> = (0..ds.db.len()).collect();
    for &q in &protocol.sample_queries(&ds.db) {
        let example = protocol.feedback_example(&ds.db, q);
        let ctx = QueryContext {
            db: &ds.db,
            log: &log,
            example: &example,
        };
        for scheme in &schemes {
            let mut ranked = scheme.rank(&ctx);
            ranked.sort_unstable();
            assert_eq!(ranked, expected, "{} broke the permutation", scheme.name());
        }
    }
}

#[test]
fn learning_schemes_beat_chance_decisively() {
    let (ds, log, lrf) = build();
    let protocol = QueryProtocol {
        n_queries: 10,
        n_labeled: 10,
        seed: 5,
    };
    let chance = 1.0 / ds.db.n_categories() as f64;
    for scheme in [
        Box::new(RfSvm::new(lrf)) as Box<dyn RelevanceFeedback>,
        Box::new(Lrf2Svms::new(lrf)),
        Box::new(LrfCsvm::new(lrf)),
    ] {
        let mut total = 0.0;
        let queries = protocol.sample_queries(&ds.db);
        for &q in &queries {
            let example = protocol.feedback_example(&ds.db, q);
            let ctx = QueryContext {
                db: &ds.db,
                log: &log,
                example: &example,
            };
            let ranked = scheme.rank(&ctx);
            total += ranked[..10]
                .iter()
                .filter(|&&id| ds.db.same_category(id, q))
                .count() as f64
                / 10.0;
        }
        let mean = total / queries.len() as f64;
        assert!(
            mean > chance * 1.8,
            "{} precision {mean:.3} vs chance {chance:.3}",
            scheme.name()
        );
    }
}

#[test]
fn full_stack_is_deterministic_across_rebuilds() {
    let (ds1, log1, lrf) = build();
    let (ds2, log2, _) = build();
    assert_eq!(ds1.db, ds2.db, "dataset build must be deterministic");
    assert_eq!(log1, log2, "log collection must be deterministic");

    let protocol = QueryProtocol {
        n_queries: 1,
        n_labeled: 10,
        seed: 9,
    };
    let q = protocol.sample_queries(&ds1.db)[0];
    let example = protocol.feedback_example(&ds1.db, q);
    let scheme = LrfCsvm::new(lrf);
    let a = scheme.rank(&QueryContext {
        db: &ds1.db,
        log: &log1,
        example: &example,
    });
    let b = scheme.rank(&QueryContext {
        db: &ds2.db,
        log: &log2,
        example: &example,
    });
    assert_eq!(a, b, "LRF-CSVM ranking must be deterministic");
}

#[test]
fn log_store_persistence_round_trips_through_disk() {
    let (_ds, log, _lrf) = build();
    let dir = std::env::temp_dir().join("corelog_e2e_persist");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("log.json");
    corelog::logdb::persist::save(&log, &path).unwrap();
    let back = corelog::logdb::persist::load(&path).unwrap();
    assert_eq!(log, back);
    std::fs::remove_file(&path).ok();
}

#[test]
fn facade_reexports_are_usable() {
    // The root crate exposes every subsystem; a downstream user can reach
    // the imaging substrate through it.
    let img = corelog::imaging::SyntheticGenerator::new(2, 16, 16, 1).generate(0, 0);
    let gray = img.to_gray();
    let edges = corelog::imaging::canny(&gray, corelog::imaging::CannyParams::default());
    assert_eq!(edges.width(), 16);
    let kernel = corelog::svm::RbfKernel::new(0.5);
    let k = corelog::svm::Kernel::compute(&kernel, &[0.0], &[0.0]);
    assert!((k - 1.0).abs() < 1e-12);
}
