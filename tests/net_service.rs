//! Networked serving tier E2E: a real TCP client drives multi-session
//! feedback loops against the **sharded** [`NetServer`] and every ranking
//! is asserted bit-identical to an in-process single-shard [`Service`]
//! over the same corpus — the serving topology (shard count, transport,
//! framing) must be invisible in the results.
//!
//! Also covered here: legacy bare-enum framing over TCP, envelope version
//! rejection with HTTP status mapping, `Ping`/`Pong`, the `/metrics`
//! Prometheus page including the per-shard stage histograms, and graceful
//! shutdown draining an unclosed session through the durable-flush path.

use corelog::cbir::{collect_log, CorelDataset, CorelSpec, ImageDatabase};
use corelog::core::{LrfConfig, SchemeKind};
use corelog::logdb::{LogStore, SimulationConfig};
use corelog::service::{
    NetConfig, NetServer, Request, Response, Service, ServiceConfig, PROTO_VERSION,
};
use serde_json::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

const N_SHARDS: usize = 3;

fn corpus() -> (ImageDatabase, LogStore) {
    let ds = CorelDataset::build(CorelSpec::tiny(4, 12, 19));
    let log = collect_log(
        &ds.db,
        &SimulationConfig {
            n_sessions: 24,
            judged_per_session: 10,
            rounds_per_query: 2,
            noise: 0.1,
            seed: 23,
        },
    );
    (ds.db, log)
}

fn config() -> ServiceConfig {
    ServiceConfig {
        max_sessions: 32,
        ttl_requests: 0,
        screen_size: 8,
        pool_size: 30,
        lrf: LrfConfig {
            n_unlabeled: 8,
            ..LrfConfig::default()
        },
    }
}

fn sharded_server() -> NetServer {
    let (db, log) = corpus();
    let service = Service::sharded(db, log, N_SHARDS, config());
    NetServer::serve(
        service,
        NetConfig {
            workers: 2,
            ..NetConfig::default()
        },
    )
    .expect("bind ephemeral port")
}

/// A keep-alive HTTP/1.1 client over one real TCP connection.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
}

impl Client {
    fn connect(addr: SocketAddr) -> Self {
        let writer = TcpStream::connect(addr).expect("connect to server");
        writer.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(writer.try_clone().expect("clone stream"));
        Self {
            writer,
            reader,
            next_id: 0,
        }
    }

    /// One HTTP request/response exchange; returns `(status, body)`.
    fn http(&mut self, method: &str, path: &str, body: &str) -> (u16, String) {
        let message = format!(
            "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.writer
            .write_all(message.as_bytes())
            .expect("write request");
        self.writer.flush().expect("flush request");

        let mut status_line = String::new();
        self.reader
            .read_line(&mut status_line)
            .expect("read status line");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .expect("status code present")
            .parse()
            .expect("numeric status");
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            self.reader.read_line(&mut header).expect("read header");
            let header = header.trim();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().expect("numeric content-length");
                }
            }
        }
        let mut raw = vec![0u8; content_length];
        self.reader.read_exact(&mut raw).expect("read body");
        (status, String::from_utf8(raw).expect("utf-8 body"))
    }

    /// Sends `request` in a versioned envelope and returns
    /// `(status, frame code, decoded body)` after checking the echoed
    /// correlation id.
    fn api(&mut self, request: &Request) -> (u16, String, Response) {
        let id = self.next_id;
        self.next_id += 1;
        let body = serde_json::to_string(request).expect("serialize request");
        let frame = format!("{{\"v\":{PROTO_VERSION},\"id\":{id},\"body\":{body}}}");
        let (status, reply) = self.http("POST", "/api", &frame);
        let value: Value = serde_json::from_str(&reply).expect("JSON reply");
        assert_eq!(
            value.get("id").and_then(Value::as_u64),
            Some(id),
            "correlation id must echo back"
        );
        let code = match value.get("code") {
            Some(Value::Str(code)) => code.clone(),
            other => panic!("frame without a code field: {other:?}"),
        };
        let body =
            serde_json::to_string(value.get("body").expect("frame body")).expect("re-encode");
        let response: Response = serde_json::from_str(&body).expect("decode response body");
        (status, code, response)
    }

    /// Envelope request that must succeed with `code == "ok"`.
    fn ok(&mut self, request: &Request) -> Response {
        let (status, code, response) = self.api(request);
        assert_eq!((status, code.as_str()), (200, "ok"), "request {request:?}");
        response
    }
}

/// One feedback step against either transport: the test driver below runs
/// the reference service in-process and the sharded service over TCP and
/// compares rankings after every rerank.
fn open(handle: &mut dyn FnMut(Request) -> Response, query: usize) -> (u64, Vec<usize>) {
    match handle(Request::Open {
        query,
        scheme: SchemeKind::LrfCsvm,
    }) {
        Response::Opened { session, screen } => (session, screen),
        other => panic!("open failed: {other:?}"),
    }
}

fn feedback_round(
    handle: &mut dyn FnMut(Request) -> Response,
    db: &ImageDatabase,
    session: u64,
    query: usize,
    to_judge: &[usize],
) -> Vec<usize> {
    for &id in to_judge {
        // Later rounds re-page over judged images; the duplicate-judgment
        // rejection is typed and deliberately ignored here.
        let _ = handle(Request::Mark {
            session,
            image: id,
            relevant: db.same_category(id, query),
        });
    }
    match handle(Request::Rerank { session }) {
        Response::Reranked { .. } => {}
        other => panic!("rerank failed: {other:?}"),
    }
    match handle(Request::Page {
        session,
        offset: 0,
        count: usize::MAX,
    }) {
        Response::Page { ids, .. } => ids,
        other => panic!("page failed: {other:?}"),
    }
}

/// The tentpole assertion: interleaved multi-session feedback loops driven
/// over real TCP against the 3-shard server produce rankings bit-identical
/// to the in-process single-shard reference, round after round, and both
/// deployments flush the same number of sessions into the log.
#[test]
fn sharded_tcp_rankings_bit_identical_to_in_process_flat_reference() {
    let (db, log) = corpus();
    let reference = Service::new(db, log, config());
    let server = sharded_server();
    let mut client = Client::connect(server.addr());

    let queries = [3usize, 17, 30];
    let mut via_ref = |req: Request| reference.handle(req);
    let mut opened_ref = Vec::new();
    let mut opened_net = Vec::new();
    // Interleaved opens: all sessions coexist on both deployments.
    for &q in &queries {
        opened_ref.push(open(&mut via_ref, q));
        let mut via_net = |req: Request| client.ok(&req);
        opened_net.push(open(&mut via_net, q));
    }
    for (a, b) in opened_ref.iter().zip(&opened_net) {
        assert_eq!(a.1, b.1, "initial screens must match");
    }

    // Two feedback rounds per session, interleaved across sessions.
    let mut judge_ref: Vec<Vec<usize>> = opened_ref.iter().map(|o| o.1.clone()).collect();
    let mut judge_net = judge_ref.clone();
    for round in 0..2usize {
        for (i, &q) in queries.iter().enumerate() {
            let ranking_ref = feedback_round(
                &mut via_ref,
                reference.db(),
                opened_ref[i].0,
                q,
                &judge_ref[i],
            );
            // `api`, not `ok`: duplicate re-judgments answer a typed 409
            // that the round helper deliberately ignores on both sides.
            let mut via_net = |req: Request| client.api(&req).2;
            let ranking_net = feedback_round(
                &mut via_net,
                reference.db(),
                opened_net[i].0,
                q,
                &judge_net[i],
            );
            assert_eq!(
                ranking_ref, ranking_net,
                "round {round}, query {q}: sharded TCP ranking diverged"
            );
            // Next round judges the refined head the paper's loop would.
            judge_ref[i] = ranking_ref[..8].to_vec();
            judge_net[i] = ranking_net[..8].to_vec();
        }
    }

    // Close two of three sessions on each side; the third stays open to
    // exercise the shutdown drain path.
    for i in 0..2 {
        match via_ref(Request::Close {
            session: opened_ref[i].0,
        }) {
            Response::Closed { .. } => {}
            other => panic!("reference close failed: {other:?}"),
        }
        let session = opened_net[i].0;
        match client.ok(&Request::Close { session }) {
            Response::Closed { .. } => {}
            other => panic!("net close failed: {other:?}"),
        }
    }

    // Graceful shutdown drains the still-open session through the
    // durable-flush path: both logs grew by all three sessions.
    let log_ref = reference.into_log();
    let log_net = server.shutdown().expect("sole owner after shutdown");
    assert_eq!(log_ref.n_sessions(), 24 + 3);
    assert_eq!(log_net.n_sessions(), 24 + 3);
}

/// Legacy bare-enum JSON keeps working over TCP, envelope version
/// mismatches map to a typed 400, and unknown routes are 404s.
#[test]
fn wire_framing_and_status_mapping_over_tcp() {
    let server = sharded_server();
    let mut client = Client::connect(server.addr());

    // Legacy framing: bare request enum in, bare response enum out.
    let (status, body) = client.http("POST", "/api", "\"Ping\"");
    assert_eq!(status, 200);
    let response: Response = serde_json::from_str(&body).expect("bare response enum");
    assert_eq!(
        response,
        Response::Pong {
            proto_version: PROTO_VERSION
        }
    );

    // Envelope framing: Ping reports the protocol version.
    let response = client.ok(&Request::Ping);
    assert_eq!(
        response,
        Response::Pong {
            proto_version: PROTO_VERSION
        }
    );

    // A future protocol version is rejected, typed, with this client's id.
    let (status, body) = client.http("POST", "/api", "{\"v\":9,\"id\":5,\"body\":\"Ping\"}");
    assert_eq!(status, 400);
    let value: Value = serde_json::from_str(&body).expect("error frame");
    assert_eq!(
        value.get("code"),
        Some(&Value::Str("unsupported_version".into()))
    );
    assert_eq!(value.get("id").and_then(Value::as_u64), Some(5));

    // Unknown session maps to its stable status through the transport.
    let (status, code, _) = client.api(&Request::Rerank { session: 999 });
    assert_eq!((status, code.as_str()), (404, "unknown_session"));

    // Unknown routes 404 without breaking the connection.
    let (status, _) = client.http("GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, _) = client.http("POST", "/api", "\"Stats\"");
    assert_eq!(status, 200, "connection survives the 404");
}

/// `GET /metrics` serves the Prometheus page, including the per-shard
/// serving-plane instruments and the transport counters.
#[test]
fn metrics_route_exposes_shard_and_transport_instruments() {
    let server = sharded_server();
    let mut client = Client::connect(server.addr());

    // Drive one search-bearing request so shard histograms have samples.
    let (session, _) = {
        let mut via_net = |req: Request| client.ok(&req);
        open(&mut via_net, 7)
    };
    client.ok(&Request::Close { session });

    let (status, page) = client.http("GET", "/metrics", "");
    assert_eq!(status, 200);
    for needle in [
        "# TYPE shard0_search_ns histogram",
        "# TYPE shard2_search_ns histogram",
        "# TYPE shard_jobs_total counter",
        "# TYPE shard_queue_depth gauge",
        "# TYPE net_requests_total counter",
        "# TYPE net_connections_total counter",
        "request_latency_ns_count",
    ] {
        assert!(page.contains(needle), "missing {needle:?} in:\n{page}");
    }
    // Opening a session searched every shard exactly once.
    for shard in 0..N_SHARDS {
        let count_line = page
            .lines()
            .find(|l| l.starts_with(&format!("shard{shard}_search_ns_count")))
            .unwrap_or_else(|| panic!("no count sample for shard {shard}"));
        let count: u64 = count_line
            .rsplit(' ')
            .next()
            .and_then(|v| v.parse().ok())
            .expect("numeric count");
        assert!(count >= 1, "shard {shard} recorded no searches");
    }
}
