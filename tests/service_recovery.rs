//! Crash-safety integration: the durable service through the `corelog`
//! facade. A `Close` acknowledged as durable survives a power cut; a
//! storage outage degrades gracefully (volatile flush + spill + shed)
//! and `SyncLog` reconciles the backlog back into the WAL; recovery
//! counters surface through the metrics endpoint.

use std::path::Path;

use corelog::cbir::{build_flat_index, collect_log, CorelDataset, CorelSpec, ImageDatabase};
use corelog::core::{LrfConfig, SchemeKind};
use corelog::logdb::{LogStore, SimulationConfig};
use corelog::obs::ManualClock;
use corelog::service::{
    DurabilityConfig, Request, Response, Service, ServiceConfig, ServiceError, ServiceMetrics,
};
use corelog::storage::{FaultIo, FaultPlan, IoRef, MemIo};

const WAL_DIR: &str = "/srv/feedback-wal";

fn corpus() -> (ImageDatabase, LogStore) {
    let ds = CorelDataset::build(CorelSpec::tiny(4, 12, 19));
    let log = collect_log(
        &ds.db,
        &SimulationConfig {
            n_sessions: 12,
            judged_per_session: 8,
            rounds_per_query: 2,
            noise: 0.1,
            seed: 31,
        },
    );
    (ds.db, log)
}

fn config() -> ServiceConfig {
    ServiceConfig {
        max_sessions: 16,
        ttl_requests: 0,
        screen_size: 8,
        pool_size: 30,
        lrf: LrfConfig {
            n_unlabeled: 8,
            ..LrfConfig::default()
        },
    }
}

fn policy() -> DurabilityConfig {
    DurabilityConfig {
        max_attempts: 2,
        backoff_ns: 0,
        deadline_ns: 0,
        spill_capacity: 8,
        shed_watermark: 1,
        ..DurabilityConfig::default()
    }
}

/// Builds a durable service over `io` with a deterministic clock.
fn durable_service(io: IoRef) -> Service {
    let (db, seed) = corpus();
    let index = Box::new(build_flat_index(&db));
    let (svc, _) = Service::with_durability_metrics(
        db,
        index,
        io,
        Path::new(WAL_DIR),
        seed,
        config(),
        policy(),
        ServiceMetrics::with_clock(ManualClock::shared()),
    )
    .expect("durable service must open");
    svc
}

/// One minimal session: open, judge a handful, close. Returns the
/// `Closed` ack's `(log_session, durable)`.
fn run_one_session(svc: &Service, query: usize) -> (Option<usize>, bool) {
    let Response::Opened { session, screen } = svc.handle(Request::Open {
        query,
        scheme: SchemeKind::RfSvm,
    }) else {
        panic!("open failed")
    };
    for &id in screen.iter().take(4) {
        let _ = svc.handle(Request::Mark {
            session,
            image: id,
            relevant: svc.db().same_category(id, query),
        });
    }
    match svc.handle(Request::Close { session }) {
        Response::Closed {
            log_session,
            durable,
            ..
        } => (log_session, durable),
        other => panic!("close failed: {other:?}"),
    }
}

fn log_sessions(svc: &Service) -> usize {
    match svc.handle(Request::Stats) {
        Response::Stats { log_sessions, .. } => log_sessions,
        other => panic!("stats failed: {other:?}"),
    }
}

#[test]
fn durable_close_survives_power_cut() {
    let mem = MemIo::handle();
    let svc = durable_service(mem.clone());
    assert_eq!(log_sessions(&svc), 12, "seeded from the historical log");

    let (id, durable) = run_one_session(&svc, 2);
    assert_eq!(id, Some(12));
    assert!(durable, "a healthy disk acknowledges a durable flush");

    drop(svc);
    mem.crash(); // power cut: volatile writes gone, fsynced WAL stays

    let svc = durable_service(mem.clone());
    assert_eq!(
        log_sessions(&svc),
        13,
        "12 seeded + 1 acknowledged session replay after the crash"
    );
    // And the recovered log keeps serving: another full session works.
    let (id, durable) = run_one_session(&svc, 5);
    assert_eq!(id, Some(13));
    assert!(durable);
}

#[test]
fn outage_degrades_then_sync_log_reconciles() {
    // Pin the outage window to the first flush: construction is the only
    // storage traffic before it, so a dry run counts the ops it consumes.
    let probe = FaultIo::handle(MemIo::io_ref(), FaultPlan::new());
    let svc = durable_service(probe.clone());
    let construction_ops = probe.ops();
    drop(svc);

    let mem = MemIo::handle();
    let fault = FaultIo::handle(
        mem.clone(),
        FaultPlan::outage(construction_ops, construction_ops + 40),
    );
    let svc = durable_service(fault.clone());

    // The flush exhausts its retry budget against the dead disk, degrades
    // to a volatile record, and still acknowledges the close — honestly.
    let (id, durable) = run_one_session(&svc, 2);
    assert_eq!(id, Some(12), "the judgment still trains future sessions");
    assert!(!durable, "a failing disk must not be called durable");

    // Past the shed watermark, new sessions are refused with a typed error.
    match svc.handle(Request::Open {
        query: 1,
        scheme: SchemeKind::RfSvm,
    }) {
        Response::Error {
            error: ServiceError::Overloaded { spilled_sessions },
        } => assert_eq!(spilled_sessions, 1),
        other => panic!("expected Overloaded while degraded, got {other:?}"),
    }

    // Reconcile: SyncLog drains the spill queue once the outage lifts.
    // Each failed attempt consumes fault-plan ops, so loop until healed.
    let mut reconciled = false;
    for _ in 0..40 {
        match svc.handle(Request::SyncLog) {
            Response::Synced {
                spilled, compacted, ..
            } => {
                assert_eq!(spilled, 0, "a successful sync drains everything");
                assert!(compacted, "sync compacts the backfilled WAL");
                reconciled = true;
                break;
            }
            Response::Error {
                error: ServiceError::Degraded { .. },
            } => continue, // still inside the outage window
            other => panic!("unexpected sync response: {other:?}"),
        }
    }
    assert!(reconciled, "the outage window must end within the loop");

    // Admission reopens and flushes are durable again.
    let (_, durable) = run_one_session(&svc, 3);
    assert!(durable);

    // The spilled session was backfilled into the WAL: it survives a cut.
    drop(svc);
    mem.crash();
    let svc = durable_service(mem.clone());
    assert_eq!(
        log_sessions(&svc),
        14,
        "12 seeded + 1 spilled-then-synced + 1 durable close"
    );
}

#[test]
fn recovery_counters_surface_through_metrics_endpoint() {
    let mem = MemIo::handle();
    let svc = durable_service(mem.clone());
    run_one_session(&svc, 2);
    drop(svc);
    mem.crash();

    // Rebuild with explicit metrics so the recovery counters are visible.
    let (db, seed) = corpus();
    let index = Box::new(build_flat_index(&db));
    let metrics = ServiceMetrics::with_clock(ManualClock::shared());
    let io: IoRef = mem.clone();
    let (svc, recovery) = Service::with_durability_metrics(
        db,
        index,
        io,
        Path::new(WAL_DIR),
        seed,
        config(),
        policy(),
        metrics,
    )
    .expect("recovery must succeed");
    assert!(!recovery.seeded);
    assert_eq!(recovery.recovered_sessions, 13);
    assert_eq!(recovery.replayed_sessions, 1);

    let Response::Metrics { snapshot } = svc.handle(Request::Metrics) else {
        panic!("metrics endpoint failed")
    };
    assert_eq!(snapshot.counter("recovery_sessions_total"), Some(13));
    assert_eq!(
        snapshot.counter("recovery_truncated_records_total"),
        Some(0)
    );
}
