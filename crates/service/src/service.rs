//! The serving engine: one shared database + index + log, many sessions.
//!
//! ## Concurrency architecture
//!
//! ```text
//!                  ┌────────────────────────────────────────────┐
//!                  │ Service (Sync — share &Service across      │
//!                  │          threads / a thread pool)          │
//!                  │                                            │
//!   Request ──────▶│  Mutex<SessionManager>   (table ops only:  │
//!                  │        │                  O(1) lookup,     │
//!                  │        │                  bounded sweeps)  │
//!                  │        ▼                                   │
//!                  │  Arc<Mutex<SessionState>> (per session:    │
//!                  │        │                   retrain runs    │
//!                  │        │                   here, parallel  │
//!                  │        ▼                   across sessions)│
//!                  │  Arc<ImageDatabase> ── Arc-shared flat     │
//!                  │  Box<dyn AnnIndex>  ── matrix (one copy)   │
//!                  │  DurableLogStore    ── snapshot reads,     │
//!                  │                        COW appends,        │
//!                  │                        WAL-first flushes   │
//!                  └────────────────────────────────────────────┘
//! ```
//!
//! The global lock covers only the session table; all learning runs under
//! per-session locks against an immutable database/index and a frozen log
//! snapshot, so N sessions retrain genuinely in parallel. Closing (or
//! evicting) a session appends it to the shared log through the
//! copy-on-write store — queries in flight keep their snapshot and are
//! never stalled — which is how today's sessions become the log vectors
//! tomorrow's coupled-SVM queries train on.

use crate::api::{Request, Response, ServiceError};
use crate::durability::{Durability, DurabilityConfig};
use crate::flush::Flushable;
use crate::manager::{Evicted, SessionGone, SessionManager};
use crate::metrics::{names, ServiceMetrics};
use crate::shard::ShardedEngine;
use crate::wire;
use lrf_cbir::{build_flat_index, rank_with_index_stats, ImageDatabase};
use lrf_core::{FeedbackLoop, LrfConfig, PooledRetrieval, QueryContext, SchemeKind};
use lrf_index::AnnIndex;
use lrf_logdb::{DurableLogStore, DurableRecovery, LogSession, LogStore, WalError};
use lrf_obs::RegistrySnapshot;
use lrf_storage::wal::WalOptions;
use lrf_storage::IoRef;
use lrf_sync::{Arc, Mutex, MutexExt};
use std::path::Path;
use std::time::Duration;

/// Service tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Maximum resident sessions; the least-recently-used session is
    /// evicted (and flushed) beyond this.
    pub max_sessions: usize,
    /// Idle TTL in logical-clock ticks (every handled request ticks at
    /// least once): a session untouched for this long is expired on a
    /// later request's sweep. `0` disables the TTL.
    pub ttl_requests: u64,
    /// Images per screen/page (the paper's `N_l`, 20 in its protocol).
    pub screen_size: usize,
    /// Candidate-pool size for the rerank step (see
    /// [`lrf_core::PooledRetrieval`]).
    pub pool_size: usize,
    /// Learning configuration shared by every session's scheme.
    pub lrf: LrfConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            max_sessions: 1024,
            ttl_requests: 4096,
            screen_size: 20,
            pool_size: 200,
            lrf: LrfConfig::default(),
        }
    }
}

/// One resident session: the resumable feedback loop plus the ranking its
/// pages are served from. Always held as a [`Flushable`], whose tombstone
/// (set under the state's lock when the session is flushed on close or
/// eviction) makes every interleaving consistent: a request that looked
/// the session up *before* it was removed from the manager either fully
/// precedes the flush (its judgments are flushed) or observes
/// `SessionExpired` — never a mutation of a detached session.
struct SessionState {
    fb: FeedbackLoop,
    /// Current full-database ranking (initial content ranking until the
    /// first rerank).
    ranking: Vec<usize>,
}

/// The thread-safe multi-session feedback service.
pub struct Service {
    db: Arc<ImageDatabase>,
    index: Box<dyn AnnIndex>,
    log: DurableLogStore,
    sessions: Mutex<SessionManager<Flushable<SessionState>>>,
    metrics: ServiceMetrics,
    config: ServiceConfig,
    /// Present on WAL-backed services; `None` means flushes are
    /// in-memory only (the pre-durability behaviour).
    durability: Option<Durability>,
    /// Present on sharded services: the same engine `index` wraps, held
    /// typed so the rerank path can scatter pool scoring across the
    /// shard workers.
    sharded: Option<Arc<ShardedEngine>>,
}

/// [`ShardedEngine`] behind the service's `Box<dyn AnnIndex>` slot while
/// the service also holds the typed `Arc` (the orphan rule forbids
/// implementing the foreign-ish trait for `Arc<ShardedEngine>` directly).
struct EngineHandle(Arc<ShardedEngine>);

impl AnnIndex for EngineHandle {
    fn len(&self) -> usize {
        self.0.len()
    }

    fn dim(&self) -> usize {
        self.0.dim()
    }

    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn search_with_stats(
        &self,
        query: &[f64],
        k: usize,
    ) -> (Vec<lrf_index::Neighbor>, lrf_index::SearchStats) {
        self.0.search_with_stats(query, k)
    }
}

impl Service {
    /// Builds a service over `db` with the exact flat index (shares the
    /// database's feature allocation — no copy).
    pub fn new(db: ImageDatabase, log: LogStore, config: ServiceConfig) -> Self {
        let index: Box<dyn AnnIndex> = Box::new(build_flat_index(&db));
        Self::with_index(db, index, log, config)
    }

    /// Builds a service with an explicit (possibly approximate) index.
    ///
    /// # Panics
    /// Panics if the index or log does not cover `db`, or on nonsensical
    /// config (zero screen/pool size or session capacity).
    pub fn with_index(
        db: ImageDatabase,
        index: Box<dyn AnnIndex>,
        log: LogStore,
        config: ServiceConfig,
    ) -> Self {
        Self::with_metrics(db, index, log, config, ServiceMetrics::new())
    }

    /// [`with_index`](Self::with_index) with explicit observability — a
    /// [`ServiceMetrics::with_clock`] for deterministic test latencies, or
    /// [`ServiceMetrics::disabled`] for the untimed baseline build.
    pub fn with_metrics(
        db: ImageDatabase,
        index: Box<dyn AnnIndex>,
        log: LogStore,
        config: ServiceConfig,
        metrics: ServiceMetrics,
    ) -> Self {
        Self::build(
            Arc::new(db),
            index,
            DurableLogStore::volatile(log),
            config,
            metrics,
            None,
            None,
        )
    }

    /// Builds a sharded service: the database is split into `n_shards`
    /// contiguous-id flat shards (views over the one shared feature
    /// matrix — no rows are copied), each pinned to a worker thread. The
    /// initial screen scatter-gathers the ANN search across the shards
    /// and every rerank scatters its pool scoring the same way; both are
    /// bit-identical to the single-shard flat service by construction
    /// (merge on squared distances, partition-invariant scorers).
    pub fn sharded(
        db: ImageDatabase,
        log: LogStore,
        n_shards: usize,
        config: ServiceConfig,
    ) -> Self {
        Self::sharded_with_metrics(db, log, n_shards, config, ServiceMetrics::new())
    }

    /// [`sharded`](Self::sharded) with explicit observability. Per-shard
    /// stage histograms and the queue-depth gauge register in the same
    /// registry the request path records to.
    pub fn sharded_with_metrics(
        db: ImageDatabase,
        log: LogStore,
        n_shards: usize,
        config: ServiceConfig,
        metrics: ServiceMetrics,
    ) -> Self {
        let db = Arc::new(db);
        let engine = Arc::new(ShardedEngine::new(
            Arc::clone(&db),
            n_shards,
            metrics.registry(),
            metrics.clock_ref(),
        ));
        let index: Box<dyn AnnIndex> = Box::new(EngineHandle(Arc::clone(&engine)));
        Self::build(
            db,
            index,
            DurableLogStore::volatile(log),
            config,
            metrics,
            None,
            Some(engine),
        )
    }

    /// Builds a crash-safe service: the feedback log lives behind a
    /// checksummed WAL at `dir` on `io`, recovered (or seeded from
    /// `seed` when the directory is empty) before serving starts. Every
    /// flush is fsynced into the WAL before the close is acknowledged;
    /// `policy` governs retries, spilling, and load shedding when
    /// storage fails.
    pub fn with_durability(
        db: ImageDatabase,
        index: Box<dyn AnnIndex>,
        io: IoRef,
        dir: &Path,
        seed: LogStore,
        config: ServiceConfig,
        policy: DurabilityConfig,
    ) -> Result<(Self, DurableRecovery), WalError> {
        Self::with_durability_metrics(
            db,
            index,
            io,
            dir,
            seed,
            config,
            policy,
            ServiceMetrics::new(),
        )
    }

    /// [`with_durability`](Self::with_durability) with explicit
    /// observability. Recovery counters (sessions recovered, torn tails
    /// truncated, stale files swept) land in the registry before the
    /// first request.
    #[allow(clippy::too_many_arguments)]
    pub fn with_durability_metrics(
        db: ImageDatabase,
        index: Box<dyn AnnIndex>,
        io: IoRef,
        dir: &Path,
        seed: LogStore,
        config: ServiceConfig,
        policy: DurabilityConfig,
        metrics: ServiceMetrics,
    ) -> Result<(Self, DurableRecovery), WalError> {
        let opts = WalOptions {
            segment_bytes: policy.segment_bytes,
        };
        let (log, recovery) = DurableLogStore::open_with_seed(io, dir, seed, opts)?;
        metrics.count_recovery(&recovery);
        let svc = Self::build(
            Arc::new(db),
            index,
            log,
            config,
            metrics,
            Some(Durability::new(policy)),
            None,
        );
        Ok((svc, recovery))
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        db: Arc<ImageDatabase>,
        index: Box<dyn AnnIndex>,
        log: DurableLogStore,
        config: ServiceConfig,
        metrics: ServiceMetrics,
        durability: Option<Durability>,
        sharded: Option<Arc<ShardedEngine>>,
    ) -> Self {
        assert_eq!(index.len(), db.len(), "index does not cover the database");
        assert_eq!(
            log.n_images(),
            db.len(),
            "log store does not cover the database"
        );
        assert!(config.screen_size > 0, "screen size must be positive");
        assert!(config.pool_size > 0, "pool size must be positive");
        let sessions = Mutex::new(SessionManager::new(
            config.max_sessions,
            config.ttl_requests,
        ));
        // The store counts its own events; adopting the handles makes them
        // part of this service's snapshots.
        let log_counters = log.counters();
        metrics
            .registry()
            .adopt_counter(names::LOG_SNAPSHOTS, log_counters.snapshots);
        metrics
            .registry()
            .adopt_counter(names::LOG_APPENDS, log_counters.appends);
        metrics
            .registry()
            .adopt_counter(names::LOG_COW_CLONES, log_counters.cow_clones);
        Self {
            db,
            index,
            log,
            sessions,
            metrics,
            config,
            durability,
            sharded,
        }
    }

    /// The shared database.
    pub fn db(&self) -> &ImageDatabase {
        &self.db
    }

    /// Sessions accumulated in the feedback log so far.
    pub fn log_sessions(&self) -> usize {
        self.log.n_sessions()
    }

    /// This instance's observability layer (registry + clock + handles).
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// Freezes every instrument — what `Request::Metrics` returns.
    pub fn metrics_snapshot(&self) -> RegistrySnapshot {
        self.metrics.snapshot()
    }

    /// The metrics page in Prometheus text exposition format.
    pub fn metrics_prometheus(&self) -> String {
        lrf_obs::prometheus::render(&self.metrics.snapshot())
    }

    /// Shuts the service down, returning the accumulated log for
    /// persistence. Resident sessions are flushed first (in id order, so
    /// the resulting log is deterministic). On a durable service the
    /// spill queue is drained and a final compaction is attempted, so the
    /// on-disk state matches the returned store whenever storage allows.
    pub fn into_log(self) -> LogStore {
        let drained = self.sessions.lock_recover().drain();
        for (_, payload) in drained {
            let _ = self.flush(&payload);
        }
        if self.durability.is_some() {
            // Best-effort: a still-failing disk must not block shutdown.
            let _ = self.sync_log();
        }
        self.log.into_store()
    }

    /// Handles one request. Thread-safe: call from any number of threads.
    pub fn handle(&self, request: Request) -> Response {
        // The span records end-to-end latency when it drops — after the
        // response (including a Metrics snapshot) is fully built.
        let _request_span = self.metrics.time(&self.metrics.request_latency);
        self.metrics.requests_total.inc();
        // Expire idle sessions first so a session can never be observed
        // past its TTL; their judgments are salvaged into the log.
        let expired = {
            let mut sessions = self.sessions.lock_recover();
            let expired = sessions.sweep();
            self.metrics.active_sessions.set(sessions.len() as u64);
            expired
        };
        self.flush_evicted(expired);

        match request {
            Request::Open { query, scheme } => self.open(query, scheme),
            Request::Mark {
                session,
                image,
                relevant,
            } => self.mark(session, image, relevant),
            Request::Rerank { session } => self.rerank(session),
            Request::Page {
                session,
                offset,
                count,
            } => self.page(session, offset, count),
            Request::Close { session } => self.close(session),
            Request::SyncLog => self.sync_log(),
            Request::Stats => self.stats(),
            Request::Metrics => Response::Metrics {
                snapshot: self.metrics.snapshot(),
            },
            Request::Ping => Response::Pong {
                proto_version: wire::PROTO_VERSION,
            },
        }
    }

    /// JSON transport: parses a [`Request`] (bare legacy enum *or* the
    /// versioned `{v, id, body}` envelope — see [`crate::wire`]), handles
    /// it, renders the [`Response`] in the framing the request used.
    /// Legacy requests get byte-identical output to what this method has
    /// always produced.
    pub fn handle_json(&self, request_json: &str) -> String {
        self.handle_wire(request_json).0
    }

    /// [`handle_json`](Self::handle_json) plus the HTTP status the
    /// response maps to — the whole surface a network transport needs.
    pub fn handle_wire(&self, request_json: &str) -> (String, u16) {
        let (mode, response) = match wire::parse_request(request_json) {
            Ok(parsed) => (parsed.mode, self.handle(parsed.body)),
            Err(err) => (err.mode, Response::err(err.error)),
        };
        let status = wire::http_status(&response);
        (wire::render_response(mode, &response), status)
    }

    fn open(&self, query: usize, scheme: SchemeKind) -> Response {
        // Admission control: while the durability backlog is past its
        // watermark, refuse new sessions — every judgment they produce
        // would join the queue of feedback we cannot make crash-safe.
        if let Some(dur) = &self.durability {
            if dur.should_shed() {
                self.metrics.shed_requests.inc();
                return Response::err(ServiceError::Overloaded {
                    spilled_sessions: dur.spill_depth(),
                });
            }
        }
        if query >= self.db.len() {
            return Response::err(ServiceError::UnknownQuery {
                query,
                n_images: self.db.len(),
            });
        }
        let fb = FeedbackLoop::new(scheme, self.config.lrf, query, self.db.len());
        // The initial ranking is the content-based index ranking — exactly
        // what the paper's users judged first.
        let ranking = {
            let _scoring = self.metrics.time(&self.metrics.stage_scoring);
            let (ranking, search) =
                rank_with_index_stats(&self.db, self.index.as_ref(), self.db.feature(query));
            self.metrics.count_search(search);
            ranking
        };
        let screen = ranking[..self.config.screen_size.min(ranking.len())].to_vec();
        let (session, evicted) = {
            let _lookup = self.metrics.time(&self.metrics.stage_session_lookup);
            let mut sessions = self.sessions.lock_recover();
            let inserted = sessions.insert(Flushable::new(SessionState { fb, ranking }));
            self.metrics.active_sessions.set(sessions.len() as u64);
            inserted
        };
        self.flush_evicted(evicted);
        Response::Opened { session, screen }
    }

    fn mark(&self, session: u64, image: usize, relevant: bool) -> Response {
        let payload = match self.lookup(session) {
            Ok(payload) => payload,
            Err(e) => return Response::err(e),
        };
        let mut guard = payload.lock_recover();
        let Some(state) = guard.get_mut() else {
            return Response::err(ServiceError::SessionExpired { session });
        };
        match state.fb.mark(image, relevant) {
            Ok(()) => Response::Marked {
                session,
                n_judged: state.fb.n_judged(),
            },
            Err(e) => Response::err(e.into()),
        }
    }

    fn rerank(&self, session: u64) -> Response {
        let payload = match self.lookup(session) {
            Ok(payload) => payload,
            Err(e) => return Response::err(e),
        };
        // The global lock is already released: the retrain below runs
        // under this session's lock only, concurrently with other
        // sessions' retrains.
        let mut guard = payload.lock_recover();
        let Some(state) = guard.get_mut() else {
            return Response::err(ServiceError::SessionExpired { session });
        };
        let snapshot = self.log.snapshot();
        let example = state.fb.example();
        let ctx = QueryContext {
            db: &self.db,
            log: &snapshot,
            example: &example,
        };
        let pool = {
            let _scoring = self.metrics.time(&self.metrics.stage_scoring);
            let (pool, search) = PooledRetrieval::new(self.index.as_ref(), self.config.pool_size)
                .pool_with_stats(&ctx);
            self.metrics.count_search(search);
            pool
        };
        {
            let _retrain = self.metrics.time(&self.metrics.stage_retrain);
            state.ranking = match &self.sharded {
                // Sharded plane: train once here, scatter the pool
                // scoring across the shard workers. Bit-identical to the
                // local path by the scorer's partition-invariance
                // contract (asserted end-to-end in tests/net_service.rs).
                Some(engine) => {
                    state
                        .fb
                        .rerank_scattered(&self.db, &snapshot, &pool, |scorer, ids| {
                            engine.scatter_scores(scorer, &snapshot, ids)
                        })
                }
                None => state.fb.rerank(&self.db, &snapshot, &pool),
            };
        }
        let page = state.ranking[..self.config.screen_size.min(state.ranking.len())].to_vec();
        // Surface solver health: a max_iter-capped round must not pass as
        // a silently exact one (schemes that never train report converged).
        // `count_round` also lifts the round's SMO iteration and
        // kernel-cache totals into the registry.
        let converged = match state.fb.last_diagnostics() {
            Some(d) => {
                self.metrics.count_round(&d);
                d.converged
            }
            None => true,
        };
        Response::Reranked {
            session,
            round: state.fb.rounds(),
            page,
            converged,
        }
    }

    fn page(&self, session: u64, offset: usize, count: usize) -> Response {
        let payload = match self.lookup(session) {
            Ok(payload) => payload,
            Err(e) => return Response::err(e),
        };
        let guard = payload.lock_recover();
        let Some(state) = guard.get() else {
            return Response::err(ServiceError::SessionExpired { session });
        };
        let start = offset.min(state.ranking.len());
        let end = offset.saturating_add(count).min(state.ranking.len());
        Response::Page {
            session,
            ids: state.ranking[start..end].to_vec(),
        }
    }

    fn close(&self, session: u64) -> Response {
        let removed = {
            let _lookup = self.metrics.time(&self.metrics.stage_session_lookup);
            let mut sessions = self.sessions.lock_recover();
            let removed = sessions.remove(session);
            self.metrics.active_sessions.set(sessions.len() as u64);
            removed
        };
        match removed {
            Ok(payload) => {
                // An empty session has nothing to lose, so it is
                // (vacuously) durable.
                let (log_session, durable) = match self.flush(&payload) {
                    Some((id, durable)) => (Some(id), durable),
                    None => (None, true),
                };
                Response::Closed {
                    session,
                    log_session,
                    durable,
                }
            }
            Err(gone) => Response::err(Self::gone_error(session, gone)),
        }
    }

    /// Drains the spill queue back into the WAL (in record order), then
    /// compacts. Stops at the first storage error — the remaining spill
    /// is intact and a later `SyncLog` resumes where this one failed.
    fn sync_log(&self) -> Response {
        let Some(dur) = &self.durability else {
            return Response::Synced {
                spilled: 0,
                wal_segments: 0,
                compacted: false,
            };
        };
        while let Some(session) = dur.pop_spill() {
            if let Err(e) = self.log.append_wal_only(&session) {
                dur.unpop_spill(session);
                self.metrics.wal_spill_depth.set(dur.spill_depth() as u64);
                return Response::err(ServiceError::Degraded {
                    reason: e.to_string(),
                });
            }
            self.metrics.wal_appends.inc();
        }
        self.metrics.wal_spill_depth.set(0);
        if let Err(e) = self.log.compact() {
            return Response::err(ServiceError::Degraded {
                reason: e.to_string(),
            });
        }
        self.metrics.wal_compactions.inc();
        dur.set_degraded(false);
        self.metrics.storage_degraded.set(0);
        Response::Synced {
            spilled: 0,
            wal_segments: self.log.wal_segments(),
            compacted: true,
        }
    }

    fn stats(&self) -> Response {
        Response::Stats {
            active_sessions: self.sessions.lock_recover().len(),
            log_sessions: self.log.n_sessions(),
            n_images: self.db.len(),
            flushed_sessions: self.metrics.flushed_sessions.get() as usize,
            nonconverged_retrains: self.metrics.nonconverged_retrains.get() as usize,
        }
    }

    fn lookup(&self, session: u64) -> Result<Arc<Mutex<Flushable<SessionState>>>, ServiceError> {
        let _lookup = self.metrics.time(&self.metrics.stage_session_lookup);
        self.sessions
            .lock_recover()
            .get(session)
            .map_err(|gone| Self::gone_error(session, gone))
    }

    fn gone_error(session: u64, gone: SessionGone) -> ServiceError {
        match gone {
            SessionGone::Expired => ServiceError::SessionExpired { session },
            SessionGone::NeverExisted => ServiceError::UnknownSession { session },
        }
    }

    /// Flushes one session's judgments into the shared log and tombstones
    /// the state; returns the new log-session id and whether it reached
    /// durable storage (empty sessions flush nothing). Idempotent:
    /// [`Flushable::close`] yields the state at most once, and a request
    /// that raced the removal and is still holding the `Arc` observes the
    /// tombstone instead of mutating a detached session.
    fn flush(&self, payload: &Arc<Mutex<Flushable<SessionState>>>) -> Option<(usize, bool)> {
        let _flush_span = self.metrics.time(&self.metrics.stage_flush);
        let mut guard = payload.lock_recover();
        let state = guard.close()?;
        let session = state.fb.to_log_session();
        if session.is_empty() {
            return None;
        }
        let recorded = self.record_session(session);
        self.metrics.flushed_sessions.inc();
        Some(recorded)
    }

    /// Records one completed session through the durability policy:
    /// WAL-first with retry + bounded backoff + clock deadline, degrading
    /// to volatile + spill when the budget is exhausted. Returns the log
    /// session id and whether it is crash-safe.
    fn record_session(&self, session: LogSession) -> (usize, bool) {
        let Some(dur) = &self.durability else {
            // WAL-less service: the in-memory record is all there is.
            return (self.log.record_volatile(session), false);
        };
        let _span = self.metrics.time(&self.metrics.stage_durable_flush);
        // While degraded, skip the retry budget entirely: paying a full
        // backoff ladder per flush during a known outage only adds
        // latency, and a disk that quietly recovered must not interleave
        // fresh WAL appends ahead of the spilled backlog (replay order
        // must match session-id order). `sync_log` is the one path back.
        if !dur.is_degraded() {
            let cfg = &dur.config;
            let start = self.metrics.clock().now_ns();
            let mut backoff = cfg.backoff_ns;
            let mut attempt = 0u32;
            loop {
                attempt += 1;
                match self.log.record_durable(session.clone()) {
                    Ok(id) => {
                        self.metrics.wal_appends.inc();
                        self.maybe_compact(dur);
                        return (id, true);
                    }
                    Err(_) => {
                        let within_deadline = cfg.deadline_ns == 0
                            || self.metrics.clock().now_ns().saturating_sub(start)
                                < cfg.deadline_ns;
                        if attempt >= cfg.max_attempts.max(1) || !within_deadline {
                            break;
                        }
                        self.metrics.wal_retries.inc();
                        if backoff > 0 {
                            std::thread::sleep(Duration::from_nanos(backoff));
                            backoff = backoff.saturating_mul(2).min(cfg.max_backoff_ns);
                        }
                    }
                }
            }
            self.metrics.wal_append_failures.inc();
            dur.set_degraded(true);
            self.metrics.storage_degraded.set(1);
        }
        // Degraded path: the judgment still lands in memory (future
        // queries train on it) and is parked for WAL backfill; the
        // caller learns the truth via `durable: false`.
        let id = self.log.record_volatile(session.clone());
        if dur.push_spill(session) {
            self.metrics.wal_spilled_sessions.inc();
        } else {
            self.metrics.wal_spill_rejected.inc();
        }
        self.metrics.wal_spill_depth.set(dur.spill_depth() as u64);
        (id, false)
    }

    /// Opportunistic compaction on the durable fast path: once enough
    /// segments accumulated (and nothing is spilled — compacting while
    /// sessions await backfill would still be correct, but `sync_log`
    /// owns that reconciliation), fold the WAL into a fresh snapshot.
    fn maybe_compact(&self, dur: &Durability) {
        if dur.config.compact_segments == 0
            || dur.spill_depth() > 0
            || self.log.wal_segments() < dur.config.compact_segments
        {
            return;
        }
        if self.log.compact().is_ok() {
            self.metrics.wal_compactions.inc();
        }
    }

    fn flush_evicted(&self, evicted: Vec<Evicted<Flushable<SessionState>>>) {
        for e in evicted {
            let _ = self.flush(&e.payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrf_cbir::{collect_log, CorelDataset, CorelSpec};
    use lrf_logdb::SimulationConfig;

    fn dataset() -> (CorelDataset, LogStore) {
        let ds = CorelDataset::build(CorelSpec::tiny(4, 12, 19));
        let log = collect_log(
            &ds.db,
            &SimulationConfig {
                n_sessions: 20,
                judged_per_session: 8,
                rounds_per_query: 2,
                noise: 0.1,
                seed: 23,
            },
        );
        (ds, log)
    }

    fn config() -> ServiceConfig {
        ServiceConfig {
            max_sessions: 8,
            ttl_requests: 0,
            screen_size: 6,
            pool_size: 24,
            lrf: LrfConfig {
                n_unlabeled: 8,
                ..LrfConfig::default()
            },
        }
    }

    fn service() -> Service {
        let (ds, log) = dataset();
        Service::new(ds.db, log, config())
    }

    #[test]
    fn full_session_lifecycle() {
        let svc = service();
        let logged_before = svc.log_sessions();
        let Response::Opened { session, screen } = svc.handle(Request::Open {
            query: 5,
            scheme: SchemeKind::LrfCsvm,
        }) else {
            panic!("open failed")
        };
        assert_eq!(screen.len(), 6);
        assert_eq!(screen[0], 5, "query ranks first in its own screen");

        // Judge the whole screen by ground truth.
        for &id in &screen {
            let resp = svc.handle(Request::Mark {
                session,
                image: id,
                relevant: svc.db().same_category(id, 5),
            });
            assert!(matches!(resp, Response::Marked { .. }), "{resp:?}");
        }

        let Response::Reranked { round, page, .. } = svc.handle(Request::Rerank { session }) else {
            panic!("rerank failed")
        };
        assert_eq!(round, 1);
        assert_eq!(page.len(), 6);

        // Pages are slices of one consistent ranking.
        let Response::Page { ids, .. } = svc.handle(Request::Page {
            session,
            offset: 0,
            count: 6,
        }) else {
            panic!("page failed")
        };
        assert_eq!(ids, page);

        let Response::Closed {
            log_session: Some(id),
            ..
        } = svc.handle(Request::Close { session })
        else {
            panic!("close failed")
        };
        assert_eq!(id, logged_before);
        assert_eq!(svc.log_sessions(), logged_before + 1);

        // The session is gone now — typed error, not a panic.
        let resp = svc.handle(Request::Rerank { session });
        assert_eq!(
            resp,
            Response::err(ServiceError::SessionExpired { session })
        );
    }

    #[test]
    fn page_clamps_to_the_ranking_tail() {
        let svc = service();
        let Response::Opened { session, .. } = svc.handle(Request::Open {
            query: 0,
            scheme: SchemeKind::Euclidean,
        }) else {
            panic!("open failed")
        };
        let n = svc.db().len();
        let Response::Page { ids, .. } = svc.handle(Request::Page {
            session,
            offset: n - 2,
            count: 100,
        }) else {
            panic!("page failed")
        };
        assert_eq!(ids.len(), 2);
        let Response::Page { ids, .. } = svc.handle(Request::Page {
            session,
            offset: n + 50,
            count: 3,
        }) else {
            panic!("page failed")
        };
        assert!(ids.is_empty());
    }

    #[test]
    fn errors_are_typed_for_every_failure_mode() {
        let svc = service();
        let n = svc.db().len();
        // Unknown query.
        assert_eq!(
            svc.handle(Request::Open {
                query: n,
                scheme: SchemeKind::RfSvm
            }),
            Response::err(ServiceError::UnknownQuery {
                query: n,
                n_images: n
            })
        );
        // Never-issued session id.
        assert_eq!(
            svc.handle(Request::Mark {
                session: 99,
                image: 0,
                relevant: true
            }),
            Response::err(ServiceError::UnknownSession { session: 99 })
        );
        // Bad judgments on a live session.
        let Response::Opened { session, .. } = svc.handle(Request::Open {
            query: 1,
            scheme: SchemeKind::RfSvm,
        }) else {
            panic!("open failed")
        };
        svc.handle(Request::Mark {
            session,
            image: 4,
            relevant: true,
        });
        assert_eq!(
            svc.handle(Request::Mark {
                session,
                image: 4,
                relevant: false
            }),
            Response::err(ServiceError::DuplicateJudgment { image: 4 })
        );
        assert_eq!(
            svc.handle(Request::Mark {
                session,
                image: n + 7,
                relevant: true
            }),
            Response::err(ServiceError::UnknownImage {
                image: n + 7,
                n_images: n
            })
        );
    }

    #[test]
    fn lru_eviction_flushes_judged_sessions_into_the_log() {
        let (ds, log) = dataset();
        let logged_before = log.n_sessions();
        let svc = Service::new(
            ds.db,
            log,
            ServiceConfig {
                max_sessions: 2,
                ..config()
            },
        );
        // Open session A and give it one judgment.
        let Response::Opened { session: a, .. } = svc.handle(Request::Open {
            query: 0,
            scheme: SchemeKind::RfSvm,
        }) else {
            panic!("open failed")
        };
        svc.handle(Request::Mark {
            session: a,
            image: 0,
            relevant: true,
        });
        // Fill capacity and push A out (B, C newer).
        let Response::Opened { session: b, .. } = svc.handle(Request::Open {
            query: 1,
            scheme: SchemeKind::RfSvm,
        }) else {
            panic!("open failed")
        };
        let Response::Opened { session: c, .. } = svc.handle(Request::Open {
            query: 2,
            scheme: SchemeKind::RfSvm,
        }) else {
            panic!("open failed")
        };
        assert_ne!(a, b);
        assert_ne!(b, c);
        // A is gone and its judgment landed in the log.
        assert_eq!(
            svc.handle(Request::Rerank { session: a }),
            Response::err(ServiceError::SessionExpired { session: a })
        );
        assert_eq!(svc.log_sessions(), logged_before + 1);
        // B never judged anything: when evicted, nothing is flushed.
        let Response::Opened { .. } = svc.handle(Request::Open {
            query: 3,
            scheme: SchemeKind::RfSvm,
        }) else {
            panic!("open failed")
        };
        assert_eq!(svc.log_sessions(), logged_before + 1);
    }

    #[test]
    fn ttl_expires_idle_sessions() {
        let (ds, log) = dataset();
        let svc = Service::new(
            ds.db,
            log,
            ServiceConfig {
                ttl_requests: 3,
                ..config()
            },
        );
        let Response::Opened { session: idle, .. } = svc.handle(Request::Open {
            query: 0,
            scheme: SchemeKind::Euclidean,
        }) else {
            panic!("open failed")
        };
        let Response::Opened { session: busy, .. } = svc.handle(Request::Open {
            query: 1,
            scheme: SchemeKind::Euclidean,
        }) else {
            panic!("open failed")
        };
        // Keep `busy` alive past the TTL; `idle` never gets touched.
        for _ in 0..5 {
            let resp = svc.handle(Request::Page {
                session: busy,
                offset: 0,
                count: 1,
            });
            assert!(matches!(resp, Response::Page { .. }), "{resp:?}");
        }
        assert_eq!(
            svc.handle(Request::Page {
                session: idle,
                offset: 0,
                count: 1
            }),
            Response::err(ServiceError::SessionExpired { session: idle })
        );
        // The busy one survived the sweep that killed the idle one.
        assert!(matches!(
            svc.handle(Request::Page {
                session: busy,
                offset: 0,
                count: 1
            }),
            Response::Page { .. }
        ));
    }

    #[test]
    fn json_transport_roundtrips_and_rejects_garbage() {
        let svc = service();
        let resp = svc.handle_json(r#"{"Open": {"query": 2, "scheme": "RfSvm"}}"#);
        let parsed: Response = serde_json::from_str(&resp).unwrap();
        assert!(matches!(parsed, Response::Opened { .. }), "{resp}");
        let resp = svc.handle_json("not json at all");
        let parsed: Response = serde_json::from_str(&resp).unwrap();
        assert!(
            matches!(
                parsed,
                Response::Error {
                    error: ServiceError::BadRequest { .. }
                }
            ),
            "{resp}"
        );
    }

    #[test]
    fn into_log_drains_resident_sessions() {
        let svc = service();
        let logged_before = svc.log_sessions();
        let Response::Opened { session, .. } = svc.handle(Request::Open {
            query: 2,
            scheme: SchemeKind::RfSvm,
        }) else {
            panic!("open failed")
        };
        svc.handle(Request::Mark {
            session,
            image: 2,
            relevant: true,
        });
        let log = svc.into_log();
        assert_eq!(log.n_sessions(), logged_before + 1);
    }

    #[test]
    fn requests_racing_a_close_observe_the_tombstone() {
        // A request thread can hold a session's Arc (from lookup) while
        // another thread closes the session and flushes it. The flush
        // tombstones the state under its lock, so the racer must see
        // SessionExpired instead of mutating a detached session whose
        // judgment would silently miss the log.
        let svc = service();
        let Response::Opened { session, .. } = svc.handle(Request::Open {
            query: 3,
            scheme: SchemeKind::RfSvm,
        }) else {
            panic!("open failed")
        };
        svc.handle(Request::Mark {
            session,
            image: 3,
            relevant: true,
        });
        // Simulate the in-flight request: resolve the payload before the
        // close removes it from the manager.
        let payload = svc.lookup(session).expect("session is live");
        let Response::Closed {
            log_session: Some(_),
            ..
        } = svc.handle(Request::Close { session })
        else {
            panic!("close failed")
        };
        assert!(payload.lock().unwrap().is_closed(), "flush must tombstone");
        // Re-flushing the detached payload is a no-op (no double log
        // entry), which is what makes racing evict/close paths safe.
        let logged = svc.log_sessions();
        assert_eq!(svc.flush(&payload), None);
        assert_eq!(svc.log_sessions(), logged);
    }

    #[test]
    fn stats_report_counters() {
        let svc = service();
        let Response::Stats {
            active_sessions,
            log_sessions,
            n_images,
            flushed_sessions,
            nonconverged_retrains,
        } = svc.handle(Request::Stats)
        else {
            panic!("stats failed")
        };
        assert_eq!(active_sessions, 0);
        assert_eq!(log_sessions, 20);
        assert_eq!(n_images, svc.db().len());
        assert_eq!(flushed_sessions, 0);
        assert_eq!(nonconverged_retrains, 0);
    }

    #[test]
    fn metrics_endpoint_reports_stage_work() {
        let svc = service();
        let Response::Opened { session, screen } = svc.handle(Request::Open {
            query: 5,
            scheme: SchemeKind::LrfCsvm,
        }) else {
            panic!("open failed")
        };
        for &id in &screen {
            svc.handle(Request::Mark {
                session,
                image: id,
                relevant: svc.db().same_category(id, 5),
            });
        }
        svc.handle(Request::Rerank { session });
        svc.handle(Request::Close { session });

        let Response::Metrics { snapshot } = svc.handle(Request::Metrics) else {
            panic!("metrics failed")
        };
        // 1 open + 6 marks + 1 rerank + 1 close + this Metrics request
        // (counted before its own snapshot is taken).
        assert_eq!(snapshot.counter("requests_total"), Some(10));
        assert_eq!(snapshot.histogram("request_latency_ns").unwrap().count, 9);
        // Every stage saw work: the table was touched by marks/rerank/open/
        // close, scoring ran on open + rerank, the retrain once, the flush
        // once (close; empty-eviction flushes also record).
        assert_eq!(
            snapshot.histogram("stage_session_lookup_ns").unwrap().count,
            9
        );
        assert_eq!(snapshot.histogram("stage_scoring_ns").unwrap().count, 2);
        assert_eq!(snapshot.histogram("stage_retrain_ns").unwrap().count, 1);
        assert_eq!(snapshot.histogram("stage_flush_ns").unwrap().count, 1);
        // The solver, index and log totals flowed through.
        assert!(snapshot.counter("smo_iterations_total").unwrap() > 0);
        assert!(snapshot.counter("kernel_cache_misses_total").unwrap() > 0);
        assert!(snapshot.counter("ann_distance_evals_total").unwrap() > 0);
        assert_eq!(snapshot.counter("flushed_sessions_total"), Some(1));
        assert_eq!(snapshot.counter("log_appends_total"), Some(1));
        assert_eq!(snapshot.gauge("active_sessions"), Some(0));
        // The same snapshot round-trips through the JSON transport and
        // renders as well-formed Prometheus text.
        let json = svc.handle_json(r#""Metrics""#);
        let parsed: Response = serde_json::from_str(&json).unwrap();
        assert!(matches!(parsed, Response::Metrics { .. }), "{json}");
        let page = svc.metrics_prometheus();
        assert!(page.contains("# TYPE request_latency_ns histogram"));
        assert!(page.contains("request_latency_ns_count"));
        // 10 requests above + the JSON-transport Metrics request.
        assert!(page.contains("requests_total 11"), "{page}");
    }

    #[test]
    fn deterministic_latencies_under_an_injected_clock() {
        // Clock injection: a manual clock never advances during a request,
        // so every recorded duration is exactly zero while counts still
        // accumulate — the histogram contents are fully deterministic.
        let (ds, log) = dataset();
        let index: Box<dyn AnnIndex> = Box::new(build_flat_index(&ds.db));
        let svc = Service::with_metrics(
            ds.db,
            index,
            log,
            config(),
            ServiceMetrics::with_clock(lrf_obs::ManualClock::shared()),
        );
        svc.handle(Request::Open {
            query: 1,
            scheme: SchemeKind::Euclidean,
        });
        let h = svc.metrics_snapshot();
        let lat = h.histogram("request_latency_ns").unwrap();
        assert_eq!((lat.count, lat.sum, lat.max), (1, 0, 0));
    }

    /// A durability policy with no sleeps: fault-injection runs stay
    /// instant and fully deterministic.
    fn durable_policy() -> DurabilityConfig {
        DurabilityConfig {
            max_attempts: 2,
            backoff_ns: 0,
            max_backoff_ns: 0,
            deadline_ns: 0,
            spill_capacity: 4,
            shed_watermark: 1,
            ..DurabilityConfig::default()
        }
    }

    fn wal_dir() -> &'static std::path::Path {
        std::path::Path::new("/srv/feedback-wal")
    }

    fn durable_service(io: lrf_storage::IoRef) -> (Service, lrf_logdb::DurableRecovery) {
        let (ds, log) = dataset();
        let index: Box<dyn AnnIndex> = Box::new(build_flat_index(&ds.db));
        Service::with_durability_metrics(
            ds.db,
            index,
            io,
            wal_dir(),
            log,
            config(),
            durable_policy(),
            ServiceMetrics::with_clock(lrf_obs::ManualClock::shared()),
        )
        .unwrap()
    }

    /// Runs one judged session through the service and closes it,
    /// returning the close response.
    fn run_one_session(svc: &Service, query: usize) -> Response {
        let Response::Opened { session, screen } = svc.handle(Request::Open {
            query,
            scheme: SchemeKind::RfSvm,
        }) else {
            panic!("open failed")
        };
        for &id in &screen {
            svc.handle(Request::Mark {
                session,
                image: id,
                relevant: svc.db().same_category(id, query),
            });
        }
        svc.handle(Request::Close { session })
    }

    #[test]
    fn volatile_service_reports_nondurable_flushes() {
        // The pre-durability constructors keep working unchanged, but a
        // close must not claim crash-safety it doesn't have.
        let svc = service();
        let resp = run_one_session(&svc, 5);
        let Response::Closed {
            log_session: Some(_),
            durable,
            ..
        } = resp
        else {
            panic!("close failed: {resp:?}")
        };
        assert!(!durable, "a WAL-less flush is not durable");
        // SyncLog on a WAL-less service is a trivial no-op.
        assert_eq!(
            svc.handle(Request::SyncLog),
            Response::Synced {
                spilled: 0,
                wal_segments: 0,
                compacted: false
            }
        );
    }

    #[test]
    fn durable_close_survives_crash_and_recovery() {
        let mem = lrf_storage::MemIo::handle();
        let (svc, rec) = durable_service(mem.clone());
        assert!(rec.seeded, "empty disk adopts the simulated seed log");
        let seed_sessions = svc.log_sessions();
        assert_eq!(seed_sessions, 20);

        let resp = run_one_session(&svc, 5);
        let Response::Closed {
            log_session: Some(id),
            durable,
            ..
        } = resp
        else {
            panic!("close failed: {resp:?}")
        };
        assert!(durable, "healthy storage must ack durably");
        assert_eq!(id, seed_sessions);
        let snap = svc.metrics_snapshot();
        assert_eq!(snap.counter(names::WAL_APPENDS), Some(1));
        assert_eq!(snap.counter(names::WAL_RETRIES), Some(0));
        // Manual clock: the durable-flush stage recorded one zero-length
        // span — deterministic proof the stage timer is wired.
        let h = snap.histogram(names::STAGE_DURABLE_FLUSH).unwrap();
        assert_eq!((h.count, h.sum), (1, 0));
        assert_eq!(snap.counter(names::RECOVERY_SESSIONS), Some(0));
        drop(svc);
        mem.crash();

        // Power loss: the acknowledged close must come back, with the
        // recovery surfaced through the metrics registry.
        let (svc, rec) = durable_service(mem.clone());
        assert!(!rec.seeded, "disk state wins over the seed");
        assert_eq!(rec.recovered_sessions, 21);
        assert_eq!(rec.replayed_sessions, 1, "the close replays from the WAL");
        assert_eq!(svc.log_sessions(), 21);
        assert_eq!(
            svc.metrics_snapshot().counter(names::RECOVERY_SESSIONS),
            Some(21)
        );
    }

    #[test]
    fn outage_degrades_then_sync_log_reconciles() {
        // Calibrate: service construction is the only storage traffic
        // before the first flush (open/mark never touch disk), so a dry
        // run pins the op index where the outage window must start.
        let construction_ops = {
            let mem = lrf_storage::MemIo::handle();
            let fault = lrf_storage::FaultIo::handle(mem, lrf_storage::FaultPlan::new());
            let (_svc, _) = durable_service(fault.clone());
            fault.ops()
        };

        let mem = lrf_storage::MemIo::handle();
        let fault = lrf_storage::FaultIo::handle(
            mem.clone(),
            lrf_storage::FaultPlan::outage(construction_ops, construction_ops + 30),
        );
        let (svc, _) = durable_service(fault.clone());

        // Flush during the outage: acknowledged, honestly non-durable.
        let resp = run_one_session(&svc, 5);
        let Response::Closed {
            log_session: Some(_),
            durable,
            ..
        } = resp
        else {
            panic!("close failed: {resp:?}")
        };
        assert!(!durable, "flush during an outage must not claim durability");
        let snap = svc.metrics_snapshot();
        assert_eq!(snap.counter(names::WAL_APPEND_FAILURES), Some(1));
        assert_eq!(snap.counter(names::WAL_RETRIES), Some(1), "max_attempts=2");
        assert_eq!(snap.counter(names::WAL_SPILLED_SESSIONS), Some(1));
        assert_eq!(snap.gauge(names::WAL_SPILL_DEPTH), Some(1));
        assert_eq!(snap.gauge(names::STORAGE_DEGRADED), Some(1));
        // The judgment still trains future queries (recorded volatile).
        assert_eq!(svc.log_sessions(), 21);

        // Admission control: spill depth 1 ≥ watermark 1 sheds new Opens.
        let resp = svc.handle(Request::Open {
            query: 0,
            scheme: SchemeKind::Euclidean,
        });
        assert_eq!(
            resp,
            Response::err(ServiceError::Overloaded {
                spilled_sessions: 1
            })
        );
        assert_eq!(
            svc.metrics_snapshot().counter(names::SHED_REQUESTS),
            Some(1)
        );

        // While the outage holds, SyncLog reports Degraded and keeps the
        // spill intact. Each failed attempt consumes op indices, so the
        // window eventually ends and a later SyncLog drains everything.
        let mut synced = None;
        for attempt in 0..40 {
            match svc.handle(Request::SyncLog) {
                Response::Synced {
                    spilled, compacted, ..
                } => {
                    synced = Some((attempt, spilled, compacted));
                    break;
                }
                Response::Error {
                    error: ServiceError::Degraded { .. },
                } => continue,
                other => panic!("unexpected SyncLog response: {other:?}"),
            }
        }
        let (attempt, spilled, compacted) = synced.expect("outage window must end");
        assert!(attempt > 0, "the first SyncLog lands inside the outage");
        assert_eq!(spilled, 0);
        assert!(compacted);
        let snap = svc.metrics_snapshot();
        assert_eq!(snap.gauge(names::WAL_SPILL_DEPTH), Some(0));
        assert_eq!(snap.gauge(names::STORAGE_DEGRADED), Some(0));
        assert!(snap.counter(names::WAL_COMPACTIONS).unwrap() >= 1);

        // Admission reopens once reconciled.
        assert!(matches!(
            svc.handle(Request::Open {
                query: 0,
                scheme: SchemeKind::Euclidean,
            }),
            Response::Opened { .. }
        ));

        // And the backfilled session is now genuinely crash-safe.
        drop(svc);
        mem.crash();
        let (svc, rec) = durable_service(mem.clone());
        assert_eq!(rec.recovered_sessions, 21, "spilled session was backfilled");
        assert_eq!(svc.log_sessions(), 21);
    }

    #[test]
    fn nonconverged_retrains_are_observable() {
        // Starve the solver: one SMO iteration cannot reach the KKT
        // tolerance, and the client plus the service counters must both
        // see it rather than an apparently exact ranking.
        let (ds, log) = dataset();
        let mut cfg = config();
        cfg.lrf.coupled.smo.max_iter = 1;
        let svc = Service::new(ds.db, log, cfg);
        let Response::Opened { session, screen } = svc.handle(Request::Open {
            query: 5,
            scheme: SchemeKind::RfSvm,
        }) else {
            panic!("open failed")
        };
        for &id in &screen {
            svc.handle(Request::Mark {
                session,
                image: id,
                relevant: svc.db().same_category(id, 5),
            });
        }
        let Response::Reranked { converged, .. } = svc.handle(Request::Rerank { session }) else {
            panic!("rerank failed")
        };
        assert!(!converged, "max_iter=1 must be reported as non-converged");
        let Response::Stats {
            nonconverged_retrains,
            ..
        } = svc.handle(Request::Stats)
        else {
            panic!("stats failed")
        };
        assert_eq!(nonconverged_retrains, 1);
        // A scheme that never trains always reports converged.
        let Response::Opened { session: eu, .. } = svc.handle(Request::Open {
            query: 0,
            scheme: SchemeKind::Euclidean,
        }) else {
            panic!("open failed")
        };
        let Response::Reranked { converged, .. } = svc.handle(Request::Rerank { session: eu })
        else {
            panic!("rerank failed")
        };
        assert!(converged);
    }
}
