//! Session residency: id allocation, LRU capacity eviction, idle TTL.
//!
//! The manager is the only structure the service locks globally, so it
//! does little under that lock: a `HashMap` of `Arc<Mutex<T>>` payloads
//! plus a **logical clock** that advances once per touch (insert or get).
//! Lookups are O(1); [`SessionManager::sweep`] and the LRU scan on an
//! over-capacity insert are O(resident sessions), bounded by the capacity
//! — cheap next to a single retrain, but not free; shard the manager if a
//! deployment ever raises the capacity by orders of magnitude. Both
//! eviction policies are defined against the logical clock, which makes
//! them deterministic — a property the lifecycle tests and the
//! bit-identical concurrency tests rely on. A wall-clock TTL, if a
//! deployment wants one, belongs in the transport layer where real time
//! lives.
//!
//! Payloads are handed out as `Arc<Mutex<T>>` so callers can release the
//! manager lock before doing session work: the expensive operations
//! (retraining a coupled SVM) run under the *session's* lock only, and
//! distinct sessions proceed in parallel.
//!
//! Evicted payloads are returned to the caller, never dropped silently —
//! the service flushes their judgments into the feedback log, so even an
//! abandoned session contributes its log vector (the paper's log grows
//! with every session, not just the politely closed ones).

use lrf_sync::{Arc, Mutex};
use std::collections::HashMap;

/// Why a session left the manager.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvictReason {
    /// The manager was at capacity and this was the least-recently-used
    /// session.
    Capacity,
    /// The session sat idle longer than the TTL.
    Idle,
}

/// A session pushed out by an eviction policy, with its payload so the
/// caller can salvage it (flush judgments to the log).
#[derive(Debug)]
pub struct Evicted<T> {
    /// The evicted session's id.
    pub id: u64,
    /// The session payload.
    pub payload: Arc<Mutex<T>>,
    /// Which policy evicted it.
    pub reason: EvictReason,
}

/// Why a lookup failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionGone {
    /// The id was issued earlier but the session was closed or evicted.
    Expired,
    /// The id was never issued.
    NeverExisted,
}

struct Entry<T> {
    payload: Arc<Mutex<T>>,
    /// Clock value of the last touch; unique per entry (the clock advances
    /// on every touch), so LRU order is total.
    last_used: u64,
}

/// Bounded, TTL-expiring session table keyed by monotonically increasing
/// session ids.
pub struct SessionManager<T> {
    entries: HashMap<u64, Entry<T>>,
    next_id: u64,
    clock: u64,
    capacity: usize,
    ttl: u64,
}

impl<T> SessionManager<T> {
    /// Creates a manager holding at most `capacity` sessions; a session
    /// idle for more than `ttl` touches (of any session) is expired by
    /// [`Self::sweep`]. `ttl == 0` disables the TTL.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, ttl: u64) -> Self {
        assert!(capacity > 0, "session capacity must be positive");
        Self {
            entries: HashMap::new(),
            next_id: 0,
            clock: 0,
            capacity,
            ttl,
        }
    }

    /// Number of resident sessions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no session is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The logical clock (touches so far) — exposed for diagnostics.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Inserts a new session and returns its id, plus any sessions the
    /// capacity policy pushed out (oldest `last_used` first).
    pub fn insert(&mut self, payload: T) -> (u64, Vec<Evicted<T>>) {
        let now = self.tick();
        let id = self.next_id;
        self.next_id += 1;
        self.entries.insert(
            id,
            Entry {
                payload: Arc::new(Mutex::new(payload)),
                last_used: now,
            },
        );
        let mut evicted = Vec::new();
        while self.entries.len() > self.capacity {
            let lru = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&id, _)| id)
                // lrf-lint: allow(service-panic): the loop condition just
                // proved len() > capacity >= 1, so the map is nonempty
                .expect("over-capacity map is nonempty");
            let entry = self
                .entries
                .remove(&lru)
                // lrf-lint: allow(service-panic): `lru` was produced by the
                // min scan over this map one statement ago, under &mut self
                .expect("lru id just found");
            evicted.push(Evicted {
                id: lru,
                payload: entry.payload,
                reason: EvictReason::Capacity,
            });
        }
        (id, evicted)
    }

    /// Looks a session up, refreshing its LRU position.
    pub fn get(&mut self, id: u64) -> Result<Arc<Mutex<T>>, SessionGone> {
        let now = self.tick();
        match self.entries.get_mut(&id) {
            Some(entry) => {
                entry.last_used = now;
                Ok(Arc::clone(&entry.payload))
            }
            None => Err(self.gone(id)),
        }
    }

    /// Removes a session (the close path — not an eviction).
    pub fn remove(&mut self, id: u64) -> Result<Arc<Mutex<T>>, SessionGone> {
        self.tick();
        match self.entries.remove(&id) {
            Some(entry) => Ok(entry.payload),
            None => Err(self.gone(id)),
        }
    }

    /// Expires every session idle for more than the TTL, returning them in
    /// ascending id order. A sweep advances the clock, so a caller that
    /// sweeps once per request gets "idle for N requests" TTL semantics
    /// even when the requests themselves touch no session.
    pub fn sweep(&mut self) -> Vec<Evicted<T>> {
        if self.ttl == 0 {
            return Vec::new();
        }
        let now = self.tick();
        let deadline = now.saturating_sub(self.ttl);
        let mut stale: Vec<u64> = self
            .entries
            .iter()
            .filter(|(_, e)| e.last_used < deadline)
            .map(|(&id, _)| id)
            .collect();
        stale.sort_unstable();
        stale
            .into_iter()
            .map(|id| {
                let entry = self
                    .entries
                    .remove(&id)
                    // lrf-lint: allow(service-panic): `stale` ids were
                    // collected from this map above, under &mut self
                    .expect("stale id just found");
                Evicted {
                    id,
                    payload: entry.payload,
                    reason: EvictReason::Idle,
                }
            })
            .collect()
    }

    /// Removes every resident session in ascending id order (service
    /// shutdown: flush everything).
    pub fn drain(&mut self) -> Vec<(u64, Arc<Mutex<T>>)> {
        let mut ids: Vec<u64> = self.entries.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter()
            .map(|id| {
                let entry = self
                    .entries
                    .remove(&id)
                    // lrf-lint: allow(service-panic): `ids` is the key set
                    // of this map, collected above under &mut self
                    .expect("id just listed");
                (id, entry.payload)
            })
            .collect()
    }

    /// Distinguishes "closed/evicted" from "never issued": ids are
    /// allocated monotonically, so any absent id below `next_id` was
    /// resident once.
    fn gone(&self, id: u64) -> SessionGone {
        if id < self.next_id {
            SessionGone::Expired
        } else {
            SessionGone::NeverExisted
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_monotonic_and_lookup_works() {
        let mut mgr: SessionManager<&'static str> = SessionManager::new(8, 0);
        let (a, ev) = mgr.insert("a");
        assert!(ev.is_empty());
        let (b, _) = mgr.insert("b");
        assert_eq!((a, b), (0, 1));
        assert_eq!(*mgr.get(a).unwrap().lock().unwrap(), "a");
        assert_eq!(mgr.len(), 2);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let mut mgr: SessionManager<u32> = SessionManager::new(2, 0);
        let (a, _) = mgr.insert(10);
        let (b, _) = mgr.insert(20);
        // Touch a so b becomes LRU.
        mgr.get(a).unwrap();
        let (c, evicted) = mgr.insert(30);
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].id, b);
        assert_eq!(evicted[0].reason, EvictReason::Capacity);
        assert_eq!(*evicted[0].payload.lock().unwrap(), 20);
        assert!(mgr.get(a).is_ok());
        assert!(mgr.get(c).is_ok());
        assert!(matches!(mgr.get(b), Err(SessionGone::Expired)));
    }

    #[test]
    fn ttl_sweep_expires_idle_sessions_only() {
        let mut mgr: SessionManager<u32> = SessionManager::new(8, 3);
        let (a, _) = mgr.insert(1); // touched at clock 1
        let (b, _) = mgr.insert(2); // touched at clock 2
        for _ in 0..4 {
            mgr.get(b).unwrap(); // clock 3..6, keeps b fresh
        }
        let evicted = mgr.sweep(); // ticks to 7; deadline 4: a (1) < 4 ≤ b (6)
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].id, a);
        assert_eq!(evicted[0].reason, EvictReason::Idle);
        assert!(mgr.get(b).is_ok());
        assert!(matches!(mgr.get(a), Err(SessionGone::Expired)));
    }

    #[test]
    fn zero_ttl_disables_sweeping() {
        let mut mgr: SessionManager<u32> = SessionManager::new(4, 0);
        let (a, _) = mgr.insert(1);
        for _ in 0..100 {
            mgr.insert(2);
        }
        // Way over any plausible deadline, but TTL is off — and capacity
        // already bounded residency.
        assert!(mgr.sweep().is_empty());
        let _ = a;
    }

    #[test]
    fn gone_distinguishes_expired_from_never_issued() {
        let mut mgr: SessionManager<u32> = SessionManager::new(2, 0);
        let (a, _) = mgr.insert(1);
        mgr.remove(a).unwrap();
        assert!(matches!(mgr.get(a), Err(SessionGone::Expired)));
        assert!(matches!(mgr.get(999), Err(SessionGone::NeverExisted)));
        assert!(matches!(mgr.remove(999), Err(SessionGone::NeverExisted)));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _: SessionManager<u32> = SessionManager::new(0, 0);
    }
}
