//! # lrf-service — the concurrent multi-session serving plane
//!
//! The paper's coupled-SVM scheme pays off when **many users** run feedback
//! sessions against **one shared database** and their sessions accumulate
//! into the log that future queries train on. This crate is that serving
//! plane, built on the zero-copy data plane underneath it:
//!
//! * one `Arc`-shared [`lrf_cbir::ImageDatabase`] + [`lrf_index::AnnIndex`]
//!   (the index shares the database's feature allocation via
//!   `build_shared` — the collection's features exist once in memory, no
//!   matter how many sessions are live);
//! * a [`lrf_logdb::DurableLogStore`]: sessions train on frozen log
//!   snapshots while completed sessions append concurrently (copy-on-write
//!   — a flush can never stall a query). Built with
//!   [`Service::with_durability`], every flush is fsynced into a
//!   checksummed WAL before the close is acknowledged, with a typed
//!   degradation path (retry → spill → shed, see [`durability`]) when
//!   storage fails;
//! * a [`SessionManager`]: each session is a resumable
//!   [`lrf_core::FeedbackLoop`] behind its own lock, with LRU capacity
//!   eviction and an idle TTL, both deterministic against a logical clock;
//! * a synchronous, serde-serializable [`Request`]/[`Response`] API
//!   ([`Service::handle`], or [`Service::handle_json`] for a string
//!   transport) so a network listener can be bolted on without touching
//!   the engine.
//!
//! ## Session lifecycle
//!
//! ```text
//! Open ──▶ initial screen (index top-k, content only)
//!   │  Mark*      (judgments accumulate; typed errors, never panics)
//!   │  Rerank     (retrain scheme on all judgments, re-rank candidate
//!   │              pool — bit-identical to the one-shot pooled path)
//!   │  Page*      (read slices of the current ranking)
//!   ▼
//! Close / evict ──▶ judgments flush into the shared log
//!                    └──▶ future sessions' log vectors (the paper's loop)
//! ```
//!
//! ## Example
//!
//! ```
//! use lrf_cbir::{collect_log, CorelDataset, CorelSpec};
//! use lrf_core::SchemeKind;
//! use lrf_logdb::SimulationConfig;
//! use lrf_service::{Request, Response, Service, ServiceConfig};
//!
//! let ds = CorelDataset::build(CorelSpec::tiny(3, 8, 7));
//! let log = collect_log(&ds.db, &SimulationConfig {
//!     n_sessions: 10, judged_per_session: 6, rounds_per_query: 2, noise: 0.1, seed: 1,
//! });
//! let svc = Service::new(ds.db, log, ServiceConfig::default());
//!
//! let Response::Opened { session, screen } =
//!     svc.handle(Request::Open { query: 0, scheme: SchemeKind::LrfCsvm })
//! else { unreachable!() };
//! for &id in &screen[..4] {
//!     svc.handle(Request::Mark { session, image: id, relevant: svc.db().same_category(id, 0) });
//! }
//! let Response::Reranked { page, .. } = svc.handle(Request::Rerank { session })
//! else { unreachable!() };
//! assert!(!page.is_empty());
//! svc.handle(Request::Close { session });
//! ```

pub mod api;
pub mod durability;
pub mod flush;
pub mod manager;
pub mod metrics;
pub mod net;
pub mod service;
pub mod shard;
pub mod wire;

pub use api::{Request, Response, ServiceError};
pub use durability::DurabilityConfig;
pub use flush::Flushable;
pub use manager::{EvictReason, Evicted, SessionGone, SessionManager};
pub use metrics::ServiceMetrics;
pub use net::{NetConfig, NetServer};
pub use service::{Service, ServiceConfig};
pub use shard::ShardedEngine;
pub use wire::{FrameMode, ParsedRequest, WireError, PROTO_VERSION};
