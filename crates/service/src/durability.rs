//! The service's durability policy: retry budgets, the spill queue, and
//! load-shedding admission control.
//!
//! The mechanisms live below this crate — `lrf-storage` owns the
//! checksummed WAL, `lrf-logdb` owns [`lrf_logdb::DurableLogStore`]'s
//! WAL-first recording. What the *service* decides is what to do when
//! storage misbehaves at flush time, and that policy is all here:
//!
//! 1. **Retry with bounded backoff.** A failed WAL append is retried up
//!    to [`DurabilityConfig::max_attempts`] times, sleeping a doubling
//!    backoff between attempts, bounded by a per-flush deadline read
//!    from the injected clock (so tests under a `ManualClock` never
//!    depend on wall time).
//! 2. **Graceful degradation.** When the budget is exhausted the session
//!    is recorded *volatile* (queries keep working, the judgment still
//!    trains future sessions) and parked in a bounded spill queue; the
//!    close is acknowledged with `durable: false` — never an error, and
//!    never a lie.
//! 3. **Load shedding.** Once the spill queue is past its watermark, new
//!    `Open`s are refused with a typed `Overloaded` error: accepting
//!    more feedback that cannot be made crash-safe only deepens the hole.
//! 4. **Reconciliation.** `Request::SyncLog` (or shutdown) drains the
//!    spill queue back into the WAL in record order and compacts, after
//!    which the degraded flag clears and admission reopens.

use std::collections::VecDeque;

use lrf_logdb::LogSession;
use lrf_sync::atomic::{AtomicBool, Ordering};
use lrf_sync::{Mutex, MutexExt};

/// Tuning knobs for the durable flush path. The defaults suit a real
/// deployment; tests shrink them (`backoff_ns: 0`, small attempt counts)
/// to keep fault-injection runs instant and deterministic.
#[derive(Clone, Copy, Debug)]
pub struct DurabilityConfig {
    /// WAL segment rotation threshold (see
    /// [`lrf_storage::wal::WalOptions::segment_bytes`]).
    pub segment_bytes: u64,
    /// Compact once this many segments have started in the current epoch
    /// (and the spill queue is empty). `0` disables auto-compaction;
    /// `SyncLog` still compacts explicitly.
    pub compact_segments: u64,
    /// WAL append attempts per flush (at least 1).
    pub max_attempts: u32,
    /// Sleep before the first retry; doubles per retry.
    pub backoff_ns: u64,
    /// Backoff ceiling.
    pub max_backoff_ns: u64,
    /// Give up retrying once this much clock time has passed since the
    /// flush started. `0` means no deadline (the attempt count is the
    /// only budget).
    pub deadline_ns: u64,
    /// Spill-queue capacity: sessions held in memory awaiting WAL
    /// backfill. Beyond this, failed flushes are volatile-only (counted,
    /// not queued).
    pub spill_capacity: usize,
    /// Shed new `Open`s once the spill queue reaches this depth.
    /// `0` disables shedding.
    pub shed_watermark: usize,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        Self {
            segment_bytes: 64 * 1024,
            compact_segments: 8,
            max_attempts: 3,
            backoff_ns: 1_000_000,       // 1 ms
            max_backoff_ns: 100_000_000, // 100 ms
            deadline_ns: 1_000_000_000,  // 1 s per flush
            spill_capacity: 1024,
            shed_watermark: 256,
        }
    }
}

/// Runtime durability state: the spill queue plus the degraded flag.
/// One per durable service; WAL-less services have none.
#[derive(Debug)]
pub(crate) struct Durability {
    pub(crate) config: DurabilityConfig,
    spill: Mutex<VecDeque<LogSession>>,
    degraded: AtomicBool,
}

impl Durability {
    pub(crate) fn new(config: DurabilityConfig) -> Self {
        Self {
            config,
            spill: Mutex::new(VecDeque::new()),
            degraded: AtomicBool::new(false),
        }
    }

    /// Sessions currently awaiting WAL backfill.
    pub(crate) fn spill_depth(&self) -> usize {
        self.spill.lock_recover().len()
    }

    /// Parks a session for later backfill; `false` if the queue is full
    /// (the session stays volatile-only).
    pub(crate) fn push_spill(&self, session: LogSession) -> bool {
        let mut spill = self.spill.lock_recover();
        if spill.len() >= self.config.spill_capacity {
            return false;
        }
        spill.push_back(session);
        true
    }

    /// Takes the oldest spilled session for draining.
    pub(crate) fn pop_spill(&self) -> Option<LogSession> {
        self.spill.lock_recover().pop_front()
    }

    /// Puts a session back at the front after a failed drain attempt
    /// (record order must be preserved).
    pub(crate) fn unpop_spill(&self, session: LogSession) {
        self.spill.lock_recover().push_front(session);
    }

    pub(crate) fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    pub(crate) fn set_degraded(&self, on: bool) {
        self.degraded.store(on, Ordering::Relaxed);
    }

    /// Whether admission control should refuse new sessions right now.
    pub(crate) fn should_shed(&self) -> bool {
        self.config.shed_watermark > 0 && self.spill_depth() >= self.config.shed_watermark
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrf_logdb::Relevance;

    fn session(id: usize) -> LogSession {
        LogSession::new(vec![(id, Relevance::from_bool(true))])
    }

    #[test]
    fn spill_queue_is_bounded_and_fifo() {
        let d = Durability::new(DurabilityConfig {
            spill_capacity: 2,
            ..DurabilityConfig::default()
        });
        assert!(d.push_spill(session(0)));
        assert!(d.push_spill(session(1)));
        assert!(
            !d.push_spill(session(2)),
            "capacity 2 must reject the third"
        );
        assert_eq!(d.spill_depth(), 2);
        let first = d.pop_spill().unwrap();
        assert!(first.iter().any(|(id, _)| id == 0));
        // A failed drain pushes back to the front, preserving order.
        d.unpop_spill(first);
        assert!(d.pop_spill().unwrap().iter().any(|(id, _)| id == 0));
    }

    #[test]
    fn shedding_follows_the_watermark() {
        let d = Durability::new(DurabilityConfig {
            spill_capacity: 8,
            shed_watermark: 2,
            ..DurabilityConfig::default()
        });
        assert!(!d.should_shed());
        d.push_spill(session(0));
        assert!(!d.should_shed());
        d.push_spill(session(1));
        assert!(d.should_shed());
        d.pop_spill();
        assert!(!d.should_shed());
        // Watermark 0 disables shedding outright.
        let never = Durability::new(DurabilityConfig {
            shed_watermark: 0,
            ..DurabilityConfig::default()
        });
        never.push_spill(session(0));
        assert!(!never.should_shed());
    }

    #[test]
    fn degraded_flag_toggles() {
        let d = Durability::new(DurabilityConfig::default());
        assert!(!d.is_degraded());
        d.set_degraded(true);
        assert!(d.is_degraded());
        d.set_degraded(false);
        assert!(!d.is_degraded());
    }
}
