//! Per-service observability: the registry, the clock, and the retained
//! instrument handles the request path records through.
//!
//! Each [`crate::Service`] owns one [`ServiceMetrics`] (registries are
//! per-instance, never global, so tests can assert exact counts under
//! parallel test threads). Handles are resolved once here; the request
//! path then records through lock-free atomics and never touches the
//! registry's name table.
//!
//! Stage timers read the injected [`Clock`]: a [`MonotonicClock`] in
//! production, a [`lrf_obs::ManualClock`] in tests (deterministic
//! latencies), or no clock at all in the [`ServiceMetrics::disabled`]
//! build — the baseline the CI overhead gate compares against. Event
//! counters are *always* live: they back the public `Stats` endpoint,
//! and a handful of relaxed atomic increments is noise next to a single
//! kernel evaluation.

use lrf_obs::{
    Clock, ClockRef, Counter, Gauge, Histogram, MonotonicClock, Registry, RegistrySnapshot,
    SpanTimer,
};
use lrf_sync::Arc;

/// Instrument names the service registers (one source of truth for the
/// endpoint's consumers; see the crate README's Observability section).
pub mod names {
    /// Requests handled, any kind, any outcome.
    pub const REQUESTS_TOTAL: &str = "requests_total";
    /// End-to-end `handle()` latency.
    pub const REQUEST_LATENCY: &str = "request_latency_ns";
    /// Session-table work per request (lookup / insert / remove).
    pub const STAGE_SESSION_LOOKUP: &str = "stage_session_lookup_ns";
    /// Coupled-SVM retrain + re-rank per `Rerank` request.
    pub const STAGE_RETRAIN: &str = "stage_retrain_ns";
    /// Candidate generation (initial screen ranking, rerank pooling).
    pub const STAGE_SCORING: &str = "stage_scoring_ns";
    /// Log flush per close / eviction that had judgments.
    pub const STAGE_FLUSH: &str = "stage_flush_ns";
    /// Sessions currently resident.
    pub const ACTIVE_SESSIONS: &str = "active_sessions";
    /// Sessions flushed into the log (closes + evictions with judgments).
    pub const FLUSHED_SESSIONS: &str = "flushed_sessions_total";
    /// Rerank rounds whose solver hit `max_iter`.
    pub const NONCONVERGED_RETRAINS: &str = "nonconverged_retrains_total";
    /// SMO iterations across all retrains.
    pub const SMO_ITERATIONS: &str = "smo_iterations_total";
    /// Kernel-row cache hits across all retrains.
    pub const KERNEL_CACHE_HITS: &str = "kernel_cache_hits_total";
    /// Kernel-row cache misses across all retrains.
    pub const KERNEL_CACHE_MISSES: &str = "kernel_cache_misses_total";
    /// ANN distance evaluations across all index queries.
    pub const ANN_DISTANCE_EVALS: &str = "ann_distance_evals_total";
    /// ANN candidates scored across all index queries.
    pub const ANN_CANDIDATES: &str = "ann_candidates_total";
    /// ANN inverted lists / hash buckets probed.
    pub const ANN_BUCKETS_PROBED: &str = "ann_buckets_probed_total";
    /// Log-store snapshots taken (adopted from the shared store).
    pub const LOG_SNAPSHOTS: &str = "log_snapshots_total";
    /// Log-store session appends (adopted from the shared store).
    pub const LOG_APPENDS: &str = "log_appends_total";
    /// Appends that copied the store because snapshots were outstanding.
    pub const LOG_COW_CLONES: &str = "log_cow_clones_total";
    /// Sessions durably appended to the judgment WAL (fsynced before ack).
    pub const WAL_APPENDS: &str = "wal_appends_total";
    /// WAL append attempts retried after a storage failure.
    pub const WAL_RETRIES: &str = "wal_retries_total";
    /// Flushes whose WAL append exhausted its retry/deadline budget and
    /// fell back to the volatile + spill path.
    pub const WAL_APPEND_FAILURES: &str = "wal_append_failures_total";
    /// Sessions parked in the spill queue awaiting WAL backfill.
    pub const WAL_SPILLED_SESSIONS: &str = "wal_spilled_sessions_total";
    /// Sessions the spill queue rejected because it was full (recorded in
    /// memory only — lost on crash until the next compaction).
    pub const WAL_SPILL_REJECTED: &str = "wal_spill_rejected_total";
    /// Requests shed by durability admission control.
    pub const SHED_REQUESTS: &str = "shed_requests_total";
    /// WAL snapshot compactions that committed.
    pub const WAL_COMPACTIONS: &str = "wal_compactions_total";
    /// Durable-flush stage latency: WAL append (with retries/backoff)
    /// plus the in-memory record, per flushed session.
    pub const STAGE_DURABLE_FLUSH: &str = "stage_durable_flush_ns";
    /// Current spill-queue depth.
    pub const WAL_SPILL_DEPTH: &str = "wal_spill_depth";
    /// 1 while the service is degraded (flushes bypassing the WAL).
    pub const STORAGE_DEGRADED: &str = "storage_degraded";
    /// Sessions recovered from disk at startup (snapshot + WAL replay).
    pub const RECOVERY_SESSIONS: &str = "recovery_sessions_total";
    /// Torn/corrupt WAL frame runs truncated during startup recovery.
    pub const RECOVERY_TRUNCATED_RECORDS: &str = "recovery_truncated_records_total";
    /// Bytes dropped with those truncated runs.
    pub const RECOVERY_TRUNCATED_BYTES: &str = "recovery_truncated_bytes_total";
    /// Transient read faults healed by re-reading a segment at startup.
    pub const RECOVERY_REREAD_RECOVERIES: &str = "recovery_reread_recoveries_total";
    /// Stale files (older epochs, leftover temp files) swept at startup.
    pub const RECOVERY_STALE_FILES: &str = "recovery_stale_files_removed_total";
    /// Jobs submitted to shard workers but not yet completed (scatter
    /// fan-out depth across all shards).
    pub const SHARD_QUEUE_DEPTH: &str = "shard_queue_depth";
    /// Jobs dispatched to shard workers (searches + scatter scorings).
    pub const SHARD_JOBS: &str = "shard_jobs_total";
    /// TCP connections the network listener accepted.
    pub const NET_CONNECTIONS: &str = "net_connections_total";
    /// HTTP requests the network listener served (any route, any status).
    pub const NET_REQUESTS: &str = "net_requests_total";
    /// HTTP requests rejected before dispatch (malformed head, unknown
    /// route, oversized body).
    pub const NET_BAD_REQUESTS: &str = "net_bad_requests_total";

    /// Per-shard search-stage latency histogram name (`shard{i}_search_ns`).
    pub fn shard_search_ns(shard: usize) -> String {
        format!("shard{shard}_search_ns")
    }

    /// Per-shard scoring-stage latency histogram name (`shard{i}_score_ns`).
    pub fn shard_score_ns(shard: usize) -> String {
        format!("shard{shard}_score_ns")
    }
}

/// A service instance's registry plus the handles its hot path records
/// through.
pub struct ServiceMetrics {
    registry: Registry,
    clock: ClockRef,
    /// Stage timers record only when true; counters always do.
    timed: bool,
    pub(crate) requests_total: Arc<Counter>,
    pub(crate) request_latency: Arc<Histogram>,
    pub(crate) stage_session_lookup: Arc<Histogram>,
    pub(crate) stage_retrain: Arc<Histogram>,
    pub(crate) stage_scoring: Arc<Histogram>,
    pub(crate) stage_flush: Arc<Histogram>,
    pub(crate) active_sessions: Arc<Gauge>,
    pub(crate) flushed_sessions: Arc<Counter>,
    pub(crate) nonconverged_retrains: Arc<Counter>,
    pub(crate) smo_iterations: Arc<Counter>,
    pub(crate) kernel_cache_hits: Arc<Counter>,
    pub(crate) kernel_cache_misses: Arc<Counter>,
    pub(crate) ann_distance_evals: Arc<Counter>,
    pub(crate) ann_candidates: Arc<Counter>,
    pub(crate) ann_buckets_probed: Arc<Counter>,
    pub(crate) wal_appends: Arc<Counter>,
    pub(crate) wal_retries: Arc<Counter>,
    pub(crate) wal_append_failures: Arc<Counter>,
    pub(crate) wal_spilled_sessions: Arc<Counter>,
    pub(crate) wal_spill_rejected: Arc<Counter>,
    pub(crate) shed_requests: Arc<Counter>,
    pub(crate) wal_compactions: Arc<Counter>,
    pub(crate) stage_durable_flush: Arc<Histogram>,
    pub(crate) wal_spill_depth: Arc<Gauge>,
    pub(crate) storage_degraded: Arc<Gauge>,
}

impl std::fmt::Debug for ServiceMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceMetrics")
            .field("timed", &self.timed)
            .field("requests_total", &self.requests_total.get())
            .finish_non_exhaustive()
    }
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceMetrics {
    /// Full instrumentation under the monotonic clock — what
    /// [`crate::Service::new`] installs.
    pub fn new() -> Self {
        Self::build(MonotonicClock::shared(), true)
    }

    /// Full instrumentation under an injected clock (a
    /// [`lrf_obs::ManualClock`] makes recorded latencies deterministic in
    /// tests).
    pub fn with_clock(clock: ClockRef) -> Self {
        Self::build(clock, true)
    }

    /// Event counters only — no clock reads, no latency histograms. The
    /// baseline build for the tracing-overhead benchmark.
    pub fn disabled() -> Self {
        // The clock is never read when untimed; Manual avoids even the
        // monotonic clock's startup read.
        Self::build(lrf_obs::ManualClock::shared(), false)
    }

    fn build(clock: ClockRef, timed: bool) -> Self {
        let registry = Registry::new();
        let requests_total = registry.counter(names::REQUESTS_TOTAL);
        let request_latency = registry.histogram(names::REQUEST_LATENCY);
        let stage_session_lookup = registry.histogram(names::STAGE_SESSION_LOOKUP);
        let stage_retrain = registry.histogram(names::STAGE_RETRAIN);
        let stage_scoring = registry.histogram(names::STAGE_SCORING);
        let stage_flush = registry.histogram(names::STAGE_FLUSH);
        let active_sessions = registry.gauge(names::ACTIVE_SESSIONS);
        let flushed_sessions = registry.counter(names::FLUSHED_SESSIONS);
        let nonconverged_retrains = registry.counter(names::NONCONVERGED_RETRAINS);
        let smo_iterations = registry.counter(names::SMO_ITERATIONS);
        let kernel_cache_hits = registry.counter(names::KERNEL_CACHE_HITS);
        let kernel_cache_misses = registry.counter(names::KERNEL_CACHE_MISSES);
        let ann_distance_evals = registry.counter(names::ANN_DISTANCE_EVALS);
        let ann_candidates = registry.counter(names::ANN_CANDIDATES);
        let ann_buckets_probed = registry.counter(names::ANN_BUCKETS_PROBED);
        let wal_appends = registry.counter(names::WAL_APPENDS);
        let wal_retries = registry.counter(names::WAL_RETRIES);
        let wal_append_failures = registry.counter(names::WAL_APPEND_FAILURES);
        let wal_spilled_sessions = registry.counter(names::WAL_SPILLED_SESSIONS);
        let wal_spill_rejected = registry.counter(names::WAL_SPILL_REJECTED);
        let shed_requests = registry.counter(names::SHED_REQUESTS);
        let wal_compactions = registry.counter(names::WAL_COMPACTIONS);
        let stage_durable_flush = registry.histogram(names::STAGE_DURABLE_FLUSH);
        let wal_spill_depth = registry.gauge(names::WAL_SPILL_DEPTH);
        let storage_degraded = registry.gauge(names::STORAGE_DEGRADED);
        Self {
            registry,
            clock,
            timed,
            requests_total,
            request_latency,
            stage_session_lookup,
            stage_retrain,
            stage_scoring,
            stage_flush,
            active_sessions,
            flushed_sessions,
            nonconverged_retrains,
            smo_iterations,
            kernel_cache_hits,
            kernel_cache_misses,
            ann_distance_evals,
            ann_candidates,
            ann_buckets_probed,
            wal_appends,
            wal_retries,
            wal_append_failures,
            wal_spilled_sessions,
            wal_spill_rejected,
            shed_requests,
            wal_compactions,
            stage_durable_flush,
            wal_spill_depth,
            storage_degraded,
        }
    }

    /// Whether stage timers are live (counters always are).
    pub fn is_timed(&self) -> bool {
        self.timed
    }

    /// The underlying registry (e.g. to adopt a component's counters).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Freezes every instrument into a serializable snapshot.
    pub fn snapshot(&self) -> RegistrySnapshot {
        self.registry.snapshot()
    }

    /// The injected clock.
    pub fn clock(&self) -> &dyn Clock {
        &*self.clock
    }

    /// A shareable handle to the injected clock, for components that time
    /// work on their own threads (shard workers) — `None` when untimed,
    /// so those components skip their stage timers exactly like the
    /// request path does.
    pub fn clock_ref(&self) -> Option<ClockRef> {
        self.timed.then(|| ClockRef::clone(&self.clock))
    }

    /// Starts a stage timer over `histogram`, or `None` when untimed
    /// (dropping `None` is free, so call sites stay branchless).
    pub(crate) fn time<'a>(&'a self, histogram: &'a Histogram) -> Option<SpanTimer<'a>> {
        self.timed
            .then(|| SpanTimer::start(&*self.clock, histogram))
    }

    /// Accounts one index query's [`lrf_index::SearchStats`].
    pub(crate) fn count_search(&self, stats: lrf_index::SearchStats) {
        self.ann_distance_evals.add(stats.distance_evals as u64);
        self.ann_candidates.add(stats.candidates as u64);
        self.ann_buckets_probed.add(stats.buckets_probed as u64);
    }

    /// Accounts a startup recovery's [`lrf_logdb::DurableRecovery`] —
    /// registered on demand, so WAL-less services don't carry recovery
    /// instruments they can never move.
    pub(crate) fn count_recovery(&self, r: &lrf_logdb::DurableRecovery) {
        self.registry
            .counter(names::RECOVERY_SESSIONS)
            .add(r.recovered_sessions);
        self.registry
            .counter(names::RECOVERY_TRUNCATED_RECORDS)
            .add(r.truncated_records);
        self.registry
            .counter(names::RECOVERY_TRUNCATED_BYTES)
            .add(r.truncated_bytes);
        self.registry
            .counter(names::RECOVERY_REREAD_RECOVERIES)
            .add(r.reread_recoveries);
        self.registry
            .counter(names::RECOVERY_STALE_FILES)
            .add(r.stale_files_removed);
    }

    /// Accounts one retrain round's [`lrf_core::RoundDiagnostics`].
    pub(crate) fn count_round(&self, d: &lrf_core::RoundDiagnostics) {
        self.smo_iterations.add(d.iterations as u64);
        self.kernel_cache_hits.add(d.cache_hits);
        self.kernel_cache_misses.add(d.cache_misses);
        if !d.converged {
            self.nonconverged_retrains.inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrf_obs::ManualClock;

    #[test]
    fn timed_metrics_record_spans_and_counts() {
        let clock = ManualClock::shared();
        let m = ServiceMetrics::with_clock(clock.clone());
        assert!(m.is_timed());
        {
            let _span = m.time(&m.request_latency);
            clock.advance(500);
        }
        m.requests_total.inc();
        let s = m.snapshot();
        assert_eq!(s.counter(names::REQUESTS_TOTAL), Some(1));
        let h = s.histogram(names::REQUEST_LATENCY).unwrap();
        assert_eq!((h.count, h.sum), (1, 500));
    }

    #[test]
    fn disabled_metrics_skip_timers_but_keep_counters() {
        let m = ServiceMetrics::disabled();
        assert!(!m.is_timed());
        assert!(m.time(&m.request_latency).is_none());
        m.flushed_sessions.inc();
        let s = m.snapshot();
        assert_eq!(s.histogram(names::REQUEST_LATENCY).unwrap().count, 0);
        assert_eq!(s.counter(names::FLUSHED_SESSIONS), Some(1));
    }

    #[test]
    fn recovery_accounting_registers_on_demand() {
        let m = ServiceMetrics::disabled();
        assert_eq!(m.snapshot().counter(names::RECOVERY_SESSIONS), None);
        m.count_recovery(&lrf_logdb::DurableRecovery {
            recovered_sessions: 5,
            truncated_records: 1,
            truncated_bytes: 3,
            ..Default::default()
        });
        let s = m.snapshot();
        assert_eq!(s.counter(names::RECOVERY_SESSIONS), Some(5));
        assert_eq!(s.counter(names::RECOVERY_TRUNCATED_RECORDS), Some(1));
        assert_eq!(s.counter(names::RECOVERY_TRUNCATED_BYTES), Some(3));
        assert_eq!(s.counter(names::RECOVERY_STALE_FILES), Some(0));
    }

    #[test]
    fn search_and_round_accounting_reach_the_registry() {
        let m = ServiceMetrics::disabled();
        m.count_search(lrf_index::SearchStats {
            distance_evals: 10,
            candidates: 7,
            buckets_probed: 2,
        });
        m.count_round(&lrf_core::RoundDiagnostics {
            converged: false,
            iterations: 42,
            cache_hits: 5,
            cache_misses: 3,
        });
        let s = m.snapshot();
        assert_eq!(s.counter(names::ANN_DISTANCE_EVALS), Some(10));
        assert_eq!(s.counter(names::ANN_CANDIDATES), Some(7));
        assert_eq!(s.counter(names::ANN_BUCKETS_PROBED), Some(2));
        assert_eq!(s.counter(names::SMO_ITERATIONS), Some(42));
        assert_eq!(s.counter(names::KERNEL_CACHE_HITS), Some(5));
        assert_eq!(s.counter(names::KERNEL_CACHE_MISSES), Some(3));
        assert_eq!(s.counter(names::NONCONVERGED_RETRAINS), Some(1));
    }
}
