//! The networked serving tier: a vendored, dependency-free HTTP/1.1
//! transport over [`std::net::TcpListener`].
//!
//! One acceptor thread feeds accepted connections to a fixed worker pool
//! over a channel; each worker runs a keep-alive request loop against the
//! shared [`Service`]:
//!
//! ```text
//!  clients ──TCP──▶ acceptor ──mpsc──▶ worker pool (N threads)
//!                                         │  POST /api      → Service::handle_wire
//!                                         │  GET  /metrics  → Prometheus text
//!                                         ▼
//!                                      Arc<Service> (sharded or flat)
//! ```
//!
//! The transport is deliberately minimal — request line + headers +
//! `Content-Length` body, keep-alive by default, `Connection: close`
//! honored — because the protocol surface lives one layer down in
//! [`crate::wire`] (versioned envelope, stable error codes, HTTP status
//! mapping). [`NetServer::shutdown`] is graceful: the listener stops,
//! workers finish their in-flight requests, and the service drains every
//! resident session through the durable-flush path
//! ([`Service::into_log`]) before the log store is handed back.

use crate::metrics::names;
use crate::service::Service;
use lrf_logdb::LogStore;
use lrf_obs::Counter;
use lrf_sync::atomic::{AtomicBool, Ordering};
use lrf_sync::{mpsc, Arc, Mutex, MutexExt};
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

/// Transport tuning knobs.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Bind address; port `0` picks an ephemeral port (see
    /// [`NetServer::addr`]).
    pub addr: String,
    /// Worker threads handling connections (min 1).
    pub workers: usize,
    /// Largest accepted request body; bigger requests get `400` and the
    /// connection is closed.
    pub max_body_bytes: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            max_body_bytes: 1 << 20,
        }
    }
}

/// A running network server over one [`Service`].
pub struct NetServer {
    /// `Some` until [`shutdown`](Self::shutdown) consumes it.
    service: Option<Arc<Service>>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

/// Transport counters, resolved once at boot.
struct NetCounters {
    requests: Arc<Counter>,
    bad_requests: Arc<Counter>,
}

impl NetServer {
    /// Binds `config.addr`, spawns the acceptor and worker pool, and
    /// starts serving `service`.
    ///
    /// # Errors
    /// Propagates the bind failure (address in use, permission).
    pub fn serve(service: Service, config: NetConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(config.addr.as_str())?;
        let addr = listener.local_addr()?;
        let service = Arc::new(service);
        let stop = Arc::new(AtomicBool::new(false));
        let registry = service.metrics().registry();
        let connections = registry.counter(names::NET_CONNECTIONS);
        let counters = || NetCounters {
            requests: registry.counter(names::NET_REQUESTS),
            bad_requests: registry.counter(names::NET_BAD_REQUESTS),
        };

        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let mut workers = Vec::with_capacity(config.workers.max(1));
        for _ in 0..config.workers.max(1) {
            let rx = Arc::clone(&conn_rx);
            let svc = Arc::clone(&service);
            let worker_stop = Arc::clone(&stop);
            let net = counters();
            let max_body = config.max_body_bytes;
            workers.push(std::thread::spawn(move || loop {
                let stream = rx.lock_recover().recv();
                match stream {
                    Ok(stream) => handle_connection(&svc, stream, &worker_stop, &net, max_body),
                    // Channel hung up: the acceptor exited, we're done.
                    Err(_) => break,
                }
            }));
        }

        let acceptor_stop = Arc::clone(&stop);
        let acceptor = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if acceptor_stop.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = stream {
                    connections.inc();
                    if conn_tx.send(stream).is_err() {
                        break;
                    }
                }
            }
            // conn_tx drops here; workers drain the backlog and exit.
        });

        Ok(Self {
            service: Some(service),
            addr,
            stop,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (with the real port when `addr` asked for `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service behind the listener (e.g. for metric assertions).
    pub fn service(&self) -> &Service {
        // lrf-lint: allow(service-panic): the field is `Some` for every
        // `&self` — only `shutdown(self)` takes it, consuming the server.
        self.service.as_deref().expect("server is running")
    }

    /// Graceful shutdown: stops accepting, lets workers finish their
    /// in-flight requests, then drains every resident session through
    /// the durable-flush path and returns the accumulated log store.
    /// `None` only if an outstanding [`Arc`] clone of the service exists
    /// (this module never hands one out).
    pub fn shutdown(mut self) -> Option<LogStore> {
        self.stop_threads();
        let service = self.service.take()?;
        Arc::try_unwrap(service).ok().map(Service::into_log)
    }

    /// Signals shutdown, wakes the blocked acceptor with a self-connect,
    /// and joins every thread. Idempotent.
    fn stop_threads(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = TcpStream::connect(self.addr);
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// One parsed HTTP request.
struct HttpRequest {
    method: String,
    path: String,
    body: String,
    /// The client asked for `Connection: close`.
    close: bool,
}

/// Why reading a request ended without one.
enum ReadEnd {
    /// Peer closed (or shutdown hit an idle connection): hang up quietly.
    Closed,
    /// Malformed head / oversized body: answer 400 and hang up.
    Malformed,
}

/// Serves one connection's keep-alive request loop.
fn handle_connection(
    service: &Service,
    stream: TcpStream,
    stop: &AtomicBool,
    net: &NetCounters,
    max_body: usize,
) {
    // A finite read timeout keeps idle keep-alive connections from
    // pinning workers across shutdown; the read loop retries on timeout
    // until data arrives or shutdown is signalled.
    if stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .is_err()
    {
        return;
    }
    // Responses are single writes; Nagle would only add delayed-ACK
    // stalls to the request-per-round-trip workload.
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(&stream);
    loop {
        match read_request(&mut reader, stop, max_body) {
            Ok(request) => {
                net.requests.inc();
                let (status, content_type, body) = route(service, &request, net);
                if write_response(&stream, status, content_type, &body, request.close).is_err() {
                    return;
                }
                if request.close {
                    return;
                }
            }
            Err(ReadEnd::Closed) => return,
            Err(ReadEnd::Malformed) => {
                net.bad_requests.inc();
                let _ = write_response(
                    &stream,
                    400,
                    "application/json",
                    "{\"error\":\"malformed_http_request\"}",
                    true,
                );
                return;
            }
        }
    }
}

/// Dispatches one request to its route.
fn route(
    service: &Service,
    request: &HttpRequest,
    net: &NetCounters,
) -> (u16, &'static str, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/api") => {
            let (body, status) = service.handle_wire(&request.body);
            (status, "application/json", body)
        }
        ("GET", "/metrics") => (
            200,
            "text/plain; version=0.0.4",
            service.metrics_prometheus(),
        ),
        _ => {
            net.bad_requests.inc();
            (
                404,
                "application/json",
                "{\"error\":\"not_found\"}".to_string(),
            )
        }
    }
}

/// Reads one full request (head + body) off the connection.
fn read_request(
    reader: &mut BufReader<&TcpStream>,
    stop: &AtomicBool,
    max_body: usize,
) -> Result<HttpRequest, ReadEnd> {
    // Request line — skipping stray blank lines between pipelined
    // requests, waiting out idle keep-alive timeouts.
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return Err(ReadEnd::Closed),
            Ok(_) => {
                if line.trim().is_empty() {
                    line.clear();
                    continue;
                }
                break;
            }
            Err(e) if is_timeout(&e) => {
                if stop.load(Ordering::SeqCst) {
                    return Err(ReadEnd::Closed);
                }
            }
            Err(_) => return Err(ReadEnd::Closed),
        }
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Err(ReadEnd::Malformed);
    };
    let (method, path) = (method.to_string(), path.to_string());

    // Headers until the blank line.
    let mut content_length = 0usize;
    let mut close = false;
    loop {
        let mut header = String::new();
        loop {
            match reader.read_line(&mut header) {
                Ok(0) => return Err(ReadEnd::Malformed),
                Ok(_) => break,
                Err(e) if is_timeout(&e) => {
                    if stop.load(Ordering::SeqCst) {
                        return Err(ReadEnd::Closed);
                    }
                }
                Err(_) => return Err(ReadEnd::Closed),
            }
        }
        let header = header.trim();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(ReadEnd::Malformed);
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            content_length = value.parse().map_err(|_| ReadEnd::Malformed)?;
        } else if name == "connection" && value.eq_ignore_ascii_case("close") {
            close = true;
        }
    }
    if content_length > max_body {
        return Err(ReadEnd::Malformed);
    }

    // Body: exactly Content-Length bytes, riding out read timeouts.
    let mut raw = vec![0u8; content_length];
    let mut filled = 0usize;
    while filled < content_length {
        match reader.read(&mut raw[filled..]) {
            Ok(0) => return Err(ReadEnd::Closed),
            Ok(n) => filled += n,
            Err(e) if is_timeout(&e) => {
                if stop.load(Ordering::SeqCst) {
                    return Err(ReadEnd::Closed);
                }
            }
            Err(_) => return Err(ReadEnd::Closed),
        }
    }
    let body = String::from_utf8(raw).map_err(|_| ReadEnd::Malformed)?;
    Ok(HttpRequest {
        method,
        path,
        body,
        close,
    })
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Writes one response frame.
fn write_response(
    mut stream: &TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    close: bool,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        409 => "Conflict",
        410 => "Gone",
        503 => "Service Unavailable",
        _ => "Status",
    };
    let connection = if close { "close" } else { "keep-alive" };
    // One write per response: head + body in a single segment, so the
    // reply never straddles a delayed ACK.
    let frame = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(frame.as_bytes())?;
    stream.flush()
}
