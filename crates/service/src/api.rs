//! The service wire format: serde-serializable requests, responses, and
//! typed errors.
//!
//! The API is a plain enum pair so any transport — an HTTP handler, a
//! message queue consumer, a CLI — can be bolted on by (de)serializing one
//! value per exchange ([`crate::Service::handle_json`] does exactly that).
//! Every failure mode is a [`ServiceError`] variant inside a normal
//! [`Response::Error`]; the service never panics on client input.

use lrf_core::{RoundError, SchemeKind};
use lrf_obs::RegistrySnapshot;
use serde::{Deserialize, Serialize};

/// One client request to the feedback service.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Request {
    /// Opens a feedback session: retrieve the initial content-based screen
    /// for `query` and start a session running `scheme`.
    Open {
        /// Query image id.
        query: usize,
        /// Relevance-feedback scheme the session retrains with.
        scheme: SchemeKind,
    },
    /// Records one relevance judgment in a session.
    Mark {
        /// Session id from [`Response::Opened`].
        session: u64,
        /// Judged image id.
        image: usize,
        /// The user's judgment.
        relevant: bool,
    },
    /// Retrains on everything marked so far and re-ranks the session's
    /// candidate pool.
    Rerank {
        /// Session id.
        session: u64,
    },
    /// Reads a page of the session's current ranking (initial screen order
    /// before the first rerank).
    Page {
        /// Session id.
        session: u64,
        /// Rank offset of the first id returned.
        offset: usize,
        /// Maximum ids returned (clamped to the ranking's tail).
        count: usize,
    },
    /// Ends a session, flushing its judgments into the feedback log.
    Close {
        /// Session id.
        session: u64,
    },
    /// Reconciles the durability backlog: drains sessions that were
    /// recorded volatile during a storage outage back into the WAL, then
    /// compacts. A no-op (immediately `Synced`) on a WAL-less service.
    SyncLog,
    /// Service-level counters.
    Stats,
    /// Full observability snapshot: every registered counter, gauge and
    /// per-stage latency histogram (see [`crate::metrics::names`]).
    Metrics,
    /// Health/readiness probe for load balancers: answered with
    /// [`Response::Pong`] carrying the protocol version, touching no
    /// session or storage state.
    Ping,
}

/// The service's answer to one [`Request`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Response {
    /// A session is open; `screen` is the initial content-based top-k the
    /// user judges first.
    Opened {
        /// The new session's id.
        session: u64,
        /// Initial screen (index-ranked nearest neighbors of the query).
        screen: Vec<usize>,
    },
    /// A judgment was recorded.
    Marked {
        /// Session id.
        session: u64,
        /// Judgments accumulated so far in this session.
        n_judged: usize,
    },
    /// The session retrained and re-ranked.
    Reranked {
        /// Session id.
        session: u64,
        /// Completed feedback rounds (1 after the first rerank).
        round: usize,
        /// The new top page (first `screen_size` ids of the ranking).
        page: Vec<usize>,
        /// Whether every solve of this round reached its KKT tolerance.
        /// `false` means some SVM hit its `max_iter` cap: the ranking is
        /// usable but approximate (schemes that never train always report
        /// `true`).
        converged: bool,
    },
    /// A page of the current ranking.
    Page {
        /// Session id.
        session: u64,
        /// The requested ranking slice.
        ids: Vec<usize>,
    },
    /// The session is closed.
    Closed {
        /// Session id.
        session: u64,
        /// Id of the flushed log session, or `None` if the user judged
        /// nothing (nothing to flush).
        log_session: Option<usize>,
        /// Whether the flushed judgments are crash-safe: `true` when the
        /// flush reached the fsynced WAL before this acknowledgement (or
        /// there was nothing to flush), `false` when storage was failing
        /// and the session is held in memory awaiting a
        /// [`Request::SyncLog`] drain.
        durable: bool,
    },
    /// The durability backlog was reconciled (see [`Request::SyncLog`]).
    Synced {
        /// Sessions still awaiting WAL backfill (0 after a full drain).
        spilled: usize,
        /// WAL segments started in the current epoch.
        wal_segments: u64,
        /// Whether a snapshot compaction ran as part of this sync.
        compacted: bool,
    },
    /// Service counters.
    Stats {
        /// Sessions currently resident.
        active_sessions: usize,
        /// Sessions accumulated in the feedback log.
        log_sessions: usize,
        /// Database size.
        n_images: usize,
        /// Sessions flushed into the log by this service instance (closes
        /// and evictions with at least one judgment).
        flushed_sessions: usize,
        /// Rerank rounds whose solver failed to converge (hit `max_iter`)
        /// since this instance started — a rising counter means the
        /// iteration budget is too small for the workload.
        nonconverged_retrains: usize,
    },
    /// The observability snapshot. Integer-only and order-stable, so it
    /// round-trips exactly through JSON; render it as Prometheus text with
    /// [`lrf_obs::prometheus::render`].
    Metrics {
        /// Every registered instrument, frozen.
        snapshot: RegistrySnapshot,
    },
    /// The service is alive and ready (see [`Request::Ping`]).
    Pong {
        /// The wire-protocol version this service speaks
        /// ([`crate::wire::PROTO_VERSION`]) — lets a rolling-upgrade load
        /// balancer discover each backend's protocol without a probe
        /// request that could fail for unrelated reasons.
        proto_version: u32,
    },
    /// The request failed; the session (if any) is otherwise unaffected.
    Error {
        /// What went wrong.
        error: ServiceError,
    },
}

impl Response {
    /// Wraps an error.
    pub fn err(error: ServiceError) -> Self {
        Response::Error { error }
    }
}

/// Every way a request can fail.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServiceError {
    /// The session id was never issued by this service.
    UnknownSession {
        /// The offending id.
        session: u64,
    },
    /// The session existed but was closed or evicted (LRU capacity or idle
    /// TTL) — the client must open a new one.
    SessionExpired {
        /// The expired id.
        session: u64,
    },
    /// The query image id is outside the database.
    UnknownQuery {
        /// The offending query id.
        query: usize,
        /// Database size.
        n_images: usize,
    },
    /// The judged image id is outside the database.
    UnknownImage {
        /// The offending image id.
        image: usize,
        /// Database size.
        n_images: usize,
    },
    /// The image was already judged in this session.
    DuplicateJudgment {
        /// The re-judged image id.
        image: usize,
    },
    /// The request could not be parsed (JSON transport only).
    BadRequest {
        /// Parser message.
        reason: String,
    },
    /// Admission control shed this request: the durability spill queue is
    /// past its watermark and accepting new sessions would grow the
    /// backlog of judgments that cannot currently be made crash-safe.
    /// Retry after storage recovers (a successful [`Request::SyncLog`]).
    Overloaded {
        /// Sessions awaiting WAL backfill when the request was shed.
        spilled_sessions: usize,
    },
    /// The operation needs healthy storage and storage is failing; state
    /// already acknowledged as durable is unaffected.
    Degraded {
        /// The underlying storage failure.
        reason: String,
    },
    /// The request frame declared a wire-protocol version this service
    /// does not speak (see [`crate::wire::PROTO_VERSION`]).
    UnsupportedVersion {
        /// The version the client asked for.
        requested: u32,
        /// The version this service speaks.
        supported: u32,
    },
}

impl ServiceError {
    /// The stable machine-readable code for this error — the string
    /// clients switch on. Codes are part of the wire contract: they never
    /// change once shipped (unlike `Display` text, which is for humans and
    /// may be reworded), and every code maps to one HTTP status
    /// ([`Self::http_status`]). The full table lives in the README's
    /// "Networked serving" section.
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::UnknownSession { .. } => "unknown_session",
            ServiceError::SessionExpired { .. } => "session_expired",
            ServiceError::UnknownQuery { .. } => "unknown_query",
            ServiceError::UnknownImage { .. } => "unknown_image",
            ServiceError::DuplicateJudgment { .. } => "duplicate_judgment",
            ServiceError::BadRequest { .. } => "bad_request",
            ServiceError::Overloaded { .. } => "overloaded",
            ServiceError::Degraded { .. } => "degraded",
            ServiceError::UnsupportedVersion { .. } => "unsupported_version",
        }
    }

    /// The HTTP status the transport maps this error to. Chosen so stock
    /// client policy does the right thing: 404/410/409/400 are terminal
    /// (don't retry the same request), 503 is retryable after backoff
    /// (storage outage or load shedding).
    pub fn http_status(&self) -> u16 {
        match self {
            ServiceError::UnknownSession { .. } => 404,
            ServiceError::SessionExpired { .. } => 410,
            ServiceError::UnknownQuery { .. } => 404,
            ServiceError::UnknownImage { .. } => 404,
            ServiceError::DuplicateJudgment { .. } => 409,
            ServiceError::BadRequest { .. } => 400,
            ServiceError::Overloaded { .. } => 503,
            ServiceError::Degraded { .. } => 503,
            ServiceError::UnsupportedVersion { .. } => 400,
        }
    }
}

impl From<RoundError> for ServiceError {
    fn from(e: RoundError) -> Self {
        match e {
            RoundError::UnknownImage { image, n_images } => {
                ServiceError::UnknownImage { image, n_images }
            }
            RoundError::DuplicateJudgment { image } => ServiceError::DuplicateJudgment { image },
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownSession { session } => write!(f, "unknown session {session}"),
            ServiceError::SessionExpired { session } => {
                write!(f, "session {session} was closed or evicted")
            }
            ServiceError::UnknownQuery { query, n_images } => {
                write!(f, "query {query} outside database of {n_images}")
            }
            ServiceError::UnknownImage { image, n_images } => {
                write!(f, "image {image} outside database of {n_images}")
            }
            ServiceError::DuplicateJudgment { image } => {
                write!(f, "image {image} already judged in this session")
            }
            ServiceError::BadRequest { reason } => write!(f, "bad request: {reason}"),
            ServiceError::Overloaded { spilled_sessions } => write!(
                f,
                "overloaded: {spilled_sessions} session(s) await durable storage"
            ),
            ServiceError::Degraded { reason } => {
                write!(f, "storage degraded: {reason}")
            }
            ServiceError::UnsupportedVersion {
                requested,
                supported,
            } => {
                write!(
                    f,
                    "unsupported protocol version {requested} (this service speaks {supported})"
                )
            }
        }
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip_through_json() {
        let reqs = vec![
            Request::Open {
                query: 3,
                scheme: SchemeKind::LrfCsvm,
            },
            Request::Mark {
                session: 7,
                image: 41,
                relevant: true,
            },
            Request::Rerank { session: 7 },
            Request::Page {
                session: 7,
                offset: 20,
                count: 10,
            },
            Request::Close { session: 7 },
            Request::SyncLog,
            Request::Stats,
            Request::Metrics,
            Request::Ping,
        ];
        for req in reqs {
            let json = serde_json::to_string(&req).unwrap();
            let back: Request = serde_json::from_str(&json).unwrap();
            assert_eq!(back, req, "{json}");
        }
    }

    #[test]
    fn responses_roundtrip_through_json() {
        let resps = vec![
            Response::Opened {
                session: 1,
                screen: vec![5, 2, 9],
            },
            Response::Closed {
                session: 1,
                log_session: Some(12),
                durable: true,
            },
            Response::Closed {
                session: 2,
                log_session: None,
                durable: false,
            },
            Response::Synced {
                spilled: 3,
                wal_segments: 2,
                compacted: true,
            },
            Response::err(ServiceError::SessionExpired { session: 4 }),
            Response::err(ServiceError::Overloaded {
                spilled_sessions: 17,
            }),
            Response::err(ServiceError::Degraded {
                reason: "injected fault: fsync error".into(),
            }),
            Response::err(ServiceError::UnsupportedVersion {
                requested: 9,
                supported: 1,
            }),
            Response::Pong { proto_version: 1 },
            Response::Reranked {
                session: 3,
                round: 2,
                page: vec![1, 0, 4],
                converged: false,
            },
            Response::Stats {
                active_sessions: 2,
                log_sessions: 150,
                n_images: 2000,
                flushed_sessions: 9,
                nonconverged_retrains: 1,
            },
            Response::Metrics {
                snapshot: {
                    let r = lrf_obs::Registry::new();
                    r.counter("requests_total").add(4);
                    r.gauge("active_sessions").set(2);
                    r.histogram("request_latency_ns").record(12_345);
                    r.snapshot()
                },
            },
        ];
        for resp in resps {
            let json = serde_json::to_string(&resp).unwrap();
            let back: Response = serde_json::from_str(&json).unwrap();
            assert_eq!(back, resp, "{json}");
        }
    }

    #[test]
    fn errors_display_and_convert() {
        let e: ServiceError = RoundError::DuplicateJudgment { image: 4 }.into();
        assert_eq!(e, ServiceError::DuplicateJudgment { image: 4 });
        assert!(e.to_string().contains("already judged"));
        let e: ServiceError = RoundError::UnknownImage {
            image: 99,
            n_images: 10,
        }
        .into();
        assert!(e.to_string().contains("outside database"));
        let e = ServiceError::Overloaded {
            spilled_sessions: 3,
        };
        assert!(e.to_string().contains("await durable storage"));
        let e = ServiceError::Degraded {
            reason: "fsync error".into(),
        };
        assert!(e.to_string().contains("storage degraded"));
        let e = ServiceError::UnsupportedVersion {
            requested: 9,
            supported: 1,
        };
        assert!(e.to_string().contains("unsupported protocol version 9"));
    }

    #[test]
    fn error_codes_are_stable_and_status_mapped() {
        // The wire contract: one stable code + one HTTP status per variant.
        // Changing any existing pair is a protocol break — this test is the
        // tripwire.
        let table: Vec<(ServiceError, &str, u16)> = vec![
            (
                ServiceError::UnknownSession { session: 1 },
                "unknown_session",
                404,
            ),
            (
                ServiceError::SessionExpired { session: 1 },
                "session_expired",
                410,
            ),
            (
                ServiceError::UnknownQuery {
                    query: 1,
                    n_images: 2,
                },
                "unknown_query",
                404,
            ),
            (
                ServiceError::UnknownImage {
                    image: 1,
                    n_images: 2,
                },
                "unknown_image",
                404,
            ),
            (
                ServiceError::DuplicateJudgment { image: 1 },
                "duplicate_judgment",
                409,
            ),
            (
                ServiceError::BadRequest { reason: "x".into() },
                "bad_request",
                400,
            ),
            (
                ServiceError::Overloaded {
                    spilled_sessions: 1,
                },
                "overloaded",
                503,
            ),
            (
                ServiceError::Degraded { reason: "x".into() },
                "degraded",
                503,
            ),
            (
                ServiceError::UnsupportedVersion {
                    requested: 2,
                    supported: 1,
                },
                "unsupported_version",
                400,
            ),
        ];
        let mut codes = std::collections::HashSet::new();
        for (err, code, status) in table {
            assert_eq!(err.code(), code);
            assert_eq!(err.http_status(), status);
            assert!(codes.insert(code), "duplicate error code {code}");
        }
    }
}
