//! The sharded scatter-gather engine: N shard workers over one database.
//!
//! At serving scale the two data-plane passes of every feedback round —
//! the ANN screen and the pool scoring — are embarrassingly parallel over
//! disjoint id ranges. This module slices the database into contiguous-id
//! [`FlatShard`]s (all views over the *one* `Arc`-shared feature matrix —
//! sharding copies no rows) and pins each to a dedicated worker thread fed
//! over a channel:
//!
//! ```text
//!                        ┌────────────────────────────────┐
//!   search(q, k) ───────▶│ coordinator (request thread)   │
//!   scatter_scores(...)  │   │ one job per shard          │
//!                        │   ▼                            │
//!                        │ mpsc ──▶ shard worker 0..N     │
//!                        │            FlatShard::search_d2│
//!                        │            scorer.score_ids    │
//!                        │   ◀── reply channel ──┘        │
//!                        │   ▼                            │
//!                        │ k-way merge (d², then √) /     │
//!                        │ stitch scores in pool order    │
//!                        └────────────────────────────────┘
//! ```
//!
//! **Bit-identity is the contract, not an aspiration.** Search merges
//! shard partials on *squared* distances with `(total_cmp(d²), id)`
//! ordering ([`lrf_index::merge_top_k`]), the same key the single-shard
//! [`lrf_index::FlatIndex`] uses internally, so the merged ranking is
//! bit-identical to the unsharded one — including duplicate-distance
//! tie-breaks that a post-`sqrt` merge would corrupt. Scoring relies on
//! the [`lrf_core::PoolScorer`] partition-invariance contract: stitching
//! per-shard score slices back in pool order equals scoring the pool in
//! one call. Both identities are asserted by tests and the E2E suite.

use crate::metrics::names;
use lrf_cbir::{build_flat_shards, ImageDatabase};
use lrf_core::ScorerRef;
use lrf_index::{merge_top_k, AnnIndex, FlatShard, Neighbor, SearchStats};
use lrf_logdb::LogStore;
use lrf_obs::{ClockRef, Counter, Gauge, Histogram, Registry, SpanTimer};
use lrf_sync::{mpsc, Arc, Mutex, MutexExt};

/// A shareable frozen feedback log — what shard workers score against
/// (the coordinator's per-round [`lrf_logdb::DurableLogStore::snapshot`]).
pub type LogRef = Arc<LogStore>;

/// One shard's search reply: `(shard index, top-k partial on squared
/// distances, scan stats)`.
type SearchReply = (usize, Vec<Neighbor>, SearchStats);

/// One unit of shard work. Every job carries its own reply sender, so
/// concurrent requests interleave freely on the same workers without any
/// response routing state.
enum ShardJob {
    /// Scan this shard for the query's top-k (squared distances).
    Search {
        query: Vec<f64>,
        k: usize,
        reply: mpsc::Sender<SearchReply>,
    },
    /// Score these global ids (all within the shard's range) under a
    /// trained scorer against a frozen log snapshot.
    Score {
        scorer: ScorerRef,
        log: LogRef,
        ids: Vec<usize>,
        reply: mpsc::Sender<(usize, Vec<f64>)>,
    },
}

/// The scatter-gather engine: shard worker threads plus the coordinator
/// operations that fan work out and merge it back. Implements
/// [`AnnIndex`], so a [`crate::Service`] can use it as a drop-in search
/// backend while also scattering its rerank scoring through
/// [`scatter_scores`](Self::scatter_scores).
pub struct ShardedEngine {
    n: usize,
    dim: usize,
    /// Rows per shard (every shard but possibly the last) — the id→shard
    /// map is `id / chunk` because shard ranges are equal contiguous
    /// chunks partitioning `0..n`.
    chunk: usize,
    n_shards: usize,
    /// Per-shard job feeds. `mpsc::Sender` is not `Sync`, so each sits
    /// behind a mutex; sends are tiny (one enum move) and per-request
    /// contention is one lock per shard.
    senders: Vec<Mutex<mpsc::Sender<ShardJob>>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    queue_depth: Arc<Gauge>,
    jobs_total: Arc<Counter>,
}

impl std::fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("n", &self.n)
            .field("n_shards", &self.n_shards)
            .finish_non_exhaustive()
    }
}

impl ShardedEngine {
    /// Spawns `n_shards` workers over `db` (clamped to the database
    /// size). Per-shard stage histograms (`shard{i}_search_ns`,
    /// `shard{i}_score_ns`), the shared queue-depth gauge and the job
    /// counter are registered in `registry`; `clock` of `None` disables
    /// the stage timers (counters stay live), mirroring
    /// [`crate::ServiceMetrics::disabled`].
    ///
    /// # Panics
    /// Panics if `db` is empty or `n_shards` is zero.
    pub fn new(
        db: Arc<ImageDatabase>,
        n_shards: usize,
        registry: &Registry,
        clock: Option<ClockRef>,
    ) -> Self {
        assert!(n_shards > 0, "shard count must be positive");
        assert!(!db.is_empty(), "cannot shard an empty database");
        let shards = build_flat_shards(&db, n_shards);
        let n_shards = shards.len();
        let chunk = shards[0].len();
        let queue_depth = registry.gauge(names::SHARD_QUEUE_DEPTH);
        let jobs_total = registry.counter(names::SHARD_JOBS);
        let mut senders = Vec::with_capacity(n_shards);
        let mut workers = Vec::with_capacity(n_shards);
        for (i, shard) in shards.into_iter().enumerate() {
            let (tx, rx) = mpsc::channel();
            senders.push(Mutex::new(tx));
            let search_ns = registry.histogram(&names::shard_search_ns(i));
            let score_ns = registry.histogram(&names::shard_score_ns(i));
            let worker_db = Arc::clone(&db);
            let worker_depth = Arc::clone(&queue_depth);
            let worker_clock = clock.clone();
            workers.push(std::thread::spawn(move || {
                worker_loop(
                    shard,
                    i,
                    worker_db,
                    rx,
                    search_ns,
                    score_ns,
                    worker_depth,
                    worker_clock,
                );
            }));
        }
        Self {
            n: db.len(),
            dim: db.dim(),
            chunk,
            n_shards,
            senders,
            workers,
            queue_depth,
            jobs_total,
        }
    }

    /// How many shard workers are running.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// The shard whose contiguous range holds `id`.
    fn shard_of(&self, id: usize) -> usize {
        debug_assert!(id < self.n, "id {id} out of range");
        id / self.chunk
    }

    fn dispatch(&self, shard: usize, job: ShardJob) {
        self.queue_depth.inc();
        self.jobs_total.inc();
        let sent = self.senders[shard].lock_recover().send(job);
        // A send can only fail if the worker thread is gone, which means
        // it panicked — an infrastructure failure the request cannot
        // recover from or route around.
        assert!(sent.is_ok(), "shard {shard} worker is gone");
    }

    /// Scatter-gather pool scoring: partitions `pool` by shard range,
    /// ships `(scorer, snapshot, ids)` to each involved worker, and
    /// stitches the per-shard score slices back **in pool order**. By the
    /// scorer's partition-invariance contract the result is bit-identical
    /// to `scorer.score_ids(db, log, pool)` on one thread.
    ///
    /// # Panics
    /// Panics if `pool` holds an out-of-range id or a worker died.
    pub fn scatter_scores(&self, scorer: &ScorerRef, log: &LogRef, pool: &[usize]) -> Vec<f64> {
        let mut positions: Vec<Vec<usize>> = vec![Vec::new(); self.n_shards];
        let mut shard_ids: Vec<Vec<usize>> = vec![Vec::new(); self.n_shards];
        for (pos, &id) in pool.iter().enumerate() {
            assert!(id < self.n, "pool id {id} out of range");
            let s = self.shard_of(id);
            positions[s].push(pos);
            shard_ids[s].push(id);
        }
        let (tx, rx) = mpsc::channel();
        let mut expected = 0usize;
        for (s, ids) in shard_ids.into_iter().enumerate() {
            if ids.is_empty() {
                continue;
            }
            expected += 1;
            self.dispatch(
                s,
                ShardJob::Score {
                    scorer: ScorerRef::clone(scorer),
                    log: LogRef::clone(log),
                    ids,
                    reply: tx.clone(),
                },
            );
        }
        drop(tx);
        let mut scores = vec![0.0; pool.len()];
        let mut received = 0usize;
        while let Ok((shard, slice)) = rx.recv() {
            assert_eq!(
                slice.len(),
                positions[shard].len(),
                "shard {shard} returned a misaligned score slice"
            );
            for (&pos, &score) in positions[shard].iter().zip(&slice) {
                scores[pos] = score;
            }
            received += 1;
        }
        assert_eq!(received, expected, "a shard worker died mid-scatter");
        scores
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        // Hang up every job feed first — workers exit their recv loop —
        // then join so no worker outlives the engine (and the shared
        // feature matrix it scans).
        self.senders.clear();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl AnnIndex for ShardedEngine {
    fn len(&self) -> usize {
        self.n
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn name(&self) -> &'static str {
        "sharded-flat"
    }

    fn search_with_stats(&self, query: &[f64], k: usize) -> (Vec<Neighbor>, SearchStats) {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let (tx, rx) = mpsc::channel();
        for s in 0..self.n_shards {
            self.dispatch(
                s,
                ShardJob::Search {
                    query: query.to_vec(),
                    k,
                    reply: tx.clone(),
                },
            );
        }
        drop(tx);
        let mut partials: Vec<Vec<(usize, f64)>> = vec![Vec::new(); self.n_shards];
        let mut stats = SearchStats::default();
        let mut received = 0usize;
        while let Ok((shard, partial, shard_stats)) = rx.recv() {
            partials[shard] = partial;
            stats.distance_evals += shard_stats.distance_evals;
            stats.candidates += shard_stats.candidates;
            stats.buckets_probed += shard_stats.buckets_probed;
            received += 1;
        }
        assert_eq!(received, self.n_shards, "a shard worker died mid-search");
        (merge_top_k(&partials, k), stats)
    }
}

/// One shard worker: drains its job feed until every sender is dropped
/// (engine drop), timing each stage when a clock is injected.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    shard: FlatShard,
    shard_idx: usize,
    db: Arc<ImageDatabase>,
    jobs: mpsc::Receiver<ShardJob>,
    search_ns: Arc<Histogram>,
    score_ns: Arc<Histogram>,
    queue_depth: Arc<Gauge>,
    clock: Option<ClockRef>,
) {
    while let Ok(job) = jobs.recv() {
        match job {
            ShardJob::Search { query, k, reply } => {
                let timer = clock
                    .as_ref()
                    .map(|c| SpanTimer::start(c.as_ref(), &search_ns));
                let (partial, stats) = shard.search_d2(&query, k);
                drop(timer);
                // Dec before replying: once the coordinator has every
                // reply, the queue gauge already reads drained.
                queue_depth.dec();
                let _ = reply.send((shard_idx, partial, stats));
            }
            ShardJob::Score {
                scorer,
                log,
                ids,
                reply,
            } => {
                let timer = clock
                    .as_ref()
                    .map(|c| SpanTimer::start(c.as_ref(), &score_ns));
                let scores = scorer.score_ids(&db, &log, &ids);
                drop(timer);
                queue_depth.dec();
                let _ = reply.send((shard_idx, scores));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrf_cbir::{build_flat_index, collect_log, CorelDataset, CorelSpec};
    use lrf_core::{LrfConfig, QueryContext, RelevanceFeedback, WarmState};
    use lrf_logdb::SimulationConfig;

    fn dataset() -> (CorelDataset, LogStore) {
        let ds = CorelDataset::build(CorelSpec::tiny(4, 12, 19));
        let log = collect_log(
            &ds.db,
            &SimulationConfig {
                n_sessions: 16,
                judged_per_session: 8,
                rounds_per_query: 2,
                noise: 0.1,
                seed: 23,
            },
        );
        (ds, log)
    }

    fn engine(db: &Arc<ImageDatabase>, n_shards: usize) -> ShardedEngine {
        ShardedEngine::new(
            Arc::clone(db),
            n_shards,
            &Registry::new(),
            Some(lrf_obs::ManualClock::shared()),
        )
    }

    #[test]
    fn sharded_search_is_bit_identical_to_flat() {
        let (ds, _) = dataset();
        let flat = build_flat_index(&ds.db);
        let db = Arc::new(ds.db);
        for n_shards in [1usize, 2, 5] {
            let eng = engine(&db, n_shards);
            for q in [0usize, 7, 23, db.len() - 1] {
                for k in [1usize, 10, db.len()] {
                    let got = eng.search(db.feature(q), k);
                    let want = flat.search(db.feature(q), k);
                    assert_eq!(got, want, "shards={n_shards} q={q} k={k}");
                }
            }
        }
    }

    #[test]
    fn sharded_stats_account_every_row_once() {
        let (ds, _) = dataset();
        let db = Arc::new(ds.db);
        let eng = engine(&db, 3);
        let (_, stats) = eng.search_with_stats(db.feature(0), 5);
        assert_eq!(stats.distance_evals, db.len());
        assert_eq!(stats.candidates, db.len());
        assert_eq!(stats.buckets_probed, 3, "one bucket per shard");
    }

    #[test]
    fn scatter_scores_match_single_threaded_scoring() {
        let (ds, log) = dataset();
        let db = Arc::new(ds.db);
        let log = Arc::new(log);
        // Train a real scorer exactly like the service does.
        let scheme = lrf_core::LrfCsvm::new(LrfConfig {
            n_unlabeled: 8,
            ..LrfConfig::default()
        });
        let example = lrf_cbir::FeedbackExample {
            query: 5,
            labeled: vec![(5, 1.0), (6, 1.0), (7, 1.0), (30, -1.0), (31, -1.0)],
        };
        let ctx = QueryContext {
            db: &db,
            log: &log,
            example: &example,
        };
        let pool: Vec<usize> = (0..db.len()).step_by(3).collect();
        let mut warm = WarmState::default();
        let scorer = scheme
            .fit_warm(&ctx, &pool, &mut warm)
            .expect("LRF-CSVM trains a scorer");
        let direct = scorer.score_ids(&db, &log, &pool);
        for n_shards in [1usize, 2, 5] {
            let eng = engine(&db, n_shards);
            let scattered = eng.scatter_scores(&scorer, &log, &pool);
            assert_eq!(scattered, direct, "shards={n_shards}");
        }
    }

    #[test]
    fn shard_instruments_record_work_and_queue_drains() {
        let (ds, _) = dataset();
        let db = Arc::new(ds.db);
        let registry = Registry::new();
        let eng = ShardedEngine::new(
            Arc::clone(&db),
            2,
            &registry,
            Some(lrf_obs::ManualClock::shared()),
        );
        eng.search(db.feature(0), 4);
        eng.search(db.feature(1), 4);
        let snap = registry.snapshot();
        assert_eq!(snap.counter(names::SHARD_JOBS), Some(4));
        assert_eq!(snap.gauge(names::SHARD_QUEUE_DEPTH), Some(0));
        for i in 0..2 {
            let h = snap.histogram(&names::shard_search_ns(i)).unwrap();
            assert_eq!(h.count, 2, "shard {i} search histogram");
        }
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let (ds, _) = dataset();
        let db = Arc::new(ds.db);
        let eng = engine(&db, 4);
        eng.search(db.feature(2), 3);
        drop(eng);
        // The database (and its shared matrix) is still usable afterwards.
        assert!(!db.is_empty());
    }
}
