//! The versioned wire envelope — framing for networked transports.
//!
//! A transport exchange is one JSON document per direction. Two request
//! forms are accepted:
//!
//! * **Envelope** (preferred): `{"v": 1, "id": 7, "body": <Request>}`.
//!   `v` is the protocol version ([`PROTO_VERSION`]); `id` is an opaque
//!   client-chosen correlation id echoed back verbatim, so clients may
//!   pipeline requests over one connection and match responses by id.
//!   The reply is `{"v": 1, "id": 7, "code": "ok" | <error code>,
//!   "body": <Response>}` — `code` duplicates the error's stable
//!   [`ServiceError::code`] at the frame level so clients can branch
//!   without destructuring the body.
//! * **Legacy**: the bare [`Request`] enum JSON the in-process
//!   [`crate::Service::handle_json`] has always accepted. The reply is the
//!   bare [`Response`] enum, unchanged — existing clients keep working.
//!
//! The two forms cannot collide: every legacy request is either a JSON
//! string (`"Stats"`) or an object whose single key is a `Request` variant
//! name, and `"v"` is not a variant name. An envelope with an unknown
//! version is rejected with the typed
//! [`ServiceError::UnsupportedVersion`] — never silently parsed as
//! something else — so the protocol can evolve by bumping [`PROTO_VERSION`]
//! without old servers misreading new frames.

use crate::api::{Request, Response, ServiceError};
use serde::{Deserialize, Serialize, Value};

/// The wire-protocol version this build speaks. Bump on any change to the
/// frame layout or to the meaning of an existing field; adding new
/// `Request`/`Response` variants is backward-compatible and does not bump.
pub const PROTO_VERSION: u32 = 1;

/// How a request was framed — decides how its response must be framed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameMode {
    /// Bare `Request` enum JSON; reply with bare `Response` enum JSON.
    Legacy,
    /// `{v, id, body}` envelope; reply with a `{v, id, code, body}` frame
    /// echoing this correlation id.
    Envelope {
        /// The client's correlation id, echoed back verbatim.
        id: u64,
    },
}

/// A successfully parsed wire request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsedRequest {
    /// The framing the client used.
    pub mode: FrameMode,
    /// The request itself.
    pub body: Request,
}

/// A wire-level failure, carrying the best-known framing so the error
/// response can still be framed the way the client expects (an envelope
/// client gets an envelope error with its correlation id when the id was
/// readable).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Framing to render the error response in.
    pub mode: FrameMode,
    /// The typed error.
    pub error: ServiceError,
}

/// Parses one wire request, auto-detecting envelope vs. legacy framing.
pub fn parse_request(raw: &str) -> Result<ParsedRequest, WireError> {
    let value: Value = match serde_json::from_str(raw) {
        Ok(v) => v,
        Err(e) => {
            return Err(WireError {
                mode: FrameMode::Legacy,
                error: ServiceError::BadRequest {
                    reason: e.to_string(),
                },
            })
        }
    };

    let is_envelope = matches!(&value, Value::Object(_)) && value.get("v").is_some();
    if !is_envelope {
        // Legacy bare-enum form.
        return match Request::from_value(&value) {
            Ok(body) => Ok(ParsedRequest {
                mode: FrameMode::Legacy,
                body,
            }),
            Err(e) => Err(WireError {
                mode: FrameMode::Legacy,
                error: ServiceError::BadRequest {
                    reason: e.to_string(),
                },
            }),
        };
    }

    // The correlation id is read before version validation so even an
    // unsupported-version error can be correlated by the client.
    let id = value.get("id").and_then(Value::as_u64);
    let mode = FrameMode::Envelope {
        id: id.unwrap_or(0),
    };

    let Some(v) = value.get("v").and_then(Value::as_u64) else {
        return Err(WireError {
            mode,
            error: ServiceError::BadRequest {
                reason: "envelope field \"v\" must be a non-negative integer".into(),
            },
        });
    };
    if v != u64::from(PROTO_VERSION) {
        return Err(WireError {
            mode,
            error: ServiceError::UnsupportedVersion {
                requested: u32::try_from(v).unwrap_or(u32::MAX),
                supported: PROTO_VERSION,
            },
        });
    }
    if id.is_none() {
        return Err(WireError {
            mode,
            error: ServiceError::BadRequest {
                reason: "envelope field \"id\" must be a non-negative integer".into(),
            },
        });
    }
    let Some(body) = value.get("body") else {
        return Err(WireError {
            mode,
            error: ServiceError::BadRequest {
                reason: "envelope is missing the \"body\" field".into(),
            },
        });
    };
    match Request::from_value(body) {
        Ok(body) => Ok(ParsedRequest { mode, body }),
        Err(e) => Err(WireError {
            mode,
            error: ServiceError::BadRequest {
                reason: e.to_string(),
            },
        }),
    }
}

/// Renders a response in the framing the request used: the bare enum for
/// legacy requests (byte-identical to what `handle_json` always returned),
/// or a `{v, id, code, body}` frame for envelope requests.
pub fn render_response(mode: FrameMode, response: &Response) -> String {
    let value = match mode {
        FrameMode::Legacy => response.to_value(),
        FrameMode::Envelope { id } => {
            let code = match response {
                Response::Error { error } => error.code(),
                _ => "ok",
            };
            Value::Object(vec![
                ("v".into(), Value::U64(u64::from(PROTO_VERSION))),
                ("id".into(), Value::U64(id)),
                ("code".into(), Value::Str(code.into())),
                ("body".into(), response.to_value()),
            ])
        }
    };
    // lrf-lint: allow(service-panic): serializing an owned value tree is
    // infallible; a failure here is a serializer bug, not client input.
    serde_json::to_string(&value).expect("response serialization is infallible")
}

/// The HTTP status a transport maps `response` to: errors carry their
/// per-code status ([`ServiceError::http_status`]); everything else is 200.
pub fn http_status(response: &Response) -> u16 {
    match response {
        Response::Error { error } => error.http_status(),
        _ => 200,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrf_core::SchemeKind;

    #[test]
    fn legacy_requests_parse_unchanged() {
        let parsed = parse_request(r#"{"Open": {"query": 9, "scheme": "RfSvm"}}"#).unwrap();
        assert_eq!(parsed.mode, FrameMode::Legacy);
        assert_eq!(
            parsed.body,
            Request::Open {
                query: 9,
                scheme: SchemeKind::RfSvm
            }
        );
        let parsed = parse_request("\"Stats\"").unwrap();
        assert_eq!(parsed.mode, FrameMode::Legacy);
        assert_eq!(parsed.body, Request::Stats);
    }

    #[test]
    fn legacy_responses_render_as_the_bare_enum() {
        let resp = Response::Pong {
            proto_version: PROTO_VERSION,
        };
        let legacy = render_response(FrameMode::Legacy, &resp);
        assert_eq!(legacy, serde_json::to_string(&resp).unwrap());
    }

    #[test]
    fn envelope_roundtrips_with_correlation_id() {
        let raw = r#"{"v": 1, "id": 42, "body": {"Rerank": {"session": 3}}}"#;
        let parsed = parse_request(raw).unwrap();
        assert_eq!(parsed.mode, FrameMode::Envelope { id: 42 });
        assert_eq!(parsed.body, Request::Rerank { session: 3 });

        let rendered = render_response(
            parsed.mode,
            &Response::Pong {
                proto_version: PROTO_VERSION,
            },
        );
        let frame: Value = serde_json::from_str(&rendered).unwrap();
        assert_eq!(frame.get("v").and_then(Value::as_u64), Some(1));
        assert_eq!(frame.get("id").and_then(Value::as_u64), Some(42));
        assert_eq!(frame.get("code"), Some(&Value::Str("ok".into())));
        let body: Response = Response::from_value(frame.get("body").unwrap()).unwrap();
        assert_eq!(
            body,
            Response::Pong {
                proto_version: PROTO_VERSION
            }
        );
    }

    #[test]
    fn unknown_version_is_a_typed_rejection_with_the_client_id() {
        let err = parse_request(r#"{"v": 9, "id": 7, "body": "Stats"}"#).unwrap_err();
        assert_eq!(err.mode, FrameMode::Envelope { id: 7 });
        assert_eq!(
            err.error,
            ServiceError::UnsupportedVersion {
                requested: 9,
                supported: PROTO_VERSION
            }
        );
        // The rendered error frame carries the stable code.
        let rendered = render_response(err.mode, &Response::err(err.error));
        let frame: Value = serde_json::from_str(&rendered).unwrap();
        assert_eq!(
            frame.get("code"),
            Some(&Value::Str("unsupported_version".into()))
        );
        assert_eq!(frame.get("id").and_then(Value::as_u64), Some(7));
    }

    #[test]
    fn malformed_envelopes_are_bad_requests() {
        for raw in [
            r#"{"v": "one", "id": 1, "body": "Stats"}"#,
            r#"{"v": 1, "body": "Stats"}"#,
            r#"{"v": 1, "id": 1}"#,
            r#"{"v": 1, "id": 1, "body": {"Nope": null}}"#,
        ] {
            let err = parse_request(raw).unwrap_err();
            assert!(
                matches!(err.error, ServiceError::BadRequest { .. }),
                "{raw} -> {:?}",
                err.error
            );
        }
        // Garbage that is not JSON at all stays a legacy-framed bad request.
        let err = parse_request("definitely not json").unwrap_err();
        assert_eq!(err.mode, FrameMode::Legacy);
        assert!(matches!(err.error, ServiceError::BadRequest { .. }));
    }

    #[test]
    fn status_mapping_follows_the_error_table() {
        assert_eq!(http_status(&Response::Pong { proto_version: 1 }), 200);
        assert_eq!(
            http_status(&Response::err(ServiceError::UnknownSession { session: 1 })),
            404
        );
        assert_eq!(
            http_status(&Response::err(ServiceError::Overloaded {
                spilled_sessions: 2
            })),
            503
        );
    }
}
