//! Flush-at-most-once tombstone for session payloads.
//!
//! When a session leaves the manager (close, LRU eviction, TTL expiry) its
//! judgments are flushed into the shared log. Removal and flush are not one
//! atomic step, and a racing request may still hold the payload's `Arc`
//! from a lookup that preceded the removal — so exactly-once flushing and
//! expired-session visibility both hinge on one bit checked and set under
//! the payload's own lock. [`Flushable`] packages that bit with the payload
//! so the protocol is a type, not a convention: [`Flushable::close`] yields
//! the payload exactly once, and accessors return `None` afterwards, which
//! callers translate to `SessionExpired`.
//!
//! This tiny wrapper is the exact subject of the model-checked invariants
//! in `tests/model_lifecycle.rs` (exactly-once flush, no detached-session
//! mutation) — and of the seeded-bug test that compiles the guard out via
//! `--cfg lrf_seeded_bug` to prove the checker catches the double flush.

/// A payload that can be closed (taken for flushing) at most once.
#[derive(Debug)]
pub struct Flushable<T> {
    value: T,
    closed: bool,
}

impl<T> Flushable<T> {
    /// Wraps an open payload.
    pub fn new(value: T) -> Self {
        Self {
            value,
            closed: false,
        }
    }

    /// Whether [`Self::close`] has already been called.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Shared access while open; `None` once closed.
    pub fn get(&self) -> Option<&T> {
        (!self.closed).then_some(&self.value)
    }

    /// Mutable access while open; `None` once closed. The expired-session
    /// guarantee lives here: a request that raced a close/evict and still
    /// holds the payload's `Arc` gets `None` instead of mutating a
    /// detached session whose judgments would silently miss the log.
    pub fn get_mut(&mut self) -> Option<&mut T> {
        (!self.closed).then_some(&mut self.value)
    }

    /// Closes the payload, yielding it for the flush — exactly once. The
    /// second and every later call returns `None`, which is what makes
    /// racing close/evict/expiry paths idempotent.
    pub fn close(&mut self) -> Option<&mut T> {
        // Seeded-bug hole (`--cfg lrf_seeded_bug`, never set in shipping
        // builds): compiling the guard out re-introduces the double-flush
        // race so the model checker's teeth can be demonstrated against
        // the real service code.
        #[cfg(not(lrf_seeded_bug))]
        if self.closed {
            return None;
        }
        self.closed = true;
        Some(&mut self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn close_yields_exactly_once() {
        let mut f = Flushable::new(7);
        assert!(!f.is_closed());
        assert_eq!(f.close(), Some(&mut 7));
        assert!(f.is_closed());
        #[cfg(not(lrf_seeded_bug))]
        assert_eq!(f.close(), None);
    }

    #[test]
    fn accessors_expire_with_the_close() {
        let mut f = Flushable::new(String::from("s"));
        assert!(f.get().is_some());
        f.get_mut().unwrap().push('x');
        f.close();
        assert_eq!(f.get(), None);
        assert_eq!(f.get_mut(), None);
    }
}
