//! Property test for the serving tier's scatter-gather contract: the
//! sharded engine's k-way merged ranking is **bit-identical** to the
//! single-shard flat reference — for shard counts 1, 2, and 5, at every
//! `k`, including duplicate-distance tie-breaks.
//!
//! Features are drawn from a 3-letter alphabet so duplicate rows (and
//! therefore exactly-equal distances) are common; the merge must resolve
//! those ties by image id exactly as the flat scan does, or rankings
//! diverge between deployments that differ only in shard topology.

use lrf_cbir::{build_flat_index, ImageDatabase};
use lrf_index::AnnIndex;
use lrf_obs::Registry;
use lrf_service::ShardedEngine;
use lrf_sync::Arc;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_ranking_bit_identical_to_flat(
        // 4-dim rows over {0.0, 0.5, 1.0}: collisions guaranteed.
        levels in proptest::collection::vec(0usize..3, 4 * 17),
        k in 1usize..24,
        qpick in 0usize..17,
    ) {
        let dim = 4;
        let features: Vec<Vec<f64>> = levels
            .chunks(dim)
            .map(|row| row.iter().map(|&v| v as f64 * 0.5).collect())
            .collect();
        let n = features.len();
        let categories = (0..n).map(|i| i % 3).collect();
        let db = Arc::new(ImageDatabase::from_features(features, categories));
        let query = db.feature(qpick % n).to_vec();

        let flat = build_flat_index(&db);
        let expected = flat.search(&query, k);
        prop_assert_eq!(expected.len(), k.min(n));

        for n_shards in [1usize, 2, 5] {
            let engine =
                ShardedEngine::new(Arc::clone(&db), n_shards, &Registry::new(), None);
            let merged = engine.search(&query, k);
            prop_assert_eq!(
                &merged, &expected,
                "merged ranking diverged from flat reference at {} shards", n_shards
            );
        }
    }
}
