//! Model-checked session-lifecycle invariants.
//!
//! These tests drive the service's real concurrency building blocks — the
//! [`SessionManager`] table, the [`Flushable`] tombstone, and the
//! copy-on-write [`lrf_logdb::SharedLogStore`] — through the vendored
//! loom-style checker, which explores every interleaving of their lock and
//! `Arc` operations within a bounded-preemption schedule space. The
//! harness reproduces `Service`'s exact flush protocol (lock payload →
//! `close()` → record to log) without the learning stack, so each explored
//! execution costs microseconds instead of a retrain.
//!
//! Invariants covered (the other one, snapshot tearing, lives in
//! `lrf-logdb`'s model tests):
//!
//! * **(a) exactly-once flush**: a judged session's judgments reach the
//!   log exactly once under racing close / capacity-evict / TTL-expiry.
//! * **(b) expired visibility**: a request racing an eviction observes
//!   `SessionExpired` (here: `Err`), never a mutation of a detached
//!   session — equivalently, the flushed log session contains exactly the
//!   acknowledged judgments.
//!
//! The `seeded_bug_*` test proves the checker has teeth: built with
//! `RUSTFLAGS="--cfg lrf_seeded_bug"` (which compiles out the tombstone
//! guard in `Flushable::close`), it asserts the checker **does** find the
//! double flush; built normally, it asserts the protocol is clean.

use lrf_logdb::{LogSession, Relevance, SharedLogStore};
use lrf_service::manager::{SessionGone, SessionManager};
use lrf_service::Flushable;
use lrf_sync::{Arc, Mutex, MutexExt};

/// `Service` in miniature: same table, same tombstone, same log protocol;
/// the payload is just the count of acknowledged marks.
struct Harness {
    sessions: Mutex<SessionManager<Flushable<usize>>>,
    log: SharedLogStore,
}

type Payload = Arc<Mutex<Flushable<usize>>>;

impl Harness {
    fn new(capacity: usize, ttl: u64) -> Self {
        Self {
            sessions: Mutex::new(SessionManager::new(capacity, ttl)),
            log: SharedLogStore::new(8),
        }
    }

    /// `Service::open`: insert, then flush whatever capacity pushed out.
    fn open(&self) -> u64 {
        let (id, evicted) = self.sessions.lock_recover().insert(Flushable::new(0));
        for e in evicted {
            self.flush(&e.payload);
        }
        id
    }

    /// `Service::mark`: resolve the payload under the global lock, then
    /// judge under the session lock — `Err` if the session is gone or
    /// tombstoned. The harness also asserts the failure is *expiry*: a
    /// session the manager issued must never read as never-existing.
    fn mark(&self, id: u64) -> Result<(), ()> {
        let payload: Payload = match self.sessions.lock_recover().get(id) {
            Ok(p) => p,
            Err(gone) => {
                assert_eq!(gone, SessionGone::Expired, "issued id misreported");
                return Err(());
            }
        };
        let mut guard = payload.lock_recover();
        match guard.get_mut() {
            Some(count) => {
                *count += 1;
                Ok(())
            }
            None => Err(()),
        }
    }

    /// `Service::close`: remove from the table, flush the payload.
    fn close(&self, id: u64) {
        let removed = self.sessions.lock_recover().remove(id);
        if let Ok(payload) = removed {
            self.flush(&payload);
        }
    }

    /// The TTL path of `Service::handle`: sweep, flush the expired.
    fn sweep(&self) {
        let expired = self.sessions.lock_recover().sweep();
        for e in expired {
            self.flush(&e.payload);
        }
    }

    /// `Service::flush` verbatim: tombstone under the payload lock, then
    /// record the acknowledged judgments; empty sessions flush nothing.
    fn flush(&self, payload: &Payload) -> Option<usize> {
        let mut guard = payload.lock_recover();
        let count = *guard.close()?;
        if count == 0 {
            return None;
        }
        let session = LogSession::new(
            (0..count)
                .map(|i| (i, Relevance::from_bool(true)))
                .collect(),
        );
        Some(self.log.record(session))
    }

    fn log_sessions(&self) -> usize {
        self.log.n_sessions()
    }

    /// Judgments in the single flushed log session.
    fn flushed_judgments(&self) -> usize {
        let snap = self.log.snapshot();
        assert_eq!(snap.n_sessions(), 1, "expected exactly one flushed session");
        snap.session(0).len()
    }
}

/// Invariant (a): one judged session, three concurrent ways out — explicit
/// close, TTL expiry (sweeps), LRU capacity eviction (a new open on a
/// full table). Whatever interleaving wins, the judgments land in the log
/// exactly once.
#[test]
fn close_evict_and_ttl_expiry_flush_exactly_once() {
    loom::explore(|| {
        let h = Arc::new(Harness::new(1, 1));
        let s = h.open();
        h.mark(s).expect("fresh session accepts judgments");
        let closer = {
            let h = Arc::clone(&h);
            loom::thread::spawn(move || h.close(s))
        };
        let sweeper = {
            let h = Arc::clone(&h);
            // Each sweep ticks the logical clock, so by the third sweep
            // the session is past its TTL if nothing else removed it.
            loom::thread::spawn(move || {
                h.sweep();
                h.sweep();
                h.sweep();
            })
        };
        // Capacity 1: this open evicts the judged session if it is still
        // resident.
        let _s2 = h.open();
        closer.join().unwrap();
        sweeper.join().unwrap();
        assert_eq!(h.log_sessions(), 1, "flushed not-exactly-once");
        assert_eq!(h.flushed_judgments(), 1);
    })
    .expect("racing close/evict/TTL must flush exactly once");
}

/// Invariant (b): a mark racing the close either lands before the flush
/// (and is in the flushed log session) or observes expiry (and is not) —
/// never a mutation of the detached state. The flushed judgment count
/// equaling the acknowledged count is exactly that dichotomy.
#[test]
fn racing_mark_is_acknowledged_iff_flushed() {
    loom::explore(|| {
        let h = Arc::new(Harness::new(4, 0));
        let s = h.open();
        h.mark(s).expect("fresh session accepts judgments");
        let racer = {
            let h = Arc::clone(&h);
            loom::thread::spawn(move || h.mark(s).is_ok())
        };
        h.close(s);
        let acked = 1 + usize::from(racer.join().unwrap());
        assert_eq!(h.log_sessions(), 1);
        assert_eq!(
            h.flushed_judgments(),
            acked,
            "acknowledged judgments and flushed judgments diverged"
        );
    })
    .expect("a racing mark must be acknowledged iff its judgment is flushed");
}

/// Checker teeth. The scenario is the one documented on
/// `Service::flush`: an eviction in flight holds the payload `Arc` while
/// a close races it, and both flush — `Flushable::close`'s tombstone
/// guard makes the second flush a no-op.
///
/// Built normally, the protocol is clean and the exploration must pass.
/// Built with `--cfg lrf_seeded_bug` (CI's teeth job), the guard is
/// compiled out and this test instead asserts the checker *catches* the
/// double flush — proving a green model run means something.
#[test]
fn seeded_bug_double_flush_is_caught_by_the_checker() {
    let result = loom::explore(|| {
        let h = Arc::new(Harness::new(4, 0));
        let s = h.open();
        h.mark(s).expect("fresh session accepts judgments");
        // An eviction path that already pulled the payload out of the
        // table races the close path below.
        let payload: Payload = h.sessions.lock_recover().get(s).unwrap();
        let evictor = {
            let h = Arc::clone(&h);
            loom::thread::spawn(move || {
                h.flush(&payload);
            })
        };
        h.close(s);
        evictor.join().unwrap();
        assert_eq!(h.log_sessions(), 1, "judgments flushed more than once");
    });
    #[cfg(not(lrf_seeded_bug))]
    {
        result.expect("with the tombstone guard, racing flushes are exactly-once");
    }
    #[cfg(lrf_seeded_bug)]
    {
        let violation =
            result.expect_err("the checker must catch the double flush once the guard is gone");
        assert!(
            violation.message.contains("flushed more than once"),
            "checker caught the wrong violation: {violation}"
        );
    }
}
