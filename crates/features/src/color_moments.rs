//! HSV color moments — the paper's color descriptor.
//!
//! "We extract 3 moments: color mean, color variance and color skewness in
//! each color channel (H, S, and V), respectively. Thus, 9-dimensional color
//! moment is adopted as the color feature."
//!
//! Following the standard color-moment formulation (Stricker & Orengo), the
//! second moment is reported as the **standard deviation** and the third as
//! the **signed cube root** of the third central moment, so all nine
//! components share the scale of the underlying channel.

use lrf_imaging::color::rgb_to_hsv;
use lrf_imaging::RgbImage;

/// Number of color-moment dimensions (3 moments × 3 channels).
pub const DIMS: usize = 9;

/// Extracts the 9-D color-moment descriptor, laid out as
/// `[mean_h, std_h, skew_h, mean_s, std_s, skew_s, mean_v, std_v, skew_v]`.
pub fn color_moments(img: &RgbImage) -> [f64; DIMS] {
    let n = img.len() as f64;
    debug_assert!(n > 0.0);

    // Single pass to accumulate channel values; HSV conversion dominates.
    let mut sums = [0.0f64; 3];
    let mut hsv_buf: Vec<[f32; 3]> = Vec::with_capacity(img.len());
    for &px in img.pixels() {
        let hsv = rgb_to_hsv(px);
        let trip = [hsv.h, hsv.s, hsv.v];
        for c in 0..3 {
            sums[c] += f64::from(trip[c]);
        }
        hsv_buf.push(trip);
    }
    let means = [sums[0] / n, sums[1] / n, sums[2] / n];

    let mut m2 = [0.0f64; 3];
    let mut m3 = [0.0f64; 3];
    for trip in &hsv_buf {
        for c in 0..3 {
            let d = f64::from(trip[c]) - means[c];
            m2[c] += d * d;
            m3[c] += d * d * d;
        }
    }

    let mut out = [0.0f64; DIMS];
    for c in 0..3 {
        out[3 * c] = means[c];
        out[3 * c + 1] = (m2[c] / n).sqrt();
        out[3 * c + 2] = signed_cbrt(m3[c] / n);
    }
    out
}

/// Cube root that preserves sign (`f64::cbrt` already does, but the helper
/// documents the intent and guards against NaN from `-0.0` pathologies).
#[inline]
fn signed_cbrt(v: f64) -> f64 {
    if v == 0.0 {
        0.0
    } else {
        v.cbrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrf_imaging::color::Hsv;

    #[test]
    fn constant_image_has_zero_spread() {
        let img = RgbImage::filled(8, 8, Hsv::new(0.3, 0.7, 0.9).to_rgb());
        let m = color_moments(&img);
        // std and skew are zero in all channels
        for c in 0..3 {
            assert!(m[3 * c + 1].abs() < 1e-9, "std ch{c} = {}", m[3 * c + 1]);
            assert!(m[3 * c + 2].abs() < 1e-9, "skew ch{c} = {}", m[3 * c + 2]);
        }
        // means match the fill color (within 8-bit quantization)
        assert!((m[0] - 0.3).abs() < 0.01);
        assert!((m[3] - 0.7).abs() < 0.01);
        assert!((m[6] - 0.9).abs() < 0.01);
    }

    #[test]
    fn two_tone_image_means_and_std() {
        // Half black (v=0), half white (v=1): V mean 0.5, V std 0.5.
        let mut img = RgbImage::new(2, 1);
        img.set(0, 0, [0, 0, 0]);
        img.set(1, 0, [255, 255, 255]);
        let m = color_moments(&img);
        assert!((m[6] - 0.5).abs() < 1e-6, "v mean {}", m[6]);
        assert!((m[7] - 0.5).abs() < 1e-6, "v std {}", m[7]);
        // Symmetric two-point distribution has zero skew.
        assert!(m[8].abs() < 1e-6, "v skew {}", m[8]);
    }

    #[test]
    fn skew_sign_tracks_asymmetry() {
        // Three dark pixels, one bright: V distribution skews right (+).
        let mut img = RgbImage::filled(4, 1, [10, 10, 10]);
        img.set(3, 0, [250, 250, 250]);
        let m = color_moments(&img);
        assert!(m[8] > 0.0, "expected positive v-skew, got {}", m[8]);

        // Inverse: mostly bright, one dark → negative skew.
        let mut img2 = RgbImage::filled(4, 1, [250, 250, 250]);
        img2.set(0, 0, [10, 10, 10]);
        let m2 = color_moments(&img2);
        assert!(m2[8] < 0.0, "expected negative v-skew, got {}", m2[8]);
    }

    #[test]
    fn hue_channel_separates_red_and_cyan() {
        let red = RgbImage::filled(4, 4, [255, 0, 0]);
        let cyan = RgbImage::filled(4, 4, [0, 255, 255]);
        let mr = color_moments(&red);
        let mc = color_moments(&cyan);
        assert!((mr[0] - 0.0).abs() < 1e-3);
        assert!((mc[0] - 0.5).abs() < 1e-3);
    }

    #[test]
    fn descriptor_is_translation_invariant_in_space() {
        // Color moments ignore pixel positions: permuting pixels leaves the
        // descriptor unchanged.
        let mut a = RgbImage::new(2, 2);
        a.set(0, 0, [10, 200, 30]);
        a.set(1, 0, [200, 10, 90]);
        a.set(0, 1, [5, 5, 5]);
        a.set(1, 1, [130, 130, 220]);
        let mut b = RgbImage::new(2, 2);
        b.set(0, 0, [130, 130, 220]);
        b.set(1, 0, [5, 5, 5]);
        b.set(0, 1, [200, 10, 90]);
        b.set(1, 1, [10, 200, 30]);
        let ma = color_moments(&a);
        let mb = color_moments(&b);
        for (x, y) in ma.iter().zip(&mb) {
            assert!((x - y).abs() < 1e-12);
        }
    }
}
