//! Wavelet-entropy texture descriptor — the paper's texture feature.
//!
//! "We perform the Discrete Wavelet Transformation (DWT) on the gray images
//! employing a Daubechies-4 wavelet filter ... we perform 3-level
//! decompositions and obtain 10 subimages ... [the approximation] is
//! discarded ... For the other 9 subimages, we compute the entropy of each
//! subimage respectively. Therefore, we obtain a 9-dimensional wavelet-based
//! texture feature."
//!
//! Entropy here is the Shannon entropy of the **energy distribution** of a
//! subband: `p_i = c_i² / Σc²`, `H = −Σ p_i ln p_i` (the standard "wavelet
//! entropy"). A subband with all-zero coefficients has `H = 0` by
//! convention. High entropy ⇒ energy spread over many coefficients
//! (noise-like texture); low entropy ⇒ energy concentrated (strong regular
//! pattern or flat region).

use lrf_imaging::wavelet::dwt2d_multilevel;
use lrf_imaging::{GrayImage, RgbImage};

/// Number of texture dimensions (3 levels × {LH, HL, HH}).
pub const DIMS: usize = 9;

/// Default decomposition depth used by the paper.
pub const LEVELS: usize = 3;

/// Shannon entropy of the energy distribution of a coefficient block.
pub fn band_entropy(band: &GrayImage) -> f64 {
    let total: f64 = band
        .as_slice()
        .iter()
        .map(|&c| f64::from(c) * f64::from(c))
        .sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut h = 0.0f64;
    for &c in band.as_slice() {
        let e = f64::from(c) * f64::from(c);
        if e > 0.0 {
            let p = e / total;
            h -= p * p.ln();
        }
    }
    h
}

/// Computes the 9-D wavelet-entropy descriptor of a gray image, ordered
/// `[lh1, hl1, hh1, lh2, hl2, hh2, lh3, hl3, hh3]` (level 1 = finest).
///
/// # Panics
/// Panics if the image dimensions are not divisible by `2^LEVELS` (= 8) or
/// are too small for the transform (the synthetic corpus always satisfies
/// this; arbitrary inputs should be resized/cropped first).
pub fn wavelet_texture(img: &GrayImage) -> [f64; DIMS] {
    let pyramid = dwt2d_multilevel(img, LEVELS);
    let mut out = [0.0f64; DIMS];
    for (i, band) in pyramid.detail_bands().enumerate() {
        out[i] = band_entropy(band);
    }
    out
}

/// RGB convenience wrapper (grayscale conversion included).
pub fn wavelet_texture_rgb(img: &RgbImage) -> [f64; DIMS] {
    wavelet_texture(&img.to_gray())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn flat_image_has_zero_entropy_everywhere() {
        let img = GrayImage::filled(32, 32, 0.7);
        let t = wavelet_texture(&img);
        for (i, &e) in t.iter().enumerate() {
            assert!(e.abs() < 1e-6, "band {i} entropy {e}");
        }
    }

    #[test]
    fn entropy_nonnegative_and_bounded_by_log_n() {
        let mut rng = StdRng::seed_from_u64(5);
        let data: Vec<f32> = (0..32 * 32).map(|_| rng.gen_range(0.0..1.0)).collect();
        let img = GrayImage::from_vec(32, 32, data);
        let t = wavelet_texture(&img);
        // Finest band is 16x16 = 256 coefficients → H ≤ ln 256.
        for (i, &e) in t.iter().enumerate() {
            assert!(e >= 0.0);
            let n = match i / 3 {
                0 => 256.0f64,
                1 => 64.0,
                _ => 16.0,
            };
            assert!(e <= n.ln() + 1e-9, "band {i} entropy {e} exceeds ln({n})");
        }
    }

    #[test]
    fn noise_has_higher_entropy_than_single_step() {
        let mut rng = StdRng::seed_from_u64(11);
        let noise = GrayImage::from_vec(
            32,
            32,
            (0..1024).map(|_| rng.gen_range(0.0f32..1.0)).collect(),
        );
        let mut step = GrayImage::new(32, 32);
        for y in 0..32 {
            for x in 16..32 {
                step.set(x, y, 1.0);
            }
        }
        let tn = wavelet_texture(&noise);
        let ts = wavelet_texture(&step);
        // Finest-level entropy: noise spreads energy, the step concentrates
        // it on one column of coefficients.
        assert!(tn[0] > ts[0], "noise {} <= step {}", tn[0], ts[0]);
    }

    #[test]
    fn stripes_orientation_separates_bands() {
        // Horizontal stripes (vary along y) excite HL; vertical stripes
        // excite LH. Their descriptors must differ noticeably.
        let mut horiz = GrayImage::new(32, 32);
        for y in 0..32 {
            let v = if (y / 2) % 2 == 0 { 1.0 } else { 0.0 };
            for x in 0..32 {
                horiz.set(x, y, v);
            }
        }
        let mut vert = GrayImage::new(32, 32);
        for y in 0..32 {
            for x in 0..32 {
                let v = if (x / 2) % 2 == 0 { 1.0 } else { 0.0 };
                vert.set(x, y, v);
            }
        }
        let th = wavelet_texture(&horiz);
        let tv = wavelet_texture(&vert);
        let dist: f64 = th
            .iter()
            .zip(&tv)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 0.5, "orientations should separate, dist={dist}");
    }

    #[test]
    fn entropy_is_scale_invariant() {
        // p_i = c_i²/Σc² is invariant to multiplying all coefficients by a
        // constant, so doubling image contrast leaves the descriptor intact.
        let mut rng = StdRng::seed_from_u64(2);
        let base: Vec<f32> = (0..1024).map(|_| rng.gen_range(0.0..0.5)).collect();
        let img1 = GrayImage::from_vec(32, 32, base.clone());
        let img2 = GrayImage::from_vec(32, 32, base.iter().map(|v| v * 2.0).collect());
        let t1 = wavelet_texture(&img1);
        let t2 = wavelet_texture(&img2);
        for (a, b) in t1.iter().zip(&t2) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn rgb_wrapper_matches_gray_path() {
        let mut img = RgbImage::new(32, 32);
        for y in 0..32 {
            for x in 0..32 {
                let v = ((x * 7 + y * 13) % 256) as u8;
                img.set(x, y, [v, v, v]);
            }
        }
        let a = wavelet_texture_rgb(&img);
        let b = wavelet_texture(&img.to_gray());
        assert_eq!(a, b);
    }
}
