//! The combined 36-D feature pipeline.
//!
//! Concatenation order matches the paper's presentation: color (9), edge
//! (18), texture (9). [`FeatureExtractor`] carries the Canny parameters so
//! a database is guaranteed to be extracted under one consistent setting.

use crate::color_moments::{self, color_moments};
use crate::edge_histogram::{self, edge_direction_histogram};
use crate::texture::{self, wavelet_texture};
use lrf_imaging::canny::CannyParams;
use lrf_imaging::RgbImage;
use serde::{Deserialize, Serialize};

/// Dimensions contributed by the color-moment descriptor.
pub const COLOR_DIMS: usize = color_moments::DIMS;
/// Dimensions contributed by the edge-direction histogram.
pub const EDGE_DIMS: usize = edge_histogram::BINS;
/// Dimensions contributed by the wavelet-entropy texture descriptor.
pub const TEXTURE_DIMS: usize = texture::DIMS;
/// Total feature dimensionality (36).
pub const TOTAL_DIMS: usize = COLOR_DIMS + EDGE_DIMS + TEXTURE_DIMS;

/// A raw (pre-normalization) 36-D feature vector.
pub type FeatureVector = Vec<f64>;

/// Extracts the full 36-D descriptor of §6.2 from RGB images.
#[derive(Clone, Debug, Serialize, Deserialize, Default)]
pub struct FeatureExtractor {
    /// Canny parameters used for the edge histogram.
    pub canny: CannyParamsConfig,
}

/// Serializable mirror of [`CannyParams`] (the imaging type intentionally
/// stays serde-free; this config is what experiment manifests persist).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CannyParamsConfig {
    /// Gaussian pre-smoothing σ.
    pub sigma: f32,
    /// Low hysteresis threshold ratio.
    pub low_ratio: f32,
    /// High hysteresis threshold ratio.
    pub high_ratio: f32,
}

impl Default for CannyParamsConfig {
    fn default() -> Self {
        let p = CannyParams::default();
        Self {
            sigma: p.sigma,
            low_ratio: p.low_ratio,
            high_ratio: p.high_ratio,
        }
    }
}

impl From<CannyParamsConfig> for CannyParams {
    fn from(c: CannyParamsConfig) -> Self {
        CannyParams {
            sigma: c.sigma,
            low_ratio: c.low_ratio,
            high_ratio: c.high_ratio,
        }
    }
}

impl FeatureExtractor {
    /// Extracts the concatenated `[color | edge | texture]` descriptor.
    ///
    /// # Panics
    /// Panics if the image dimensions are unsuitable for a 3-level DWT
    /// (must be divisible by 8 and at least 16×16).
    pub fn extract(&self, img: &RgbImage) -> FeatureVector {
        let mut out = Vec::with_capacity(TOTAL_DIMS);
        out.extend_from_slice(&color_moments(img));
        let gray = img.to_gray();
        out.extend_from_slice(&edge_direction_histogram(&gray, self.canny.into()));
        out.extend_from_slice(&wavelet_texture(&gray));
        debug_assert_eq!(out.len(), TOTAL_DIMS);
        out
    }

    /// Extracts features for a whole image slice, preserving order.
    pub fn extract_all(&self, images: &[RgbImage]) -> Vec<FeatureVector> {
        images.iter().map(|img| self.extract(img)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrf_imaging::SyntheticGenerator;

    #[test]
    fn dimensions_add_up() {
        assert_eq!(TOTAL_DIMS, 36);
        assert_eq!(COLOR_DIMS, 9);
        assert_eq!(EDGE_DIMS, 18);
        assert_eq!(TEXTURE_DIMS, 9);
    }

    #[test]
    fn extraction_has_expected_length_and_is_finite() {
        let gen = SyntheticGenerator::new(3, 32, 32, 77);
        let ex = FeatureExtractor::default();
        for cat in 0..3 {
            let v = ex.extract(&gen.generate(cat, 0));
            assert_eq!(v.len(), TOTAL_DIMS);
            assert!(v.iter().all(|x| x.is_finite()), "{v:?}");
        }
    }

    #[test]
    fn extraction_is_deterministic() {
        let gen = SyntheticGenerator::new(2, 32, 32, 5);
        let img = gen.generate(1, 4);
        let ex = FeatureExtractor::default();
        assert_eq!(ex.extract(&img), ex.extract(&img));
    }

    #[test]
    fn same_category_closer_than_cross_category_on_average() {
        // The whole premise of CBIR features: intra-category feature
        // distance below inter-category distance in expectation.
        let gen = SyntheticGenerator::new(6, 32, 32, 123);
        let ex = FeatureExtractor::default();
        let per_cat = 6;
        let mut feats: Vec<Vec<FeatureVector>> = Vec::new();
        for cat in 0..6 {
            feats.push(
                (0..per_cat)
                    .map(|i| ex.extract(&gen.generate(cat, i)))
                    .collect(),
            );
        }
        let d2 = |a: &FeatureVector, b: &FeatureVector| -> f64 {
            a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
        };
        let mut intra = 0.0;
        let mut intra_n = 0;
        let mut inter = 0.0;
        let mut inter_n = 0;
        for c1 in 0..6 {
            for i in 0..per_cat {
                for c2 in 0..6 {
                    for j in 0..per_cat {
                        if c1 == c2 && i >= j {
                            continue;
                        }
                        if c1 == c2 {
                            intra += d2(&feats[c1][i], &feats[c2][j]);
                            intra_n += 1;
                        } else if c1 < c2 {
                            inter += d2(&feats[c1][i], &feats[c2][j]);
                            inter_n += 1;
                        }
                    }
                }
            }
        }
        let intra_mean = intra / intra_n as f64;
        let inter_mean = inter / inter_n as f64;
        assert!(
            inter_mean > intra_mean,
            "inter {inter_mean:.4} should exceed intra {intra_mean:.4}"
        );
    }

    #[test]
    fn extract_all_preserves_order() {
        let gen = SyntheticGenerator::new(2, 32, 32, 9);
        let imgs = vec![gen.generate(0, 0), gen.generate(1, 0)];
        let ex = FeatureExtractor::default();
        let all = ex.extract_all(&imgs);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0], ex.extract(&imgs[0]));
        assert_eq!(all[1], ex.extract(&imgs[1]));
    }
}
