//! Feature normalization across a database.
//!
//! Raw descriptor components live on wildly different scales (histogram
//! bins sum to 1, entropies reach `ln 256 ≈ 5.5`), so both Euclidean
//! ranking and the RBF kernel need per-dimension normalization. We use the
//! classical **Gaussian (3σ) normalization** of Rui et al. (the standard in
//! the era's relevance-feedback literature): each dimension is shifted to
//! zero mean, divided by three standard deviations, and clamped to
//! `[-1, 1]`, which puts ~99.7% of values in range without letting
//! outliers stretch the scale.

use serde::{Deserialize, Serialize};

/// Per-dimension affine normalizer fitted on a feature matrix.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    mean: Vec<f64>,
    /// Divisor per dimension (`3σ`, floored to a tiny epsilon for
    /// zero-variance dimensions).
    scale: Vec<f64>,
    /// Whether outputs are clamped into `[-1, 1]`.
    clamp: bool,
}

impl Normalizer {
    /// Fits a Gaussian 3σ normalizer on rows of equal length.
    ///
    /// # Panics
    /// Panics if `rows` is empty or rows have inconsistent lengths.
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        Self::fit_with(rows, 3.0, true)
    }

    /// Fits with an explicit σ multiplier and clamping choice.
    pub fn fit_with(rows: &[Vec<f64>], sigma_multiplier: f64, clamp: bool) -> Self {
        assert!(!rows.is_empty(), "cannot fit a normalizer on zero rows");
        assert!(sigma_multiplier > 0.0, "sigma multiplier must be positive");
        let dims = rows[0].len();
        let n = rows.len() as f64;

        let mut mean = vec![0.0f64; dims];
        for row in rows {
            assert_eq!(row.len(), dims, "inconsistent row length");
            for (m, &v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }

        let mut var = vec![0.0f64; dims];
        for row in rows {
            for ((s, &v), &m) in var.iter_mut().zip(row).zip(&mean) {
                let d = v - m;
                *s += d * d;
            }
        }
        let scale = var
            .iter()
            .map(|&s| {
                let sd = (s / n).sqrt();
                // Zero-variance dimensions normalize to exactly 0; use 1.0
                // so we don't blow up (the shifted value is already 0).
                if sd < 1e-12 {
                    1.0
                } else {
                    sd * sigma_multiplier
                }
            })
            .collect();
        Self { mean, scale, clamp }
    }

    /// Number of feature dimensions.
    pub fn dims(&self) -> usize {
        self.mean.len()
    }

    /// Normalizes one vector in place.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn apply_in_place(&self, v: &mut [f64]) {
        assert_eq!(v.len(), self.dims(), "dimension mismatch");
        for ((x, &m), &s) in v.iter_mut().zip(&self.mean).zip(&self.scale) {
            *x = (*x - m) / s;
            if self.clamp {
                *x = x.clamp(-1.0, 1.0);
            }
        }
    }

    /// Returns a normalized copy of `v`.
    pub fn apply(&self, v: &[f64]) -> Vec<f64> {
        let mut out = v.to_vec();
        self.apply_in_place(&mut out);
        out
    }

    /// Normalizes every row of a matrix in place.
    pub fn apply_all(&self, rows: &mut [Vec<f64>]) {
        for row in rows {
            self.apply_in_place(row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fitted_stats_center_the_data() {
        let rows = vec![
            vec![1.0, 10.0],
            vec![2.0, 20.0],
            vec![3.0, 30.0],
            vec![4.0, 40.0],
        ];
        let norm = Normalizer::fit(&rows);
        let mut all = rows.clone();
        norm.apply_all(&mut all);
        // Mean of each dimension ≈ 0 after normalization.
        for d in 0..2 {
            let m: f64 = all.iter().map(|r| r[d]).sum::<f64>() / all.len() as f64;
            assert!(m.abs() < 1e-12, "dim {d} mean {m}");
        }
    }

    #[test]
    fn three_sigma_values_map_to_unit() {
        // A dimension with mean 0 and σ=1: value 3.0 normalizes to exactly 1.0.
        let rows: Vec<Vec<f64>> = vec![vec![-1.0], vec![1.0]]; // σ = 1
        let norm = Normalizer::fit(&rows);
        let out = norm.apply(&[3.0]);
        assert!((out[0] - 1.0).abs() < 1e-12, "{}", out[0]);
        // and beyond 3σ is clamped
        let out = norm.apply(&[30.0]);
        assert_eq!(out[0], 1.0);
        let out = norm.apply(&[-30.0]);
        assert_eq!(out[0], -1.0);
    }

    #[test]
    fn unclamped_variant_extends_beyond_unit() {
        let rows: Vec<Vec<f64>> = vec![vec![-1.0], vec![1.0]];
        let norm = Normalizer::fit_with(&rows, 3.0, false);
        let out = norm.apply(&[30.0]);
        assert!(out[0] > 1.0);
    }

    #[test]
    fn zero_variance_dimension_maps_to_zero() {
        let rows = vec![vec![5.0, 1.0], vec![5.0, 2.0], vec![5.0, 3.0]];
        let norm = Normalizer::fit(&rows);
        let out = norm.apply(&[5.0, 2.0]);
        assert_eq!(out[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "zero rows")]
    fn empty_fit_panics() {
        let _ = Normalizer::fit(&[]);
    }

    #[test]
    #[should_panic(expected = "inconsistent row length")]
    fn ragged_rows_panic() {
        let _ = Normalizer::fit(&[vec![1.0], vec![1.0, 2.0]]);
    }

    proptest! {
        /// Outputs always stay inside [-1, 1] when clamped.
        #[test]
        fn outputs_bounded(
            rows in proptest::collection::vec(
                proptest::collection::vec(-100.0f64..100.0, 4), 2..20),
            probe in proptest::collection::vec(-1000.0f64..1000.0, 4)
        ) {
            let norm = Normalizer::fit(&rows);
            let out = norm.apply(&probe);
            for &v in &out {
                prop_assert!((-1.0..=1.0).contains(&v));
            }
        }

        /// Normalization is monotone per dimension: larger raw values never
        /// produce smaller normalized values.
        #[test]
        fn monotone_per_dimension(
            rows in proptest::collection::vec(
                proptest::collection::vec(-10.0f64..10.0, 2), 2..10),
            a in -50.0f64..50.0,
            delta in 0.0f64..10.0,
        ) {
            let norm = Normalizer::fit(&rows);
            let lo = norm.apply(&[a, 0.0]);
            let hi = norm.apply(&[a + delta, 0.0]);
            prop_assert!(hi[0] >= lo[0]);
        }
    }
}
