//! Edge-direction histogram — the paper's edge descriptor.
//!
//! "The images in the datasets are first translated to gray images. Then a
//! Canny edge detector is applied to obtain the edge images. From the edge
//! images, the edge direction histogram can then be computed. The edge
//! direction histogram is quantized into 18 bins of 20 degrees each."
//!
//! Each Canny edge pixel votes its gradient direction into one of 18 bins
//! covering the full 360° circle; the histogram is normalized by the edge
//! count so the descriptor is invariant to image size and edge density (an
//! all-flat image yields the zero vector, a documented convention).

use lrf_imaging::canny::{canny, CannyParams, EdgeMap};
use lrf_imaging::{GrayImage, RgbImage};

/// Number of histogram bins (18 × 20° = 360°).
pub const BINS: usize = 18;

/// Computes the normalized 18-bin edge-direction histogram of a gray image.
pub fn edge_direction_histogram(img: &GrayImage, params: CannyParams) -> [f64; BINS] {
    let map = canny(img, params);
    histogram_from_edges(&map)
}

/// Computes the histogram for an RGB image (grayscale conversion included).
pub fn edge_direction_histogram_rgb(img: &RgbImage, params: CannyParams) -> [f64; BINS] {
    edge_direction_histogram(&img.to_gray(), params)
}

/// Builds the normalized histogram from an existing [`EdgeMap`].
pub fn histogram_from_edges(map: &EdgeMap) -> [f64; BINS] {
    let mut hist = [0.0f64; BINS];
    let mut count = 0usize;
    let bin_width = std::f32::consts::TAU / BINS as f32;
    for (_x, _y, dir) in map.iter_edges() {
        let mut bin = (dir / bin_width) as usize;
        if bin >= BINS {
            bin = BINS - 1; // guard dir == 2π from float rounding
        }
        hist[bin] += 1.0;
        count += 1;
    }
    if count > 0 {
        let inv = 1.0 / count as f64;
        for h in &mut hist {
            *h *= inv;
        }
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_params() -> CannyParams {
        CannyParams::default()
    }

    #[test]
    fn flat_image_yields_zero_histogram() {
        let img = GrayImage::filled(32, 32, 0.5);
        let hist = edge_direction_histogram(&img, default_params());
        assert!(hist.iter().all(|&h| h == 0.0));
    }

    #[test]
    fn histogram_is_normalized() {
        let mut img = GrayImage::new(32, 32);
        for y in 0..32 {
            for x in 16..32 {
                img.set(x, y, 1.0);
            }
        }
        let hist = edge_direction_histogram(&img, default_params());
        let sum: f64 = hist.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
    }

    #[test]
    fn vertical_edge_votes_horizontal_direction_bins() {
        // A bright right half: gradient points along +x (0°) on the edge.
        let mut img = GrayImage::new(32, 32);
        for y in 0..32 {
            for x in 16..32 {
                img.set(x, y, 1.0);
            }
        }
        let hist = edge_direction_histogram(&img, default_params());
        // 0° falls in bin 0; allow its circular neighbors (17, 1).
        let mass: f64 = hist[0] + hist[1] + hist[17];
        assert!(mass > 0.9, "mass near 0° = {mass}, hist = {hist:?}");
    }

    #[test]
    fn opposite_contrast_flips_bins_by_180_degrees() {
        // Bright LEFT half: gradient along −x (180°) → bin 9 neighborhood.
        let mut img = GrayImage::new(32, 32);
        for y in 0..32 {
            for x in 0..16 {
                img.set(x, y, 1.0);
            }
        }
        let hist = edge_direction_histogram(&img, default_params());
        let mass: f64 = hist[8] + hist[9] + hist[10];
        assert!(mass > 0.9, "mass near 180° = {mass}, hist = {hist:?}");
    }

    #[test]
    fn horizontal_edge_votes_vertical_bins() {
        // Bright bottom half: gradient along +y (90°) → bin 4/5 area.
        let mut img = GrayImage::new(32, 32);
        for y in 16..32 {
            for x in 0..32 {
                img.set(x, y, 1.0);
            }
        }
        let hist = edge_direction_histogram(&img, default_params());
        let mass: f64 = hist[3] + hist[4] + hist[5];
        assert!(mass > 0.9, "mass near 90° = {mass}, hist = {hist:?}");
    }

    #[test]
    fn rgb_wrapper_matches_gray_path() {
        let mut img = RgbImage::new(16, 16);
        for y in 0..16 {
            for x in 8..16 {
                img.set(x, y, [255, 255, 255]);
            }
        }
        let via_rgb = edge_direction_histogram_rgb(&img, default_params());
        let via_gray = edge_direction_histogram(&img.to_gray(), default_params());
        assert_eq!(via_rgb, via_gray);
    }

    #[test]
    fn all_entries_nonnegative_and_bounded() {
        let mut img = GrayImage::new(24, 24);
        // a small box: edges in all four directions
        for y in 8..16 {
            for x in 8..16 {
                img.set(x, y, 1.0);
            }
        }
        let hist = edge_direction_histogram(&img, default_params());
        for &h in &hist {
            assert!((0.0..=1.0).contains(&h));
        }
        // a box has at least two distinct edge orientations
        let nonzero = hist.iter().filter(|&&h| h > 0.0).count();
        assert!(nonzero >= 2, "hist {hist:?}");
    }
}
