//! # lrf-features — low-level visual feature extraction
//!
//! Implements §6.2 of the paper ("Image Representation"): three descriptors
//! concatenated into a 36-dimensional feature vector per image.
//!
//! | Descriptor | Dim | Module |
//! |---|---|---|
//! | HSV color moments (mean, std, skewness per channel) | 9 | [`color_moments`] |
//! | Canny edge-direction histogram (18 bins × 20°) | 18 | [`edge_histogram`] |
//! | Daubechies-4 wavelet entropy (3 levels × 3 orientations) | 9 | [`texture`] |
//!
//! [`extractor::FeatureExtractor`] runs the full pipeline;
//! [`normalize::Normalizer`] applies the classical Gaussian (3σ)
//! normalization across a database so no descriptor dominates Euclidean
//! distances or the RBF kernel.

pub mod color_moments;
pub mod edge_histogram;
pub mod extractor;
pub mod normalize;
pub mod texture;

pub use extractor::{
    FeatureExtractor, FeatureVector, COLOR_DIMS, EDGE_DIMS, TEXTURE_DIMS, TOTAL_DIMS,
};
pub use normalize::Normalizer;
