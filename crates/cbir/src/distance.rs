//! Euclidean content ranking.
//!
//! "The curve of Euclidean is given as a reference, which is obtained based
//! on the Euclidean distance measure on the low-level image features." The
//! same ranking also produces the *initial* result screen that users judge
//! (both in the log-collection protocol and in every evaluation query).

use crate::database::ImageDatabase;

/// Euclidean distance between two feature vectors.
///
/// # Panics
/// Debug-panics on dimension mismatch.
#[inline]
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> f64 {
    squared_euclidean(a, b).sqrt()
}

/// Squared Euclidean distance — the monotone surrogate every ranking path
/// uses internally (the `sqrt` adds nothing to an ordering and costs a
/// libm call per vector in the hot loop).
#[inline]
pub fn squared_euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Ranks the whole database by ascending distance to `query_feature`.
/// Returns image ids; ties break by id for determinism.
///
/// Ordering uses squared distance under [`f64::total_cmp`], so the sort is
/// total even if a feature vector carries NaNs (they rank last instead of
/// silently scrambling the comparator, as the old
/// `partial_cmp(..).unwrap_or(Equal)` did).
pub fn rank_by_euclidean(db: &ImageDatabase, query_feature: &[f64]) -> Vec<usize> {
    let dim = db.dim();
    assert_eq!(query_feature.len(), dim, "query feature dimension mismatch");
    let mut scored: Vec<(usize, f64)> = db
        .features_flat()
        .chunks_exact(dim)
        .enumerate()
        .map(|(i, row)| (i, squared_euclidean(row, query_feature)))
        .collect();
    scored.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    scored.into_iter().map(|(i, _)| i).collect()
}

/// The `k` nearest images to the query image (by id); the query itself is
/// included (distance 0 ranks it first), matching the era's evaluation
/// protocol where the query is part of the database.
///
/// Runs on the bounded-heap scan ([`lrf_index::exact_top_k`]) — `O(N log
/// k)` instead of sorting all `N` distances — and returns exactly the
/// first `k` ids of [`rank_by_euclidean`].
pub fn top_k_euclidean(db: &ImageDatabase, query_id: usize, k: usize) -> Vec<usize> {
    lrf_index::exact_top_k(db.features_flat(), db.dim(), db.feature(query_id), k)
        .into_iter()
        .map(|(id, _)| id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_from(feats: Vec<Vec<f64>>) -> ImageDatabase {
        let n = feats.len();
        ImageDatabase::from_features(feats, vec![0; n])
    }

    #[test]
    fn euclidean_matches_hand_computation() {
        assert!((euclidean_distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(euclidean_distance(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn ranking_is_by_distance_with_query_first() {
        // Build features already normalized-ish: use raw then the database
        // normalization preserves order along a single varying dimension.
        let db = db_from(vec![
            vec![0.0, 0.0],
            vec![5.0, 0.0],
            vec![1.0, 0.0],
            vec![3.0, 0.0],
        ]);
        let ranked = rank_by_euclidean(&db, db.feature(0));
        assert_eq!(ranked[0], 0);
        assert_eq!(ranked[1], 2);
        assert_eq!(ranked[2], 3);
        assert_eq!(ranked[3], 1);
    }

    #[test]
    fn top_k_truncates() {
        let db = db_from(vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let top = top_k_euclidean(&db, 1, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0], 1); // query itself first
    }

    #[test]
    fn ties_break_by_id() {
        let db = db_from(vec![vec![0.0], vec![1.0], vec![-1.0], vec![1.0]]);
        let ranked = rank_by_euclidean(&db, db.feature(0));
        // images 1 and 3 are equidistant (and 2 on the other side at the
        // same normalized distance) — ordering must be stable by id.
        let pos1 = ranked.iter().position(|&i| i == 1).unwrap();
        let pos3 = ranked.iter().position(|&i| i == 3).unwrap();
        assert!(pos1 < pos3);
    }

    #[test]
    fn top_k_larger_than_db_returns_all() {
        let db = db_from(vec![vec![0.0], vec![1.0]]);
        assert_eq!(top_k_euclidean(&db, 0, 10).len(), 2);
    }

    #[test]
    fn top_k_is_a_prefix_of_the_full_ranking() {
        // The heap path and the sort path must agree id-for-id, including
        // tie handling — the paper-fidelity invariant behind defaulting
        // retrieval to the flat index.
        let feats: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                vec![
                    (i as f64 * 0.37).sin(),
                    (i as f64 * 0.73).cos(),
                    (i % 5) as f64,
                ]
            })
            .collect();
        let db = db_from(feats);
        for q in [0usize, 7, 39] {
            let full = rank_by_euclidean(&db, db.feature(q));
            for k in [1usize, 5, 17, 40] {
                assert_eq!(top_k_euclidean(&db, q, k), full[..k.min(40)], "q={q} k={k}");
            }
        }
    }

    #[test]
    fn nan_query_yields_total_deterministic_order() {
        // Every distance to a NaN query is NaN; under total_cmp the
        // ranking degrades to stable id order instead of the comparator
        // silently reporting everything "equal" mid-sort.
        let db = db_from(vec![vec![0.0], vec![2.0], vec![1.0]]);
        let ranked = rank_by_euclidean(&db, &[f64::NAN]);
        assert_eq!(ranked, vec![0, 1, 2]);
        let top = lrf_index::exact_top_k(db.features_flat(), db.dim(), &[f64::NAN], 2);
        assert_eq!(
            top.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
            vec![0, 1]
        );
    }

    #[test]
    fn squared_euclidean_matches_square_of_distance() {
        let a = [0.3, -1.2, 4.0];
        let b = [1.0, 0.5, -2.0];
        assert!((squared_euclidean(&a, &b) - euclidean_distance(&a, &b).powi(2)).abs() < 1e-12);
    }
}
