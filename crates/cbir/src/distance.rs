//! Euclidean content ranking.
//!
//! "The curve of Euclidean is given as a reference, which is obtained based
//! on the Euclidean distance measure on the low-level image features." The
//! same ranking also produces the *initial* result screen that users judge
//! (both in the log-collection protocol and in every evaluation query).

use crate::database::ImageDatabase;

/// Euclidean distance between two feature vectors.
///
/// # Panics
/// Debug-panics on dimension mismatch.
#[inline]
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// Ranks the whole database by ascending distance to `query_feature`.
/// Returns image ids; ties break by id for determinism.
pub fn rank_by_euclidean(db: &ImageDatabase, query_feature: &[f64]) -> Vec<usize> {
    let mut scored: Vec<(usize, f64)> = db
        .features()
        .iter()
        .enumerate()
        .map(|(i, f)| (i, euclidean_distance(f, query_feature)))
        .collect();
    scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0)));
    scored.into_iter().map(|(i, _)| i).collect()
}

/// The `k` nearest images to the query image (by id); the query itself is
/// included (distance 0 ranks it first), matching the era's evaluation
/// protocol where the query is part of the database.
pub fn top_k_euclidean(db: &ImageDatabase, query_id: usize, k: usize) -> Vec<usize> {
    let mut ranked = rank_by_euclidean(db, db.feature(query_id));
    ranked.truncate(k);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_from(feats: Vec<Vec<f64>>) -> ImageDatabase {
        let n = feats.len();
        ImageDatabase::from_features(feats, vec![0; n])
    }

    #[test]
    fn euclidean_matches_hand_computation() {
        assert!((euclidean_distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(euclidean_distance(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn ranking_is_by_distance_with_query_first() {
        // Build features already normalized-ish: use raw then the database
        // normalization preserves order along a single varying dimension.
        let db = db_from(vec![
            vec![0.0, 0.0],
            vec![5.0, 0.0],
            vec![1.0, 0.0],
            vec![3.0, 0.0],
        ]);
        let ranked = rank_by_euclidean(&db, db.feature(0));
        assert_eq!(ranked[0], 0);
        assert_eq!(ranked[1], 2);
        assert_eq!(ranked[2], 3);
        assert_eq!(ranked[3], 1);
    }

    #[test]
    fn top_k_truncates() {
        let db = db_from(vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let top = top_k_euclidean(&db, 1, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0], 1); // query itself first
    }

    #[test]
    fn ties_break_by_id() {
        let db = db_from(vec![vec![0.0], vec![1.0], vec![-1.0], vec![1.0]]);
        let ranked = rank_by_euclidean(&db, db.feature(0));
        // images 1 and 3 are equidistant (and 2 on the other side at the
        // same normalized distance) — ordering must be stable by id.
        let pos1 = ranked.iter().position(|&i| i == 1).unwrap();
        let pos3 = ranked.iter().position(|&i| i == 3).unwrap();
        assert!(pos1 < pos3);
    }

    #[test]
    fn top_k_larger_than_db_returns_all() {
        let db = db_from(vec![vec![0.0], vec![1.0]]);
        assert_eq!(top_k_euclidean(&db, 0, 10).len(), 2);
    }
}
