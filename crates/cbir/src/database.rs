//! The image database: features + ground-truth categories.

use lrf_features::{FeatureExtractor, Normalizer};
use lrf_imaging::RgbImage;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A retrieval database: one normalized feature vector and one ground-truth
/// category per image. Categories exist for *automatic evaluation* (the
/// paper: "the approach can help us evaluate the performance automatically")
/// — retrieval itself never reads them.
///
/// Features live in **one contiguous row-major `N × dim` matrix** behind an
/// [`Arc`]: per-image access is a borrowed `&[f64]` row view
/// ([`Self::feature`]), and the index backends share the same allocation
/// ([`Self::features_shared`]) instead of copying it — so at any scale the
/// collection's features exist exactly once in memory.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct ImageDatabase {
    /// The shared row-major feature matrix.
    flat: Arc<Vec<f64>>,
    dim: usize,
    categories: Vec<usize>,
    n_categories: usize,
}

// Manual deserialization so a persisted database is validated on load:
// `len()` reads `categories` while the feature accessors read `flat`, and
// the two must never disagree (the derive would accept any shape).
impl Deserialize for ImageDatabase {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let flat: Arc<Vec<f64>> = serde::__private::field(v, "flat")?;
        let dim: usize = serde::__private::field(v, "dim")?;
        let categories: Vec<usize> = serde::__private::field(v, "categories")?;
        let n_categories: usize = serde::__private::field(v, "n_categories")?;
        if dim == 0 {
            return Err(serde::DeError::msg("feature dimension must be positive"));
        }
        if categories.is_empty() {
            return Err(serde::DeError::msg("database cannot be empty"));
        }
        let expected = categories
            .len()
            .checked_mul(dim)
            .ok_or_else(|| serde::DeError::msg("image count × dimension overflows"))?;
        if flat.len() != expected {
            return Err(serde::DeError::msg(format!(
                "feature matrix / categories mismatch: {} values != {} images × {} dims",
                flat.len(),
                categories.len(),
                dim
            )));
        }
        if categories.iter().any(|&c| c >= n_categories) {
            return Err(serde::DeError::msg(
                "category id out of range for n_categories",
            ));
        }
        Ok(Self {
            flat,
            dim,
            categories,
            n_categories,
        })
    }
}

impl ImageDatabase {
    /// Builds a database from pre-extracted raw features; fits a Gaussian
    /// 3σ normalizer on the whole collection and stores normalized vectors,
    /// as the era's CBIR systems did. The nested input rows are consumed
    /// and flattened — after construction only the flat matrix exists.
    ///
    /// # Panics
    /// Panics if inputs are empty or of mismatched length.
    pub fn from_features(mut features: Vec<Vec<f64>>, categories: Vec<usize>) -> Self {
        assert!(!features.is_empty(), "database cannot be empty");
        assert_eq!(
            features.len(),
            categories.len(),
            "features/categories mismatch"
        );
        let normalizer = Normalizer::fit(&features);
        normalizer.apply_all(&mut features);
        let n_categories = categories.iter().copied().max().unwrap_or(0) + 1;
        let dim = features[0].len();
        assert!(
            features.iter().all(|f| f.len() == dim),
            "all feature vectors must share one dimension"
        );
        let flat: Vec<f64> = features.into_iter().flatten().collect();
        Self {
            flat: Arc::new(flat),
            dim,
            categories,
            n_categories,
        }
    }

    /// Extracts features from images (multi-threaded) and builds the
    /// database. `extractor` must use one consistent configuration for the
    /// whole collection.
    pub fn from_images(
        images: &[RgbImage],
        categories: Vec<usize>,
        extractor: &FeatureExtractor,
    ) -> Self {
        assert_eq!(images.len(), categories.len(), "images/categories mismatch");
        let features = extract_parallel(images, extractor);
        Self::from_features(features, categories)
    }

    /// Number of images `N`.
    pub fn len(&self) -> usize {
        self.categories.len()
    }

    /// `true` when the database holds no images (never, post-construction).
    pub fn is_empty(&self) -> bool {
        self.categories.is_empty()
    }

    /// Number of distinct categories.
    pub fn n_categories(&self) -> usize {
        self.n_categories
    }

    /// The normalized feature vector of image `i` — a borrowed row view of
    /// the flat matrix (no per-vector allocation behind it).
    pub fn feature(&self, i: usize) -> &[f64] {
        &self.flat[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterates the normalized feature rows in image-id order.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.flat.chunks_exact(self.dim)
    }

    /// Feature dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The contiguous row-major `N × dim` feature matrix — the input the
    /// ANN index backends and the Euclidean hot loop consume.
    pub fn features_flat(&self) -> &[f64] {
        &self.flat
    }

    /// A shared handle to the feature matrix. Index backends hold this
    /// instead of copying the data, keeping peak feature storage at one
    /// copy regardless of how many indexes serve the collection.
    pub fn features_shared(&self) -> Arc<Vec<f64>> {
        Arc::clone(&self.flat)
    }

    /// Ground-truth category of image `i`.
    pub fn category(&self, i: usize) -> usize {
        self.categories[i]
    }

    /// All ground-truth categories, indexed by image id.
    pub fn categories(&self) -> &[usize] {
        &self.categories
    }

    /// Whether two images share a category (the automatic relevance
    /// judgment of §6.1: same semantic category ⇔ relevant).
    pub fn same_category(&self, a: usize, b: usize) -> bool {
        self.categories[a] == self.categories[b]
    }
}

/// Chunked multi-threaded feature extraction (std scoped threads — feature
/// extraction is embarrassingly parallel and dominates dataset build time).
fn extract_parallel(images: &[RgbImage], extractor: &FeatureExtractor) -> Vec<Vec<f64>> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if threads <= 1 || images.len() < 32 {
        return extractor.extract_all(images);
    }
    let chunk = images.len().div_ceil(threads);
    let mut out: Vec<Vec<f64>> = Vec::with_capacity(images.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = images
            .chunks(chunk)
            .map(|part| scope.spawn(move || extractor.extract_all(part)))
            .collect();
        for h in handles {
            out.extend(h.join().expect("feature extraction thread panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrf_imaging::SyntheticGenerator;

    fn tiny_db() -> ImageDatabase {
        let gen = SyntheticGenerator::new(3, 32, 32, 21);
        let mut images = Vec::new();
        let mut cats = Vec::new();
        for c in 0..3 {
            for i in 0..4 {
                images.push(gen.generate(c, i));
                cats.push(c);
            }
        }
        ImageDatabase::from_images(&images, cats, &FeatureExtractor::default())
    }

    #[test]
    fn database_shape() {
        let db = tiny_db();
        assert_eq!(db.len(), 12);
        assert_eq!(db.n_categories(), 3);
        assert_eq!(db.feature(0).len(), lrf_features::TOTAL_DIMS);
        assert_eq!(db.category(5), 1);
        assert!(db.same_category(0, 3));
        assert!(!db.same_category(0, 4));
    }

    #[test]
    fn flat_matrix_mirrors_row_features() {
        let db = tiny_db();
        assert_eq!(db.dim(), lrf_features::TOTAL_DIMS);
        assert_eq!(db.features_flat().len(), db.len() * db.dim());
        for (i, row) in db.rows().enumerate() {
            assert_eq!(db.feature(i), row);
        }
    }

    #[test]
    fn shared_matrix_is_the_same_allocation() {
        let db = tiny_db();
        let a = db.features_shared();
        let b = db.features_shared();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.as_slice(), db.features_flat());
        // Cloning the database clones the handle, not the matrix.
        let copy = db.clone();
        assert!(Arc::ptr_eq(&a, &copy.features_shared()));
    }

    #[test]
    fn features_are_normalized_into_unit_box() {
        let db = tiny_db();
        for f in db.rows() {
            for &v in f {
                assert!((-1.0..=1.0).contains(&v), "unnormalized value {v}");
            }
        }
    }

    #[test]
    fn parallel_extraction_matches_serial() {
        let gen = SyntheticGenerator::new(2, 32, 32, 4);
        let images: Vec<_> = (0..40).map(|i| gen.generate(i % 2, i / 2)).collect();
        let ex = FeatureExtractor::default();
        let parallel = extract_parallel(&images, &ex);
        let serial = ex.extract_all(&images);
        assert_eq!(parallel, serial);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_database_rejected() {
        let _ = ImageDatabase::from_features(vec![], vec![]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_lengths_rejected() {
        let _ = ImageDatabase::from_features(vec![vec![0.0]], vec![0, 1]);
    }

    #[test]
    fn from_features_normalizes() {
        let feats = vec![vec![0.0, 100.0], vec![10.0, 200.0], vec![20.0, 300.0]];
        let db = ImageDatabase::from_features(feats, vec![0, 0, 1]);
        // Mean of each dim is 0 after normalization.
        for d in 0..2 {
            let m: f64 = db.rows().map(|f| f[d]).sum::<f64>() / 3.0;
            assert!(m.abs() < 1e-12);
        }
    }

    #[test]
    fn serde_roundtrip_preserves_matrix() {
        let feats = vec![vec![0.0, 1.0], vec![2.0, 3.0], vec![4.0, 5.0]];
        let db = ImageDatabase::from_features(feats, vec![0, 1, 1]);
        let json = serde_json::to_string(&db).unwrap();
        let back: ImageDatabase = serde_json::from_str(&json).unwrap();
        assert_eq!(back, db);
    }

    #[test]
    fn deserialization_rejects_inconsistent_shapes() {
        // A matrix that doesn't cover N × dim, a zero dim, or an
        // out-of-range category id must fail on load, not panic later.
        for bad in [
            r#"{"flat": [0.0, 1.0, 2.0, 3.0], "dim": 2, "categories": [0, 1, 1], "n_categories": 2}"#,
            r#"{"flat": [], "dim": 0, "categories": [], "n_categories": 0}"#,
            r#"{"flat": [0.0, 1.0], "dim": 2, "categories": [5], "n_categories": 2}"#,
            // Empty database (from_features forbids it; loading must too).
            r#"{"flat": [], "dim": 2, "categories": [], "n_categories": 0}"#,
            // N × dim overflows usize — must reject, not wrap to 0.
            r#"{"flat": [], "dim": 4611686018427387904, "categories": [0, 0, 0, 0], "n_categories": 1}"#,
        ] {
            assert!(
                serde_json::from_str::<ImageDatabase>(bad).is_err(),
                "accepted malformed database: {bad}"
            );
        }
    }
}
