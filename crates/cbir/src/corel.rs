//! Synthetic COREL dataset builders.
//!
//! "There are two sets of data collected in our experiment: 20-Category and
//! 50-Category. ... Each category in the datasets consists exactly 100
//! images selected from the COREL image CDs." These builders produce the
//! synthetic equivalents (see DESIGN.md §3 for the substitution argument).

use crate::database::ImageDatabase;
use lrf_features::FeatureExtractor;
use lrf_imaging::synthetic::StyleDistribution;
use lrf_imaging::{SyntheticCorpus, SyntheticGenerator};
use serde::{Deserialize, Serialize};

/// Specification of a synthetic COREL-like dataset.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CorelSpec {
    /// Number of semantic categories (paper: 20 or 50).
    pub n_categories: usize,
    /// Images per category (paper: exactly 100).
    pub per_category: usize,
    /// Rendered image edge length in pixels. Must be a multiple of 8 (for
    /// the 3-level DWT) and at least 16.
    pub image_size: usize,
    /// Master seed for styles and images.
    pub seed: u64,
    /// Style distribution (the corpus calibration surface).
    pub style: StyleDistributionConfig,
}

/// Serializable mirror of [`StyleDistribution`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StyleDistributionConfig {
    /// Inclusive range of themes ("photo shoots") per category.
    pub themes_per_category: (usize, usize),
    /// Theme hue spread around the category anchor.
    pub theme_hue_spread: f32,
    /// Probability a theme's hue is drawn globally (off-palette theme).
    pub theme_off_palette: f32,
    /// Probability a theme uses the category's texture family.
    pub theme_family_adherence: f32,
    /// Within-theme per-image hue jitter.
    pub within_theme_hue_jitter: f32,
    /// Probability an image is an off-theme outlier.
    pub off_theme_prob: f32,
    /// Per-theme pixel-noise amplitude range (8-bit counts).
    pub noise_amp: (f32, f32),
    /// Max foreground shapes per image.
    pub max_shapes: usize,
}

impl Default for StyleDistributionConfig {
    fn default() -> Self {
        let d = StyleDistribution::default();
        Self {
            themes_per_category: d.themes_per_category,
            theme_hue_spread: d.theme_hue_spread,
            theme_off_palette: d.theme_off_palette,
            theme_family_adherence: d.theme_family_adherence,
            within_theme_hue_jitter: d.within_theme_hue_jitter,
            off_theme_prob: d.off_theme_prob,
            noise_amp: d.noise_amp,
            max_shapes: d.max_shapes,
        }
    }
}

impl From<&StyleDistributionConfig> for StyleDistribution {
    fn from(c: &StyleDistributionConfig) -> Self {
        StyleDistribution {
            themes_per_category: c.themes_per_category,
            theme_hue_spread: c.theme_hue_spread,
            theme_off_palette: c.theme_off_palette,
            theme_family_adherence: c.theme_family_adherence,
            within_theme_hue_jitter: c.within_theme_hue_jitter,
            off_theme_prob: c.off_theme_prob,
            noise_amp: c.noise_amp,
            max_shapes: c.max_shapes,
        }
    }
}

impl CorelSpec {
    /// The paper's 20-Category dataset (20 × 100 images).
    pub fn twenty_category(seed: u64) -> Self {
        Self {
            n_categories: 20,
            per_category: 100,
            image_size: 64,
            seed,
            style: StyleDistributionConfig::default(),
        }
    }

    /// The paper's 50-Category dataset (50 × 100 images).
    pub fn fifty_category(seed: u64) -> Self {
        Self {
            n_categories: 50,
            ..Self::twenty_category(seed)
        }
    }

    /// A reduced spec for fast tests: fewer categories/images, small canvas.
    pub fn tiny(n_categories: usize, per_category: usize, seed: u64) -> Self {
        Self {
            n_categories,
            per_category,
            image_size: 32,
            seed,
            style: StyleDistributionConfig::default(),
        }
    }

    fn validate(&self) {
        assert!(self.n_categories > 0, "need at least one category");
        assert!(
            self.per_category > 0,
            "need at least one image per category"
        );
        assert!(
            self.image_size >= 16 && self.image_size.is_multiple_of(8),
            "image_size must be a multiple of 8 and >= 16 (3-level DWT), got {}",
            self.image_size
        );
    }
}

/// A built dataset: the database plus the generator that can re-render any
/// image on demand (e.g. to dump sample PPMs).
#[derive(Clone, Debug)]
pub struct CorelDataset {
    /// The retrieval database (features + categories).
    pub db: ImageDatabase,
    /// The generator (kept for re-rendering; images are not stored).
    pub generator: SyntheticGenerator,
    /// The spec the dataset was built from.
    pub spec: CorelSpec,
}

impl CorelDataset {
    /// Renders the corpus, extracts features, and assembles the database.
    ///
    /// Cost scales with `n_categories × per_category` Canny+DWT runs; the
    /// full 50×100 dataset takes a few seconds in release mode.
    pub fn build(spec: CorelSpec) -> Self {
        spec.validate();
        let generator = SyntheticGenerator::with_distribution(
            spec.n_categories,
            spec.image_size,
            spec.image_size,
            spec.seed,
            &(&spec.style).into(),
        );
        let corpus = SyntheticCorpus::generate(&generator, spec.per_category);
        let db =
            ImageDatabase::from_images(&corpus.images, corpus.labels, &FeatureExtractor::default());
        Self {
            db,
            generator,
            spec,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::top_k_euclidean;
    use crate::eval::precision_at;

    #[test]
    fn build_tiny_dataset() {
        let ds = CorelDataset::build(CorelSpec::tiny(4, 6, 77));
        assert_eq!(ds.db.len(), 24);
        assert_eq!(ds.db.n_categories(), 4);
        assert_eq!(ds.db.category(7), 1);
    }

    #[test]
    fn build_is_deterministic() {
        let a = CorelDataset::build(CorelSpec::tiny(3, 4, 5));
        let b = CorelDataset::build(CorelSpec::tiny(3, 4, 5));
        assert_eq!(a.db, b.db);
    }

    #[test]
    fn euclidean_retrieval_beats_chance_on_tiny_corpus() {
        // The semantic gap must exist but features must carry signal:
        // nearest-neighbor precision well above chance, well below 1.
        let ds = CorelDataset::build(CorelSpec::tiny(5, 12, 99));
        let db = &ds.db;
        let k = 10;
        let mut total = 0.0;
        for q in 0..db.len() {
            let ranked = top_k_euclidean(db, q, k);
            total += precision_at(&ranked, |id| db.same_category(id, q), k);
        }
        let mean_p = total / db.len() as f64;
        let chance = 1.0 / 5.0;
        assert!(
            mean_p > chance * 1.5,
            "precision {mean_p} not above chance {chance}"
        );
        assert!(
            mean_p < 0.999,
            "corpus must not be trivially separable, got {mean_p}"
        );
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn invalid_image_size_rejected() {
        let _ = CorelDataset::build(CorelSpec {
            image_size: 30,
            ..CorelSpec::tiny(2, 2, 0)
        });
    }

    #[test]
    fn named_specs_match_paper() {
        let s20 = CorelSpec::twenty_category(1);
        assert_eq!((s20.n_categories, s20.per_category), (20, 100));
        let s50 = CorelSpec::fifty_category(1);
        assert_eq!((s50.n_categories, s50.per_category), (50, 100));
    }
}
