//! Evaluation: precision curves, the paper's MAP, and the §6.4 protocol.
//!
//! "The performance metric used in the experiment is Average Precision,
//! which is defined as the number of relevant samples in the returned
//! images divided by the total number of returned images. For an objective
//! performance comparison, 200 queries are generated randomly. ... Based on
//! a query q and 20 labeled images, we try the three different relevance
//! feedback schemes."
//!
//! The tables report precision at top-{20, 30, ..., 100} plus a "MAP" row;
//! that row is the mean of the nine precision values (not TREC MAP), and
//! this module reproduces exactly that definition.

use crate::database::ImageDatabase;
use crate::distance::top_k_euclidean;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The cutoffs of the paper's tables: top-20 … top-100 in steps of 10.
pub const CUTOFFS: [usize; 9] = [20, 30, 40, 50, 60, 70, 80, 90, 100];

/// Precision at cutoff `k`: fraction of the first `k` ranked ids accepted
/// by `is_relevant`.
///
/// # Panics
/// Panics if the ranking holds fewer than `k` items (an evaluation bug).
pub fn precision_at(ranked: &[usize], is_relevant: impl Fn(usize) -> bool, k: usize) -> f64 {
    assert!(
        ranked.len() >= k,
        "ranking has {} items, need {k}",
        ranked.len()
    );
    assert!(k > 0, "cutoff must be positive");
    let hits = ranked[..k].iter().filter(|&&id| is_relevant(id)).count();
    hits as f64 / k as f64
}

/// A precision curve over [`CUTOFFS`], averaged over queries.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PrecisionCurve {
    /// `values[i]` = mean precision at `CUTOFFS[i]`.
    pub values: Vec<f64>,
    /// Number of queries averaged.
    pub n_queries: usize,
}

impl PrecisionCurve {
    /// Accumulator over queries.
    pub fn new() -> Self {
        Self {
            values: vec![0.0; CUTOFFS.len()],
            n_queries: 0,
        }
    }

    /// Adds one query's ranking to the average.
    pub fn add(&mut self, ranked: &[usize], is_relevant: impl Fn(usize) -> bool) {
        for (slot, &k) in self.values.iter_mut().zip(CUTOFFS.iter()) {
            *slot += precision_at(ranked, &is_relevant, k);
        }
        self.n_queries += 1;
    }

    /// Finalizes the mean curve.
    pub fn finish(mut self) -> Self {
        if self.n_queries > 0 {
            for v in &mut self.values {
                *v /= self.n_queries as f64;
            }
        }
        self
    }

    /// Precision at a cutoff (`k` must be one of [`CUTOFFS`]).
    pub fn at(&self, k: usize) -> f64 {
        let idx = CUTOFFS
            .iter()
            .position(|&c| c == k)
            .expect("k must be one of CUTOFFS");
        self.values[idx]
    }

    /// The paper's "MAP": mean of the nine precision values.
    pub fn map(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Relative improvement of `self` over `baseline` at each cutoff (the
    /// parenthesized percentages of Tables 1–2).
    pub fn improvement_over(&self, baseline: &PrecisionCurve) -> Vec<f64> {
        self.values
            .iter()
            .zip(&baseline.values)
            .map(|(a, b)| if *b > 0.0 { (a - b) / b } else { 0.0 })
            .collect()
    }
}

/// One evaluation query's feedback round: the judged top-20 of the initial
/// Euclidean retrieval, labeled automatically by ground truth (the paper
/// "simulate\[s\] the relevance judgements that would have been made by
/// users").
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FeedbackExample {
    /// The query image id.
    pub query: usize,
    /// `(image_id, ±1.0)` labeled pairs, in initial-rank order.
    pub labeled: Vec<(usize, f64)>,
}

/// The §6.4 protocol: deterministic random queries plus their auto-judged
/// initial screens.
#[derive(Clone, Copy, Debug)]
pub struct QueryProtocol {
    /// Number of random queries (the paper: 200).
    pub n_queries: usize,
    /// Images judged per feedback round (the paper: 20).
    pub n_labeled: usize,
    /// Seed for query sampling.
    pub seed: u64,
}

impl Default for QueryProtocol {
    fn default() -> Self {
        Self {
            n_queries: 200,
            n_labeled: 20,
            seed: 0x9e3779b9,
        }
    }
}

impl QueryProtocol {
    /// Draws the query ids (uniform over the database, deterministic).
    pub fn sample_queries(&self, db: &ImageDatabase) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.n_queries)
            .map(|_| rng.gen_range(0..db.len()))
            .collect()
    }

    /// Builds the feedback round for one query: Euclidean top-`n_labeled`,
    /// labeled by ground-truth category match.
    ///
    /// Equivalent to [`Self::feedback_example_with_index`] over the exact
    /// flat backend (the direct scan skips the index build).
    pub fn feedback_example(&self, db: &ImageDatabase, query: usize) -> FeedbackExample {
        let screen = top_k_euclidean(db, query, self.n_labeled);
        self.label_screen(db, query, screen)
    }

    /// Builds the feedback round with the initial screen produced by an
    /// ANN index instead of the direct scan. With a flat index the result
    /// is bit-identical to [`Self::feedback_example`]; approximate
    /// backends may surface a slightly different (still near) screen —
    /// exactly what a deployed system's users would have judged.
    pub fn feedback_example_with_index(
        &self,
        db: &ImageDatabase,
        index: &dyn lrf_index::AnnIndex,
        query: usize,
    ) -> FeedbackExample {
        let screen = crate::retrieval::top_k_ids(index, db.feature(query), self.n_labeled);
        self.label_screen(db, query, screen)
    }

    fn label_screen(
        &self,
        db: &ImageDatabase,
        query: usize,
        screen: Vec<usize>,
    ) -> FeedbackExample {
        let labeled = screen
            .into_iter()
            .map(|id| {
                (
                    id,
                    if db.same_category(id, query) {
                        1.0
                    } else {
                        -1.0
                    },
                )
            })
            .collect();
        FeedbackExample { query, labeled }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_line(n: usize) -> ImageDatabase {
        // n images on a line, two categories split down the middle.
        let feats = (0..n).map(|i| vec![i as f64]).collect();
        let cats = (0..n).map(|i| usize::from(i >= n / 2)).collect();
        ImageDatabase::from_features(feats, cats)
    }

    #[test]
    fn precision_at_counts_hits() {
        let ranked = vec![0, 1, 2, 3, 4];
        let p = precision_at(&ranked, |id| id % 2 == 0, 4);
        assert!((p - 0.5).abs() < 1e-12);
        let p1 = precision_at(&ranked, |id| id == 0, 1);
        assert_eq!(p1, 1.0);
    }

    #[test]
    #[should_panic(expected = "need 10")]
    fn precision_requires_enough_results() {
        let _ = precision_at(&[1, 2, 3], |_| true, 10);
    }

    #[test]
    fn curve_averages_queries() {
        let mut curve = PrecisionCurve::new();
        let ranked: Vec<usize> = (0..100).collect();
        curve.add(&ranked, |id| id < 20); // p@20 = 1.0, p@100 = 0.2
        curve.add(&ranked, |_| false); // all zeros
        let curve = curve.finish();
        assert_eq!(curve.n_queries, 2);
        assert!((curve.at(20) - 0.5).abs() < 1e-12);
        assert!((curve.at(100) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn map_is_mean_of_cutoffs() {
        let mut curve = PrecisionCurve::new();
        let ranked: Vec<usize> = (0..100).collect();
        curve.add(&ranked, |id| id < 50);
        let curve = curve.finish();
        let expected: f64 = CUTOFFS
            .iter()
            .map(|&k| (k.min(50) as f64) / k as f64)
            .sum::<f64>()
            / 9.0;
        assert!((curve.map() - expected).abs() < 1e-12);
    }

    #[test]
    fn improvement_percentages() {
        let a = PrecisionCurve {
            values: vec![0.6; 9],
            n_queries: 1,
        };
        let b = PrecisionCurve {
            values: vec![0.5; 9],
            n_queries: 1,
        };
        let imp = a.improvement_over(&b);
        assert!(imp.iter().all(|&v| (v - 0.2).abs() < 1e-12));
    }

    #[test]
    fn protocol_queries_are_deterministic_and_in_range() {
        let db = db_line(50);
        let proto = QueryProtocol {
            n_queries: 30,
            n_labeled: 5,
            seed: 7,
        };
        let q1 = proto.sample_queries(&db);
        let q2 = proto.sample_queries(&db);
        assert_eq!(q1, q2);
        assert_eq!(q1.len(), 30);
        assert!(q1.iter().all(|&q| q < 50));
    }

    #[test]
    fn flat_index_feedback_examples_are_bit_identical() {
        // The acceptance bar for defaulting retrieval to the index: the
        // flat-backed protocol reproduces the direct-scan protocol exactly,
        // query for query.
        let db = db_line(40);
        let proto = QueryProtocol {
            n_queries: 10,
            n_labeled: 8,
            seed: 3,
        };
        let index = crate::retrieval::build_flat_index(&db);
        for q in 0..db.len() {
            assert_eq!(
                proto.feedback_example_with_index(&db, &index, q),
                proto.feedback_example(&db, q),
                "query {q}"
            );
        }
    }

    #[test]
    fn feedback_example_labels_by_category() {
        let db = db_line(20);
        let proto = QueryProtocol {
            n_queries: 1,
            n_labeled: 6,
            seed: 0,
        };
        let ex = proto.feedback_example(&db, 3);
        assert_eq!(ex.labeled.len(), 6);
        // query itself is first and labeled relevant
        assert_eq!(ex.labeled[0].0, 3);
        assert_eq!(ex.labeled[0].1, 1.0);
        for &(id, y) in &ex.labeled {
            assert_eq!(y, if db.same_category(id, 3) { 1.0 } else { -1.0 });
        }
    }

    #[test]
    fn feedback_example_near_boundary_mixes_labels() {
        let db = db_line(20);
        let proto = QueryProtocol {
            n_queries: 1,
            n_labeled: 8,
            seed: 0,
        };
        // query at the category boundary sees both classes on its screen
        let ex = proto.feedback_example(&db, 9);
        let pos = ex.labeled.iter().filter(|&&(_, y)| y > 0.0).count();
        let neg = ex.labeled.len() - pos;
        assert!(pos > 0 && neg > 0, "pos={pos} neg={neg}");
    }
}
