//! # lrf-cbir — the content-based image retrieval engine
//!
//! The substrate the paper's CBIR system (\[10, 11\] in its references)
//! provides: an image database with extracted features, content-based
//! ranking, the automatic evaluation protocol of §6.4, and the glue that
//! collects simulated feedback logs over the database.
//!
//! * [`database::ImageDatabase`] — normalized 36-D features plus
//!   ground-truth categories for automatic relevance judgment.
//! * [`corel`] — builders for the synthetic 20-Category and 50-Category
//!   datasets (100 images per category, mirroring the paper's COREL
//!   subsets).
//! * [`distance`] — Euclidean content ranking (the paper's `Euclidean`
//!   reference curve and the initial-retrieval step of every experiment).
//! * [`eval`] — precision@k curves, the paper's MAP definition, and the
//!   full §6.4 protocol scaffolding (random queries, top-20 auto-judged
//!   labeled sets).
//! * [`logglue`] — wires [`lrf_logdb::simulate`] to the Euclidean ranker to
//!   reproduce the paper's log-collection procedure.
//! * [`retrieval`] — index-backed retrieval: builds `lrf-index` backends
//!   (flat/IVF/LSH) over the database and routes screens and rankings
//!   through them. Flat is the default and bit-identical to the direct
//!   Euclidean scan.

pub mod corel;
pub mod database;
pub mod distance;
pub mod eval;
pub mod logglue;
pub mod retrieval;

pub use corel::{CorelDataset, CorelSpec};
pub use database::ImageDatabase;
pub use distance::{euclidean_distance, rank_by_euclidean, squared_euclidean, top_k_euclidean};
pub use eval::{precision_at, FeedbackExample, PrecisionCurve, QueryProtocol, CUTOFFS};
pub use logglue::{collect_log, collect_log_with_index};
pub use retrieval::{
    build_flat_index, build_flat_shards, build_ivf_index, build_lsh_index, rank_with_index,
    rank_with_index_stats, top_k_ids,
};
