//! Glue: collect a feedback log over an image database.
//!
//! Wires [`lrf_logdb::simulate`] to the Euclidean ranker. Every screen —
//! including later rounds of an interaction — is the content-based top-`k`
//! of the *unjudged* remainder ("show me more" without learning). The
//! full, paper-faithful collection protocol (refined screens produced by an
//! RF-SVM round) lives in `lrf-core::log_collection`, because refinement
//! needs the learning stack; this content-only collector is the substrate
//! and the control condition for the log-quality ablation.

use crate::database::ImageDatabase;
use crate::distance::rank_by_euclidean;
use lrf_index::AnnIndex;
use lrf_logdb::{simulate_sessions, LogStore, SimulationConfig};

/// Collects a simulated feedback log over `db` with content-only screens.
pub fn collect_log(db: &ImageDatabase, config: &SimulationConfig) -> LogStore {
    let sessions = simulate_sessions(config, db.categories(), |query, judged, k| {
        let seen: std::collections::HashSet<usize> = judged.iter().map(|&(id, _)| id).collect();
        rank_by_euclidean(db, db.feature(query))
            .into_iter()
            .filter(|id| !seen.contains(id))
            .take(k)
            .collect()
    });
    let mut store = LogStore::new(db.len());
    for s in sessions {
        store.record(s);
    }
    store
}

/// As [`collect_log`], but every screen comes from an ANN index instead of
/// the full ranking: round `r` fetches the top `k + judged` candidates and
/// drops the already-judged ones. Because each round's screen is exactly
/// the next `k` of the exact ranking, a flat index reproduces
/// [`collect_log`] bit-for-bit; approximate backends collect the log a
/// real large-scale deployment would have collected (screens from the
/// index it actually serves).
pub fn collect_log_with_index(
    db: &ImageDatabase,
    index: &dyn AnnIndex,
    config: &SimulationConfig,
) -> LogStore {
    assert_eq!(index.len(), db.len(), "index does not cover the database");
    let sessions = simulate_sessions(config, db.categories(), |query, judged, k| {
        let seen: std::collections::HashSet<usize> = judged.iter().map(|&(id, _)| id).collect();
        crate::retrieval::top_k_ids(index, db.feature(query), k + judged.len())
            .into_iter()
            .filter(|id| !seen.contains(id))
            .take(k)
            .collect()
    });
    let mut store = LogStore::new(db.len());
    for s in sessions {
        store.record(s);
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corel::{CorelDataset, CorelSpec};

    fn cfg(n_sessions: usize, k: usize, rounds: usize, noise: f64, seed: u64) -> SimulationConfig {
        SimulationConfig {
            n_sessions,
            judged_per_session: k,
            rounds_per_query: rounds,
            noise,
            seed,
        }
    }

    #[test]
    fn collected_log_has_configured_shape() {
        let ds = CorelDataset::build(CorelSpec::tiny(3, 8, 13));
        let log = collect_log(&ds.db, &cfg(9, 6, 2, 0.1, 2));
        assert_eq!(log.n_sessions(), 9);
        assert_eq!(log.nnz(), 9 * 6);
        assert_eq!(log.n_images(), ds.db.len());
    }

    #[test]
    fn multi_round_interactions_judge_fresh_images() {
        // With 2 rounds per query on a 24-image database, consecutive
        // session pairs should never share an image.
        let ds = CorelDataset::build(CorelSpec::tiny(3, 8, 13));
        let log = collect_log(&ds.db, &cfg(8, 6, 2, 0.0, 5));
        for pair in 0..4 {
            let a = log.session(2 * pair);
            let b = log.session(2 * pair + 1);
            for (id, _) in a.iter() {
                assert!(
                    b.judgment(id).is_none(),
                    "image {id} re-judged within interaction"
                );
            }
        }
    }

    #[test]
    fn log_vectors_carry_semantic_signal() {
        // With zero noise, co-judged same-category images agree and
        // cross-category co-judged images disagree: on aggregate the
        // average dot product between same-category log vectors must
        // exceed the cross-category average.
        let ds = CorelDataset::build(CorelSpec::tiny(3, 10, 31));
        let log = collect_log(&ds.db, &cfg(60, 10, 2, 0.0, 4));
        let db = &ds.db;
        let mut same = 0.0;
        let mut same_n = 0usize;
        let mut cross = 0.0;
        let mut cross_n = 0usize;
        for a in 0..db.len() {
            if log.log_vector(a).is_empty() {
                continue;
            }
            for b in (a + 1)..db.len() {
                if log.log_vector(b).is_empty() {
                    continue;
                }
                let d = log.log_vector(a).dot(log.log_vector(b));
                if db.same_category(a, b) {
                    same += d;
                    same_n += 1;
                } else {
                    cross += d;
                    cross_n += 1;
                }
            }
        }
        assert!(
            same_n > 0 && cross_n > 0,
            "log too sparse for the test setup"
        );
        let same_mean = same / same_n as f64;
        let cross_mean = cross / cross_n as f64;
        assert!(
            same_mean > cross_mean,
            "same-category affinity {same_mean} should exceed cross {cross_mean}"
        );
    }

    #[test]
    fn flat_index_collection_reproduces_direct_collection() {
        let ds = CorelDataset::build(CorelSpec::tiny(3, 8, 13));
        let index = crate::retrieval::build_flat_index(&ds.db);
        let c = cfg(12, 6, 2, 0.15, 7);
        assert_eq!(
            collect_log_with_index(&ds.db, &index, &c),
            collect_log(&ds.db, &c)
        );
    }

    #[test]
    fn approximate_index_collection_has_configured_shape() {
        let ds = CorelDataset::build(CorelSpec::tiny(3, 8, 13));
        let index = crate::retrieval::build_ivf_index(
            &ds.db,
            &lrf_index::IvfConfig {
                nlist: 4,
                nprobe: 2,
                ..Default::default()
            },
        );
        let log = collect_log_with_index(&ds.db, &index, &cfg(9, 6, 2, 0.1, 2));
        assert_eq!(log.n_sessions(), 9);
        assert_eq!(log.n_images(), ds.db.len());
    }

    #[test]
    fn collection_is_deterministic() {
        let ds = CorelDataset::build(CorelSpec::tiny(2, 6, 8));
        let c = cfg(5, 4, 2, 0.2, 11);
        assert_eq!(collect_log(&ds.db, &c), collect_log(&ds.db, &c));
    }
}
