//! Index-backed retrieval: the bridge between [`ImageDatabase`] and the
//! `lrf-index` backends.
//!
//! Every entry point of the retrieval pipeline — the initial screen users
//! judge, the evaluation protocol's feedback rounds, the log-collection
//! screens — is a nearest-neighbor query. This module builds an
//! [`AnnIndex`] over the database's contiguous feature matrix and exposes
//! the ranking operations the rest of the stack consumes:
//!
//! ```text
//! ImageDatabase ──build──▶ AnnIndex (flat | IVF | LSH)
//!                             │ search(query, k)
//!                             ▼
//!                   candidate ids (+ distances)
//!                             │
//!          initial screen ────┤──── candidate pool for the
//!        (QueryProtocol,      │     coupled-SVM re-rank
//!         log collection)     ▼     (lrf-core::pooled)
//!                       full ranking
//! ```
//!
//! The **flat** backend is exact and is the default everywhere, so
//! paper-fidelity results are bit-identical to the full Euclidean ranking;
//! IVF/LSH trade a bounded recall loss for sublinear distance work.

use crate::database::ImageDatabase;
use lrf_index::{
    AnnIndex, FlatIndex, FlatShard, IvfConfig, IvfIndex, LshConfig, LshIndex, SearchStats,
};

/// Builds the exact (flat) index over the database — the default backend.
/// The index shares the database's feature allocation (no copy).
pub fn build_flat_index(db: &ImageDatabase) -> FlatIndex {
    FlatIndex::from_shared(db.features_shared(), db.dim())
}

/// Splits the database into `n_shards` contiguous-id flat shards for a
/// scatter-gather serving tier. Every shard shares the database's one
/// feature allocation (no rows are copied) and emits global image ids, so
/// a coordinator can merge shard results directly. The shard count clamps
/// to the database size; the ranges partition `0..db.len()` exactly.
pub fn build_flat_shards(db: &ImageDatabase, n_shards: usize) -> Vec<FlatShard> {
    FlatShard::split_shared(db.features_shared(), db.dim(), n_shards)
}

/// Builds an IVF index over the database, sharing its feature allocation.
pub fn build_ivf_index(db: &ImageDatabase, config: &IvfConfig) -> IvfIndex {
    IvfIndex::build_shared(db.features_shared(), db.dim(), config)
}

/// Builds an LSH index over the database, sharing its feature allocation.
pub fn build_lsh_index(db: &ImageDatabase, config: &LshConfig) -> LshIndex {
    LshIndex::build_shared(db.features_shared(), db.dim(), config)
}

/// The `k` nearest image ids for a query feature, through an index.
pub fn top_k_ids(index: &dyn AnnIndex, query_feature: &[f64], k: usize) -> Vec<usize> {
    index
        .search(query_feature, k)
        .into_iter()
        .map(|(id, _)| id)
        .collect()
}

/// Full-database ranking through an index.
///
/// Exact backends return the complete Euclidean ranking (identical to
/// [`crate::distance::rank_by_euclidean`]). Approximate backends return
/// the candidates they found, in distance order, with every unreached id
/// appended afterwards in id order — so the result is always a permutation
/// of the database and evaluation cutoffs deep into the tail stay
/// well-defined.
pub fn rank_with_index(
    db: &ImageDatabase,
    index: &dyn AnnIndex,
    query_feature: &[f64],
) -> Vec<usize> {
    rank_with_index_stats(db, index, query_feature).0
}

/// [`rank_with_index`] plus the backend's per-query [`SearchStats`]
/// (distance evaluations, candidates, buckets probed), for callers that
/// account index work per request.
pub fn rank_with_index_stats(
    db: &ImageDatabase,
    index: &dyn AnnIndex,
    query_feature: &[f64],
) -> (Vec<usize>, SearchStats) {
    let n = db.len();
    let (neighbors, stats) = index.search_with_stats(query_feature, n);
    let mut ranked: Vec<usize> = neighbors.into_iter().map(|(id, _)| id).collect();
    if ranked.len() < n {
        let mut in_ranked = vec![false; n];
        for &id in &ranked {
            in_ranked[id] = true;
        }
        ranked.extend((0..n).filter(|&id| !in_ranked[id]));
    }
    (ranked, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corel::{CorelDataset, CorelSpec};
    use crate::distance::{rank_by_euclidean, top_k_euclidean};

    fn dataset() -> CorelDataset {
        CorelDataset::build(CorelSpec::tiny(3, 10, 17))
    }

    #[test]
    fn flat_index_ranking_is_bit_identical_to_euclidean() {
        let ds = dataset();
        let index = build_flat_index(&ds.db);
        for q in 0..ds.db.len() {
            let via_index = rank_with_index(&ds.db, &index, ds.db.feature(q));
            let direct = rank_by_euclidean(&ds.db, ds.db.feature(q));
            assert_eq!(via_index, direct, "query {q}");
        }
    }

    #[test]
    fn flat_index_top_k_matches_top_k_euclidean() {
        let ds = dataset();
        let index = build_flat_index(&ds.db);
        for q in [0usize, 13, 29] {
            for k in [1usize, 5, 20] {
                assert_eq!(
                    top_k_ids(&index, ds.db.feature(q), k),
                    top_k_euclidean(&ds.db, q, k),
                    "q={q} k={k}"
                );
            }
        }
    }

    #[test]
    fn approximate_ranking_is_still_a_permutation() {
        let ds = dataset();
        let index = build_lsh_index(
            &ds.db,
            // Deliberately starved settings so candidates < N and the
            // id-order tail fill kicks in.
            &lrf_index::LshConfig {
                n_tables: 1,
                n_bits: 8,
                probes: 0,
                seed: 5,
            },
        );
        let ranked = rank_with_index(&ds.db, &index, ds.db.feature(0));
        let mut sorted = ranked.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..ds.db.len()).collect::<Vec<_>>());
    }

    #[test]
    fn ivf_backend_agrees_on_most_of_the_screen() {
        let ds = dataset();
        let index = build_ivf_index(
            &ds.db,
            &lrf_index::IvfConfig {
                nlist: 6,
                nprobe: 4,
                ..Default::default()
            },
        );
        let mut overlap = 0usize;
        let k = 10;
        for q in 0..ds.db.len() {
            let approx = top_k_ids(&index, ds.db.feature(q), k);
            let exact = top_k_euclidean(&ds.db, q, k);
            overlap += exact.iter().filter(|id| approx.contains(id)).count();
        }
        let recall = overlap as f64 / (ds.db.len() * k) as f64;
        assert!(recall >= 0.8, "IVF screen recall {recall} unreasonably low");
    }

    #[test]
    fn all_backends_share_the_database_allocation() {
        // The zero-copy contract of the retrieval path: database + every
        // index backend hold the *same* feature matrix, not copies.
        let ds = dataset();
        let shared = ds.db.features_shared();
        let flat = build_flat_index(&ds.db);
        assert!(std::sync::Arc::ptr_eq(&shared, &flat.shared_data()));
        let ivf = build_ivf_index(
            &ds.db,
            &IvfConfig {
                nlist: 4,
                ..Default::default()
            },
        );
        assert!(std::sync::Arc::ptr_eq(&shared, &ivf.shared_data()));
        let lsh = build_lsh_index(&ds.db, &LshConfig::default());
        assert!(std::sync::Arc::ptr_eq(&shared, &lsh.shared_data()));
    }

    #[test]
    fn trait_objects_expose_backend_metadata() {
        let ds = dataset();
        let boxed: Vec<Box<dyn AnnIndex>> = vec![
            Box::new(build_flat_index(&ds.db)),
            Box::new(build_ivf_index(
                &ds.db,
                &IvfConfig {
                    nlist: 4,
                    ..Default::default()
                },
            )),
            Box::new(build_lsh_index(&ds.db, &LshConfig::default())),
        ];
        let names: Vec<&str> = boxed.iter().map(|i| i.name()).collect();
        assert_eq!(names, vec!["flat", "ivf", "lsh"]);
        for index in &boxed {
            assert_eq!(index.len(), ds.db.len());
            assert_eq!(index.dim(), ds.db.dim());
        }
    }
}
