//! Error type for SVM training.

use std::fmt;

/// Errors reported by [`crate::train`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SvmError {
    /// The training set is empty.
    EmptyTrainingSet,
    /// `samples`, `labels`, and `upper_bounds` have different lengths.
    LengthMismatch {
        /// Number of samples passed.
        samples: usize,
        /// Number of labels passed.
        labels: usize,
        /// Number of bounds passed.
        bounds: usize,
    },
    /// A label was not `+1` or `-1`.
    InvalidLabel {
        /// Index of the offending label.
        index: usize,
    },
    /// An upper bound was non-positive or non-finite.
    InvalidBound {
        /// Index of the offending bound.
        index: usize,
    },
    /// A sample contained NaN/∞ (detected through the kernel diagonal).
    NonFiniteKernel {
        /// Row of the kernel matrix where the value appeared.
        row: usize,
        /// Column of the kernel matrix where the value appeared.
        col: usize,
    },
}

impl fmt::Display for SvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SvmError::EmptyTrainingSet => write!(f, "training set is empty"),
            SvmError::LengthMismatch {
                samples,
                labels,
                bounds,
            } => write!(
                f,
                "length mismatch: {samples} samples, {labels} labels, {bounds} bounds"
            ),
            SvmError::InvalidLabel { index } => {
                write!(f, "label at index {index} is not +1 or -1")
            }
            SvmError::InvalidBound { index } => {
                write!(
                    f,
                    "upper bound at index {index} is not a positive finite number"
                )
            }
            SvmError::NonFiniteKernel { row, col } => {
                write!(f, "kernel value at ({row}, {col}) is not finite")
            }
        }
    }
}

impl std::error::Error for SvmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SvmError::LengthMismatch {
            samples: 3,
            labels: 2,
            bounds: 3,
        };
        assert!(e.to_string().contains("3 samples"));
        assert!(SvmError::EmptyTrainingSet.to_string().contains("empty"));
        assert!(SvmError::InvalidLabel { index: 7 }
            .to_string()
            .contains('7'));
    }
}
