//! # lrf-svm — support vector machine substrate
//!
//! The paper implements its coupled SVM "by modifying the LIBSVM library";
//! the modification it needs is a per-sample penalty: labeled points get
//! `C`, unlabeled points get `ρ*·C` (Eq. 2/3). This crate is that solver,
//! built from scratch:
//!
//! * [`kernel`] — the [`Kernel`] trait plus dense linear / RBF / polynomial
//!   kernels. The trait is generic over the sample type so downstream
//!   crates can run the same solver over sparse feedback-log vectors; the
//!   dense kernels target `[f64]`, so borrowed row views of a flat feature
//!   matrix train and score with zero copies.
//! * [`smo`] — the C-SVC dual solved by Sequential Minimal Optimization
//!   with LIBSVM's second-order working-set selection, supporting an
//!   individual upper bound `C_i` per sample, plus the LIBSVM
//!   training-path machinery: shrinking and warm starts ([`train_warm`])
//!   for fast per-round retraining.
//! * [`cache`] — the lazy kernel-row LRU cache ([`KernelCache`]) the
//!   default training path computes Gram rows through, with a byte budget
//!   ([`SmoParams::cache_bytes`]) and hit/miss counters surfaced in
//!   [`SolveStats`]. [`train_precomputed`] keeps the eager full-matrix
//!   path as the bit-exact reference.
//! * [`model`] — the trained decision function, slack extraction (needed by
//!   the coupled SVM's label-correction loop), and degenerate single-class
//!   handling (a feedback round can return only positives).
//!
//! ## The optimization problem
//!
//! Given samples `x_i`, labels `y_i ∈ {±1}` and bounds `C_i > 0`, the dual
//! is
//!
//! ```text
//! min_α  ½ αᵀQα − eᵀα    s.t.  yᵀα = 0,  0 ≤ α_i ≤ C_i
//! ```
//!
//! with `Q_ij = y_i y_j K(x_i, x_j)`. Optimality is certified by the KKT
//! violation `m(α) − M(α) ≤ ε` (see [`smo`]); the property-test suite
//! re-checks the KKT conditions independently of the solver.
//!
//! ## Example
//!
//! ```
//! use lrf_svm::{train, RbfKernel, SmoParams};
//!
//! let samples: Vec<Vec<f64>> = vec![
//!     vec![0.0, 0.0], vec![0.1, 0.1], // negatives
//!     vec![1.0, 1.0], vec![0.9, 1.1], // positives
//! ];
//! let labels = [-1.0, -1.0, 1.0, 1.0];
//! let c = [10.0; 4];
//! let svm = train(&samples, &labels, &c, RbfKernel::new(0.5), &SmoParams::default()).unwrap();
//! assert!(svm.model.decision(&samples[3]) > 0.0);
//! assert!(svm.model.decision(&samples[0]) < 0.0);
//! ```

pub mod cache;
pub mod error;
pub mod kernel;
pub mod model;
pub mod smo;

pub use cache::{KernelCache, KernelRows};
pub use error::SvmError;
pub use kernel::{gram_matrix, GramMatrix, Kernel, LinearKernel, PolyKernel, RbfKernel};
pub use model::{ModelKind, SvmModel, TrainedSvm};
pub use smo::{train, train_precomputed, train_warm, SmoParams, SolveStats};
