//! Kernel functions.
//!
//! [`Kernel`] is generic over the sample type `S`: the retrieval stack runs
//! the same SMO solver over dense 36-D visual features (borrowed `[f64]`
//! rows of the database's flat matrix) and over sparse feedback-log vectors
//! (a type owned by `lrf-core`, which implements this trait for it). The
//! dense kernels are implemented for the *unsized* slice type so callers
//! never have to materialize per-sample `Vec`s — a `&Vec<f64>` coerces, a
//! row view of a contiguous matrix is already the right shape. All provided
//! kernels satisfy Mercer's condition on their usual domains.

use serde::{Deserialize, Serialize};
use std::borrow::Borrow;

/// A positive-semidefinite similarity function over samples of type `S`.
pub trait Kernel<S: ?Sized> {
    /// Evaluates `K(a, b)`.
    fn compute(&self, a: &S, b: &S) -> f64;
}

/// Dot product of two dense vectors (panics on length mismatch in debug).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance of two dense vectors.
#[inline]
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// The linear kernel `K(a, b) = aᵀb`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinearKernel;

impl Kernel<[f64]> for LinearKernel {
    #[inline]
    fn compute(&self, a: &[f64], b: &[f64]) -> f64 {
        dot(a, b)
    }
}

/// The Gaussian RBF kernel `K(a, b) = exp(−γ‖a−b‖²)` — the kernel the
/// paper uses for all compared schemes.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RbfKernel {
    /// Width parameter γ.
    pub gamma: f64,
}

impl RbfKernel {
    /// Creates an RBF kernel.
    ///
    /// # Panics
    /// Panics unless `gamma` is positive and finite.
    pub fn new(gamma: f64) -> Self {
        assert!(
            gamma > 0.0 && gamma.is_finite(),
            "gamma must be positive and finite"
        );
        Self { gamma }
    }

    /// LIBSVM's historical default `γ = 1 / num_features` — the paper does
    /// not report its kernel parameters, so experiments use this default
    /// (and sweep it in the ablation benches).
    pub fn with_default_gamma(num_features: usize) -> Self {
        Self::new(1.0 / num_features.max(1) as f64)
    }
}

impl Kernel<[f64]> for RbfKernel {
    #[inline]
    fn compute(&self, a: &[f64], b: &[f64]) -> f64 {
        (-self.gamma * squared_distance(a, b)).exp()
    }
}

/// The polynomial kernel `K(a, b) = (γ·aᵀb + c₀)^d`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PolyKernel {
    /// Scale applied to the inner product.
    pub gamma: f64,
    /// Additive constant.
    pub coef0: f64,
    /// Polynomial degree.
    pub degree: u32,
}

impl PolyKernel {
    /// Creates a polynomial kernel.
    ///
    /// # Panics
    /// Panics unless `gamma > 0`, `coef0 >= 0` (Mercer condition), and
    /// `degree >= 1`.
    pub fn new(gamma: f64, coef0: f64, degree: u32) -> Self {
        assert!(gamma > 0.0 && gamma.is_finite(), "gamma must be positive");
        assert!(
            coef0 >= 0.0,
            "coef0 must be nonnegative for a valid Mercer kernel"
        );
        assert!(degree >= 1, "degree must be at least 1");
        Self {
            gamma,
            coef0,
            degree,
        }
    }
}

impl Kernel<[f64]> for PolyKernel {
    #[inline]
    fn compute(&self, a: &[f64], b: &[f64]) -> f64 {
        (self.gamma * dot(a, b) + self.coef0).powi(self.degree as i32)
    }
}

/// A dense symmetric Gram matrix in **one contiguous row-major
/// allocation** — `n` samples, `n × n` values, no per-row boxes. The SMO
/// solver's gradient loop walks whole rows linearly, so the flat layout
/// turns its hottest access pattern into a single cache-friendly scan.
#[derive(Clone, Debug, PartialEq)]
pub struct GramMatrix {
    data: Vec<f64>,
    n: usize,
}

impl GramMatrix {
    /// Number of samples (the matrix is `n × n`).
    pub fn n(&self) -> usize {
        self.n
    }

    /// `K(i, j)`.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Row `i` as a contiguous slice (`K(i, ·)`).
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// The whole matrix, row-major.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

/// Precomputes the dense Gram matrix `K_ij` for a sample set into a flat
/// [`GramMatrix`].
///
/// Accepts anything that borrows as the kernel's sample type: owned
/// vectors, row views of a flat feature matrix, `&SparseVector`s — the
/// samples are only read, never cloned. Solver-internal; problems in this
/// workspace are small (tens to a few hundred points), so a full dense
/// matrix is both the fastest and the simplest correct choice.
pub fn gram_matrix<S, B, K>(kernel: &K, samples: &[B]) -> GramMatrix
where
    S: ?Sized,
    B: Borrow<S>,
    K: Kernel<S>,
{
    let n = samples.len();
    let mut data = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let v = kernel.compute(samples[i].borrow(), samples[j].borrow());
            data[i * n + j] = v;
            data[j * n + i] = v;
        }
    }
    GramMatrix { data, n }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn linear_kernel_is_dot_product() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![4.0, -5.0, 6.0];
        assert_eq!(LinearKernel.compute(&a, &b), 4.0 - 10.0 + 18.0);
    }

    #[test]
    fn kernels_accept_borrowed_slices() {
        // The zero-copy path: kernel evaluation directly on row views of a
        // flat matrix, no Vec per sample.
        let flat = [1.0, 2.0, 4.0, -5.0];
        let (a, b) = flat.split_at(2);
        assert_eq!(LinearKernel.compute(a, b), 4.0 - 10.0);
        assert!((RbfKernel::new(1.0).compute(a, a) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn rbf_diagonal_is_one_and_decays() {
        let k = RbfKernel::new(0.5);
        let a = vec![1.0, 2.0];
        let b = vec![1.0, 2.0];
        assert!((k.compute(&a, &b) - 1.0).abs() < 1e-12);
        let far = vec![100.0, -30.0];
        assert!(k.compute(&a, &far) < 1e-10);
    }

    #[test]
    fn rbf_default_gamma_is_reciprocal_dims() {
        let k = RbfKernel::with_default_gamma(36);
        assert!((k.gamma - 1.0 / 36.0).abs() < 1e-15);
        // guard against division by zero
        let k0 = RbfKernel::with_default_gamma(0);
        assert_eq!(k0.gamma, 1.0);
    }

    #[test]
    fn poly_kernel_matches_formula() {
        let k = PolyKernel::new(1.0, 1.0, 2);
        let a = vec![1.0, 0.0];
        let b = vec![2.0, 0.0];
        assert_eq!(k.compute(&a, &b), 9.0); // (2 + 1)^2
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn rbf_rejects_nonpositive_gamma() {
        let _ = RbfKernel::new(0.0);
    }

    #[test]
    fn gram_matrix_is_symmetric_with_unit_diagonal_for_rbf() {
        let samples: Vec<Vec<f64>> = vec![
            vec![0.0, 1.0],
            vec![2.0, -1.0],
            vec![0.5, 0.5],
            vec![3.0, 3.0],
        ];
        let g = gram_matrix(&RbfKernel::new(0.3), &samples);
        assert_eq!(g.n(), 4);
        for i in 0..g.n() {
            assert!((g.at(i, i) - 1.0).abs() < 1e-12);
            for j in 0..g.n() {
                assert_eq!(g.at(i, j), g.at(j, i));
                assert_eq!(g.row(i)[j], g.at(i, j));
            }
        }
    }

    #[test]
    fn gram_matrix_exploits_symmetry_with_one_eval_per_pair() {
        // The eager reference path fills K[i][j] and K[j][i] from a single
        // kernel evaluation: exactly n(n+1)/2 calls, not n².
        use std::cell::Cell;
        struct CountingKernel(Cell<u64>);
        impl Kernel<[f64]> for CountingKernel {
            fn compute(&self, a: &[f64], b: &[f64]) -> f64 {
                self.0.set(self.0.get() + 1);
                dot(a, b)
            }
        }
        let samples: Vec<Vec<f64>> = (0..7).map(|i| vec![i as f64, (i as f64).cos()]).collect();
        let counting = CountingKernel(Cell::new(0));
        let g = gram_matrix(&counting, &samples);
        assert_eq!(counting.0.get(), 7 * 8 / 2, "one eval per unordered pair");
        let reference = gram_matrix(&LinearKernel, &samples);
        assert_eq!(g.as_slice(), reference.as_slice());
    }

    #[test]
    fn gram_matrix_over_borrowed_rows_matches_owned() {
        let flat: Vec<f64> = (0..12).map(|i| (i as f64 * 0.7).sin()).collect();
        let owned: Vec<Vec<f64>> = flat.chunks(3).map(<[f64]>::to_vec).collect();
        let rows: Vec<&[f64]> = flat.chunks(3).collect();
        let k = RbfKernel::new(0.8);
        assert_eq!(
            gram_matrix::<[f64], _, _>(&k, &owned).as_slice(),
            gram_matrix::<[f64], _, _>(&k, &rows).as_slice()
        );
    }

    /// Nested reference implementation of the Gram matrix (the layout the
    /// solver used before the flat refactor) — kept solely to pin the flat
    /// version against.
    fn gram_nested<S: ?Sized, B: Borrow<S>, K: Kernel<S>>(
        kernel: &K,
        samples: &[B],
    ) -> Vec<Vec<f64>> {
        let n = samples.len();
        let mut m = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in 0..=i {
                let v = kernel.compute(samples[i].borrow(), samples[j].borrow());
                m[i][j] = v;
                m[j][i] = v;
            }
        }
        m
    }

    proptest! {
        /// Cauchy–Schwarz for the linear kernel: K(a,b)² ≤ K(a,a)·K(b,b).
        #[test]
        fn linear_cauchy_schwarz(
            a in proptest::collection::vec(-10.0f64..10.0, 4),
            b in proptest::collection::vec(-10.0f64..10.0, 4),
        ) {
            let k = LinearKernel;
            let kab = k.compute(&a, &b);
            let kaa = k.compute(&a, &a);
            let kbb = k.compute(&b, &b);
            prop_assert!(kab * kab <= kaa * kbb + 1e-9);
        }

        /// RBF values always lie in [0, 1] (0 only via f64 underflow for
        /// extremely distant points).
        #[test]
        fn rbf_bounded(
            a in proptest::collection::vec(-10.0f64..10.0, 3),
            b in proptest::collection::vec(-10.0f64..10.0, 3),
            gamma in 0.01f64..5.0,
        ) {
            let v = RbfKernel::new(gamma).compute(&a, &b);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&v));
        }

        /// The flat Gram matrix is bit-identical, entry for entry, to the
        /// nested reference on random inputs under every dense kernel.
        #[test]
        fn flat_gram_matches_nested_reference(
            flat in proptest::collection::vec(-3.0f64..3.0, 15),
            gamma in 0.05f64..2.0,
        ) {
            let samples: Vec<Vec<f64>> = flat.chunks(3).map(<[f64]>::to_vec).collect();
            let rbf = RbfKernel::new(gamma);
            let flat_g = gram_matrix(&rbf, &samples);
            let nested = gram_nested::<[f64], _, _>(&rbf, &samples);
            prop_assert_eq!(flat_g.n(), nested.len());
            for (i, nested_row) in nested.iter().enumerate() {
                for (j, &want) in nested_row.iter().enumerate() {
                    // Bit-identical, not approximately equal.
                    prop_assert_eq!(flat_g.at(i, j), want, "rbf ({}, {})", i, j);
                }
            }
            let lin_flat = gram_matrix(&LinearKernel, &samples);
            let lin_nested = gram_nested::<[f64], _, _>(&LinearKernel, &samples);
            for (i, nested_row) in lin_nested.iter().enumerate() {
                for (j, &want) in nested_row.iter().enumerate() {
                    prop_assert_eq!(lin_flat.at(i, j), want, "lin ({}, {})", i, j);
                }
            }
        }

        /// The RBF Gram matrix is positive semidefinite: zᵀGz ≥ 0. We check
        /// with random z over random small sample sets.
        #[test]
        fn rbf_gram_psd(
            flat in proptest::collection::vec(-3.0f64..3.0, 12),
            z in proptest::collection::vec(-1.0f64..1.0, 4),
            gamma in 0.05f64..2.0,
        ) {
            let samples: Vec<Vec<f64>> = flat.chunks(3).map(|c| c.to_vec()).collect();
            let g = gram_matrix(&RbfKernel::new(gamma), &samples);
            let mut quad = 0.0;
            for i in 0..4 {
                for j in 0..4 {
                    quad += z[i] * g.at(i, j) * z[j];
                }
            }
            prop_assert!(quad >= -1e-9, "quadratic form {quad}");
        }
    }
}
