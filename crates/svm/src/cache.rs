//! Lazy kernel-row cache with byte-budgeted LRU eviction.
//!
//! The SMO solver only ever touches the Gram matrix one **row** at a time
//! (the two working-set rows per iteration, plus occasional rows of
//! nonzero-α points for gradient reconstruction). Precomputing the full
//! `n × n` matrix therefore wastes kernel evaluations whenever the solver
//! converges after touching a subset of rows — which is exactly what
//! happens on warm-started feedback rounds, where a handful of iterations
//! suffice. [`KernelCache`] computes rows on first touch, keeps the most
//! recently used ones inside a byte budget, and counts hits/misses so the
//! savings are observable through `SolveStats`.
//!
//! The solver itself is written against the [`KernelRows`] abstraction so
//! the same loop runs over either a lazy cache or a fully precomputed
//! [`GramMatrix`] (the bit-exact reference path, see
//! [`crate::train_precomputed`]).
//!
//! **Symmetry assumption.** When a row is computed, entries whose mirror
//! row is already cached are copied from it (`K(i,t) = K(t,i)`) instead of
//! re-evaluated, so a kernel used here must be symmetric *at the IEEE
//! level*. Every kernel in this workspace is: `dot` and `squared_distance`
//! are commutative bitwise, hence so are the linear, RBF, polynomial and
//! sparse log kernels built on them.

use crate::error::SvmError;
use crate::kernel::{GramMatrix, Kernel};
use lrf_obs::Counter;
use std::borrow::Borrow;
use std::marker::PhantomData;

/// Row-level access to the (implicit) Gram matrix, as consumed by the SMO
/// solver. Implemented by the lazy [`KernelCache`] and by the eager
/// [`GramMatrix`] so the identical solver loop serves both paths.
pub trait KernelRows {
    /// Number of samples (the matrix is `n × n`).
    fn n(&self) -> usize;
    /// `K(i, i)`. Always available without touching a full row.
    fn diag(&self, i: usize) -> f64;
    /// Row `i` (`K(i, ·)`) as a contiguous slice, computing it if needed.
    fn row(&mut self, i: usize) -> &[f64];
    /// Rows `i` and `j` (`i != j`) simultaneously — the per-iteration
    /// access pattern of the gradient update.
    fn pair(&mut self, i: usize, j: usize) -> (&[f64], &[f64]);
    /// `(hits, misses)` accumulated so far (zeros for precomputed paths).
    fn cache_stats(&self) -> (u64, u64);
}

impl KernelRows for GramMatrix {
    fn n(&self) -> usize {
        GramMatrix::n(self)
    }

    fn diag(&self, i: usize) -> f64 {
        self.at(i, i)
    }

    fn row(&mut self, i: usize) -> &[f64] {
        GramMatrix::row(self, i)
    }

    fn pair(&mut self, i: usize, j: usize) -> (&[f64], &[f64]) {
        let n = GramMatrix::n(self);
        let s = self.as_slice();
        (&s[i * n..(i + 1) * n], &s[j * n..(j + 1) * n])
    }

    fn cache_stats(&self) -> (u64, u64) {
        (0, 0)
    }
}

/// Lazy kernel-row store: rows are computed on first touch and evicted in
/// least-recently-used order once the byte budget is exceeded. The
/// diagonal is computed eagerly at construction (it doubles as the
/// non-finite-sample check) and is never evicted.
pub struct KernelCache<'a, S: ?Sized, B, K> {
    kernel: &'a K,
    samples: &'a [B],
    diag: Vec<f64>,
    rows: Vec<Option<Box<[f64]>>>,
    /// Cached row indices, most recently used last.
    lru: Vec<usize>,
    capacity_rows: usize,
    // Registry-backed instruments (not plain integers) so a caller can
    // lift the cache's hit rate into an `lrf_obs::Registry` by handle.
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    _sample: PhantomData<&'a S>,
}

impl<S: ?Sized, B, K> std::fmt::Debug for KernelCache<'_, S, B, K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelCache")
            .field("n", &self.samples.len())
            .field("capacity_rows", &self.capacity_rows)
            .field("cached_rows", &self.lru.len())
            .field("hits", &self.hits.get())
            .field("misses", &self.misses.get())
            .field("evictions", &self.evictions.get())
            .finish()
    }
}

impl<'a, S, B, K> KernelCache<'a, S, B, K>
where
    S: ?Sized,
    B: Borrow<S>,
    K: Kernel<S>,
{
    /// Builds a cache over `samples` holding at most `budget_bytes` worth
    /// of rows (`8n` bytes each), clamped to at least two rows — the SMO
    /// working set — and at most `n`.
    ///
    /// Computes the kernel diagonal eagerly; a non-finite `K(i, i)` is
    /// reported as [`SvmError::NonFiniteKernel`] at `(i, i)`. For every
    /// kernel in this workspace a sample containing NaN/∞ poisons its own
    /// diagonal entry, so this is equivalent to the full-matrix scan of
    /// the precomputed path.
    pub fn new(kernel: &'a K, samples: &'a [B], budget_bytes: usize) -> Result<Self, SvmError> {
        let n = samples.len();
        let mut diag = Vec::with_capacity(n);
        for (i, s) in samples.iter().enumerate() {
            let v = kernel.compute(s.borrow(), s.borrow());
            if !v.is_finite() {
                return Err(SvmError::NonFiniteKernel { row: i, col: i });
            }
            diag.push(v);
        }
        let row_bytes = n.max(1) * std::mem::size_of::<f64>();
        let capacity_rows = (budget_bytes / row_bytes).clamp(2, n.max(2)).min(n.max(1));
        Ok(Self {
            kernel,
            samples,
            diag,
            rows: (0..n).map(|_| None).collect(),
            lru: Vec::with_capacity(capacity_rows),
            capacity_rows,
            hits: Counter::new(),
            misses: Counter::new(),
            evictions: Counter::new(),
            _sample: PhantomData,
        })
    }

    /// Number of rows the byte budget admits.
    pub fn capacity_rows(&self) -> usize {
        self.capacity_rows
    }

    /// Row accesses served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Row accesses that had to compute the row (including recomputes
    /// after eviction).
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Rows dropped to stay within the byte budget.
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }

    /// Computes row `i`, mirroring entries from already-cached rows
    /// (`K(i,t) = K(t,i)`, bitwise for the symmetric kernels used here) so
    /// repeated cold solves approach the `n(n+1)/2` evaluations of the
    /// eager symmetric fill.
    fn compute_row(&self, i: usize) -> Box<[f64]> {
        let n = self.samples.len();
        let si = self.samples[i].borrow();
        let mut data = Vec::with_capacity(n);
        for t in 0..n {
            let v = if t == i {
                self.diag[i]
            } else if let Some(rt) = self.rows[t].as_deref() {
                rt[i]
            } else {
                self.kernel.compute(si, self.samples[t].borrow())
            };
            data.push(v);
        }
        data.into_boxed_slice()
    }

    /// Moves `i` to the most-recently-used end of the LRU order.
    fn touch(&mut self, i: usize) {
        if let Some(pos) = self.lru.iter().position(|&t| t == i) {
            self.lru.remove(pos);
        }
        self.lru.push(i);
    }

    /// Ensures row `i` is resident, evicting the least recently used row
    /// if needed — but never `protect` (the other half of a working-set
    /// pair) or `i` itself.
    fn ensure(&mut self, i: usize, protect: Option<usize>) {
        if self.rows[i].is_some() {
            self.hits.inc();
        } else {
            self.misses.inc();
            while self.lru.len() >= self.capacity_rows {
                let Some(pos) = self.lru.iter().position(|&t| t != i && Some(t) != protect) else {
                    break;
                };
                let victim = self.lru.remove(pos);
                self.rows[victim] = None;
                self.evictions.inc();
            }
            self.rows[i] = Some(self.compute_row(i));
        }
        self.touch(i);
    }
}

impl<S, B, K> KernelRows for KernelCache<'_, S, B, K>
where
    S: ?Sized,
    B: Borrow<S>,
    K: Kernel<S>,
{
    fn n(&self) -> usize {
        self.samples.len()
    }

    fn diag(&self, i: usize) -> f64 {
        self.diag[i]
    }

    fn row(&mut self, i: usize) -> &[f64] {
        self.ensure(i, None);
        self.rows[i].as_deref().expect("row resident after ensure")
    }

    fn pair(&mut self, i: usize, j: usize) -> (&[f64], &[f64]) {
        assert_ne!(i, j, "working-set pair must be distinct");
        self.ensure(i, Some(j));
        self.ensure(j, Some(i));
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        let (head, tail) = self.rows.split_at(hi);
        let row_lo = head[lo].as_deref().expect("row resident after ensure");
        let row_hi = tail[0].as_deref().expect("row resident after ensure");
        if i < j {
            (row_lo, row_hi)
        } else {
            (row_hi, row_lo)
        }
    }

    fn cache_stats(&self) -> (u64, u64) {
        (self.hits.get(), self.misses.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{gram_matrix, LinearKernel, RbfKernel};
    use proptest::prelude::*;

    fn samples_from(flat: &[f64], dims: usize) -> Vec<Vec<f64>> {
        flat.chunks(dims).map(<[f64]>::to_vec).collect()
    }

    #[test]
    fn diagonal_validation_reports_nan_sample() {
        let samples = vec![vec![1.0], vec![f64::NAN]];
        let err = KernelCache::new(&LinearKernel, &samples, 1 << 20).unwrap_err();
        assert_eq!(err, SvmError::NonFiniteKernel { row: 1, col: 1 });
    }

    #[test]
    fn capacity_respects_budget_and_floor() {
        let samples = vec![vec![0.0; 4]; 10];
        // 10 samples → 80-byte rows; a 200-byte budget admits 2 rows.
        let c = KernelCache::new(&LinearKernel, &samples, 200).unwrap();
        assert_eq!(c.capacity_rows(), 2);
        // Zero budget still admits the working-set pair.
        let c = KernelCache::new(&LinearKernel, &samples, 0).unwrap();
        assert_eq!(c.capacity_rows(), 2);
        // A huge budget is clamped to n rows.
        let c = KernelCache::new(&LinearKernel, &samples, 1 << 30).unwrap();
        assert_eq!(c.capacity_rows(), 10);
    }

    #[test]
    fn rows_match_gram_and_counters_track_accesses() {
        let flat: Vec<f64> = (0..24).map(|i| (i as f64 * 0.37).cos()).collect();
        let samples = samples_from(&flat, 3);
        let kernel = RbfKernel::new(0.6);
        let gram = gram_matrix(&kernel, &samples);
        let mut cache = KernelCache::new(&kernel, &samples, 1 << 20).unwrap();
        for i in 0..samples.len() {
            assert_eq!(cache.row(i), GramMatrix::row(&gram, i), "row {i}");
        }
        assert_eq!(cache.misses(), samples.len() as u64);
        assert_eq!(cache.hits(), 0);
        // Second pass: all hits, bit-identical values again.
        for i in 0..samples.len() {
            assert_eq!(cache.row(i), GramMatrix::row(&gram, i));
        }
        assert_eq!(cache.hits(), samples.len() as u64);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn pair_returns_both_rows_under_minimal_capacity() {
        let flat: Vec<f64> = (0..12).map(|i| (i as f64 * 0.9).sin()).collect();
        let samples = samples_from(&flat, 2);
        let kernel = RbfKernel::new(1.1);
        let gram = gram_matrix(&kernel, &samples);
        let mut cache = KernelCache::new(&kernel, &samples, 0).unwrap(); // capacity 2
        for i in 0..samples.len() {
            for j in 0..samples.len() {
                if i == j {
                    continue;
                }
                let (ri, rj) = cache.pair(i, j);
                assert_eq!(ri, GramMatrix::row(&gram, i), "pair({i},{j}) row i");
                assert_eq!(rj, GramMatrix::row(&gram, j), "pair({i},{j}) row j");
            }
        }
        assert!(cache.evictions() > 0, "capacity 2 must evict in this sweep");
    }

    proptest! {
        /// Under random eviction pressure (tiny random budgets, random
        /// access sequences) every row served by the cache is bit-identical
        /// to direct kernel evaluation.
        #[test]
        fn rows_bit_identical_under_eviction_pressure(
            flat in proptest::collection::vec(-3.0f64..3.0, 36),
            accesses in proptest::collection::vec(0usize..12, 1..60),
            budget_rows in 0usize..6,
            gamma in 0.05f64..2.0,
        ) {
            let samples = samples_from(&flat, 3);
            let n = samples.len();
            let kernel = RbfKernel::new(gamma);
            let mut cache =
                KernelCache::new(&kernel, &samples, budget_rows * n * 8).unwrap();
            for (step, &raw) in accesses.iter().enumerate() {
                let i = raw % n;
                // Alternate row/pair accesses to exercise both entry points.
                if step % 3 == 2 {
                    let j = (i + 1 + step % (n - 1)) % n;
                    if i == j { continue; }
                    let (ri, rj) = cache.pair(i, j);
                    for t in 0..n {
                        prop_assert_eq!(ri[t], kernel.compute(&samples[i], &samples[t]));
                        prop_assert_eq!(rj[t], kernel.compute(&samples[j], &samples[t]));
                    }
                } else {
                    let ri = cache.row(i);
                    for t in 0..n {
                        prop_assert_eq!(ri[t], kernel.compute(&samples[i], &samples[t]));
                    }
                }
            }
        }
    }
}
