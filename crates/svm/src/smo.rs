//! Sequential Minimal Optimization for the C-SVC dual with per-sample
//! upper bounds.
//!
//! This is the working-set algorithm of LIBSVM (Fan, Chen & Lin's
//! second-order selection, "WSS 2") restricted to what this workspace
//! needs: dense precomputed Gram matrices (problems here have at most a few
//! hundred points) and no shrinking. The one extension over stock LIBSVM is
//! the **individual upper bound `C_i` per sample**, which is exactly the
//! modification the paper made to LIBSVM: labeled points keep `C`, the
//! unlabeled transductive points get `ρ*·C` (Eq. 2/3 of the paper).
//!
//! Optimality: the pair `(m(α), M(α))` of maximal KKT violations over the
//! index sets
//!
//! ```text
//! I_up(α)  = {t | α_t < C_t, y_t = +1} ∪ {t | α_t > 0, y_t = −1}
//! I_low(α) = {t | α_t < C_t, y_t = −1} ∪ {t | α_t > 0, y_t = +1}
//! ```
//!
//! shrinks until `m(α) − M(α) ≤ ε` (default `10⁻³`, LIBSVM's default).

use crate::error::SvmError;
use crate::kernel::{gram_matrix, GramMatrix, Kernel};
use crate::model::{SvmModel, TrainedSvm};
use serde::{Deserialize, Serialize};
use std::borrow::Borrow;

/// Solver tuning parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SmoParams {
    /// Stopping tolerance on the KKT violation gap.
    pub eps: f64,
    /// Hard cap on SMO iterations (working-set updates). The cap exists so
    /// a pathological kernel cannot hang a retrieval request; hitting it is
    /// reported through [`SolveStats::converged`].
    pub max_iter: usize,
    /// Lower bound substituted for non-positive second-order curvature
    /// (LIBSVM's `TAU`).
    pub tau: f64,
    /// Alphas below this threshold are dropped from the support set when
    /// building the model.
    pub sv_threshold: f64,
}

impl Default for SmoParams {
    fn default() -> Self {
        Self {
            eps: 1e-3,
            max_iter: 100_000,
            tau: 1e-12,
            sv_threshold: 1e-9,
        }
    }
}

/// Diagnostics from one solver run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SolveStats {
    /// Number of working-set updates performed.
    pub iterations: usize,
    /// Whether the KKT gap reached `eps` (vs. hitting `max_iter`).
    pub converged: bool,
    /// Final dual objective `½αᵀQα − eᵀα`.
    pub objective: f64,
    /// Number of support vectors (`α_i > sv_threshold`).
    pub n_support: usize,
}

/// Trains a C-SVC with per-sample upper bounds.
///
/// * `samples` — training points; anything that borrows as the kernel's
///   sample type is accepted (owned `Vec<f64>`s, borrowed `&[f64]` row
///   views of a flat feature matrix, `&SparseVector`s). Training never
///   clones a sample — only the retained support vectors are copied (via
///   `ToOwned`) into the model.
/// * `labels` — `+1.0` / `-1.0` per sample.
/// * `upper_bounds` — `C_i > 0` per sample.
///
/// Returns a [`TrainedSvm`] bundling the decision model, the full dual
/// solution, and solver statistics.
///
/// **Degenerate input:** when every label has the same sign the dual forces
/// `α = 0` and the margin is meaningless; the returned model is a constant
/// decision equal to that sign (see [`crate::ModelKind::Constant`]), which keeps
/// relevance-feedback rounds total when a user marks everything relevant.
pub fn train<S, B, K>(
    samples: &[B],
    labels: &[f64],
    upper_bounds: &[f64],
    kernel: K,
    params: &SmoParams,
) -> Result<TrainedSvm<S, K>, SvmError>
where
    S: ?Sized + ToOwned,
    B: Borrow<S>,
    K: Kernel<S>,
{
    validate(samples.len(), labels, upper_bounds)?;

    let n = samples.len();
    let has_pos = labels.iter().any(|&y| y > 0.0);
    let has_neg = labels.iter().any(|&y| y < 0.0);
    if !has_pos || !has_neg {
        let sign = if has_pos { 1.0 } else { -1.0 };
        let model = SvmModel::constant(kernel, sign);
        return Ok(TrainedSvm {
            model,
            alpha: vec![0.0; n],
            stats: SolveStats {
                iterations: 0,
                converged: true,
                objective: 0.0,
                n_support: 0,
            },
        });
    }

    let k = gram_matrix::<S, B, K>(&kernel, samples);
    for (idx, &v) in k.as_slice().iter().enumerate() {
        if !v.is_finite() {
            return Err(SvmError::NonFiniteKernel {
                row: idx / n,
                col: idx % n,
            });
        }
    }

    let (alpha, rho, iterations, converged) = solve_dual(&k, labels, upper_bounds, params);

    // Dual objective ½αᵀQα − eᵀα with Q_ij = y_i y_j K_ij.
    let mut objective = 0.0;
    for i in 0..n {
        if alpha[i] == 0.0 {
            continue;
        }
        let ki = k.row(i);
        for j in 0..n {
            if alpha[j] != 0.0 {
                objective += 0.5 * alpha[i] * alpha[j] * labels[i] * labels[j] * ki[j];
            }
        }
        objective -= alpha[i];
    }

    // Build the sparse model: keep only true support vectors (the sole
    // copies made of any training data).
    let mut support_vectors = Vec::new();
    let mut coefficients = Vec::new();
    for i in 0..n {
        if alpha[i] > params.sv_threshold {
            support_vectors.push(samples[i].borrow().to_owned());
            coefficients.push(alpha[i] * labels[i]);
        }
    }
    let n_support = support_vectors.len();
    let model = SvmModel::new(kernel, support_vectors, coefficients, -rho);

    Ok(TrainedSvm {
        model,
        alpha,
        stats: SolveStats {
            iterations,
            converged,
            objective,
            n_support,
        },
    })
}

fn validate(n_samples: usize, labels: &[f64], bounds: &[f64]) -> Result<(), SvmError> {
    if n_samples == 0 {
        return Err(SvmError::EmptyTrainingSet);
    }
    if labels.len() != n_samples || bounds.len() != n_samples {
        return Err(SvmError::LengthMismatch {
            samples: n_samples,
            labels: labels.len(),
            bounds: bounds.len(),
        });
    }
    for (i, &y) in labels.iter().enumerate() {
        if y != 1.0 && y != -1.0 {
            return Err(SvmError::InvalidLabel { index: i });
        }
    }
    for (i, &c) in bounds.iter().enumerate() {
        if !(c > 0.0 && c.is_finite()) {
            return Err(SvmError::InvalidBound { index: i });
        }
    }
    Ok(())
}

/// Core SMO loop over a precomputed flat Gram matrix. Returns
/// `(alpha, rho, iterations, converged)` where the decision function is
/// `f(x) = Σ α_i y_i K(x_i, x) − rho`.
fn solve_dual(
    k: &GramMatrix,
    y: &[f64],
    c: &[f64],
    params: &SmoParams,
) -> (Vec<f64>, f64, usize, bool) {
    let n = y.len();
    let mut alpha = vec![0.0f64; n];
    // Gradient of the dual objective: G_i = Σ_j Q_ij α_j − 1; at α = 0 this
    // is simply −1 everywhere.
    let mut g = vec![-1.0f64; n];

    let mut iterations = 0;
    let mut converged = false;
    while iterations < params.max_iter {
        let Some((i, j)) = select_working_set(k, y, c, &alpha, &g, params) else {
            converged = true;
            break;
        };
        iterations += 1;

        let old_ai = alpha[i];
        let old_aj = alpha[j];
        let ci = c[i];
        let cj = c[j];

        // In both branches the curvature along the update direction is
        // ‖φ(x_i) − φ(x_j)‖² = K_ii + K_jj − 2K_ij (LIBSVM writes it as
        // QD[i] + QD[j] ± 2Q_ij because Q already carries y_i y_j).
        if y[i] != y[j] {
            let mut quad = k.at(i, i) + k.at(j, j) - 2.0 * k.at(i, j);
            if quad <= 0.0 {
                quad = params.tau;
            }
            let delta = (-g[i] - g[j]) / quad;
            let diff = alpha[i] - alpha[j];
            alpha[i] += delta;
            alpha[j] += delta;

            if diff > 0.0 {
                if alpha[j] < 0.0 {
                    alpha[j] = 0.0;
                    alpha[i] = diff;
                }
            } else if alpha[i] < 0.0 {
                alpha[i] = 0.0;
                alpha[j] = -diff;
            }
            if diff > ci - cj {
                if alpha[i] > ci {
                    alpha[i] = ci;
                    alpha[j] = ci - diff;
                }
            } else if alpha[j] > cj {
                alpha[j] = cj;
                alpha[i] = cj + diff;
            }
        } else {
            let mut quad = k.at(i, i) + k.at(j, j) - 2.0 * k.at(i, j);
            if quad <= 0.0 {
                quad = params.tau;
            }
            let delta = (g[i] - g[j]) / quad;
            let sum = alpha[i] + alpha[j];
            alpha[i] -= delta;
            alpha[j] += delta;

            if sum > ci {
                if alpha[i] > ci {
                    alpha[i] = ci;
                    alpha[j] = sum - ci;
                }
            } else if alpha[j] < 0.0 {
                alpha[j] = 0.0;
                alpha[i] = sum;
            }
            if sum > cj {
                if alpha[j] > cj {
                    alpha[j] = cj;
                    alpha[i] = sum - cj;
                }
            } else if alpha[i] < 0.0 {
                alpha[i] = 0.0;
                alpha[j] = sum;
            }
        }

        // Incremental gradient update: G_t += Q_ti Δα_i + Q_tj Δα_j. The
        // flat layout makes this the linear scan of two contiguous rows.
        let dai = alpha[i] - old_ai;
        let daj = alpha[j] - old_aj;
        if dai != 0.0 || daj != 0.0 {
            let yi = y[i];
            let yj = y[j];
            let ki = k.row(i);
            let kj = k.row(j);
            for t in 0..n {
                g[t] += y[t] * (yi * ki[t] * dai + yj * kj[t] * daj);
            }
        }
    }

    let rho = calculate_rho(y, c, &alpha, &g);
    (alpha, rho, iterations, converged)
}

/// LIBSVM's second-order working-set selection. Returns `None` when the
/// KKT gap is within tolerance (optimal).
fn select_working_set(
    k: &GramMatrix,
    y: &[f64],
    c: &[f64],
    alpha: &[f64],
    g: &[f64],
    params: &SmoParams,
) -> Option<(usize, usize)> {
    let n = y.len();

    // i = argmax_{t ∈ I_up} −y_t G_t
    let mut gmax = f64::NEG_INFINITY;
    let mut i: isize = -1;
    for t in 0..n {
        let in_i_up = if y[t] > 0.0 {
            alpha[t] < c[t]
        } else {
            alpha[t] > 0.0
        };
        if in_i_up {
            let v = -y[t] * g[t];
            if v >= gmax {
                gmax = v;
                i = t as isize;
            }
        }
    }
    if i < 0 {
        return None;
    }
    let i = i as usize;

    // j = argmin over violating t ∈ I_low of the second-order gain.
    let ki = k.row(i);
    let kii = ki[i];
    let mut gmax2 = f64::NEG_INFINITY; // max_{I_low} y_t G_t  (= −M(α))
    let mut j: isize = -1;
    let mut obj_min = f64::INFINITY;
    for t in 0..n {
        let in_i_low = if y[t] > 0.0 {
            alpha[t] > 0.0
        } else {
            alpha[t] < c[t]
        };
        if !in_i_low {
            continue;
        }
        let ygt = y[t] * g[t];
        if ygt >= gmax2 {
            gmax2 = ygt;
        }
        let grad_diff = gmax + ygt;
        if grad_diff > 0.0 {
            // Second-order curvature along the (i, t) direction is
            // ‖φ(x_i) − φ(x_t)‖² regardless of the label combination.
            let mut quad = kii + k.at(t, t) - 2.0 * ki[t];
            if quad <= 0.0 {
                quad = params.tau;
            }
            let obj = -(grad_diff * grad_diff) / quad;
            if obj <= obj_min {
                obj_min = obj;
                j = t as isize;
            }
        }
    }

    if gmax + gmax2 < params.eps || j < 0 {
        return None;
    }
    Some((i, j as usize))
}

/// Bias recovery (LIBSVM `calculate_rho`): average `y_t G_t` over free
/// support vectors, falling back to the midpoint of the feasibility
/// interval when no variable is free.
fn calculate_rho(y: &[f64], c: &[f64], alpha: &[f64], g: &[f64]) -> f64 {
    let mut upper = f64::INFINITY;
    let mut lower = f64::NEG_INFINITY;
    let mut sum_free = 0.0;
    let mut n_free = 0usize;
    for t in 0..y.len() {
        let ygt = y[t] * g[t];
        if alpha[t] >= c[t] {
            if y[t] < 0.0 {
                upper = upper.min(ygt);
            } else {
                lower = lower.max(ygt);
            }
        } else if alpha[t] <= 0.0 {
            if y[t] > 0.0 {
                upper = upper.min(ygt);
            } else {
                lower = lower.max(ygt);
            }
        } else {
            n_free += 1;
            sum_free += ygt;
        }
    }
    if n_free > 0 {
        sum_free / n_free as f64
    } else {
        (upper + lower) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{LinearKernel, RbfKernel};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn default_params() -> SmoParams {
        SmoParams::default()
    }

    /// Independent KKT verification for the solution of a C-SVC dual.
    /// Returns the maximum violation found.
    fn kkt_violation<K: Kernel<[f64]>>(
        samples: &[Vec<f64>],
        labels: &[f64],
        bounds: &[f64],
        kernel: &K,
        trained: &TrainedSvm<[f64], K>,
    ) -> f64 {
        let mut worst: f64 = 0.0;
        // Dual feasibility: Σ α_i y_i = 0 and 0 ≤ α ≤ C.
        let balance: f64 = trained.alpha.iter().zip(labels).map(|(a, y)| a * y).sum();
        worst = worst.max(balance.abs());
        for (i, &a) in trained.alpha.iter().enumerate() {
            worst = worst.max((-a).max(a - bounds[i]).max(0.0));
        }
        // Stationarity through the margins: α=0 ⇒ y f ≥ 1; α=C ⇒ y f ≤ 1;
        // 0<α<C ⇒ y f ≈ 1. The model drops tiny alphas, so recompute the
        // decision from the full alpha vector.
        for (i, x) in samples.iter().enumerate() {
            let mut f = trained.model.bias();
            for (j, xj) in samples.iter().enumerate() {
                if trained.alpha[j] > 0.0 {
                    f += trained.alpha[j] * labels[j] * kernel.compute(xj, x);
                }
            }
            let margin = labels[i] * f;
            let a = trained.alpha[i];
            if a <= 1e-8 {
                worst = worst.max((1.0 - margin).max(0.0));
            } else if a >= bounds[i] - 1e-8 {
                worst = worst.max((margin - 1.0).max(0.0));
            } else {
                worst = worst.max((margin - 1.0).abs());
            }
        }
        worst
    }

    #[test]
    fn two_point_problem_has_known_solution() {
        // x = −1 (y=−1), x = +1 (y=+1), linear kernel, large C:
        // α₁ = α₂ = 0.5, f(x) = x, b = 0.
        let samples = vec![vec![-1.0], vec![1.0]];
        let labels = [-1.0, 1.0];
        let bounds = [100.0, 100.0];
        let svm = train(&samples, &labels, &bounds, LinearKernel, &default_params()).unwrap();
        assert!(svm.stats.converged);
        assert!((svm.alpha[0] - 0.5).abs() < 1e-6, "alpha {:?}", svm.alpha);
        assert!((svm.alpha[1] - 0.5).abs() < 1e-6);
        assert!(svm.model.bias().abs() < 1e-6);
        assert!((svm.model.decision(&[1.0]) - 1.0).abs() < 1e-6);
        assert!((svm.model.decision(&[-1.0]) + 1.0).abs() < 1e-6);
        assert!((svm.model.decision(&[0.25]) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn training_over_borrowed_row_views_matches_owned() {
        // The zero-copy contract: training on &[f64] views of one flat
        // matrix produces exactly the training result over owned Vecs.
        let flat: Vec<f64> = (0..20).map(|i| (i as f64 * 0.43).sin()).collect();
        let owned: Vec<Vec<f64>> = flat.chunks(2).map(<[f64]>::to_vec).collect();
        let views: Vec<&[f64]> = flat.chunks(2).collect();
        let labels: Vec<f64> = (0..10)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let bounds = vec![5.0; 10];
        let kernel = RbfKernel::new(0.9);
        let a = train(&owned, &labels, &bounds, kernel, &default_params()).unwrap();
        let b = train(&views, &labels, &bounds, kernel, &default_params()).unwrap();
        assert_eq!(a.alpha, b.alpha);
        assert_eq!(a.model.bias(), b.model.bias());
        assert_eq!(a.model.support_vectors(), b.model.support_vectors());
        let probe = [0.3, -0.3];
        assert_eq!(a.model.decision(&probe), b.model.decision(&probe));
    }

    #[test]
    fn asymmetric_two_point_bias() {
        // Points at 0 and 2: separator midpoint at 1 → f(x) = x − 1.
        let samples = vec![vec![0.0], vec![2.0]];
        let labels = [-1.0, 1.0];
        let bounds = [50.0, 50.0];
        let svm = train(&samples, &labels, &bounds, LinearKernel, &default_params()).unwrap();
        assert!((svm.model.decision(&[1.0])).abs() < 1e-6);
        assert!((svm.model.decision(&[2.0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn bound_constrains_noisy_point() {
        // A mislabeled point with a tiny C_i cannot dominate: the solution
        // should essentially ignore it.
        let samples = vec![
            vec![-2.0],
            vec![-1.5],
            vec![1.5],
            vec![2.0],
            vec![1.8], // mislabeled as negative
        ];
        let labels = [-1.0, -1.0, 1.0, 1.0, -1.0];
        let bounds = [10.0, 10.0, 10.0, 10.0, 1e-4];
        let svm = train(&samples, &labels, &bounds, LinearKernel, &default_params()).unwrap();
        // The mislabeled point's alpha is capped at its tiny bound.
        assert!(svm.alpha[4] <= 1e-4 + 1e-12);
        // Classification of the clean points is unaffected.
        assert!(svm.model.decision(&[1.5]) > 0.0);
        assert!(svm.model.decision(&[-1.5]) < 0.0);
    }

    #[test]
    fn single_class_returns_constant_model() {
        let samples = vec![vec![0.0], vec![1.0]];
        let labels = [1.0, 1.0];
        let bounds = [1.0, 1.0];
        let svm = train(&samples, &labels, &bounds, LinearKernel, &default_params()).unwrap();
        assert_eq!(svm.model.kind(), crate::model::ModelKind::Constant);
        assert_eq!(svm.model.decision(&[123.0]), 1.0);
        let svm_neg = train(
            &samples,
            &[-1.0, -1.0],
            &bounds,
            LinearKernel,
            &default_params(),
        )
        .unwrap();
        assert_eq!(svm_neg.model.decision(&[123.0]), -1.0);
    }

    #[test]
    fn rbf_separates_xor() {
        // XOR is the classic linearly inseparable problem; RBF must solve it.
        let samples = vec![
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
        ];
        let labels = [1.0, 1.0, -1.0, -1.0];
        let bounds = [100.0; 4];
        let svm = train(
            &samples,
            &labels,
            &bounds,
            RbfKernel::new(2.0),
            &default_params(),
        )
        .unwrap();
        for (s, &y) in samples.iter().zip(&labels) {
            assert!(svm.model.decision(s) * y > 0.0, "misclassified {s:?}");
        }
    }

    #[test]
    fn validation_errors() {
        let s: Vec<Vec<f64>> = vec![];
        assert_eq!(
            train(&s, &[], &[], LinearKernel, &default_params()).unwrap_err(),
            SvmError::EmptyTrainingSet
        );
        let s = vec![vec![0.0]];
        assert!(matches!(
            train(&s, &[1.0, 1.0], &[1.0], LinearKernel, &default_params()).unwrap_err(),
            SvmError::LengthMismatch { .. }
        ));
        assert!(matches!(
            train(&s, &[0.5], &[1.0], LinearKernel, &default_params()).unwrap_err(),
            SvmError::InvalidLabel { index: 0 }
        ));
        assert!(matches!(
            train(&s, &[1.0], &[0.0], LinearKernel, &default_params()).unwrap_err(),
            SvmError::InvalidBound { index: 0 }
        ));
    }

    #[test]
    fn nan_sample_is_reported() {
        let s = vec![vec![f64::NAN], vec![1.0]];
        let err = train(
            &s,
            &[-1.0, 1.0],
            &[1.0, 1.0],
            LinearKernel,
            &default_params(),
        )
        .unwrap_err();
        assert!(matches!(err, SvmError::NonFiniteKernel { .. }));
    }

    #[test]
    fn slacks_zero_for_separable_large_c() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut samples = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..20 {
            samples.push(vec![rng.gen_range(-1.0..1.0), rng.gen_range(2.0..4.0)]);
            labels.push(1.0);
            samples.push(vec![rng.gen_range(-1.0..1.0), rng.gen_range(-4.0..-2.0)]);
            labels.push(-1.0);
        }
        let bounds = vec![1000.0; samples.len()];
        let svm = train(&samples, &labels, &bounds, LinearKernel, &default_params()).unwrap();
        for (s, &y) in samples.iter().zip(&labels) {
            let slack = svm.model.hinge_slack(s, y);
            assert!(slack < 1e-3, "slack {slack}");
        }
    }

    #[test]
    fn kkt_conditions_hold_on_random_gaussian_problem() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut samples = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..30 {
            let y = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            let cx = if y > 0.0 { 1.0 } else { -1.0 };
            samples.push(vec![
                cx + rng.gen_range(-1.2..1.2),
                rng.gen_range(-1.0..1.0),
            ]);
            labels.push(y);
        }
        let bounds = vec![5.0; samples.len()];
        let kernel = RbfKernel::new(0.7);
        let svm = train(&samples, &labels, &bounds, kernel, &default_params()).unwrap();
        assert!(svm.stats.converged);
        let viol = kkt_violation(&samples, &labels, &bounds, &kernel, &svm);
        assert!(viol < 5e-3, "KKT violation {viol}");
    }

    #[test]
    fn mixed_per_sample_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut samples = Vec::new();
        let mut labels = Vec::new();
        let mut bounds = Vec::new();
        for i in 0..24 {
            let y = if i % 2 == 0 { 1.0 } else { -1.0 };
            samples.push(vec![
                y * 0.4 + rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
            ]);
            labels.push(y);
            bounds.push(if i < 12 { 2.0 } else { 0.02 }); // labeled vs ρC-style split
        }
        let svm = train(
            &samples,
            &labels,
            &bounds,
            RbfKernel::new(0.5),
            &default_params(),
        )
        .unwrap();
        for (i, &a) in svm.alpha.iter().enumerate() {
            assert!(a >= -1e-12 && a <= bounds[i] + 1e-12, "alpha[{i}]={a}");
        }
        let balance: f64 = svm.alpha.iter().zip(&labels).map(|(a, y)| a * y).sum();
        assert!(balance.abs() < 1e-9);
    }

    #[test]
    fn objective_decreases_with_larger_c_freedom() {
        // Enlarging the feasible region can only improve (lower) the optimal
        // dual objective.
        let samples = vec![vec![0.0], vec![0.4], vec![0.6], vec![1.0]];
        let labels = [-1.0, 1.0, -1.0, 1.0]; // noisy ordering → slack needed
        let small = train(
            &samples,
            &labels,
            &[0.5; 4],
            LinearKernel,
            &default_params(),
        )
        .unwrap();
        let large = train(
            &samples,
            &labels,
            &[5.0; 4],
            LinearKernel,
            &default_params(),
        )
        .unwrap();
        assert!(large.stats.objective <= small.stats.objective + 1e-9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// On random binary problems, the SMO solution satisfies all KKT
        /// conditions (checked independently of the solver internals).
        #[test]
        fn random_problems_satisfy_kkt(
            seed in 0u64..500,
            n_half in 3usize..12,
            c in 0.1f64..20.0,
            gamma in 0.1f64..2.0,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut samples = Vec::new();
            let mut labels = Vec::new();
            for _ in 0..n_half {
                samples.push(vec![rng.gen_range(-2.0..0.5), rng.gen_range(-1.0..1.0)]);
                labels.push(-1.0);
                samples.push(vec![rng.gen_range(-0.5..2.0), rng.gen_range(-1.0..1.0)]);
                labels.push(1.0);
            }
            let bounds = vec![c; samples.len()];
            let kernel = RbfKernel::new(gamma);
            let svm = train(&samples, &labels, &bounds, kernel, &default_params()).unwrap();
            prop_assert!(svm.stats.converged);
            let viol = kkt_violation(&samples, &labels, &bounds, &kernel, &svm);
            prop_assert!(viol < 1e-2, "KKT violation {viol}");
        }

        /// Equality constraint and box constraints always hold exactly.
        #[test]
        fn dual_feasibility(
            seed in 0u64..500,
            n_half in 2usize..10,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut samples = Vec::new();
            let mut labels = Vec::new();
            let mut bounds = Vec::new();
            for _ in 0..n_half * 2 {
                samples.push(vec![rng.gen_range(-1.0..1.0); 3]);
                labels.push(if rng.gen_bool(0.5) { 1.0 } else { -1.0 });
                bounds.push(rng.gen_range(0.01..10.0));
            }
            // Ensure both classes appear.
            labels[0] = 1.0;
            labels[1] = -1.0;
            let svm = train(&samples, &labels, &bounds, RbfKernel::new(1.0), &default_params())
                .unwrap();
            let balance: f64 = svm.alpha.iter().zip(&labels).map(|(a, y)| a * y).sum();
            prop_assert!(balance.abs() < 1e-8, "balance {balance}");
            for (a, c) in svm.alpha.iter().zip(&bounds) {
                prop_assert!(*a >= -1e-12 && *a <= c + 1e-12);
            }
        }
    }
}
