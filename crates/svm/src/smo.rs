//! Sequential Minimal Optimization for the C-SVC dual with per-sample
//! upper bounds.
//!
//! This is the working-set algorithm of LIBSVM (Fan, Chen & Lin's
//! second-order selection, "WSS 2") with the rest of the LIBSVM
//! training-path machinery: a lazy kernel-row LRU cache
//! ([`crate::KernelCache`]), **shrinking** of bounded points that satisfy
//! their KKT conditions (with the mandatory full-gradient reconstruction
//! check before convergence is declared, so shrinking never changes the
//! returned model beyond `eps`), and **warm starts**
//! ([`train_warm`]) that resume from a previous round's dual solution.
//! The one extension over stock LIBSVM is the **individual upper bound
//! `C_i` per sample**, which is exactly the modification the paper made to
//! LIBSVM: labeled points keep `C`, the unlabeled transductive points get
//! `ρ*·C` (Eq. 2/3 of the paper).
//!
//! Three entry points share one solver loop:
//!
//! * [`train`] — lazy kernel cache, shrinking per [`SmoParams`], cold
//!   start. The default path.
//! * [`train_warm`] — same, seeded with a previous solution whose alphas
//!   are clipped to the new bounds and repaired onto `Σ y_i α_i = 0`.
//! * [`train_precomputed`] — eager symmetric Gram matrix, shrinking
//!   forced off: the bit-exact reference. With shrinking disabled the
//!   lazy-cache path reproduces it bit for bit (cached rows are bitwise
//!   identical to precomputed ones); with shrinking on it agrees within
//!   `eps`.
//!
//! Optimality: the pair `(m(α), M(α))` of maximal KKT violations over the
//! index sets
//!
//! ```text
//! I_up(α)  = {t | α_t < C_t, y_t = +1} ∪ {t | α_t > 0, y_t = −1}
//! I_low(α) = {t | α_t < C_t, y_t = −1} ∪ {t | α_t > 0, y_t = +1}
//! ```
//!
//! shrinks until `m(α) − M(α) ≤ ε` (default `10⁻³`, LIBSVM's default).

use crate::cache::{KernelCache, KernelRows};
use crate::error::SvmError;
use crate::kernel::{gram_matrix, Kernel};
use crate::model::{SvmModel, TrainedSvm};
use serde::{Deserialize, Serialize};
use std::borrow::Borrow;

/// Solver tuning parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SmoParams {
    /// Stopping tolerance on the KKT violation gap.
    pub eps: f64,
    /// Hard cap on SMO iterations (working-set updates). The cap exists so
    /// a pathological kernel cannot hang a retrieval request; hitting it is
    /// reported through [`SolveStats::converged`].
    pub max_iter: usize,
    /// Lower bound substituted for non-positive second-order curvature
    /// (LIBSVM's `TAU`).
    pub tau: f64,
    /// Alphas below this threshold are dropped from the support set when
    /// building the model.
    pub sv_threshold: f64,
    /// Byte budget for the lazy kernel-row cache used by [`train`] /
    /// [`train_warm`] (rounded down to whole `8n`-byte rows; at least the
    /// two working-set rows are always kept). Ignored by
    /// [`train_precomputed`].
    pub cache_bytes: usize,
    /// Enables LIBSVM-style shrinking: bounded points whose KKT conditions
    /// hold are dropped from the working set, and the full gradient is
    /// reconstructed for a whole-problem optimality check before
    /// convergence is declared. Turning it off makes [`train`] bit-exact
    /// against [`train_precomputed`].
    pub shrinking: bool,
}

impl Default for SmoParams {
    fn default() -> Self {
        Self {
            eps: 1e-3,
            max_iter: 100_000,
            tau: 1e-12,
            sv_threshold: 1e-9,
            cache_bytes: 16 << 20,
            shrinking: true,
        }
    }
}

/// Diagnostics from one solver run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SolveStats {
    /// Number of working-set updates performed.
    pub iterations: usize,
    /// Whether the KKT gap reached `eps` (vs. hitting `max_iter`).
    pub converged: bool,
    /// Final dual objective `½αᵀQα − eᵀα`.
    pub objective: f64,
    /// Number of support vectors (`α_i > sv_threshold`).
    pub n_support: usize,
    /// Kernel-row accesses served from the lazy cache (0 on the
    /// precomputed path).
    pub cache_hits: u64,
    /// Kernel-row accesses that computed the row, including recomputes
    /// after eviction (0 on the precomputed path).
    pub cache_misses: u64,
}

/// Trains a C-SVC with per-sample upper bounds.
///
/// * `samples` — training points; anything that borrows as the kernel's
///   sample type is accepted (owned `Vec<f64>`s, borrowed `&[f64]` row
///   views of a flat feature matrix, `&SparseVector`s). Training never
///   clones a sample — only the retained support vectors are copied (via
///   `ToOwned`) into the model.
/// * `labels` — `+1.0` / `-1.0` per sample.
/// * `upper_bounds` — `C_i > 0` per sample.
///
/// Returns a [`TrainedSvm`] bundling the decision model, the full dual
/// solution, and solver statistics.
///
/// Kernel rows are computed lazily through a [`KernelCache`] sized by
/// [`SmoParams::cache_bytes`], and shrinking is applied per
/// [`SmoParams::shrinking`]; see [`train_precomputed`] for the eager
/// bit-exact reference path, and [`train_warm`] to seed the solver with a
/// previous round's solution.
///
/// **Degenerate input:** when every label has the same sign the dual forces
/// `α = 0` and the margin is meaningless; the returned model is a constant
/// decision equal to that sign (see [`crate::ModelKind::Constant`]), which keeps
/// relevance-feedback rounds total when a user marks everything relevant.
pub fn train<S, B, K>(
    samples: &[B],
    labels: &[f64],
    upper_bounds: &[f64],
    kernel: K,
    params: &SmoParams,
) -> Result<TrainedSvm<S, K>, SvmError>
where
    S: ?Sized + ToOwned,
    B: Borrow<S>,
    K: Kernel<S>,
{
    train_warm(samples, labels, upper_bounds, kernel, params, None)
}

/// [`train`], optionally seeded with a previous dual solution.
///
/// `warm` is a prior `alpha` vector (e.g. [`TrainedSvm::alpha`] from the
/// previous feedback round). It may be shorter than `samples` — feedback
/// rounds append newly labeled points, so entry `i` of the warm vector is
/// taken to correspond to sample `i` and any tail of new samples starts at
/// `α = 0`. Before iterating, the seed is made feasible for the *new*
/// problem: each `α_i` is clipped into `[0, C_i]` (bounds change when
/// `ρ*` anneals) and the equality constraint `Σ y_i α_i = 0` is repaired
/// by deterministically draining the surplus side in index order. A warm
/// start therefore never affects *what* the solver converges to (the
/// stopping criterion is unchanged), only how many iterations it takes;
/// `warm = None` or an all-zero seed reproduces the cold path bit for bit.
pub fn train_warm<S, B, K>(
    samples: &[B],
    labels: &[f64],
    upper_bounds: &[f64],
    kernel: K,
    params: &SmoParams,
    warm: Option<&[f64]>,
) -> Result<TrainedSvm<S, K>, SvmError>
where
    S: ?Sized + ToOwned,
    B: Borrow<S>,
    K: Kernel<S>,
{
    validate(samples.len(), labels, upper_bounds)?;
    if let Some(sign) = single_class_sign(labels) {
        return Ok(constant_model(samples.len(), sign, kernel));
    }

    let mut cache = KernelCache::new(&kernel, samples, params.cache_bytes)?;
    let sol = solve_dual(&mut cache, labels, upper_bounds, params, warm);
    let (cache_hits, cache_misses) = cache.cache_stats();
    drop(cache);
    Ok(finish_model(
        samples,
        labels,
        kernel,
        params,
        sol,
        cache_hits,
        cache_misses,
    ))
}

/// Trains over an eagerly precomputed Gram matrix with shrinking forced
/// off — the bit-exact reference the lazy-cache path is validated
/// against. The full matrix is scanned for non-finite entries up front
/// (the lazy path checks the kernel diagonal instead, which the dense and
/// sparse kernels here poison on any NaN/∞ sample).
///
/// Warm starts are deliberately not offered here: the reference is the
/// deterministic from-zero solve.
pub fn train_precomputed<S, B, K>(
    samples: &[B],
    labels: &[f64],
    upper_bounds: &[f64],
    kernel: K,
    params: &SmoParams,
) -> Result<TrainedSvm<S, K>, SvmError>
where
    S: ?Sized + ToOwned,
    B: Borrow<S>,
    K: Kernel<S>,
{
    validate(samples.len(), labels, upper_bounds)?;
    if let Some(sign) = single_class_sign(labels) {
        return Ok(constant_model(samples.len(), sign, kernel));
    }

    let n = samples.len();
    let mut k = gram_matrix::<S, B, K>(&kernel, samples);
    for (idx, &v) in k.as_slice().iter().enumerate() {
        if !v.is_finite() {
            return Err(SvmError::NonFiniteKernel {
                row: idx / n,
                col: idx % n,
            });
        }
    }

    let reference_params = SmoParams {
        shrinking: false,
        ..*params
    };
    let sol = solve_dual(&mut k, labels, upper_bounds, &reference_params, None);
    Ok(finish_model(samples, labels, kernel, params, sol, 0, 0))
}

/// Detects the single-class degenerate case shared by every entry point,
/// returning the constant decision sign when only one label is present.
fn single_class_sign(labels: &[f64]) -> Option<f64> {
    let has_pos = labels.iter().any(|&y| y > 0.0);
    let has_neg = labels.iter().any(|&y| y < 0.0);
    if has_pos && has_neg {
        None
    } else {
        Some(if has_pos { 1.0 } else { -1.0 })
    }
}

/// The degenerate single-class result: a constant decision model with an
/// all-zero dual solution.
fn constant_model<S, K>(n: usize, sign: f64, kernel: K) -> TrainedSvm<S, K>
where
    S: ?Sized + ToOwned,
    K: Kernel<S>,
{
    TrainedSvm {
        model: SvmModel::constant(kernel, sign),
        alpha: vec![0.0; n],
        stats: SolveStats {
            iterations: 0,
            converged: true,
            objective: 0.0,
            n_support: 0,
            cache_hits: 0,
            cache_misses: 0,
        },
    }
}

/// Builds the sparse model and stats bundle from a dual solution.
fn finish_model<S, B, K>(
    samples: &[B],
    labels: &[f64],
    kernel: K,
    params: &SmoParams,
    sol: DualSolution,
    cache_hits: u64,
    cache_misses: u64,
) -> TrainedSvm<S, K>
where
    S: ?Sized + ToOwned,
    B: Borrow<S>,
    K: Kernel<S>,
{
    // Keep only true support vectors (the sole copies made of any
    // training data).
    let mut support_vectors = Vec::new();
    let mut coefficients = Vec::new();
    for (i, &a) in sol.alpha.iter().enumerate() {
        if a > params.sv_threshold {
            support_vectors.push(samples[i].borrow().to_owned());
            coefficients.push(a * labels[i]);
        }
    }
    let n_support = support_vectors.len();
    let model = SvmModel::new(kernel, support_vectors, coefficients, -sol.rho);
    TrainedSvm {
        model,
        alpha: sol.alpha,
        stats: SolveStats {
            iterations: sol.iterations,
            converged: sol.converged,
            objective: sol.objective,
            n_support,
            cache_hits,
            cache_misses,
        },
    }
}

fn validate(n_samples: usize, labels: &[f64], bounds: &[f64]) -> Result<(), SvmError> {
    if n_samples == 0 {
        return Err(SvmError::EmptyTrainingSet);
    }
    if labels.len() != n_samples || bounds.len() != n_samples {
        return Err(SvmError::LengthMismatch {
            samples: n_samples,
            labels: labels.len(),
            bounds: bounds.len(),
        });
    }
    for (i, &y) in labels.iter().enumerate() {
        if y != 1.0 && y != -1.0 {
            return Err(SvmError::InvalidLabel { index: i });
        }
    }
    for (i, &c) in bounds.iter().enumerate() {
        if !(c > 0.0 && c.is_finite()) {
            return Err(SvmError::InvalidBound { index: i });
        }
    }
    Ok(())
}

/// Everything [`solve_dual`] hands back to the model builders.
struct DualSolution {
    alpha: Vec<f64>,
    rho: f64,
    objective: f64,
    iterations: usize,
    converged: bool,
}

/// Clips a warm-start seed into the new box `[0, C_i]` and repairs the
/// equality constraint `Σ y_i α_i = 0` by draining the surplus side in
/// deterministic index order. Non-finite seed entries and any tail beyond
/// the seed's length start at zero.
fn clip_and_repair(warm: &[f64], y: &[f64], c: &[f64]) -> Vec<f64> {
    let n = y.len();
    let mut a = vec![0.0f64; n];
    for i in 0..n.min(warm.len()) {
        let v = warm[i];
        if v.is_finite() {
            a[i] = v.clamp(0.0, c[i]);
        }
    }
    let mut surplus: f64 = a.iter().zip(y).map(|(ai, yi)| ai * yi).sum();
    for i in 0..n {
        if surplus == 0.0 {
            break;
        }
        if surplus > 0.0 && y[i] > 0.0 && a[i] > 0.0 {
            let d = a[i].min(surplus);
            a[i] -= d;
            surplus -= d;
        } else if surplus < 0.0 && y[i] < 0.0 && a[i] > 0.0 {
            let d = a[i].min(-surplus);
            a[i] -= d;
            surplus += d;
        }
    }
    a
}

/// `G_i = Σ_j Q_ij α_j − 1` computed from scratch for every index whose
/// `mask` entry is false (pass an all-false mask to initialize a
/// warm-started gradient). Rows are only touched for nonzero alphas.
fn recompute_gradient<Q: KernelRows>(
    q: &mut Q,
    y: &[f64],
    alpha: &[f64],
    g: &mut [f64],
    skip: &[bool],
) {
    let n = y.len();
    for t in 0..n {
        if !skip[t] {
            g[t] = -1.0;
        }
    }
    for j in 0..n {
        if alpha[j] != 0.0 {
            let coef = alpha[j] * y[j];
            let kj = q.row(j);
            for t in 0..n {
                if !skip[t] {
                    g[t] += y[t] * coef * kj[t];
                }
            }
        }
    }
}

/// LIBSVM's `be_shrunk`: a bounded point may leave the active set when its
/// KKT condition holds with slack against the current violation maxima.
fn be_shrunk(
    t: usize,
    y: &[f64],
    c: &[f64],
    alpha: &[f64],
    g: &[f64],
    gmax1: f64,
    gmax2: f64,
) -> bool {
    if alpha[t] >= c[t] {
        if y[t] > 0.0 {
            -g[t] > gmax1
        } else {
            -g[t] > gmax2
        }
    } else if alpha[t] <= 0.0 {
        if y[t] > 0.0 {
            g[t] > gmax2
        } else {
            g[t] > gmax1
        }
    } else {
        false
    }
}

/// Core SMO loop over any [`KernelRows`] provider (lazy cache or
/// precomputed matrix). The decision function of the returned solution is
/// `f(x) = Σ α_i y_i K(x_i, x) − rho`.
fn solve_dual<Q: KernelRows>(
    q: &mut Q,
    y: &[f64],
    c: &[f64],
    params: &SmoParams,
    warm: Option<&[f64]>,
) -> DualSolution {
    let n = y.len();
    let qd: Vec<f64> = (0..n).map(|i| q.diag(i)).collect();

    let mut alpha;
    let mut g = vec![-1.0f64; n];
    match warm {
        Some(w) => {
            alpha = clip_and_repair(w, y, c);
            let none_skipped = vec![false; n];
            recompute_gradient(q, y, &alpha, &mut g, &none_skipped);
        }
        None => alpha = vec![0.0f64; n],
    }

    // Active-set bookkeeping for shrinking. `active` stays sorted
    // ascending so that, with shrinking disabled, every loop below visits
    // indices in exactly the order of the reference implementation.
    let mut active: Vec<usize> = (0..n).collect();
    let mut unshrunk = false;
    let mut counter = n.min(1000) + 1;

    let mut iterations = 0usize;
    let mut converged = false;
    while iterations < params.max_iter {
        counter -= 1;
        if counter == 0 {
            counter = n.min(1000);
            if params.shrinking {
                do_shrinking(q, y, c, &alpha, &mut g, &mut active, &mut unshrunk, params);
            }
        }

        let (i, j) = match select_working_set(q, &qd, y, c, &alpha, &g, &active, params) {
            Some(pair) => pair,
            None => {
                if active.len() == n {
                    converged = true;
                    break;
                }
                // Optimal on the shrunk set only: reconstruct the full
                // gradient and re-check optimality over the whole problem
                // before declaring convergence.
                reconstruct_gradient(q, y, &alpha, &mut g, &active);
                active = (0..n).collect();
                match select_working_set(q, &qd, y, c, &alpha, &g, &active, params) {
                    Some(pair) => {
                        counter = 1; // shrink again on the next iteration
                        pair
                    }
                    None => {
                        converged = true;
                        break;
                    }
                }
            }
        };
        iterations += 1;

        let old_ai = alpha[i];
        let old_aj = alpha[j];
        let ci = c[i];
        let cj = c[j];

        let (ki, kj) = q.pair(i, j);

        // In both branches the curvature along the update direction is
        // ‖φ(x_i) − φ(x_j)‖² = K_ii + K_jj − 2K_ij (LIBSVM writes it as
        // QD[i] + QD[j] ± 2Q_ij because Q already carries y_i y_j).
        if y[i] != y[j] {
            let mut quad = qd[i] + qd[j] - 2.0 * ki[j];
            if quad <= 0.0 {
                quad = params.tau;
            }
            let delta = (-g[i] - g[j]) / quad;
            let diff = alpha[i] - alpha[j];
            alpha[i] += delta;
            alpha[j] += delta;

            if diff > 0.0 {
                if alpha[j] < 0.0 {
                    alpha[j] = 0.0;
                    alpha[i] = diff;
                }
            } else if alpha[i] < 0.0 {
                alpha[i] = 0.0;
                alpha[j] = -diff;
            }
            if diff > ci - cj {
                if alpha[i] > ci {
                    alpha[i] = ci;
                    alpha[j] = ci - diff;
                }
            } else if alpha[j] > cj {
                alpha[j] = cj;
                alpha[i] = cj + diff;
            }
        } else {
            let mut quad = qd[i] + qd[j] - 2.0 * ki[j];
            if quad <= 0.0 {
                quad = params.tau;
            }
            let delta = (g[i] - g[j]) / quad;
            let sum = alpha[i] + alpha[j];
            alpha[i] -= delta;
            alpha[j] += delta;

            if sum > ci {
                if alpha[i] > ci {
                    alpha[i] = ci;
                    alpha[j] = sum - ci;
                }
            } else if alpha[j] < 0.0 {
                alpha[j] = 0.0;
                alpha[i] = sum;
            }
            if sum > cj {
                if alpha[j] > cj {
                    alpha[j] = cj;
                    alpha[i] = sum - cj;
                }
            } else if alpha[i] < 0.0 {
                alpha[i] = 0.0;
                alpha[j] = sum;
            }
        }

        // Incremental gradient update: G_t += Q_ti Δα_i + Q_tj Δα_j. The
        // flat row layout makes this the linear scan of two contiguous
        // rows, restricted to the active set (shrunk gradients are
        // reconstructed on demand).
        let dai = alpha[i] - old_ai;
        let daj = alpha[j] - old_aj;
        if dai != 0.0 || daj != 0.0 {
            let yi = y[i];
            let yj = y[j];
            for &t in &active {
                g[t] += y[t] * (yi * ki[t] * dai + yj * kj[t] * daj);
            }
        }
    }

    // Every exit path needs the exact gradient everywhere: rho averages
    // y_t G_t and the objective uses the identity below.
    if active.len() < n {
        reconstruct_gradient(q, y, &alpha, &mut g, &active);
    }
    let rho = calculate_rho(y, c, &alpha, &g);

    // ½αᵀQα − eᵀα = ½ Σ_i α_i (G_i − 1), since G = Qα − e.
    let mut objective = 0.0;
    for t in 0..n {
        objective += 0.5 * alpha[t] * (g[t] - 1.0);
    }

    DualSolution {
        alpha,
        rho,
        objective,
        iterations,
        converged,
    }
}

/// Recomputes the gradient of every *inactive* index from scratch (the
/// incremental updates skip them while they are shrunk).
fn reconstruct_gradient<Q: KernelRows>(
    q: &mut Q,
    y: &[f64],
    alpha: &[f64],
    g: &mut [f64],
    active: &[usize],
) {
    let n = y.len();
    if active.len() == n {
        return;
    }
    let mut is_active = vec![false; n];
    for &t in active {
        is_active[t] = true;
    }
    recompute_gradient(q, y, alpha, g, &is_active);
}

/// LIBSVM's `do_shrinking`: drop bounded-and-satisfied points from the
/// active set; once the violation gap falls within `10·eps`, unshrink
/// everything (reconstructing the gradient) so the endgame runs on the
/// full problem.
#[allow(clippy::too_many_arguments)]
fn do_shrinking<Q: KernelRows>(
    q: &mut Q,
    y: &[f64],
    c: &[f64],
    alpha: &[f64],
    g: &mut [f64],
    active: &mut Vec<usize>,
    unshrunk: &mut bool,
    params: &SmoParams,
) {
    let n = y.len();
    // Violation maxima over the active set: gmax1 = m(α), gmax2 = −M(α).
    let mut gmax1 = f64::NEG_INFINITY;
    let mut gmax2 = f64::NEG_INFINITY;
    for &t in active.iter() {
        let in_i_up = if y[t] > 0.0 {
            alpha[t] < c[t]
        } else {
            alpha[t] > 0.0
        };
        if in_i_up {
            gmax1 = gmax1.max(-y[t] * g[t]);
        }
        let in_i_low = if y[t] > 0.0 {
            alpha[t] > 0.0
        } else {
            alpha[t] < c[t]
        };
        if in_i_low {
            gmax2 = gmax2.max(y[t] * g[t]);
        }
    }

    if !*unshrunk && gmax1 + gmax2 <= params.eps * 10.0 {
        *unshrunk = true;
        reconstruct_gradient(q, y, alpha, g, active);
        *active = (0..n).collect();
    }

    active.retain(|&t| !be_shrunk(t, y, c, alpha, g, gmax1, gmax2));
}

/// LIBSVM's second-order working-set selection, restricted to the active
/// set. Returns `None` when the KKT gap over the active set is within
/// tolerance (optimal there — the caller decides whether that means the
/// whole problem is optimal).
#[allow(clippy::too_many_arguments)]
fn select_working_set<Q: KernelRows>(
    q: &mut Q,
    qd: &[f64],
    y: &[f64],
    c: &[f64],
    alpha: &[f64],
    g: &[f64],
    active: &[usize],
    params: &SmoParams,
) -> Option<(usize, usize)> {
    // i = argmax_{t ∈ I_up} −y_t G_t
    let mut gmax = f64::NEG_INFINITY;
    let mut i: isize = -1;
    for &t in active {
        let in_i_up = if y[t] > 0.0 {
            alpha[t] < c[t]
        } else {
            alpha[t] > 0.0
        };
        if in_i_up {
            let v = -y[t] * g[t];
            if v >= gmax {
                gmax = v;
                i = t as isize;
            }
        }
    }
    if i < 0 {
        return None;
    }
    let i = i as usize;

    // j = argmin over violating t ∈ I_low of the second-order gain.
    let kii = qd[i];
    let ki = q.row(i);
    let mut gmax2 = f64::NEG_INFINITY; // max_{I_low} y_t G_t  (= −M(α))
    let mut j: isize = -1;
    let mut obj_min = f64::INFINITY;
    for &t in active {
        let in_i_low = if y[t] > 0.0 {
            alpha[t] > 0.0
        } else {
            alpha[t] < c[t]
        };
        if !in_i_low {
            continue;
        }
        let ygt = y[t] * g[t];
        if ygt >= gmax2 {
            gmax2 = ygt;
        }
        let grad_diff = gmax + ygt;
        if grad_diff > 0.0 {
            // Second-order curvature along the (i, t) direction is
            // ‖φ(x_i) − φ(x_t)‖² regardless of the label combination.
            let mut quad = kii + qd[t] - 2.0 * ki[t];
            if quad <= 0.0 {
                quad = params.tau;
            }
            let obj = -(grad_diff * grad_diff) / quad;
            if obj <= obj_min {
                obj_min = obj;
                j = t as isize;
            }
        }
    }

    if gmax + gmax2 < params.eps || j < 0 {
        return None;
    }
    Some((i, j as usize))
}

/// Bias recovery (LIBSVM `calculate_rho`): average `y_t G_t` over free
/// support vectors, falling back to the midpoint of the feasibility
/// interval when no variable is free.
fn calculate_rho(y: &[f64], c: &[f64], alpha: &[f64], g: &[f64]) -> f64 {
    let mut upper = f64::INFINITY;
    let mut lower = f64::NEG_INFINITY;
    let mut sum_free = 0.0;
    let mut n_free = 0usize;
    for t in 0..y.len() {
        let ygt = y[t] * g[t];
        if alpha[t] >= c[t] {
            if y[t] < 0.0 {
                upper = upper.min(ygt);
            } else {
                lower = lower.max(ygt);
            }
        } else if alpha[t] <= 0.0 {
            if y[t] > 0.0 {
                upper = upper.min(ygt);
            } else {
                lower = lower.max(ygt);
            }
        } else {
            n_free += 1;
            sum_free += ygt;
        }
    }
    if n_free > 0 {
        sum_free / n_free as f64
    } else {
        (upper + lower) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{LinearKernel, RbfKernel};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn default_params() -> SmoParams {
        SmoParams::default()
    }

    /// Independent KKT verification for the solution of a C-SVC dual.
    /// Returns the maximum violation found.
    fn kkt_violation<K: Kernel<[f64]>>(
        samples: &[Vec<f64>],
        labels: &[f64],
        bounds: &[f64],
        kernel: &K,
        trained: &TrainedSvm<[f64], K>,
    ) -> f64 {
        let mut worst: f64 = 0.0;
        // Dual feasibility: Σ α_i y_i = 0 and 0 ≤ α ≤ C.
        let balance: f64 = trained.alpha.iter().zip(labels).map(|(a, y)| a * y).sum();
        worst = worst.max(balance.abs());
        for (i, &a) in trained.alpha.iter().enumerate() {
            worst = worst.max((-a).max(a - bounds[i]).max(0.0));
        }
        // Stationarity through the margins: α=0 ⇒ y f ≥ 1; α=C ⇒ y f ≤ 1;
        // 0<α<C ⇒ y f ≈ 1. The model drops tiny alphas, so recompute the
        // decision from the full alpha vector.
        for (i, x) in samples.iter().enumerate() {
            let mut f = trained.model.bias();
            for (j, xj) in samples.iter().enumerate() {
                if trained.alpha[j] > 0.0 {
                    f += trained.alpha[j] * labels[j] * kernel.compute(xj, x);
                }
            }
            let margin = labels[i] * f;
            let a = trained.alpha[i];
            if a <= 1e-8 {
                worst = worst.max((1.0 - margin).max(0.0));
            } else if a >= bounds[i] - 1e-8 {
                worst = worst.max((margin - 1.0).max(0.0));
            } else {
                worst = worst.max((margin - 1.0).abs());
            }
        }
        worst
    }

    /// A reproducible two-cluster Gaussian problem used by the new
    /// equivalence tests.
    fn gaussian_problem(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut samples = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let y = if i % 2 == 0 { 1.0 } else { -1.0 };
            samples.push(vec![
                y * 0.8 + rng.gen_range(-1.5..1.5),
                rng.gen_range(-1.0..1.0),
            ]);
            labels.push(y);
        }
        (samples, labels)
    }

    #[test]
    fn two_point_problem_has_known_solution() {
        // x = −1 (y=−1), x = +1 (y=+1), linear kernel, large C:
        // α₁ = α₂ = 0.5, f(x) = x, b = 0.
        let samples = vec![vec![-1.0], vec![1.0]];
        let labels = [-1.0, 1.0];
        let bounds = [100.0, 100.0];
        let svm = train(&samples, &labels, &bounds, LinearKernel, &default_params()).unwrap();
        assert!(svm.stats.converged);
        assert!((svm.alpha[0] - 0.5).abs() < 1e-6, "alpha {:?}", svm.alpha);
        assert!((svm.alpha[1] - 0.5).abs() < 1e-6);
        assert!(svm.model.bias().abs() < 1e-6);
        assert!((svm.model.decision(&[1.0]) - 1.0).abs() < 1e-6);
        assert!((svm.model.decision(&[-1.0]) + 1.0).abs() < 1e-6);
        assert!((svm.model.decision(&[0.25]) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn training_over_borrowed_row_views_matches_owned() {
        // The zero-copy contract: training on &[f64] views of one flat
        // matrix produces exactly the training result over owned Vecs.
        let flat: Vec<f64> = (0..20).map(|i| (i as f64 * 0.43).sin()).collect();
        let owned: Vec<Vec<f64>> = flat.chunks(2).map(<[f64]>::to_vec).collect();
        let views: Vec<&[f64]> = flat.chunks(2).collect();
        let labels: Vec<f64> = (0..10)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let bounds = vec![5.0; 10];
        let kernel = RbfKernel::new(0.9);
        let a = train(&owned, &labels, &bounds, kernel, &default_params()).unwrap();
        let b = train(&views, &labels, &bounds, kernel, &default_params()).unwrap();
        assert_eq!(a.alpha, b.alpha);
        assert_eq!(a.model.bias(), b.model.bias());
        assert_eq!(a.model.support_vectors(), b.model.support_vectors());
        let probe = [0.3, -0.3];
        assert_eq!(a.model.decision(&probe), b.model.decision(&probe));
    }

    #[test]
    fn cached_path_matches_precomputed_bit_exactly() {
        // With shrinking off, the lazy-cache solver must reproduce the
        // eager-Gram reference bit for bit — same iterates, same alphas,
        // same bias — even under heavy eviction pressure.
        let (samples, labels) = gaussian_problem(40, 11);
        let bounds = vec![3.0; samples.len()];
        let kernel = RbfKernel::new(0.7);
        let reference =
            train_precomputed(&samples, &labels, &bounds, kernel, &default_params()).unwrap();
        for cache_bytes in [usize::MAX, 16 << 20, 0] {
            let params = SmoParams {
                shrinking: false,
                cache_bytes,
                ..SmoParams::default()
            };
            let cached = train(&samples, &labels, &bounds, kernel, &params).unwrap();
            assert_eq!(cached.alpha, reference.alpha, "cache_bytes {cache_bytes}");
            assert_eq!(cached.model.bias(), reference.model.bias());
            assert_eq!(cached.stats.iterations, reference.stats.iterations);
            assert_eq!(cached.stats.objective, reference.stats.objective);
            assert!(cached.stats.cache_misses > 0);
        }
    }

    #[test]
    fn shrinking_agrees_with_reference_within_eps() {
        let (samples, labels) = gaussian_problem(60, 5);
        let bounds = vec![5.0; samples.len()];
        let kernel = RbfKernel::new(0.6);
        let params = default_params();
        assert!(params.shrinking, "shrinking is the default");
        let shrunk = train(&samples, &labels, &bounds, kernel, &params).unwrap();
        let reference = train_precomputed(&samples, &labels, &bounds, kernel, &params).unwrap();
        assert!(shrunk.stats.converged);
        // Shrinking must not change the model beyond the solver tolerance:
        // both solutions satisfy the same eps-KKT conditions, so their
        // decisions agree to that order.
        for s in &samples {
            let d = (shrunk.model.decision(s) - reference.model.decision(s)).abs();
            assert!(d < 1e-2, "decision drift {d}");
        }
        let viol = kkt_violation(&samples, &labels, &bounds, &kernel, &shrunk);
        assert!(viol < 5e-3, "KKT violation {viol} with shrinking on");
    }

    #[test]
    fn warm_start_from_exact_solution_converges_immediately() {
        let (samples, labels) = gaussian_problem(30, 7);
        let bounds = vec![2.0; samples.len()];
        let kernel = RbfKernel::new(0.8);
        let params = default_params();
        let cold = train(&samples, &labels, &bounds, kernel, &params).unwrap();
        let warm = train_warm(
            &samples,
            &labels,
            &bounds,
            kernel,
            &params,
            Some(&cold.alpha),
        )
        .unwrap();
        assert!(warm.stats.converged);
        // The recomputed warm gradient rounds the KKT gap slightly
        // differently than the incremental one, so allow a touch-up
        // update or two — against hundreds for the cold solve.
        assert!(
            warm.stats.iterations <= 2,
            "re-solving from the optimum took {} updates (cold took {})",
            warm.stats.iterations,
            cold.stats.iterations
        );
        assert!(
            cold.stats.iterations > 10,
            "cold baseline should be nontrivial"
        );
        for s in &samples {
            let d = (warm.model.decision(s) - cold.model.decision(s)).abs();
            assert!(d < 1e-9, "decision drift {d}");
        }
    }

    #[test]
    fn warm_start_equivalence_from_perturbed_and_stale_seeds() {
        // A warm start changes where the solver starts, never where it
        // stops: from a perturbed/previous-round solution it must reach
        // the same eps-optimal model as the cold solve.
        let (samples, labels) = gaussian_problem(36, 21);
        let bounds = vec![4.0; samples.len()];
        let kernel = RbfKernel::new(0.5);
        let params = default_params();
        let cold = train(&samples, &labels, &bounds, kernel, &params).unwrap();

        // Previous-round seed: the solution of the problem minus its last
        // four points (shorter than n — the tail starts at zero).
        let prev = train(
            &samples[..samples.len() - 4],
            &labels[..labels.len() - 4],
            &bounds[..bounds.len() - 4],
            kernel,
            &params,
        )
        .unwrap();
        // Perturbed seed: infeasible on purpose (out of box, NaN entry).
        let mut perturbed = cold.alpha.clone();
        for (i, v) in perturbed.iter_mut().enumerate() {
            *v += [(0.7, 1.0), (-2.0, 0.3)][i % 2].0 * [(0.7, 1.0), (-2.0, 0.3)][i % 2].1;
        }
        perturbed[0] = f64::NAN;

        for seed in [prev.alpha.as_slice(), perturbed.as_slice()] {
            let warm = train_warm(&samples, &labels, &bounds, kernel, &params, Some(seed)).unwrap();
            assert!(warm.stats.converged);
            let viol = kkt_violation(&samples, &labels, &bounds, &kernel, &warm);
            assert!(viol < 1e-2, "warm KKT violation {viol}");
            for s in &samples {
                let d = (warm.model.decision(s) - cold.model.decision(s)).abs();
                assert!(d < 2e-2, "decision drift {d}");
            }
        }
    }

    #[test]
    fn warm_zero_seed_reproduces_cold_path_bit_for_bit() {
        let (samples, labels) = gaussian_problem(24, 3);
        let bounds = vec![1.5; samples.len()];
        let kernel = RbfKernel::new(1.0);
        let params = default_params();
        let cold = train(&samples, &labels, &bounds, kernel, &params).unwrap();
        let zeros = vec![0.0; samples.len()];
        let warm = train_warm(&samples, &labels, &bounds, kernel, &params, Some(&zeros)).unwrap();
        assert_eq!(cold.alpha, warm.alpha);
        assert_eq!(cold.stats.iterations, warm.stats.iterations);
        assert_eq!(cold.model.bias(), warm.model.bias());
    }

    #[test]
    fn cache_counters_surface_in_stats() {
        let (samples, labels) = gaussian_problem(20, 9);
        let bounds = vec![2.0; samples.len()];
        let svm = train(
            &samples,
            &labels,
            &bounds,
            RbfKernel::new(0.9),
            &default_params(),
        )
        .unwrap();
        assert!(svm.stats.cache_misses > 0, "some rows must be computed");
        assert!(
            svm.stats.cache_misses <= samples.len() as u64,
            "default budget holds every row — no recomputes"
        );
        assert!(
            svm.stats.cache_hits > 0,
            "rows are revisited across iterations"
        );
        let reference = train_precomputed(
            &samples,
            &labels,
            &bounds,
            RbfKernel::new(0.9),
            &default_params(),
        )
        .unwrap();
        assert_eq!(reference.stats.cache_hits, 0);
        assert_eq!(reference.stats.cache_misses, 0);
    }

    #[test]
    fn asymmetric_two_point_bias() {
        // Points at 0 and 2: separator midpoint at 1 → f(x) = x − 1.
        let samples = vec![vec![0.0], vec![2.0]];
        let labels = [-1.0, 1.0];
        let bounds = [50.0, 50.0];
        let svm = train(&samples, &labels, &bounds, LinearKernel, &default_params()).unwrap();
        assert!((svm.model.decision(&[1.0])).abs() < 1e-6);
        assert!((svm.model.decision(&[2.0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn bound_constrains_noisy_point() {
        // A mislabeled point with a tiny C_i cannot dominate: the solution
        // should essentially ignore it.
        let samples = vec![
            vec![-2.0],
            vec![-1.5],
            vec![1.5],
            vec![2.0],
            vec![1.8], // mislabeled as negative
        ];
        let labels = [-1.0, -1.0, 1.0, 1.0, -1.0];
        let bounds = [10.0, 10.0, 10.0, 10.0, 1e-4];
        let svm = train(&samples, &labels, &bounds, LinearKernel, &default_params()).unwrap();
        // The mislabeled point's alpha is capped at its tiny bound.
        assert!(svm.alpha[4] <= 1e-4 + 1e-12);
        // Classification of the clean points is unaffected.
        assert!(svm.model.decision(&[1.5]) > 0.0);
        assert!(svm.model.decision(&[-1.5]) < 0.0);
    }

    #[test]
    fn single_class_returns_constant_model() {
        let samples = vec![vec![0.0], vec![1.0]];
        let labels = [1.0, 1.0];
        let bounds = [1.0, 1.0];
        let svm = train(&samples, &labels, &bounds, LinearKernel, &default_params()).unwrap();
        assert_eq!(svm.model.kind(), crate::model::ModelKind::Constant);
        assert_eq!(svm.model.decision(&[123.0]), 1.0);
        let svm_neg = train(
            &samples,
            &[-1.0, -1.0],
            &bounds,
            LinearKernel,
            &default_params(),
        )
        .unwrap();
        assert_eq!(svm_neg.model.decision(&[123.0]), -1.0);
    }

    #[test]
    fn rbf_separates_xor() {
        // XOR is the classic linearly inseparable problem; RBF must solve it.
        let samples = vec![
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
        ];
        let labels = [1.0, 1.0, -1.0, -1.0];
        let bounds = [100.0; 4];
        let svm = train(
            &samples,
            &labels,
            &bounds,
            RbfKernel::new(2.0),
            &default_params(),
        )
        .unwrap();
        for (s, &y) in samples.iter().zip(&labels) {
            assert!(svm.model.decision(s) * y > 0.0, "misclassified {s:?}");
        }
    }

    #[test]
    fn validation_errors() {
        let s: Vec<Vec<f64>> = vec![];
        assert_eq!(
            train(&s, &[], &[], LinearKernel, &default_params()).unwrap_err(),
            SvmError::EmptyTrainingSet
        );
        let s = vec![vec![0.0]];
        assert!(matches!(
            train(&s, &[1.0, 1.0], &[1.0], LinearKernel, &default_params()).unwrap_err(),
            SvmError::LengthMismatch { .. }
        ));
        assert!(matches!(
            train(&s, &[0.5], &[1.0], LinearKernel, &default_params()).unwrap_err(),
            SvmError::InvalidLabel { index: 0 }
        ));
        assert!(matches!(
            train(&s, &[1.0], &[0.0], LinearKernel, &default_params()).unwrap_err(),
            SvmError::InvalidBound { index: 0 }
        ));
    }

    #[test]
    fn nan_sample_is_reported() {
        let s = vec![vec![f64::NAN], vec![1.0]];
        for result in [
            train(
                &s,
                &[-1.0, 1.0],
                &[1.0, 1.0],
                LinearKernel,
                &default_params(),
            ),
            train_precomputed(
                &s,
                &[-1.0, 1.0],
                &[1.0, 1.0],
                LinearKernel,
                &default_params(),
            ),
        ] {
            assert!(matches!(
                result.unwrap_err(),
                SvmError::NonFiniteKernel { .. }
            ));
        }
    }

    #[test]
    fn slacks_zero_for_separable_large_c() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut samples = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..20 {
            samples.push(vec![rng.gen_range(-1.0..1.0), rng.gen_range(2.0..4.0)]);
            labels.push(1.0);
            samples.push(vec![rng.gen_range(-1.0..1.0), rng.gen_range(-4.0..-2.0)]);
            labels.push(-1.0);
        }
        let bounds = vec![1000.0; samples.len()];
        let svm = train(&samples, &labels, &bounds, LinearKernel, &default_params()).unwrap();
        for (s, &y) in samples.iter().zip(&labels) {
            let slack = svm.model.hinge_slack(s, y);
            assert!(slack < 1e-3, "slack {slack}");
        }
    }

    #[test]
    fn kkt_conditions_hold_on_random_gaussian_problem() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut samples = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..30 {
            let y = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            let cx = if y > 0.0 { 1.0 } else { -1.0 };
            samples.push(vec![
                cx + rng.gen_range(-1.2..1.2),
                rng.gen_range(-1.0..1.0),
            ]);
            labels.push(y);
        }
        let bounds = vec![5.0; samples.len()];
        let kernel = RbfKernel::new(0.7);
        let svm = train(&samples, &labels, &bounds, kernel, &default_params()).unwrap();
        assert!(svm.stats.converged);
        let viol = kkt_violation(&samples, &labels, &bounds, &kernel, &svm);
        assert!(viol < 5e-3, "KKT violation {viol}");
    }

    #[test]
    fn mixed_per_sample_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut samples = Vec::new();
        let mut labels = Vec::new();
        let mut bounds = Vec::new();
        for i in 0..24 {
            let y = if i % 2 == 0 { 1.0 } else { -1.0 };
            samples.push(vec![
                y * 0.4 + rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
            ]);
            labels.push(y);
            bounds.push(if i < 12 { 2.0 } else { 0.02 }); // labeled vs ρC-style split
        }
        let svm = train(
            &samples,
            &labels,
            &bounds,
            RbfKernel::new(0.5),
            &default_params(),
        )
        .unwrap();
        for (i, &a) in svm.alpha.iter().enumerate() {
            assert!(a >= -1e-12 && a <= bounds[i] + 1e-12, "alpha[{i}]={a}");
        }
        let balance: f64 = svm.alpha.iter().zip(&labels).map(|(a, y)| a * y).sum();
        assert!(balance.abs() < 1e-9);
    }

    #[test]
    fn objective_decreases_with_larger_c_freedom() {
        // Enlarging the feasible region can only improve (lower) the optimal
        // dual objective.
        let samples = vec![vec![0.0], vec![0.4], vec![0.6], vec![1.0]];
        let labels = [-1.0, 1.0, -1.0, 1.0]; // noisy ordering → slack needed
        let small = train(
            &samples,
            &labels,
            &[0.5; 4],
            LinearKernel,
            &default_params(),
        )
        .unwrap();
        let large = train(
            &samples,
            &labels,
            &[5.0; 4],
            LinearKernel,
            &default_params(),
        )
        .unwrap();
        assert!(large.stats.objective <= small.stats.objective + 1e-9);
    }

    #[test]
    fn clip_and_repair_restores_feasibility() {
        let y = [1.0, -1.0, 1.0, -1.0];
        let c = [1.0, 1.0, 1.0, 1.0];
        // Out-of-box, unbalanced, with a NaN: must come back feasible.
        let seed = [5.0, 0.25, f64::NAN, -3.0];
        let a = clip_and_repair(&seed, &y, &c);
        let balance: f64 = a.iter().zip(&y).map(|(ai, yi)| ai * yi).sum();
        assert!(balance.abs() < 1e-12, "balance {balance}");
        for (i, &v) in a.iter().enumerate() {
            assert!((0.0..=c[i]).contains(&v), "a[{i}]={v}");
        }
        // A shorter-than-n seed leaves the tail at zero.
        let short = clip_and_repair(&[0.5], &y, &c);
        assert_eq!(&short[1..], &[0.0, 0.0, 0.0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// On random binary problems, the SMO solution satisfies all KKT
        /// conditions (checked independently of the solver internals).
        /// `SmoParams::default()` turns shrinking and the lazy cache on, so
        /// this exercises the full new training path.
        #[test]
        fn random_problems_satisfy_kkt(
            seed in 0u64..500,
            n_half in 3usize..12,
            c in 0.1f64..20.0,
            gamma in 0.1f64..2.0,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut samples = Vec::new();
            let mut labels = Vec::new();
            for _ in 0..n_half {
                samples.push(vec![rng.gen_range(-2.0..0.5), rng.gen_range(-1.0..1.0)]);
                labels.push(-1.0);
                samples.push(vec![rng.gen_range(-0.5..2.0), rng.gen_range(-1.0..1.0)]);
                labels.push(1.0);
            }
            let bounds = vec![c; samples.len()];
            let kernel = RbfKernel::new(gamma);
            let svm = train(&samples, &labels, &bounds, kernel, &default_params()).unwrap();
            prop_assert!(svm.stats.converged);
            let viol = kkt_violation(&samples, &labels, &bounds, &kernel, &svm);
            prop_assert!(viol < 1e-2, "KKT violation {viol}");
        }

        /// Equality constraint and box constraints always hold exactly.
        #[test]
        fn dual_feasibility(
            seed in 0u64..500,
            n_half in 2usize..10,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut samples = Vec::new();
            let mut labels = Vec::new();
            let mut bounds = Vec::new();
            for _ in 0..n_half * 2 {
                samples.push(vec![rng.gen_range(-1.0..1.0); 3]);
                labels.push(if rng.gen_bool(0.5) { 1.0 } else { -1.0 });
                bounds.push(rng.gen_range(0.01..10.0));
            }
            // Ensure both classes appear.
            labels[0] = 1.0;
            labels[1] = -1.0;
            let svm = train(&samples, &labels, &bounds, RbfKernel::new(1.0), &default_params())
                .unwrap();
            let balance: f64 = svm.alpha.iter().zip(&labels).map(|(a, y)| a * y).sum();
            prop_assert!(balance.abs() < 1e-8, "balance {balance}");
            for (a, c) in svm.alpha.iter().zip(&bounds) {
                prop_assert!(*a >= -1e-12 && *a <= c + 1e-12);
            }
        }

        /// Warm starting from any (even garbage) seed reaches an
        /// eps-optimal model: the stopping criterion is independent of the
        /// starting point.
        #[test]
        fn warm_start_always_reaches_optimality(
            seed in 0u64..200,
            n_half in 3usize..8,
            scale in -5.0f64..5.0,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut samples = Vec::new();
            let mut labels = Vec::new();
            for _ in 0..n_half {
                samples.push(vec![rng.gen_range(-2.0..0.5), rng.gen_range(-1.0..1.0)]);
                labels.push(-1.0);
                samples.push(vec![rng.gen_range(-0.5..2.0), rng.gen_range(-1.0..1.0)]);
                labels.push(1.0);
            }
            let bounds = vec![2.0; samples.len()];
            let kernel = RbfKernel::new(0.7);
            let warm_seed: Vec<f64> =
                (0..samples.len()).map(|i| scale * (i as f64 * 0.71).sin()).collect();
            let svm = train_warm(
                &samples, &labels, &bounds, kernel, &default_params(), Some(&warm_seed),
            ).unwrap();
            prop_assert!(svm.stats.converged);
            let viol = kkt_violation(&samples, &labels, &bounds, &kernel, &svm);
            prop_assert!(viol < 1e-2, "KKT violation {viol}");
        }
    }
}
