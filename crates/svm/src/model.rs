//! Trained SVM models: decision function, margins, slack extraction.

use crate::kernel::Kernel;
use crate::smo::SolveStats;
use serde::{Deserialize, Serialize};

/// How a model was produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelKind {
    /// A genuine max-margin solution over two classes.
    Trained,
    /// Degenerate single-class input: the decision function is the constant
    /// class sign (`±1`). Relevance-feedback rounds where the user marks
    /// everything relevant (or everything irrelevant) produce this.
    Constant,
}

/// A trained (or degenerate-constant) SVM decision function
/// `f(x) = Σ_i coef_i · K(sv_i, x) + b`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SvmModel<S, K> {
    kernel: K,
    support_vectors: Vec<S>,
    /// `α_i · y_i` per support vector.
    coefficients: Vec<f64>,
    bias: f64,
    kind: ModelKind,
}

impl<S, K: Kernel<S>> SvmModel<S, K> {
    /// Builds a model from solver output (`bias = −ρ` in LIBSVM terms).
    pub(crate) fn new(
        kernel: K,
        support_vectors: Vec<S>,
        coefficients: Vec<f64>,
        bias: f64,
    ) -> Self {
        debug_assert_eq!(support_vectors.len(), coefficients.len());
        Self {
            kernel,
            support_vectors,
            coefficients,
            bias,
            kind: ModelKind::Trained,
        }
    }

    /// Builds a constant-decision model for single-class training sets.
    pub(crate) fn constant(kernel: K, sign: f64) -> Self {
        debug_assert!(sign == 1.0 || sign == -1.0);
        Self {
            kernel,
            support_vectors: Vec::new(),
            coefficients: Vec::new(),
            bias: sign,
            kind: ModelKind::Constant,
        }
    }

    /// The decision value `f(x)`; the predicted class is its sign, the
    /// magnitude is the (unnormalized) distance from the separating
    /// hyperplane — the quantity the paper calls `SVM_Dist`.
    pub fn decision(&self, x: &S) -> f64 {
        let mut f = self.bias;
        for (sv, &coef) in self.support_vectors.iter().zip(&self.coefficients) {
            f += coef * self.kernel.compute(sv, x);
        }
        f
    }

    /// Predicted label (`+1.0` / `-1.0`); ties break positive.
    pub fn predict(&self, x: &S) -> f64 {
        if self.decision(x) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Hinge slack `ξ = max(0, 1 − y·f(x))` — the quantity the coupled
    /// SVM's label-correction loop thresholds against `Δ`.
    pub fn hinge_slack(&self, x: &S, y: f64) -> f64 {
        (1.0 - y * self.decision(x)).max(0.0)
    }

    /// Bias term `b`.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Number of support vectors (0 for constant models).
    pub fn n_support(&self) -> usize {
        self.support_vectors.len()
    }

    /// Support vectors retained by the model.
    pub fn support_vectors(&self) -> &[S] {
        &self.support_vectors
    }

    /// `α_i y_i` coefficients aligned with [`Self::support_vectors`].
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Whether this is a genuine trained model or a degenerate constant.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Borrow the kernel (e.g. to evaluate it elsewhere with identical
    /// parameters).
    pub fn kernel(&self) -> &K {
        &self.kernel
    }
}

/// Bundle returned by [`crate::train`]: the model plus the full dual
/// solution and solver statistics.
#[derive(Clone, Debug)]
pub struct TrainedSvm<S, K> {
    /// The decision model.
    pub model: SvmModel<S, K>,
    /// The complete dual vector `α` over the training set (including
    /// non-support zeros) — used by tests and diagnostics.
    pub alpha: Vec<f64>,
    /// Solver diagnostics.
    pub stats: SolveStats,
}

impl<S, K: Kernel<S>> TrainedSvm<S, K> {
    /// Hinge slacks of a labeled set under this model:
    /// `ξ_i = max(0, 1 − y_i f(x_i))`. The coupled SVM calls this on its
    /// unlabeled pool after each inner round.
    pub fn slacks(&self, samples: &[S], labels: &[f64]) -> Vec<f64> {
        assert_eq!(samples.len(), labels.len());
        samples
            .iter()
            .zip(labels)
            .map(|(x, &y)| self.model.hinge_slack(x, y))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::LinearKernel;
    use crate::smo::{train, SmoParams};

    fn simple_model() -> SvmModel<Vec<f64>, LinearKernel> {
        // f(x) = 1·K([1], x) − 1·K([−1], x) + 0 = 2x for linear kernel.
        SvmModel::new(
            LinearKernel,
            vec![vec![1.0], vec![-1.0]],
            vec![1.0, -1.0],
            0.0,
        )
    }

    #[test]
    fn decision_is_linear_combination() {
        let m = simple_model();
        assert_eq!(m.decision(&vec![0.5]), 1.0);
        assert_eq!(m.decision(&vec![-2.0]), -4.0);
    }

    #[test]
    fn predict_sign_and_tie_break() {
        let m = simple_model();
        assert_eq!(m.predict(&vec![3.0]), 1.0);
        assert_eq!(m.predict(&vec![-3.0]), -1.0);
        assert_eq!(m.predict(&vec![0.0]), 1.0); // tie → positive
    }

    #[test]
    fn hinge_slack_formula() {
        let m = simple_model(); // f(x) = 2x
                                // y=+1, f=2·0.25=0.5 → slack 0.5
        assert!((m.hinge_slack(&vec![0.25], 1.0) - 0.5).abs() < 1e-12);
        // y=+1, f=4 → no slack
        assert_eq!(m.hinge_slack(&vec![2.0], 1.0), 0.0);
        // y=−1, f=4 → slack 5
        assert!((m.hinge_slack(&vec![2.0], -1.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn constant_model_reports_kind_and_value() {
        let m: SvmModel<Vec<f64>, LinearKernel> = SvmModel::constant(LinearKernel, -1.0);
        assert_eq!(m.kind(), ModelKind::Constant);
        assert_eq!(m.n_support(), 0);
        assert_eq!(m.decision(&vec![99.0]), -1.0);
        assert_eq!(m.predict(&vec![99.0]), -1.0);
        // slack of a "positive" sample under the constant −1 model is 2
        assert_eq!(m.hinge_slack(&vec![0.0], 1.0), 2.0);
    }

    #[test]
    fn slacks_align_with_samples() {
        let samples = vec![vec![-1.0], vec![1.0]];
        let labels = [-1.0, 1.0];
        let svm = train(
            &samples,
            &labels,
            &[10.0, 10.0],
            LinearKernel,
            &SmoParams::default(),
        )
        .unwrap();
        let slacks = svm.slacks(&samples, &labels);
        assert_eq!(slacks.len(), 2);
        // Separable with margin exactly 1 → slacks ~ 0.
        assert!(slacks.iter().all(|&s| s < 1e-6), "{slacks:?}");
    }
}
