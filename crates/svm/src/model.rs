//! Trained SVM models: decision function, batch scoring, margins, slack
//! extraction.
//!
//! Models are generic over a possibly-unsized sample type `S` (e.g.
//! `[f64]`): the decision function *reads* borrowed samples, while the
//! support vectors are stored as `S::Owned` (e.g. `Vec<f64>`) so the model
//! stays self-contained after the training round's borrows end.

use crate::kernel::Kernel;
use crate::smo::SolveStats;
use serde::{Deserialize, Serialize};
use std::borrow::Borrow;

/// How a model was produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelKind {
    /// A genuine max-margin solution over two classes.
    Trained,
    /// Degenerate single-class input: the decision function is the constant
    /// class sign (`±1`). Relevance-feedback rounds where the user marks
    /// everything relevant (or everything irrelevant) produce this.
    Constant,
}

/// Below this many samples a batch decision call stays serial — the scoped
/// thread spawn costs more than the scoring itself. Lower than the flat
/// index's scan threshold because a decision costs `n_sv` kernel
/// evaluations per sample, not one distance.
const BATCH_PARALLEL_THRESHOLD: usize = 1024;

/// Threads worth forking for a batch of `n` samples (1 = stay serial).
fn batch_threads(n: usize) -> usize {
    if n < BATCH_PARALLEL_THRESHOLD {
        return 1;
    }
    std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1)
}

/// Shared scoped-thread scaffolding of the batch scorers: applies `score`
/// to `chunk_len`-sized pieces of `data` concurrently and concatenates the
/// results in order (so the output is bit-identical to one serial pass).
fn parallel_map_chunks<T, F>(data: &[T], chunk_len: usize, score: F) -> Vec<f64>
where
    T: Sync,
    F: Fn(&[T]) -> Vec<f64> + Sync,
{
    std::thread::scope(|scope| {
        let score = &score;
        let handles: Vec<_> = data
            .chunks(chunk_len)
            .map(|part| scope.spawn(move || score(part)))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("batch scoring worker panicked"))
            .collect()
    })
}

/// A trained (or degenerate-constant) SVM decision function
/// `f(x) = Σ_i coef_i · K(sv_i, x) + b`.
pub struct SvmModel<S: ?Sized + ToOwned, K> {
    kernel: K,
    support_vectors: Vec<S::Owned>,
    /// `α_i · y_i` per support vector.
    coefficients: Vec<f64>,
    bias: f64,
    kind: ModelKind,
}

impl<S: ?Sized + ToOwned, K: Kernel<S>> SvmModel<S, K> {
    /// Builds a model from solver output (`bias = −ρ` in LIBSVM terms).
    pub(crate) fn new(
        kernel: K,
        support_vectors: Vec<S::Owned>,
        coefficients: Vec<f64>,
        bias: f64,
    ) -> Self {
        debug_assert_eq!(support_vectors.len(), coefficients.len());
        Self {
            kernel,
            support_vectors,
            coefficients,
            bias,
            kind: ModelKind::Trained,
        }
    }

    /// Builds a constant-decision model for single-class training sets.
    pub(crate) fn constant(kernel: K, sign: f64) -> Self {
        debug_assert!(sign == 1.0 || sign == -1.0);
        Self {
            kernel,
            support_vectors: Vec::new(),
            coefficients: Vec::new(),
            bias: sign,
            kind: ModelKind::Constant,
        }
    }

    /// Assembles a model from pre-existing parts (a deserialized dual
    /// solution, a synthetic model for benches/tools). The decision
    /// function is `Σ coefficients[i]·K(support_vectors[i], x) + bias`.
    ///
    /// # Panics
    /// Panics if `support_vectors` and `coefficients` differ in length.
    pub fn from_parts(
        kernel: K,
        support_vectors: Vec<S::Owned>,
        coefficients: Vec<f64>,
        bias: f64,
    ) -> Self {
        assert_eq!(
            support_vectors.len(),
            coefficients.len(),
            "support vectors / coefficients mismatch"
        );
        Self {
            kernel,
            support_vectors,
            coefficients,
            bias,
            kind: ModelKind::Trained,
        }
    }

    /// The decision value `f(x)`; the predicted class is its sign, the
    /// magnitude is the (unnormalized) distance from the separating
    /// hyperplane — the quantity the paper calls `SVM_Dist`.
    pub fn decision(&self, x: &S) -> f64 {
        let mut f = self.bias;
        for (sv, &coef) in self.support_vectors.iter().zip(&self.coefficients) {
            f += coef * self.kernel.compute(sv.borrow(), x);
        }
        f
    }

    /// Predicted label (`+1.0` / `-1.0`); ties break positive.
    pub fn predict(&self, x: &S) -> f64 {
        if self.decision(x) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Hinge slack `ξ = max(0, 1 − y·f(x))` — the quantity the coupled
    /// SVM's label-correction loop thresholds against `Δ`.
    pub fn hinge_slack(&self, x: &S, y: f64) -> f64 {
        (1.0 - y * self.decision(x)).max(0.0)
    }

    /// Bias term `b`.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Number of support vectors (0 for constant models).
    pub fn n_support(&self) -> usize {
        self.support_vectors.len()
    }

    /// Support vectors retained by the model.
    pub fn support_vectors(&self) -> &[S::Owned] {
        &self.support_vectors
    }

    /// `α_i y_i` coefficients aligned with [`Self::support_vectors`].
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Whether this is a genuine trained model or a degenerate constant.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Borrow the kernel (e.g. to evaluate it elsewhere with identical
    /// parameters).
    pub fn kernel(&self) -> &K {
        &self.kernel
    }
}

impl<S, K> SvmModel<S, K>
where
    S: ?Sized + ToOwned + Sync,
    S::Owned: Sync,
    K: Kernel<S> + Sync,
{
    /// Decision values for many samples, one model pass — the full-database
    /// `SVM_Dist` scan every relevance-feedback round runs. Large batches
    /// are split across scoped threads (same pattern as `FlatIndex`'s
    /// parallel scan); each sample is evaluated exactly as
    /// [`Self::decision`] would, and chunks are concatenated in order, so
    /// the result is **bit-identical** to the serial loop.
    pub fn decision_batch<B: Borrow<S> + Sync>(&self, xs: &[B]) -> Vec<f64> {
        let score =
            |part: &[B]| -> Vec<f64> { part.iter().map(|x| self.decision(x.borrow())).collect() };
        let threads = batch_threads(xs.len());
        if threads <= 1 {
            return score(xs);
        }
        parallel_map_chunks(xs, xs.len().div_ceil(threads), score)
    }
}

impl<K: Kernel<[f64]> + Sync> SvmModel<[f64], K> {
    /// Decision values for every row of a contiguous row-major matrix —
    /// the zero-copy whole-database scoring path (`data` is typically the
    /// database's shared flat feature matrix). Parallel above the batch
    /// threshold, chunked on row boundaries; bit-identical to calling
    /// [`Self::decision`] per row.
    ///
    /// # Panics
    /// Panics if `dim == 0`, `data.len()` is not a multiple of `dim`, or
    /// `dim` differs from the model's support-vector dimensionality (a
    /// mismatch would otherwise score silently misaligned row windows in
    /// release builds, where the kernel helpers only debug-assert).
    pub fn decision_batch_rows(&self, data: &[f64], dim: usize) -> Vec<f64> {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(data.len() % dim, 0, "data length must be a multiple of dim");
        if let Some(sv) = self.support_vectors.first() {
            assert_eq!(
                sv.len(),
                dim,
                "row dimension mismatches the model's support vectors"
            );
        }
        let n = data.len() / dim;
        let score = |part: &[f64]| -> Vec<f64> {
            part.chunks_exact(dim).map(|r| self.decision(r)).collect()
        };
        let threads = batch_threads(n);
        if threads <= 1 {
            return score(data);
        }
        parallel_map_chunks(data, n.div_ceil(threads) * dim, score)
    }
}

impl<S: ?Sized + ToOwned, K: Clone> Clone for SvmModel<S, K>
where
    S::Owned: Clone,
{
    fn clone(&self) -> Self {
        Self {
            kernel: self.kernel.clone(),
            support_vectors: self.support_vectors.clone(),
            coefficients: self.coefficients.clone(),
            bias: self.bias,
            kind: self.kind,
        }
    }
}

impl<S: ?Sized + ToOwned, K: std::fmt::Debug> std::fmt::Debug for SvmModel<S, K>
where
    S::Owned: std::fmt::Debug,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SvmModel")
            .field("kernel", &self.kernel)
            .field("support_vectors", &self.support_vectors)
            .field("coefficients", &self.coefficients)
            .field("bias", &self.bias)
            .field("kind", &self.kind)
            .finish()
    }
}

impl<S: ?Sized + ToOwned, K: Serialize> Serialize for SvmModel<S, K>
where
    S::Owned: Serialize,
{
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("kernel".to_string(), self.kernel.to_value()),
            (
                "support_vectors".to_string(),
                self.support_vectors.to_value(),
            ),
            ("coefficients".to_string(), self.coefficients.to_value()),
            ("bias".to_string(), self.bias.to_value()),
            ("kind".to_string(), self.kind.to_value()),
        ])
    }
}

impl<S: ?Sized + ToOwned, K: Deserialize> Deserialize for SvmModel<S, K>
where
    S::Owned: Deserialize,
{
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let support_vectors: Vec<S::Owned> = serde::__private::field(v, "support_vectors")?;
        let coefficients: Vec<f64> = serde::__private::field(v, "coefficients")?;
        if support_vectors.len() != coefficients.len() {
            return Err(serde::DeError::msg(
                "support vectors / coefficients mismatch",
            ));
        }
        Ok(Self {
            kernel: serde::__private::field(v, "kernel")?,
            support_vectors,
            coefficients,
            bias: serde::__private::field(v, "bias")?,
            kind: serde::__private::field(v, "kind")?,
        })
    }
}

/// Bundle returned by [`crate::train`]: the model plus the full dual
/// solution and solver statistics.
pub struct TrainedSvm<S: ?Sized + ToOwned, K> {
    /// The decision model.
    pub model: SvmModel<S, K>,
    /// The complete dual vector `α` over the training set (including
    /// non-support zeros) — used by tests and diagnostics.
    pub alpha: Vec<f64>,
    /// Solver diagnostics.
    pub stats: SolveStats,
}

impl<S: ?Sized + ToOwned, K: Kernel<S>> TrainedSvm<S, K> {
    /// Hinge slacks of a labeled set under this model:
    /// `ξ_i = max(0, 1 − y_i f(x_i))`. The coupled SVM calls this on its
    /// unlabeled pool after each inner round.
    pub fn slacks<B: Borrow<S>>(&self, samples: &[B], labels: &[f64]) -> Vec<f64> {
        assert_eq!(samples.len(), labels.len());
        samples
            .iter()
            .zip(labels)
            .map(|(x, &y)| self.model.hinge_slack(x.borrow(), y))
            .collect()
    }
}

impl<S: ?Sized + ToOwned, K: Clone> Clone for TrainedSvm<S, K>
where
    S::Owned: Clone,
{
    fn clone(&self) -> Self {
        Self {
            model: self.model.clone(),
            alpha: self.alpha.clone(),
            stats: self.stats,
        }
    }
}

impl<S: ?Sized + ToOwned, K: std::fmt::Debug> std::fmt::Debug for TrainedSvm<S, K>
where
    S::Owned: std::fmt::Debug,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainedSvm")
            .field("model", &self.model)
            .field("alpha", &self.alpha)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{LinearKernel, PolyKernel, RbfKernel};
    use crate::smo::{train, SmoParams};

    fn simple_model() -> SvmModel<[f64], LinearKernel> {
        // f(x) = 1·K([1], x) − 1·K([−1], x) + 0 = 2x for linear kernel.
        SvmModel::new(
            LinearKernel,
            vec![vec![1.0], vec![-1.0]],
            vec![1.0, -1.0],
            0.0,
        )
    }

    #[test]
    fn decision_is_linear_combination() {
        let m = simple_model();
        assert_eq!(m.decision(&[0.5]), 1.0);
        assert_eq!(m.decision(&[-2.0]), -4.0);
    }

    #[test]
    fn predict_sign_and_tie_break() {
        let m = simple_model();
        assert_eq!(m.predict(&[3.0]), 1.0);
        assert_eq!(m.predict(&[-3.0]), -1.0);
        assert_eq!(m.predict(&[0.0]), 1.0); // tie → positive
    }

    #[test]
    fn hinge_slack_formula() {
        let m = simple_model(); // f(x) = 2x
                                // y=+1, f=2·0.25=0.5 → slack 0.5
        assert!((m.hinge_slack(&[0.25], 1.0) - 0.5).abs() < 1e-12);
        // y=+1, f=4 → no slack
        assert_eq!(m.hinge_slack(&[2.0], 1.0), 0.0);
        // y=−1, f=4 → slack 5
        assert!((m.hinge_slack(&[2.0], -1.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn constant_model_reports_kind_and_value() {
        let m: SvmModel<[f64], LinearKernel> = SvmModel::constant(LinearKernel, -1.0);
        assert_eq!(m.kind(), ModelKind::Constant);
        assert_eq!(m.n_support(), 0);
        assert_eq!(m.decision(&[99.0]), -1.0);
        assert_eq!(m.predict(&[99.0]), -1.0);
        // slack of a "positive" sample under the constant −1 model is 2
        assert_eq!(m.hinge_slack(&[0.0], 1.0), 2.0);
    }

    #[test]
    fn from_parts_matches_internal_constructor() {
        let m = SvmModel::<[f64], _>::from_parts(
            LinearKernel,
            vec![vec![1.0], vec![-1.0]],
            vec![1.0, -1.0],
            0.25,
        );
        assert_eq!(m.kind(), ModelKind::Trained);
        assert_eq!(m.decision(&[0.5]), 1.25);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn from_parts_rejects_ragged_input() {
        let _ = SvmModel::<[f64], _>::from_parts(LinearKernel, vec![vec![1.0]], vec![], 0.0);
    }

    #[test]
    fn slacks_align_with_samples() {
        let samples = vec![vec![-1.0], vec![1.0]];
        let labels = [-1.0, 1.0];
        let svm = train(
            &samples,
            &labels,
            &[10.0, 10.0],
            LinearKernel,
            &SmoParams::default(),
        )
        .unwrap();
        let slacks = svm.slacks(&samples, &labels);
        assert_eq!(slacks.len(), 2);
        // Separable with margin exactly 1 → slacks ~ 0.
        assert!(slacks.iter().all(|&s| s < 1e-6), "{slacks:?}");
    }

    /// A deterministic pseudo-random matrix (no RNG dependency needed).
    fn waves(n: usize, dim: usize, phase: f64) -> Vec<f64> {
        (0..n * dim)
            .map(|i| ((i as f64) * 0.137 + phase).sin())
            .collect()
    }

    fn batch_model<K: Kernel<[f64]> + Clone>(
        kernel: K,
        n_sv: usize,
        dim: usize,
    ) -> SvmModel<[f64], K> {
        let svs: Vec<Vec<f64>> = waves(n_sv, dim, 0.3)
            .chunks(dim)
            .map(<[f64]>::to_vec)
            .collect();
        let coefs: Vec<f64> = (0..n_sv)
            .map(|i| if i % 2 == 0 { 0.7 } else { -0.9 })
            .collect();
        SvmModel::from_parts(kernel, svs, coefs, -0.05)
    }

    /// decision_batch (parallel path included) must be bit-identical to the
    /// per-sample decision loop for every dense kernel.
    #[test]
    fn decision_batch_is_bit_identical_to_serial() {
        let dim = 8;
        // Above BATCH_PARALLEL_THRESHOLD so the scoped-thread path runs.
        let n = super::BATCH_PARALLEL_THRESHOLD + 321;
        let data = waves(n, dim, 1.7);
        let rows: Vec<&[f64]> = data.chunks_exact(dim).collect();

        fn check<K: Kernel<[f64]> + Sync>(model: &SvmModel<[f64], K>, rows: &[&[f64]]) {
            let serial: Vec<f64> = rows.iter().map(|r| model.decision(r)).collect();
            let batch = model.decision_batch(rows);
            assert_eq!(batch, serial, "batch diverged from serial");
        }

        check(&batch_model(LinearKernel, 8, dim), &rows);
        check(&batch_model(RbfKernel::new(0.4), 8, dim), &rows);
        check(&batch_model(PolyKernel::new(0.5, 1.0, 3), 8, dim), &rows);
        // The degenerate constant model must batch too.
        let constant: SvmModel<[f64], RbfKernel> = SvmModel::constant(RbfKernel::new(1.0), 1.0);
        check(&constant, &rows);
    }

    /// decision_batch_rows over the flat matrix equals decision_batch over
    /// row views equals the serial loop.
    #[test]
    fn decision_batch_rows_matches_row_views() {
        let dim = 6;
        let n = super::BATCH_PARALLEL_THRESHOLD + 77;
        let data = waves(n, dim, 0.9);
        let rows: Vec<&[f64]> = data.chunks_exact(dim).collect();
        for n_sv in [0usize, 1, 8, 64] {
            let model = if n_sv == 0 {
                SvmModel::constant(RbfKernel::new(0.25), -1.0)
            } else {
                batch_model(RbfKernel::new(0.25), n_sv, dim)
            };
            let serial: Vec<f64> = data.chunks_exact(dim).map(|r| model.decision(r)).collect();
            assert_eq!(model.decision_batch_rows(&data, dim), serial, "n_sv={n_sv}");
            assert_eq!(model.decision_batch(&rows), serial, "n_sv={n_sv}");
        }
    }

    #[test]
    fn chunked_scaffolding_preserves_order_for_any_chunk_size() {
        // Drives the multi-chunk path directly (a 1-core machine would
        // otherwise always take the serial fallback): every chunk size,
        // dividing or not, must concatenate back to the serial result.
        let model = batch_model(RbfKernel::new(0.6), 7, 4);
        let data = waves(50, 4, 2.2);
        let serial: Vec<f64> = data.chunks_exact(4).map(|r| model.decision(r)).collect();
        for chunk_rows in [1usize, 3, 7, 50, 64] {
            let got = super::parallel_map_chunks(&data, chunk_rows * 4, |part| {
                part.chunks_exact(4).map(|r| model.decision(r)).collect()
            });
            assert_eq!(got, serial, "chunk_rows={chunk_rows}");
        }
    }

    #[test]
    #[should_panic(expected = "support vectors")]
    fn decision_batch_rows_rejects_mismatched_dim() {
        // 4-D support vectors scored over "3-D" rows: the lengths divide
        // evenly so only the model-dimension check can catch it.
        let model = batch_model(RbfKernel::new(0.5), 2, 4);
        let data = waves(4, 3, 0.0); // 12 values: divisible by 3
        let _ = model.decision_batch_rows(&data, 3);
    }

    #[test]
    fn small_batches_stay_serial_and_correct() {
        let model = batch_model(RbfKernel::new(0.5), 4, 3);
        let data = waves(10, 3, 0.1);
        let rows: Vec<&[f64]> = data.chunks_exact(3).collect();
        let serial: Vec<f64> = rows.iter().map(|r| model.decision(r)).collect();
        assert_eq!(model.decision_batch(&rows), serial);
        assert_eq!(model.decision_batch_rows(&data, 3), serial);
        // Empty input is fine.
        assert!(model.decision_batch_rows(&[], 3).is_empty());
        let empty: Vec<&[f64]> = Vec::new();
        assert!(model.decision_batch(&empty).is_empty());
    }

    #[test]
    fn model_serde_roundtrip() {
        let model = batch_model(RbfKernel::new(0.7), 5, 4);
        let json = serde_json::to_string(&model).unwrap();
        let back: SvmModel<[f64], RbfKernel> = serde_json::from_str(&json).unwrap();
        assert_eq!(back.n_support(), 5);
        assert_eq!(back.bias(), model.bias());
        let probe = [0.2, -0.4, 0.8, 0.0];
        assert_eq!(back.decision(&probe), model.decision(&probe));
    }
}
