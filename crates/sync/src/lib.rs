//! Synchronization facade for the workspace.
//!
//! Concurrency-bearing crates (`lrf-service`, `lrf-logdb`) import their
//! primitives from here instead of `std::sync` — a rule the workspace
//! linter (`cargo run -p lrf-lint`) enforces. The facade has two backends
//! selected at compile time:
//!
//! * **Default:** the vendored loom-style checker's instrumented types
//!   ([`Mutex`], [`RwLock`], [`Arc`], [`atomic`], [`thread`]). Outside a
//!   model run these delegate straight to `std::sync` (one relaxed atomic
//!   load of overhead), so production builds and ordinary tests behave
//!   exactly as before — while model tests can explore every interleaving
//!   of the same code, uninstrumented-by-hand.
//! * **`--cfg lrf_sync_std`:** pure `std::sync` re-exports, removing the
//!   instrumentation (and the `loom` crate) from the compiled code
//!   entirely. CI builds this configuration to prove the facade stays
//!   API-compatible with plain std.
//!
//! The [`MutexExt`] / [`RwLockExt`] extension traits centralize lock
//! poisoning policy: a poisoned lock means some thread panicked mid-
//! update, and for this workspace's state (idempotent flush tombstones,
//! copy-on-write snapshots) the right response is to keep serving with
//! the data as-is rather than to cascade panics across request threads.

/// Instrumented primitives (default backend).
#[cfg(not(lrf_sync_std))]
pub use loom::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Atomics from the active backend.
#[cfg(not(lrf_sync_std))]
pub mod atomic {
    pub use loom::sync::atomic::*;
}

/// Thread spawning from the active backend.
#[cfg(not(lrf_sync_std))]
pub mod thread {
    pub use loom::thread::*;
}

/// Pure std primitives (`--cfg lrf_sync_std` backend).
#[cfg(lrf_sync_std)]
pub use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Atomics from the active backend.
#[cfg(lrf_sync_std)]
pub mod atomic {
    pub use std::sync::atomic::*;
}

/// Thread spawning from the active backend.
#[cfg(lrf_sync_std)]
pub mod thread {
    pub use std::thread::*;
}

// Error/result vocabulary is std's in both backends (the loom shims reuse
// std's poison machinery).
pub use std::sync::{LockResult, PoisonError, TryLockError, TryLockResult};

/// Channels, from std in both backends. The vendored checker has no
/// channel shim — its model tests cover the locks and atomics around a
/// queue, not the queue itself — so facade-covered crates that need
/// message passing (the sharded serving plane's worker feeds) import
/// `lrf_sync::mpsc` and stay out of model-checked sections.
pub mod mpsc {
    pub use std::sync::mpsc::*;
}

/// Poison-recovering acquisition for [`Mutex`].
pub trait MutexExt<'a, T: ?Sized> {
    /// Locks the mutex, recovering the guard if the lock is poisoned.
    ///
    /// Poisoning only records that another thread panicked while holding
    /// the guard; the data is still there. Callers of this method accept
    /// possibly mid-update data instead of propagating the panic — use it
    /// where every critical section leaves the value valid (single-field
    /// writes, idempotent tombstone checks).
    fn lock_recover(self) -> MutexGuard<'a, T>;
}

impl<'a, T: ?Sized> MutexExt<'a, T> for &'a Mutex<T> {
    fn lock_recover(self) -> MutexGuard<'a, T> {
        self.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Poison-recovering acquisition for [`RwLock`].
pub trait RwLockExt<'a, T: ?Sized> {
    /// Acquires shared read access, recovering the guard if poisoned.
    /// See [`MutexExt::lock_recover`] for when recovery is sound.
    fn read_recover(self) -> RwLockReadGuard<'a, T>;

    /// Acquires exclusive write access, recovering the guard if poisoned.
    /// See [`MutexExt::lock_recover`] for when recovery is sound.
    fn write_recover(self) -> RwLockWriteGuard<'a, T>;
}

impl<'a, T: ?Sized> RwLockExt<'a, T> for &'a RwLock<T> {
    fn read_recover(self) -> RwLockReadGuard<'a, T> {
        self.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write_recover(self) -> RwLockWriteGuard<'a, T> {
        self.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Poisons `m` by panicking a thread while it holds the guard.
    fn poison<T: Send + 'static>(m: &Arc<Mutex<T>>) {
        let m2 = Arc::clone(m);
        let t = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        });
        assert!(t.join().is_err());
        assert!(m.is_poisoned());
    }

    #[test]
    fn lock_recover_survives_poisoning() {
        let m = Arc::new(Mutex::new(41));
        poison(&m);
        *m.lock_recover() += 1;
        assert_eq!(*m.lock_recover(), 42);
    }

    #[test]
    fn rwlock_recover_survives_poisoning() {
        let rw = Arc::new(RwLock::new(1));
        let rw2 = Arc::clone(&rw);
        let t = std::thread::spawn(move || {
            let _g = rw2.write();
            panic!("poison the lock");
        });
        assert!(t.join().is_err());
        assert!(rw.is_poisoned());
        *rw.write_recover() = 2;
        assert_eq!(*rw.read_recover(), 2);
    }

    #[test]
    fn facade_types_interoperate_with_model_checker() {
        // The same facade types used by the service crates are the
        // checker's instrumented types (under the default backend), so a
        // model run can drive them directly.
        #[cfg(not(lrf_sync_std))]
        loom::model(|| {
            let n = Arc::new(Mutex::new(0));
            let n2 = Arc::clone(&n);
            let t = thread::spawn(move || *n2.lock_recover() += 1);
            *n.lock_recover() += 1;
            t.join().unwrap();
            assert_eq!(*n.lock_recover(), 2);
        });
    }

    #[test]
    fn atomics_present_in_both_backends() {
        let a = atomic::AtomicUsize::new(0);
        a.fetch_add(3, atomic::Ordering::SeqCst);
        assert_eq!(a.load(atomic::Ordering::SeqCst), 3);
    }
}
