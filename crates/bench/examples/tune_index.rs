//! Tuning sweep for the approximate index backends.
//!
//! Sweeps IVF's `nprobe` and LSH's `(n_tables, probes)` on a clustered
//! synthetic corpus, printing recall@20, mean distance evaluations, and
//! mean query latency per setting — the table an operator reads to pick
//! the cheapest configuration that clears their recall target.
//!
//! ```text
//! cargo run -p lrf-bench --release --example tune_index [-- N]
//! ```

use lrf_index::{AnnIndex, FlatIndex, IvfConfig, IvfIndex, LshConfig, LshIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const DIM: usize = 36;
const K: usize = 20;
const N_QUERIES: usize = 64;

fn clustered(n: usize, seed: u64) -> Vec<f64> {
    let n_clusters = (n as f64).sqrt() as usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<f64> = (0..n_clusters * DIM)
        .map(|_| rng.gen_range(-1.0f64..1.0))
        .collect();
    let mut data = Vec::with_capacity(n * DIM);
    for i in 0..n {
        let c = i % n_clusters;
        for d in 0..DIM {
            data.push(centers[c * DIM + d] + rng.gen_range(-0.12..0.12));
        }
    }
    data
}

struct Row {
    setting: String,
    recall: f64,
    evals: usize,
    micros: f64,
}

fn measure(setting: String, index: &dyn AnnIndex, flat: &FlatIndex, queries: &[Vec<f64>]) -> Row {
    let exact: Vec<_> = queries.iter().map(|q| flat.search(q, K)).collect();
    let mut recall = 0.0;
    let mut evals = 0usize;
    let started = Instant::now();
    for (q, exact) in queries.iter().zip(&exact) {
        let (approx, stats) = index.search_with_stats(q, K);
        recall += lrf_index::recall(exact, &approx);
        evals += stats.distance_evals;
    }
    let elapsed = started.elapsed();
    Row {
        setting,
        recall: recall / queries.len() as f64,
        evals: evals / queries.len(),
        micros: elapsed.as_secs_f64() * 1e6 / queries.len() as f64,
    }
}

fn print_table(title: &str, rows: &[Row]) {
    println!("\n{title}");
    println!(
        "{:<28} {:>9} {:>12} {:>12}",
        "setting", "recall@20", "dist evals", "µs/query"
    );
    for r in rows {
        println!(
            "{:<28} {:>9.3} {:>12} {:>12.1}",
            r.setting, r.recall, r.evals, r.micros
        );
    }
}

fn main() {
    let n: usize = match std::env::args().nth(1) {
        None => 20_000,
        Some(arg) => match arg.parse() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("error: N must be a positive integer, got {arg:?}");
                std::process::exit(2);
            }
        },
    };
    println!("tuning over N = {n} synthetic {DIM}-D images, {N_QUERIES} queries");

    let data = clustered(n, 0x7u64);
    let flat = FlatIndex::build(&data, DIM);
    let queries: Vec<Vec<f64>> = (0..N_QUERIES)
        .map(|q| {
            let id = (q * 4099) % n;
            data[id * DIM..(id + 1) * DIM].to_vec()
        })
        .collect();

    // Exact baseline for the latency column.
    let baseline = measure("flat (exact)".into(), &flat, &flat, &queries);
    print_table("baseline", &[baseline]);

    // --- IVF: sweep nprobe at a fixed √N cell count. ---
    let nlist = (n as f64).sqrt() as usize;
    let ivf = IvfIndex::build(
        &data,
        DIM,
        &IvfConfig {
            nlist,
            nprobe: 1,
            max_iters: 10,
            ..Default::default()
        },
    );
    let rows: Vec<Row> = [1usize, 2, 4, 8, 16, 32]
        .iter()
        .map(|&nprobe| {
            let mut tuned = ivf.clone();
            tuned.set_nprobe(nprobe);
            measure(
                format!("ivf nlist={nlist} nprobe={nprobe}"),
                &tuned,
                &flat,
                &queries,
            )
        })
        .collect();
    print_table("IVF (nprobe sweep)", &rows);

    // --- LSH: sweep tables × probes. ---
    let n_bits = ((n as f64).log2() as usize).saturating_sub(4).clamp(8, 20);
    let mut rows = Vec::new();
    for n_tables in [2usize, 4, 8, 16] {
        let lsh = LshIndex::build(
            &data,
            DIM,
            &LshConfig {
                n_tables,
                n_bits,
                probes: 0,
                ..Default::default()
            },
        );
        for probes in [0usize, 4, 8] {
            let mut tuned = lsh.clone();
            tuned.set_probes(probes);
            rows.push(measure(
                format!("lsh tables={n_tables} bits={n_bits} probes={probes}"),
                &tuned,
                &flat,
                &queries,
            ));
        }
    }
    print_table("LSH (tables × probes sweep)", &rows);
}
