//! Scratch tuning harness: log collection depth and log-kernel choice.
use lrf_bench::experiment::{ExperimentSpec, ProtocolConfig};
use lrf_cbir::CorelDataset;
use lrf_cbir::{precision_at, QueryProtocol};
use lrf_core::{LogKernel, Lrf2Svms, LrfConfig, QueryContext, RelevanceFeedback, RfSvm};

fn main() {
    let mut spec = ExperimentSpec::table1(42);
    spec.protocol = ProtocolConfig {
        n_queries: 30,
        ..spec.protocol
    };
    eprintln!("building dataset ...");
    let ds = CorelDataset::build(spec.dataset.clone());
    let protocol: QueryProtocol = spec.protocol.into();
    let queries = protocol.sample_queries(&ds.db);

    let rf = RfSvm::new(spec.lrf);
    let empty_log = lrf_logdb::LogStore::new(ds.db.len());
    let mut p_rf = 0.0;
    for &q in &queries {
        let example = protocol.feedback_example(&ds.db, q);
        let ctx = QueryContext {
            db: &ds.db,
            log: &empty_log,
            example: &example,
        };
        p_rf += precision_at(&rf.rank(&ctx), |id| ds.db.same_category(id, q), 20);
    }
    println!("RF-SVM reference P@20 = {:.3}", p_rf / queries.len() as f64);

    let kernels = [
        ("rbf g=0.1", LogKernel::Rbf { gamma: 0.1 }),
        ("cos g=0.5", LogKernel::CosineRbf { gamma: 0.5 }),
        ("cos g=1.0", LogKernel::CosineRbf { gamma: 1.0 }),
        ("cos g=2.0", LogKernel::CosineRbf { gamma: 2.0 }),
        ("linear   ", LogKernel::Linear),
    ];
    for rounds in [3usize, 4] {
        let mut log_cfg = spec.log;
        log_cfg.rounds_per_query = rounds;
        let log = lrf_core::collect_feedback_log(&ds.db, &log_cfg, &spec.lrf);
        for (name, k) in kernels {
            let lrf = LrfConfig {
                log_kernel: k,
                ..spec.lrf
            };
            let two = Lrf2Svms::new(lrf);
            let mut p2 = 0.0;
            let mut p_log = 0.0;
            for &q in &queries {
                let example = protocol.feedback_example(&ds.db, q);
                let ctx = QueryContext {
                    db: &ds.db,
                    log: &log,
                    example: &example,
                };
                p2 += precision_at(&two.rank(&ctx), |id| ds.db.same_category(id, q), 20);
                let log_svm = two.train_log_svm(&ctx);
                let scores = Lrf2Svms::score_all_log(&log, &log_svm.model);
                let ranked = lrf_core::feedback::rank_by_scores(&scores);
                p_log += precision_at(&ranked, |id| ds.db.same_category(id, q), 20);
            }
            println!(
                "rounds={rounds} kernel={name} LRF-2SVMs P@20={:.3}  log-only P@20={:.3}",
                p2 / queries.len() as f64,
                p_log / queries.len() as f64
            );
        }
    }
}
