//! Scratch tuning harness: grid-search RF-SVM kernel parameters.
use lrf_bench::experiment::{run_on_prepared, ExperimentSpec, ProtocolConfig, SchemeChoice};
use lrf_cbir::CorelDataset;
use lrf_core::LrfConfig;

fn main() {
    let mut spec = ExperimentSpec::table1(42);
    spec.protocol = ProtocolConfig {
        n_queries: 30,
        ..spec.protocol
    };
    spec.schemes = SchemeChoice::CsvmAndRf;
    eprintln!("building dataset ...");
    let ds = CorelDataset::build(spec.dataset.clone());
    let log = lrf_core::collect_feedback_log(&ds.db, &spec.log, &spec.lrf);
    for gamma in [1.0 / 36.0, 0.1, 0.3, 0.5, 1.0, 2.0, 5.0] {
        for c in [1.0, 10.0, 100.0] {
            let s = ExperimentSpec {
                lrf: LrfConfig {
                    gamma_content: Some(gamma),
                    coupled: lrf_core::CoupledConfig {
                        c_content: c,
                        ..spec.lrf.coupled
                    },
                    ..spec.lrf
                },
                schemes: SchemeChoice::CsvmAndRf,
                ..spec.clone()
            };
            let r = run_on_prepared(&s, &ds, &log);
            let rf = r.curve("RF-SVM").unwrap();
            println!(
                "gamma={gamma:.3} C={c:<5} RF-SVM P@20={:.3} MAP={:.3}",
                rf.at(20),
                rf.map()
            );
        }
    }
}
