//! Diagnostic: pseudo-label pool precision + final candidate configs.
use lrf_bench::experiment::{run_on_prepared, ExperimentSpec, ProtocolConfig, SchemeChoice};
use lrf_cbir::{CorelDataset, QueryProtocol};
use lrf_core::{CoupledConfig, LrfConfig, LrfCsvm, QueryContext};

fn main() {
    let mut spec = ExperimentSpec::table1(42);
    spec.protocol = ProtocolConfig {
        n_queries: 100,
        ..spec.protocol
    };
    eprintln!("building dataset ...");
    let ds = CorelDataset::build(spec.dataset.clone());
    let log = lrf_core::collect_feedback_log(&ds.db, &spec.log, &spec.lrf);

    // Diagnostic: precision of the max-dist (pseudo-positive) half of the
    // unlabeled pool, per pool size.
    let protocol: QueryProtocol = spec.protocol.into();
    let queries = protocol.sample_queries(&ds.db);
    for n_unl in [10usize, 20, 40] {
        let scheme = LrfCsvm::new(LrfConfig {
            n_unlabeled: n_unl,
            ..spec.lrf
        });
        let mut prec = 0.0;
        for &q in &queries {
            let example = protocol.feedback_example(&ds.db, q);
            let out = scheme.run(&QueryContext {
                db: &ds.db,
                log: &log,
                example: &example,
            });
            let half = out.unlabeled_ids.len() / 2;
            let hits = out.unlabeled_ids[..half]
                .iter()
                .filter(|&&id| ds.db.same_category(id, q))
                .count();
            prec += hits as f64 / half.max(1) as f64;
        }
        println!(
            "N'={n_unl:<3} pseudo-positive precision = {:.3}",
            prec / queries.len() as f64
        );
    }

    let base = ExperimentSpec {
        schemes: SchemeChoice::All,
        ..spec.clone()
    };
    let r = run_on_prepared(&base, &ds, &log);
    for (name, curve) in &r.curves {
        println!(
            "{name:<10} P@20={:.3} P@100={:.3} MAP={:.3}",
            curve.at(20),
            curve.at(100),
            curve.map()
        );
    }
    for (rho, n_unl, delta) in [(0.05, 10usize, 0.5), (0.05, 16, 0.5), (0.03, 20, 0.5)] {
        let s = ExperimentSpec {
            lrf: LrfConfig {
                n_unlabeled: n_unl,
                coupled: CoupledConfig {
                    rho,
                    delta,
                    ..spec.lrf.coupled
                },
                ..spec.lrf
            },
            schemes: SchemeChoice::CsvmOnly,
            ..spec.clone()
        };
        let r = run_on_prepared(&s, &ds, &log);
        let c = &r.curves[0].1;
        println!(
            "rho={rho:<5} N'={n_unl:<3} delta={delta:<5} LRF-CSVM P@20={:.3} P@100={:.3} MAP={:.3}",
            c.at(20),
            c.at(100),
            c.map()
        );
    }
}
