//! # lrf-bench — reproduction and benchmark harness
//!
//! Regenerates every table and figure of the paper's evaluation (§6) and
//! hosts the Criterion micro-benchmarks plus ablation sweeps.
//!
//! | Paper artifact | Regenerate with |
//! |---|---|
//! | Table 1 (20-Category) | `cargo run -p lrf-bench --release --bin reproduce -- table1` |
//! | Table 2 (50-Category) | `cargo run -p lrf-bench --release --bin reproduce -- table2` |
//! | Fig. 3 (20-Category curves) | `... -- fig3` |
//! | Fig. 4 (50-Category curves) | `... -- fig4` |
//! | §6.5 selection finding | `... -- ablate-selection` |
//!
//! The experiment protocol follows §6.4: random queries, the Euclidean
//! top-20 auto-judged as the feedback round, every scheme re-ranks the full
//! database, and precision is averaged at cutoffs 20..100.

pub mod experiment;
pub mod report;

pub use experiment::{run_experiment, ExperimentResult, ExperimentSpec, SchemeChoice};
pub use report::{figure_series, markdown_table, paper_table};
