//! Result formatting: the paper's table layout and figure series.

use crate::experiment::ExperimentResult;
use lrf_cbir::CUTOFFS;
use std::fmt::Write as _;

/// Renders an [`ExperimentResult`] in the layout of the paper's Tables 1–2:
/// one row per cutoff plus the MAP row; log-based schemes annotated with
/// their relative improvement over RF-SVM.
pub fn paper_table(title: &str, result: &ExperimentResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "(averaged over {} queries)", result.n_queries);

    let baseline = result.curve("RF-SVM");
    let mut header = format!("{:>6}", "#TOP");
    for (name, _) in &result.curves {
        let wide = name == "LRF-2SVMs" || name == "LRF-CSVM";
        let _ = write!(
            header,
            "  {:>width$}",
            name,
            width = if wide { 17 } else { 9 }
        );
    }
    let _ = writeln!(out, "{header}");

    let row = |out: &mut String, label: &str, idx: Option<usize>| {
        let _ = write!(out, "{label:>6}");
        for (name, curve) in &result.curves {
            let v = match idx {
                Some(i) => curve.values[i],
                None => curve.map(),
            };
            let annotated = name == "LRF-2SVMs" || name == "LRF-CSVM";
            match (annotated, baseline) {
                (true, Some(base)) => {
                    let b = match idx {
                        Some(i) => base.values[i],
                        None => base.map(),
                    };
                    let imp = if b > 0.0 { (v - b) / b * 100.0 } else { 0.0 };
                    let _ = write!(out, "  {:>8.3} ({:>+5.1}%)", v, imp);
                }
                (true, None) => {
                    let _ = write!(out, "  {v:>17.3}");
                }
                (false, _) => {
                    let _ = write!(out, "  {v:>9.3}");
                }
            }
        }
        let _ = writeln!(out);
    };

    for (i, &k) in CUTOFFS.iter().enumerate() {
        row(&mut out, &k.to_string(), Some(i));
    }
    row(&mut out, "MAP", None);
    out
}

/// Renders the figure series (Fig. 3 / Fig. 4): one line per cutoff with
/// every scheme's average precision — directly plottable columns.
pub fn figure_series(title: &str, result: &ExperimentResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let mut header = format!("{:>18}", "returned");
    for (name, _) in &result.curves {
        let _ = write!(header, "  {name:>10}");
    }
    let _ = writeln!(out, "{header}");
    for (i, &k) in CUTOFFS.iter().enumerate() {
        let _ = write!(out, "{k:>18}");
        for (_, curve) in &result.curves {
            let _ = write!(out, "  {:>10.4}", curve.values[i]);
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders a GitHub-flavored markdown table (used to fill EXPERIMENTS.md).
pub fn markdown_table(result: &ExperimentResult) -> String {
    let mut out = String::new();
    let _ = write!(out, "| #TOP |");
    for (name, _) in &result.curves {
        let _ = write!(out, " {name} |");
    }
    let _ = writeln!(out);
    let _ = write!(out, "|---|");
    for _ in &result.curves {
        let _ = write!(out, "---|");
    }
    let _ = writeln!(out);
    let baseline = result.curve("RF-SVM").cloned();
    for (i, &k) in CUTOFFS.iter().enumerate() {
        let _ = write!(out, "| {k} |");
        for (name, curve) in &result.curves {
            let v = curve.values[i];
            if let (true, Some(base)) = (
                (name == "LRF-2SVMs" || name == "LRF-CSVM"),
                baseline.as_ref(),
            ) {
                let b = base.values[i];
                let imp = if b > 0.0 { (v - b) / b * 100.0 } else { 0.0 };
                let _ = write!(out, " {v:.3} ({imp:+.1}%) |");
            } else {
                let _ = write!(out, " {v:.3} |");
            }
        }
        let _ = writeln!(out);
    }
    let _ = write!(out, "| MAP |");
    for (name, curve) in &result.curves {
        let v = curve.map();
        if let (true, Some(base)) = (
            (name == "LRF-2SVMs" || name == "LRF-CSVM"),
            baseline.as_ref(),
        ) {
            let b = base.map();
            let imp = if b > 0.0 { (v - b) / b * 100.0 } else { 0.0 };
            let _ = write!(out, " {v:.3} ({imp:+.1}%) |");
        } else {
            let _ = write!(out, " {v:.3} |");
        }
    }
    let _ = writeln!(out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrf_cbir::PrecisionCurve;

    fn fake_result() -> ExperimentResult {
        let mk = |base: f64| PrecisionCurve {
            values: (0..9).map(|i| base - i as f64 * 0.01).collect(),
            n_queries: 10,
        };
        ExperimentResult {
            curves: vec![
                ("Euclidean".into(), mk(0.4)),
                ("RF-SVM".into(), mk(0.5)),
                ("LRF-2SVMs".into(), mk(0.6)),
                ("LRF-CSVM".into(), mk(0.7)),
            ],
            eval_seconds: 1.0,
            n_queries: 10,
        }
    }

    #[test]
    fn paper_table_contains_all_rows_and_improvements() {
        let table = paper_table("Table 1", &fake_result());
        assert!(table.contains("Table 1"));
        for k in [20, 30, 40, 50, 60, 70, 80, 90, 100] {
            assert!(table.contains(&format!("\n{k:>6}")), "missing row {k}");
        }
        assert!(table.contains("MAP"));
        // 0.6 vs 0.5 at top-20 → +20%
        assert!(table.contains("(+20.0%)"), "table:\n{table}");
        assert!(table.contains("(+40.0%)"));
    }

    #[test]
    fn figure_series_has_nine_rows() {
        let series = figure_series("Fig 3", &fake_result());
        let data_rows = series
            .lines()
            .filter(|l| l.trim_start().starts_with(char::is_numeric))
            .count();
        assert_eq!(data_rows, 9, "series:\n{series}");
    }

    #[test]
    fn markdown_table_is_well_formed() {
        let md = markdown_table(&fake_result());
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 2 + 9 + 1); // header + sep + cutoffs + MAP
        assert!(lines[0].starts_with("| #TOP |"));
        assert!(lines.iter().all(|l| l.starts_with('|') && l.ends_with('|')));
    }
}
