//! `reproduce` — regenerate the paper's tables, figures, and ablations.
//!
//! ```text
//! USAGE:
//!   reproduce <COMMAND> [OPTIONS]
//!
//! COMMANDS:
//!   table1             Table 1: quantitative evaluation, 20-Category
//!   table2             Table 2: quantitative evaluation, 50-Category
//!   fig3               Fig. 3: precision curves, 20-Category
//!   fig4               Fig. 4: precision curves, 50-Category
//!   all                table1 + table2 + fig3 + fig4 (shared builds)
//!   ablate-selection   §6.5: unlabeled-selection strategies
//!   ablate-rho         sweep the unlabeled regularization cap ρ
//!   ablate-delta       sweep the label-correction gate Δ
//!   ablate-unlabeled   sweep the pool size N'
//!   ablate-noise       sweep feedback-log noise
//!   ablate-sessions    sweep the number of log sessions
//!   rounds             precision vs. feedback round per scheme
//!   calibrate          print Euclidean P@20 for corpus calibration
//!
//! OPTIONS:
//!   --queries N        evaluation queries            [default: 200]
//!   --sessions N       log sessions                  [default: 150]
//!   --noise F          log label-flip probability    [default: 0.1]
//!   --seed N           master seed                   [default: 42]
//!   --scale small|full dataset scale for ablations   [default: small]
//!   --json PATH        also dump results as JSON
//! ```

use lrf_bench::experiment::{run_on_prepared, ExperimentSpec, ProtocolConfig, SchemeChoice};
use lrf_bench::{figure_series, markdown_table, paper_table, run_experiment};
use lrf_cbir::{CorelDataset, CorelSpec};
use lrf_core::{LrfConfig, UnlabeledSelection};
use std::process::ExitCode;

#[derive(Clone, Debug)]
struct Options {
    command: String,
    queries: usize,
    sessions: usize,
    noise: f64,
    seed: u64,
    scale_full: bool,
    json: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options {
        command: String::new(),
        queries: 200,
        sessions: 150,
        noise: 0.1,
        seed: 42,
        scale_full: false,
        json: None,
    };
    let mut it = args.into_iter();
    opts.command = it.next().ok_or_else(|| "missing command".to_string())?;
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match flag.as_str() {
            "--queries" => {
                opts.queries = value("--queries")?.parse().map_err(|e| format!("{e}"))?
            }
            "--sessions" => {
                opts.sessions = value("--sessions")?.parse().map_err(|e| format!("{e}"))?
            }
            "--noise" => opts.noise = value("--noise")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => opts.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--scale" => opts.scale_full = value("--scale")? == "full",
            "--json" => opts.json = Some(value("--json")?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(opts)
}

fn spec_for(opts: &Options, fifty: bool) -> ExperimentSpec {
    let mut spec = if fifty {
        ExperimentSpec::table2(opts.seed)
    } else {
        ExperimentSpec::table1(opts.seed)
    };
    spec.protocol.n_queries = opts.queries;
    spec.log.n_sessions = opts.sessions;
    spec.log.noise = opts.noise;
    spec
}

/// Reduced dataset for ablations when `--scale full` is not given: 10
/// categories × 50 images keeps a sweep under a minute on one core.
fn ablation_spec(opts: &Options) -> ExperimentSpec {
    if opts.scale_full {
        let mut s = spec_for(opts, false);
        s.schemes = SchemeChoice::CsvmAndRf;
        return s;
    }
    let mut spec = ExperimentSpec::table1(opts.seed);
    spec.dataset = CorelSpec {
        n_categories: 10,
        per_category: 50,
        ..spec.dataset
    };
    spec.log.n_sessions = opts.sessions.min(80);
    spec.log.noise = opts.noise;
    spec.protocol = ProtocolConfig {
        n_queries: opts.queries.min(50),
        ..spec.protocol
    };
    spec.schemes = SchemeChoice::CsvmAndRf;
    spec
}

fn dump_json(path: &str, payload: &impl serde::Serialize) {
    match serde_json::to_vec_pretty(payload) {
        Ok(bytes) => {
            if let Err(e) = std::fs::write(path, bytes) {
                eprintln!("warning: could not write {path}: {e}");
            } else {
                println!("(results written to {path})");
            }
        }
        Err(e) => eprintln!("warning: could not serialize results: {e}"),
    }
}

fn run_main_experiment(opts: &Options, fifty: bool, as_figure: bool) {
    let spec = spec_for(opts, fifty);
    let (label, figure_label) = if fifty {
        (
            "Table 2: quantitative evaluation, 50-Category dataset",
            "Fig. 4: 50-Category",
        )
    } else {
        (
            "Table 1: quantitative evaluation, 20-Category dataset",
            "Fig. 3: 20-Category",
        )
    };
    eprintln!(
        "building {}-category dataset ({} images) ...",
        spec.dataset.n_categories,
        spec.dataset.n_categories * spec.dataset.per_category
    );
    let result = run_experiment(&spec);
    if as_figure {
        println!("{}", figure_series(figure_label, &result));
    } else {
        println!("{}", paper_table(label, &result));
    }
    eprintln!("evaluation took {:.1}s", result.eval_seconds);
    if let Some(path) = &opts.json {
        dump_json(path, &result);
    }
}

fn run_all(opts: &Options) {
    for fifty in [false, true] {
        let spec = spec_for(opts, fifty);
        eprintln!(
            "building {}-category dataset ...",
            spec.dataset.n_categories
        );
        let result = run_experiment(&spec);
        let (table_label, fig_label) = if fifty {
            (
                "Table 2: quantitative evaluation, 50-Category dataset",
                "Fig. 4: 50-Category",
            )
        } else {
            (
                "Table 1: quantitative evaluation, 20-Category dataset",
                "Fig. 3: 20-Category",
            )
        };
        println!("{}", paper_table(table_label, &result));
        println!("{}", figure_series(fig_label, &result));
        println!("markdown:\n{}", markdown_table(&result));
        eprintln!("evaluation took {:.1}s", result.eval_seconds);
    }
}

fn run_selection_ablation(opts: &Options) {
    let base = ablation_spec(opts);
    eprintln!("building ablation dataset ...");
    let dataset = CorelDataset::build(base.dataset.clone());
    let log = lrf_core::collect_feedback_log(&dataset.db, &base.log, &base.lrf);
    println!(
        "§6.5 ablation: unlabeled-selection strategy (MAP, {} queries)",
        base.protocol.n_queries
    );
    for (name, sel) in [
        (
            "MaxMinCombinedDistance (paper)",
            UnlabeledSelection::MaxMinCombinedDistance,
        ),
        (
            "ClosestToBoundary (rejected in §6.5)",
            UnlabeledSelection::ClosestToBoundary,
        ),
        ("Random (control)", UnlabeledSelection::Random),
    ] {
        let spec = ExperimentSpec {
            lrf: LrfConfig {
                selection: sel,
                ..base.lrf
            },
            schemes: SchemeChoice::CsvmOnly,
            ..base.clone()
        };
        let result = run_on_prepared(&spec, &dataset, &log);
        let map = result.curves[0].1.map();
        let p20 = result.curves[0].1.at(20);
        println!("  {name:<40} MAP {map:.3}  P@20 {p20:.3}");
    }
    // Reference: RF-SVM without any log/transduction.
    let rf_spec = ExperimentSpec {
        schemes: SchemeChoice::CsvmAndRf,
        ..base.clone()
    };
    let result = run_on_prepared(&rf_spec, &dataset, &log);
    let rf = result.curve("RF-SVM").expect("RF-SVM curve present");
    println!(
        "  {:<40} MAP {:.3}  P@20 {:.3}",
        "RF-SVM (no log reference)",
        rf.map(),
        rf.at(20)
    );
}

fn run_param_sweep<T: Copy + std::fmt::Display>(
    opts: &Options,
    param_name: &str,
    values: &[T],
    mut apply: impl FnMut(&mut ExperimentSpec, T),
    rebuild_log: bool,
) {
    let base = ablation_spec(opts);
    eprintln!("building ablation dataset ...");
    let dataset = CorelDataset::build(base.dataset.clone());
    let base_log = lrf_core::collect_feedback_log(&dataset.db, &base.log, &base.lrf);
    println!(
        "ablation: sweep {param_name} (LRF-CSVM MAP / P@20, {} queries)",
        base.protocol.n_queries
    );
    for &v in values {
        let mut spec = ExperimentSpec {
            schemes: SchemeChoice::CsvmOnly,
            ..base.clone()
        };
        apply(&mut spec, v);
        let result = if rebuild_log {
            let log = lrf_core::collect_feedback_log(&dataset.db, &spec.log, &spec.lrf);
            run_on_prepared(&spec, &dataset, &log)
        } else {
            run_on_prepared(&spec, &dataset, &base_log)
        };
        let curve = &result.curves[0].1;
        println!(
            "  {param_name} = {v:<10} MAP {:.3}  P@20 {:.3}",
            curve.map(),
            curve.at(20)
        );
    }
}

fn run_calibration(opts: &Options) {
    // Prints the Euclidean baseline at both dataset scales — the corpus
    // calibration target is the paper's Euclidean row (0.398 / 0.342).
    for fifty in [false, true] {
        let mut spec = spec_for(opts, fifty);
        spec.schemes = SchemeChoice::All;
        spec.protocol.n_queries = opts.queries;
        eprintln!(
            "building {}-category dataset ...",
            spec.dataset.n_categories
        );
        let result = run_experiment(&spec);
        let eu = result.curve("Euclidean").expect("Euclidean curve present");
        println!(
            "{}-category: Euclidean P@20 {:.3} (paper {})  MAP {:.3} (paper {})",
            spec.dataset.n_categories,
            eu.at(20),
            if fifty { "0.342" } else { "0.398" },
            eu.map(),
            if fifty { "0.242" } else { "0.283" },
        );
    }
}

fn run_rounds(opts: &Options) {
    use lrf_core::RoundSelection;
    let base = ablation_spec(opts);
    eprintln!("building rounds dataset ...");
    let dataset = CorelDataset::build(base.dataset.clone());
    let log = lrf_core::collect_feedback_log(&dataset.db, &base.log, &base.lrf);
    let n_rounds = 4;
    println!(
        "mean P@20 per feedback round ({} queries, screens of 15, top-confident presentation)",
        base.protocol.n_queries
    );
    let spec = lrf_bench::experiment::ExperimentSpec {
        schemes: SchemeChoice::All,
        ..base.clone()
    };
    let results = lrf_bench::experiment::run_rounds_experiment(
        &spec,
        &dataset,
        &log,
        n_rounds,
        15,
        RoundSelection::TopConfident,
    );
    print!("{:>10}", "scheme");
    for r in 1..=n_rounds {
        print!("  round{r:<3}");
    }
    println!();
    for (name, curve) in &results {
        print!("{name:>10}");
        for v in curve {
            print!("  {v:>7.3}");
        }
        println!();
    }
    // The active-learning comparison: uncertain screens trade early
    // precision for faster improvement (Tong & Chang's premise).
    println!("\nLRF-CSVM under different presentation policies:");
    for (label, sel) in [
        ("top-confident", RoundSelection::TopConfident),
        ("most-uncertain", RoundSelection::MostUncertain),
        ("mixed", RoundSelection::Mixed),
    ] {
        let spec = lrf_bench::experiment::ExperimentSpec {
            schemes: SchemeChoice::CsvmOnly,
            ..base.clone()
        };
        let results =
            lrf_bench::experiment::run_rounds_experiment(&spec, &dataset, &log, n_rounds, 15, sel);
        print!("{label:>15}");
        for v in &results[0].1 {
            print!("  {v:>7.3}");
        }
        println!();
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\nrun with a command: table1|table2|fig3|fig4|all|ablate-selection|ablate-rho|ablate-delta|ablate-unlabeled|ablate-noise|ablate-sessions|rounds|calibrate");
            return ExitCode::FAILURE;
        }
    };

    match opts.command.as_str() {
        "table1" => run_main_experiment(&opts, false, false),
        "table2" => run_main_experiment(&opts, true, false),
        "fig3" => run_main_experiment(&opts, false, true),
        "fig4" => run_main_experiment(&opts, true, true),
        "all" => run_all(&opts),
        "ablate-selection" => run_selection_ablation(&opts),
        "ablate-rho" => run_param_sweep(
            &opts,
            "rho",
            &[0.001, 0.01, 0.1, 0.5, 1.0, 2.0],
            |spec, v| spec.lrf.coupled.rho = v,
            false,
        ),
        "ablate-delta" => run_param_sweep(
            &opts,
            "delta",
            &[0.5, 1.0, 2.0, 3.0],
            |spec, v| spec.lrf.coupled.delta = v,
            false,
        ),
        "ablate-unlabeled" => run_param_sweep(
            &opts,
            "n_unlabeled",
            &[10usize, 20, 40, 80],
            |spec, v| spec.lrf.n_unlabeled = v,
            false,
        ),
        "ablate-noise" => run_param_sweep(
            &opts,
            "noise",
            &[0.0, 0.1, 0.2, 0.3],
            |spec, v| spec.log.noise = v,
            true,
        ),
        "ablate-sessions" => run_param_sweep(
            &opts,
            "sessions",
            &[20usize, 40, 80, 160],
            |spec, v| spec.log.n_sessions = v,
            true,
        ),
        "rounds" => run_rounds(&opts),
        "calibrate" => run_calibration(&opts),
        other => {
            eprintln!("error: unknown command {other}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
