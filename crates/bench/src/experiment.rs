//! The §6.4 experiment runner.

use lrf_cbir::{CorelDataset, CorelSpec, PrecisionCurve, QueryProtocol};
use lrf_core::{
    EuclideanScheme, Lrf2Svms, LrfConfig, LrfCsvm, QueryContext, RelevanceFeedback, RfSvm,
};
use lrf_logdb::{LogStore, SimulationConfig};
use lrf_obs::{Clock, MonotonicClock};
use serde::{Deserialize, Serialize};

/// Which schemes an experiment evaluates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchemeChoice {
    /// All four curves of the paper's figures.
    All,
    /// Only LRF-CSVM (used by parameter ablations).
    CsvmOnly,
    /// LRF-CSVM plus the RF-SVM baseline (ablation reference).
    CsvmAndRf,
}

/// A complete experiment specification. Everything is serializable so runs
/// can be recorded alongside their results.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Dataset to build (the paper's 20- or 50-category setups).
    pub dataset: CorelSpec,
    /// Feedback-log collection parameters (the paper: 150 sessions, top-20
    /// judged, "more or less noise").
    pub log: SimulationConfig,
    /// Query protocol (the paper: 200 random queries, 20 labeled).
    pub protocol: ProtocolConfig,
    /// Algorithm configuration shared by all SVM-based schemes.
    pub lrf: LrfConfig,
    /// Scheme subset to run.
    pub schemes: SchemeChoice,
}

/// Serializable mirror of [`QueryProtocol`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// Number of random queries.
    pub n_queries: usize,
    /// Judged images per feedback round.
    pub n_labeled: usize,
    /// Query-sampling seed.
    pub seed: u64,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        let p = QueryProtocol::default();
        Self {
            n_queries: p.n_queries,
            n_labeled: p.n_labeled,
            seed: p.seed,
        }
    }
}

impl From<ProtocolConfig> for QueryProtocol {
    fn from(c: ProtocolConfig) -> Self {
        QueryProtocol {
            n_queries: c.n_queries,
            n_labeled: c.n_labeled,
            seed: c.seed,
        }
    }
}

impl ExperimentSpec {
    /// The paper's 20-Category experiment (Table 1 / Fig. 3).
    pub fn table1(seed: u64) -> Self {
        Self {
            dataset: CorelSpec::twenty_category(seed),
            log: SimulationConfig {
                seed: seed ^ 0x10f0,
                ..Default::default()
            },
            protocol: ProtocolConfig {
                seed: seed ^ 0x20f0,
                ..Default::default()
            },
            lrf: LrfConfig::default(),
            schemes: SchemeChoice::All,
        }
    }

    /// The paper's 50-Category experiment (Table 2 / Fig. 4).
    pub fn table2(seed: u64) -> Self {
        Self {
            dataset: CorelSpec::fifty_category(seed),
            ..Self::table1(seed)
        }
    }

    /// A down-scaled spec for smoke tests and quick iterations.
    pub fn smoke(n_categories: usize, per_category: usize, seed: u64) -> Self {
        Self {
            dataset: CorelSpec::tiny(n_categories, per_category, seed),
            log: SimulationConfig {
                n_sessions: 30,
                judged_per_session: 10,
                rounds_per_query: 2,
                noise: 0.1,
                seed: seed ^ 1,
            },
            protocol: ProtocolConfig {
                n_queries: 10,
                n_labeled: 10,
                seed: seed ^ 2,
            },
            lrf: LrfConfig {
                n_unlabeled: 10,
                ..Default::default()
            },
            schemes: SchemeChoice::All,
        }
    }
}

/// Result of one experiment: a named precision curve per scheme, in the
/// paper's column order.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// `(scheme name, averaged curve)` in evaluation order.
    pub curves: Vec<(String, PrecisionCurve)>,
    /// Wall-clock seconds spent evaluating queries (excludes dataset build).
    pub eval_seconds: f64,
    /// Number of queries evaluated.
    pub n_queries: usize,
}

impl ExperimentResult {
    /// Looks up a scheme's curve by name.
    pub fn curve(&self, name: &str) -> Option<&PrecisionCurve> {
        self.curves.iter().find(|(n, _)| n == name).map(|(_, c)| c)
    }
}

/// Builds the dataset + log and evaluates the configured schemes.
///
/// The log is collected with the paper's protocol — multi-round RF-SVM
/// refined screens ([`lrf_core::collect_feedback_log`]), not plain content
/// ranking.
///
/// Queries are sharded across threads with `std::thread::scope`; results are
/// deterministic regardless of thread count because every query's work is
/// self-contained and accumulation is order-independent up to float
/// summation over a fixed per-scheme order (shards are merged in shard
/// order).
pub fn run_experiment(spec: &ExperimentSpec) -> ExperimentResult {
    let dataset = CorelDataset::build(spec.dataset.clone());
    let log = lrf_core::collect_feedback_log(&dataset.db, &spec.log, &spec.lrf);
    run_on_prepared(spec, &dataset, &log)
}

/// As [`run_experiment`] but over an already built dataset/log (reused by
/// ablations that sweep only algorithm parameters).
pub fn run_on_prepared(
    spec: &ExperimentSpec,
    dataset: &CorelDataset,
    log: &LogStore,
) -> ExperimentResult {
    let max_cutoff = *lrf_cbir::CUTOFFS.last().expect("cutoffs nonempty");
    assert!(
        dataset.db.len() >= max_cutoff,
        "database of {} images cannot be evaluated at the paper's top-{max_cutoff} cutoff",
        dataset.db.len()
    );
    let schemes = build_schemes(spec);
    let protocol: QueryProtocol = spec.protocol.into();
    let queries = protocol.sample_queries(&dataset.db);

    let clock = MonotonicClock::new();
    let n_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let chunk = queries.len().div_ceil(n_threads).max(1);

    // Each shard accumulates one PrecisionCurve per scheme; shards merge in
    // order afterwards.
    let shard_results: Vec<Vec<PrecisionCurve>> = std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .chunks(chunk)
            .map(|shard| {
                let schemes = &schemes;
                let db = &dataset.db;
                scope.spawn(move || {
                    let mut curves: Vec<PrecisionCurve> =
                        schemes.iter().map(|_| PrecisionCurve::new()).collect();
                    for &q in shard {
                        let example = protocol.feedback_example(db, q);
                        let ctx = QueryContext {
                            db,
                            log,
                            example: &example,
                        };
                        for (scheme, curve) in schemes.iter().zip(&mut curves) {
                            let ranked = scheme.rank(&ctx);
                            curve.add(&ranked, |id| db.same_category(id, q));
                        }
                    }
                    curves
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("evaluation shard panicked"))
            .collect()
    });

    // Merge shards.
    let mut merged: Vec<PrecisionCurve> = schemes.iter().map(|_| PrecisionCurve::new()).collect();
    for shard in shard_results {
        for (m, s) in merged.iter_mut().zip(shard) {
            for (mv, sv) in m.values.iter_mut().zip(&s.values) {
                *mv += sv;
            }
            m.n_queries += s.n_queries;
        }
    }
    let curves = schemes
        .iter()
        .zip(merged)
        .map(|(s, c)| (s.name().to_string(), c.finish()))
        .collect();

    ExperimentResult {
        curves,
        eval_seconds: clock.now_ns() as f64 / 1e9,
        n_queries: queries.len(),
    }
}

fn build_schemes(spec: &ExperimentSpec) -> Vec<Box<dyn RelevanceFeedback + Sync>> {
    match spec.schemes {
        SchemeChoice::All => vec![
            Box::new(EuclideanScheme),
            Box::new(RfSvm::new(spec.lrf)),
            Box::new(Lrf2Svms::new(spec.lrf)),
            Box::new(LrfCsvm::new(spec.lrf)),
        ],
        SchemeChoice::CsvmOnly => vec![Box::new(LrfCsvm::new(spec.lrf))],
        SchemeChoice::CsvmAndRf => {
            vec![
                Box::new(RfSvm::new(spec.lrf)),
                Box::new(LrfCsvm::new(spec.lrf)),
            ]
        }
    }
}

/// Multi-round feedback evaluation: the paper's motivating metric ("achieve
/// satisfactory results within as few feedback cycles as possible").
///
/// For each query, every scheme starts from the same auto-judged Euclidean
/// top-`n_labeled` round; after each ranking, the next round's screen is
/// chosen by `selection` over the scheme's own scores-implied ranking (we
/// use rank order as the score surrogate, which is what presentation
/// policies act on), judged by ground truth, and appended to the labeled
/// set. Returns, per scheme, the mean P@20 after each round.
pub fn run_rounds_experiment(
    spec: &ExperimentSpec,
    dataset: &CorelDataset,
    log: &LogStore,
    n_rounds: usize,
    screen_size: usize,
    selection: lrf_core::RoundSelection,
) -> Vec<(String, Vec<f64>)> {
    let schemes = build_schemes(spec);
    let protocol: QueryProtocol = spec.protocol.into();
    let queries = protocol.sample_queries(&dataset.db);
    let db = &dataset.db;

    let mut per_scheme: Vec<Vec<f64>> = schemes.iter().map(|_| vec![0.0; n_rounds]).collect();
    for &q in &queries {
        for (s_idx, scheme) in schemes.iter().enumerate() {
            let mut example = protocol.feedback_example(db, q);
            #[allow(clippy::needless_range_loop)] // round drives both the
            // accumulator slot and the feedback-refresh below
            for round in 0..n_rounds {
                let ctx = QueryContext {
                    db,
                    log,
                    example: &example,
                };
                // Real decision scores where the scheme has them (needed by
                // uncertainty-based presentation); rank-derived surrogate
                // otherwise (Euclidean).
                let (ranked, scores) = match scheme.scores(&ctx) {
                    Some(scores) => (lrf_core::feedback::rank_by_scores(&scores), scores),
                    None => {
                        let ranked = scheme.rank(&ctx);
                        let mut surrogate = vec![0.0f64; db.len()];
                        for (pos, &id) in ranked.iter().enumerate() {
                            surrogate[id] = -(pos as f64);
                        }
                        (ranked, surrogate)
                    }
                };
                per_scheme[s_idx][round] +=
                    lrf_cbir::precision_at(&ranked, |id| db.same_category(id, q), 20);
                let judged: std::collections::HashSet<usize> =
                    example.labeled.iter().map(|&(id, _)| id).collect();
                let screen = selection.select(&scores, &judged, screen_size);
                for id in screen {
                    let y = if db.same_category(id, q) { 1.0 } else { -1.0 };
                    example.labeled.push((id, y));
                }
            }
        }
    }
    schemes
        .iter()
        .zip(per_scheme)
        .map(|(s, totals)| {
            (
                s.name().to_string(),
                totals
                    .into_iter()
                    .map(|t| t / queries.len() as f64)
                    .collect(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_experiment_produces_all_curves() {
        let spec = ExperimentSpec::smoke(5, 25, 5);
        let result = run_experiment(&spec);
        assert_eq!(result.curves.len(), 4);
        assert_eq!(result.curves[0].0, "Euclidean");
        assert_eq!(result.curves[3].0, "LRF-CSVM");
        for (name, curve) in &result.curves {
            assert_eq!(curve.n_queries, 10, "{name}");
            assert!(
                curve.values.iter().all(|&v| (0.0..=1.0).contains(&v)),
                "{name}"
            );
        }
    }

    #[test]
    fn smoke_experiment_is_deterministic() {
        let spec = ExperimentSpec::smoke(4, 30, 9);
        let a = run_experiment(&spec);
        let b = run_experiment(&spec);
        for ((na, ca), (nb, cb)) in a.curves.iter().zip(&b.curves) {
            assert_eq!(na, nb);
            assert_eq!(ca.values, cb.values);
        }
    }

    #[test]
    fn csvm_only_runs_one_scheme() {
        let spec = ExperimentSpec {
            schemes: SchemeChoice::CsvmOnly,
            ..ExperimentSpec::smoke(4, 30, 3)
        };
        let result = run_experiment(&spec);
        assert_eq!(result.curves.len(), 1);
        assert_eq!(result.curves[0].0, "LRF-CSVM");
    }

    #[test]
    fn named_specs_match_paper_scale() {
        let t1 = ExperimentSpec::table1(0);
        assert_eq!(t1.dataset.n_categories, 20);
        assert_eq!(t1.log.n_sessions, 150);
        assert_eq!(t1.protocol.n_queries, 200);
        assert_eq!(t1.protocol.n_labeled, 20);
        let t2 = ExperimentSpec::table2(0);
        assert_eq!(t2.dataset.n_categories, 50);
    }
}
