//! Criterion bench: `lrf-service` under concurrent feedback sessions.
//!
//! Each measured unit runs `n` complete feedback loops (open → judge the
//! screen → retrain/rerank → judge more → retrain/rerank → close, with the
//! close flushing into the shared log) against **one** shared service —
//! once sequentially on the driving thread, once with one thread per
//! session over `std::thread::scope`. On one core the two are equivalent
//! (the service adds only lock overhead); on a k-core runner the
//! per-session retrains overlap and the concurrent path approaches k-fold
//! throughput. `tools/bench_check.sh` gates CI on exactly that comparison.
//!
//! Set `BENCH_QUICK=1` for the CI smoke configuration (small corpus, few
//! sessions).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lrf_cbir::{collect_log, CorelDataset, CorelSpec};
use lrf_core::{LrfConfig, SchemeKind};
use lrf_logdb::SimulationConfig;
use lrf_service::{Request, Response, Service, ServiceConfig};
use std::hint::black_box;

fn quick() -> bool {
    std::env::var("BENCH_QUICK").is_ok()
}

/// The shared corpus: database + initial feedback log. Each measured
/// iteration serves a *fresh* service built from clones (the database
/// clone is an `Arc` handle, the log clone is small), so the log every
/// session trains on is identical across iterations and across the
/// serial/concurrent comparison — otherwise the side measured second
/// would pay for the log the first side flushed.
fn build_corpus() -> (lrf_cbir::ImageDatabase, lrf_logdb::LogStore) {
    let (categories, per_category) = if quick() { (4, 12) } else { (8, 40) };
    let ds = CorelDataset::build(CorelSpec::tiny(categories, per_category, 19));
    let log = collect_log(
        &ds.db,
        &SimulationConfig {
            n_sessions: 30,
            judged_per_session: 10,
            rounds_per_query: 2,
            noise: 0.1,
            seed: 23,
        },
    );
    (ds.db, log)
}

fn service_config() -> ServiceConfig {
    ServiceConfig {
        max_sessions: 256,
        ttl_requests: 0,
        screen_size: 10,
        pool_size: 60,
        lrf: LrfConfig {
            n_unlabeled: 8,
            ..LrfConfig::default()
        },
    }
}

/// One complete feedback loop; returns a ranking checksum so the optimizer
/// cannot elide the work.
fn run_session(svc: &Service, query: usize) -> usize {
    // The paper's full algorithm — the heaviest per-round retrain, so the
    // comparison measures overlapping real work, not thread bookkeeping.
    let Response::Opened { session, screen } = svc.handle(Request::Open {
        query,
        scheme: SchemeKind::LrfCsvm,
    }) else {
        panic!("open failed")
    };
    for &id in &screen {
        svc.handle(Request::Mark {
            session,
            image: id,
            relevant: svc.db().same_category(id, query),
        });
    }
    let Response::Reranked { page, .. } = svc.handle(Request::Rerank { session }) else {
        panic!("rerank failed")
    };
    // Round 2: judge the previously unjudged part of the refined page.
    for &id in &page {
        let _ = svc.handle(Request::Mark {
            session,
            image: id,
            relevant: svc.db().same_category(id, query),
        });
    }
    let Response::Reranked { page, .. } = svc.handle(Request::Rerank { session }) else {
        panic!("rerank failed")
    };
    let checksum: usize = page.iter().sum();
    svc.handle(Request::Close { session });
    checksum
}

/// Per-request latency percentiles, measured by the service's own
/// observability layer: drive a fixed session mix, then read the
/// `request_latency_ns` / `stage_*_ns` histograms back out of the metrics
/// endpoint. Printed in the harness's `bench … ns/iter` line format so
/// `tools/bench_check.sh` parses and persists them (BENCH_latency.json)
/// alongside the throughput numbers.
fn report_latency_percentiles() {
    let (db, log) = build_corpus();
    let n_images = db.len();
    let svc = Service::new(db, log, service_config());
    let sessions = if quick() { 4 } else { 16 };
    for i in 0..sessions {
        run_session(&svc, (i * 17 + 3) % n_images);
    }
    let snapshot = svc.metrics_snapshot();
    let stages = [
        ("request", "request_latency_ns"),
        ("session_lookup", "stage_session_lookup_ns"),
        ("scoring", "stage_scoring_ns"),
        ("retrain", "stage_retrain_ns"),
        ("flush", "stage_flush_ns"),
    ];
    for (label, name) in stages {
        let h = snapshot
            .histogram(name)
            .expect("stage histogram registered");
        for (q, q_label) in [(0.50, "p50"), (0.95, "p95"), (0.99, "p99")] {
            println!(
                "bench {:<40} {:>14} ns/iter",
                format!("service_latency/{label}/{q_label}"),
                h.quantile(q)
            );
        }
    }
}

fn bench_service_throughput(c: &mut Criterion) {
    let (db, log) = build_corpus();
    let session_counts: Vec<usize> = if quick() { vec![4] } else { vec![4, 8, 16] };
    let n_images = db.len();
    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(10);
    for &n in &session_counts {
        let queries: Vec<usize> = (0..n).map(|i| (i * 17 + 3) % n_images).collect();
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |b, _| {
            b.iter(|| {
                let svc = Service::new(db.clone(), log.clone(), service_config());
                let total: usize = queries.iter().map(|&q| run_session(&svc, q)).sum();
                black_box(total)
            })
        });
        group.bench_with_input(BenchmarkId::new("concurrent", n), &n, |b, _| {
            b.iter(|| {
                let svc = Service::new(db.clone(), log.clone(), service_config());
                let svc_ref = &svc;
                let total: usize = std::thread::scope(|scope| {
                    let handles: Vec<_> = queries
                        .iter()
                        .map(|&q| scope.spawn(move || run_session(svc_ref, q)))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("session thread panicked"))
                        .sum()
                });
                black_box(total)
            })
        });
    }
    group.finish();
    report_latency_percentiles();
}

criterion_group!(benches, bench_service_throughput);
criterion_main!(benches);
