//! Criterion bench: the feature-extraction pipeline, per stage.
//!
//! Dataset build time is dominated by Canny + DWT; these benches break the
//! 36-D extraction into its three stages at the experiment's image size.

use criterion::{criterion_group, criterion_main, Criterion};
use lrf_features::color_moments::color_moments;
use lrf_features::edge_histogram::edge_direction_histogram;
use lrf_features::texture::wavelet_texture;
use lrf_features::FeatureExtractor;
use lrf_imaging::canny::CannyParams;
use lrf_imaging::SyntheticGenerator;
use std::hint::black_box;

fn bench_stages(c: &mut Criterion) {
    let gen = SyntheticGenerator::new(4, 64, 64, 99);
    let img = gen.generate(2, 5);
    let gray = img.to_gray();

    c.bench_function("features/color_moments_64", |b| {
        b.iter(|| black_box(color_moments(black_box(&img))))
    });
    c.bench_function("features/edge_histogram_64", |b| {
        b.iter(|| {
            black_box(edge_direction_histogram(
                black_box(&gray),
                CannyParams::default(),
            ))
        })
    });
    c.bench_function("features/wavelet_texture_64", |b| {
        b.iter(|| black_box(wavelet_texture(black_box(&gray))))
    });
    let extractor = FeatureExtractor::default();
    c.bench_function("features/full_pipeline_64", |b| {
        b.iter(|| black_box(extractor.extract(black_box(&img))))
    });
}

fn bench_generation(c: &mut Criterion) {
    let gen = SyntheticGenerator::new(20, 64, 64, 3);
    c.bench_function("synthetic/generate_64", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % 100;
            black_box(gen.generate(i % 20, i))
        })
    });
}

criterion_group!(benches, bench_stages, bench_generation);
criterion_main!(benches);
