//! Criterion bench: full coupled-SVM training at the paper's round shape
//! (N_l = 20 labeled, N' = 40 unlabeled) and the ρ-annealing cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lrf_core::{train_coupled, CoupledConfig, LogRbfKernel};
use lrf_logdb::SparseVector;
use lrf_svm::RbfKernel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

#[allow(clippy::type_complexity)]
fn round_shape(
    n_l: usize,
    n_u: usize,
    seed: u64,
) -> (
    Vec<Vec<f64>>,
    Vec<SparseVector>,
    Vec<f64>,
    Vec<Vec<f64>>,
    Vec<SparseVector>,
    Vec<f64>,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mk_x = |y: f64| -> Vec<f64> {
        (0..36)
            .map(|_| y * 0.3 + rng.gen_range(-1.0..1.0))
            .collect()
    };
    let labeled_x: Vec<Vec<f64>> = (0..n_l)
        .map(|i| mk_x(if i % 2 == 0 { 1.0 } else { -1.0 }))
        .collect();
    let y: Vec<f64> = (0..n_l)
        .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
        .collect();
    let unl_x: Vec<Vec<f64>> = (0..n_u)
        .map(|i| mk_x(if i % 2 == 0 { 1.0 } else { -1.0 }))
        .collect();
    let y_init: Vec<f64> = (0..n_u)
        .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
        .collect();

    let mut rng2 = StdRng::seed_from_u64(seed ^ 0xff);
    let mut mk_r = |y: f64| -> SparseVector {
        let n = rng2.gen_range(1..4usize);
        let mut entries: Vec<(u32, f64)> = Vec::new();
        for _ in 0..n {
            let idx = rng2.gen_range(0..150u32);
            if !entries.iter().any(|&(i, _)| i == idx) {
                entries.push((idx, y));
            }
        }
        SparseVector::from_entries(entries)
    };
    let labeled_r: Vec<SparseVector> = (0..n_l)
        .map(|i| mk_r(if i % 2 == 0 { 1.0 } else { -1.0 }))
        .collect();
    let unl_r: Vec<SparseVector> = (0..n_u)
        .map(|i| mk_r(if i % 2 == 0 { 1.0 } else { -1.0 }))
        .collect();

    (labeled_x, labeled_r, y, unl_x, unl_r, y_init)
}

fn bench_coupled_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("coupled_train");
    group.sample_size(10);
    for &n_u in &[10usize, 40, 80] {
        let (lx, lr, y, ux, ur, yi) = round_shape(20, n_u, 5);
        group.bench_with_input(BenchmarkId::new("pool", n_u), &n_u, |b, _| {
            b.iter(|| {
                let out = train_coupled(
                    black_box(&lx),
                    black_box(&lr),
                    &y,
                    &ux,
                    &ur,
                    &yi,
                    RbfKernel::new(1.0 / 36.0),
                    LogRbfKernel::new(0.5),
                    &CoupledConfig::default(),
                )
                .unwrap();
                black_box(out.report.retrains)
            })
        });
    }
    group.finish();
}

fn bench_annealing_schedules(c: &mut Criterion) {
    let (lx, lr, y, ux, ur, yi) = round_shape(20, 40, 5);
    let mut group = c.benchmark_group("coupled_train_rho_init");
    group.sample_size(10);
    for &(label, rho_init) in &[("1e-4_paper", 1e-4), ("1e-2", 1e-2), ("0.25", 0.25)] {
        // Fixed final rho = 0.5 so the sweep isolates the schedule depth
        // (rho_init must not exceed rho).
        let cfg = CoupledConfig {
            rho_init,
            rho: 0.5,
            ..Default::default()
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                let out = train_coupled(
                    black_box(&lx),
                    &lr,
                    &y,
                    &ux,
                    &ur,
                    &yi,
                    RbfKernel::new(1.0 / 36.0),
                    LogRbfKernel::new(0.5),
                    &cfg,
                )
                .unwrap();
                black_box(out.report.rho_steps)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_coupled_training, bench_annealing_schedules);
criterion_main!(benches);
