//! Criterion bench: cost of the observability layer on the service path.
//!
//! Runs the same complete feedback loop twice against fresh services —
//! once with full instrumentation (`ServiceMetrics::new`: stage timers on
//! the monotonic clock + all counters), once against the untimed baseline
//! (`ServiceMetrics::disabled`: counters only, zero clock reads). The CI
//! gate (`tools/bench_check.sh`) fails if the timed build costs more than
//! 5 % over the baseline — the budget that keeps tracing always-on in
//! production.
//!
//! Set `BENCH_QUICK=1` for the CI smoke configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use lrf_cbir::{build_flat_index, collect_log, CorelDataset, CorelSpec};
use lrf_core::{LrfConfig, SchemeKind};
use lrf_index::AnnIndex;
use lrf_logdb::SimulationConfig;
use lrf_service::{Request, Response, Service, ServiceConfig, ServiceMetrics};
use std::hint::black_box;

fn quick() -> bool {
    std::env::var("BENCH_QUICK").is_ok()
}

fn build_corpus() -> (lrf_cbir::ImageDatabase, lrf_logdb::LogStore) {
    let (categories, per_category) = if quick() { (4, 12) } else { (8, 40) };
    let ds = CorelDataset::build(CorelSpec::tiny(categories, per_category, 19));
    let log = collect_log(
        &ds.db,
        &SimulationConfig {
            n_sessions: 30,
            judged_per_session: 10,
            rounds_per_query: 2,
            noise: 0.1,
            seed: 23,
        },
    );
    (ds.db, log)
}

fn service_config() -> ServiceConfig {
    ServiceConfig {
        max_sessions: 256,
        ttl_requests: 0,
        screen_size: 10,
        pool_size: 60,
        lrf: LrfConfig {
            n_unlabeled: 8,
            ..LrfConfig::default()
        },
    }
}

/// One complete feedback loop (open → judge → rerank ×2 → close), the same
/// workload as `service_throughput`; returns a checksum so the work is not
/// elided.
fn run_session(svc: &Service, query: usize) -> usize {
    let Response::Opened { session, screen } = svc.handle(Request::Open {
        query,
        scheme: SchemeKind::LrfCsvm,
    }) else {
        panic!("open failed")
    };
    for &id in &screen {
        svc.handle(Request::Mark {
            session,
            image: id,
            relevant: svc.db().same_category(id, query),
        });
    }
    let Response::Reranked { page, .. } = svc.handle(Request::Rerank { session }) else {
        panic!("rerank failed")
    };
    for &id in &page {
        let _ = svc.handle(Request::Mark {
            session,
            image: id,
            relevant: svc.db().same_category(id, query),
        });
    }
    let Response::Reranked { page, .. } = svc.handle(Request::Rerank { session }) else {
        panic!("rerank failed")
    };
    let checksum: usize = page.iter().sum();
    svc.handle(Request::Close { session });
    checksum
}

fn service_with(db: &lrf_cbir::ImageDatabase, log: &lrf_logdb::LogStore, timed: bool) -> Service {
    let db = db.clone();
    let index: Box<dyn AnnIndex> = Box::new(build_flat_index(&db));
    let metrics = if timed {
        ServiceMetrics::new()
    } else {
        ServiceMetrics::disabled()
    };
    Service::with_metrics(db, index, log.clone(), service_config(), metrics)
}

fn bench_obs_overhead(c: &mut Criterion) {
    let (db, log) = build_corpus();
    let n_sessions = 4usize;
    let n_images = db.len();
    let queries: Vec<usize> = (0..n_sessions).map(|i| (i * 17 + 3) % n_images).collect();
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);
    group.bench_function("untimed", |b| {
        b.iter(|| {
            let svc = service_with(&db, &log, false);
            let total: usize = queries.iter().map(|&q| run_session(&svc, q)).sum();
            black_box(total)
        })
    });
    group.bench_function("timed", |b| {
        b.iter(|| {
            let svc = service_with(&db, &log, true);
            let total: usize = queries.iter().map(|&q| run_session(&svc, q)).sum();
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
