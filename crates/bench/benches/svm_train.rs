//! Criterion bench: per-round retraining latency — the cost the paper
//! defers ("the computation cost problem when applying the algorithm to
//! large scale applications") and the target of the warm-start + lazy
//! kernel-cache work.
//!
//! Groups:
//!
//! * `svm_train/round` — one feedback round's solve, cold (zero alphas)
//!   vs. warm (seeded with the previous round's solution on a slightly
//!   smaller labeled set, the session steady state).
//! * `svm_train/gram` — the lazy kernel-row cache vs. the eager
//!   precomputed Gram matrix, identical arithmetic (shrinking off).
//! * `svm_train/smo` — solver cost vs. problem size and the coupled
//!   bound structure (the original scaling benches).
//! * `svm_train/session` — full multi-round session sequences through
//!   [`FeedbackLoop`] at feedback-log sizes {0, 1k, 10k}: steady-state
//!   warm rerank vs. the stateless cold ranking.
//!
//! Set `BENCH_QUICK=1` for the CI smoke subset (`round` at N=120 and
//! `gram` at N=240 only) — `tools/bench_check.sh` gates warm-vs-cold and
//! cached-vs-precomputed on those names.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lrf_cbir::{collect_log, CorelDataset, CorelSpec, QueryProtocol};
use lrf_core::{rank_candidates, FeedbackLoop, LrfConfig, QueryContext, SchemeKind};
use lrf_logdb::{LogStore, SimulationConfig};
use lrf_svm::{train, train_precomputed, train_warm, RbfKernel, SmoParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn quick() -> bool {
    std::env::var("BENCH_QUICK").is_ok()
}

fn gaussian_problem(n: usize, dims: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samples = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let y = if i % 2 == 0 { 1.0 } else { -1.0 };
        let center = y * 0.5;
        samples.push(
            (0..dims)
                .map(|_| center + rng.gen_range(-1.0..1.0))
                .collect(),
        );
        labels.push(y);
    }
    (samples, labels)
}

/// Cold vs. warm retrain of one round: the warm seed is the dual solution
/// of the *previous* round (8 fewer judgments), exactly the prefix the
/// session API threads between reranks.
fn bench_round_latency(c: &mut Criterion) {
    let sizes: &[usize] = if quick() { &[120] } else { &[60, 120, 240] };
    let mut group = c.benchmark_group("svm_train/round");
    group.sample_size(20);
    for &n in sizes {
        let (samples, labels) = gaussian_problem(n, 36, 7);
        let bounds = vec![10.0; n];
        let params = SmoParams::default();
        let kernel = RbfKernel::new(1.0 / 36.0);
        group.bench_with_input(BenchmarkId::new("cold", n), &n, |b, _| {
            b.iter(|| {
                let svm = train(
                    black_box(&samples),
                    black_box(&labels),
                    &bounds,
                    kernel,
                    &params,
                )
                .unwrap();
                black_box(svm.stats.iterations)
            })
        });
        // Previous round: the same session before its last 8 marks.
        let prev = train(
            &samples[..n - 8],
            &labels[..n - 8],
            &bounds[..n - 8],
            kernel,
            &params,
        )
        .unwrap();
        let seed = prev.alpha;
        group.bench_with_input(BenchmarkId::new("warm", n), &n, |b, _| {
            b.iter(|| {
                let svm = train_warm(
                    black_box(&samples),
                    black_box(&labels),
                    &bounds,
                    kernel,
                    &params,
                    Some(black_box(&seed)),
                )
                .unwrap();
                black_box(svm.stats.iterations)
            })
        });
    }
    group.finish();
}

/// Lazy kernel-row cache vs. the eager Gram precompute, same arithmetic
/// (shrinking off, so the two paths are bit-identical — see the
/// `lrf-svm` equivalence tests).
fn bench_gram_paths(c: &mut Criterion) {
    let sizes: &[usize] = if quick() { &[240] } else { &[120, 240] };
    let mut group = c.benchmark_group("svm_train/gram");
    group.sample_size(20);
    for &n in sizes {
        let (samples, labels) = gaussian_problem(n, 36, 9);
        let bounds = vec![10.0; n];
        let params = SmoParams {
            shrinking: false,
            ..SmoParams::default()
        };
        let kernel = RbfKernel::new(1.0 / 36.0);
        group.bench_with_input(BenchmarkId::new("precomputed", n), &n, |b, _| {
            b.iter(|| {
                let svm = train_precomputed(
                    black_box(&samples),
                    black_box(&labels),
                    &bounds,
                    kernel,
                    &params,
                )
                .unwrap();
                black_box(svm.stats.iterations)
            })
        });
        group.bench_with_input(BenchmarkId::new("cached", n), &n, |b, _| {
            b.iter(|| {
                let svm = train(
                    black_box(&samples),
                    black_box(&labels),
                    &bounds,
                    kernel,
                    &params,
                )
                .unwrap();
                black_box(svm.stats.cache_misses)
            })
        });
    }
    group.finish();
}

fn bench_smo_sizes(c: &mut Criterion) {
    if quick() {
        return;
    }
    let mut group = c.benchmark_group("smo_train");
    group.sample_size(30);
    for &n in &[20usize, 60, 120, 240] {
        let (samples, labels) = gaussian_problem(n, 36, 7);
        let bounds = vec![10.0; n];
        group.bench_with_input(BenchmarkId::new("uniform_c", n), &n, |b, _| {
            b.iter(|| {
                let svm = train(
                    black_box(&samples),
                    black_box(&labels),
                    black_box(&bounds),
                    RbfKernel::new(1.0 / 36.0),
                    &SmoParams::default(),
                )
                .unwrap();
                black_box(svm.stats.iterations)
            })
        });
    }
    group.finish();
}

fn bench_smo_mixed_bounds(c: &mut Criterion) {
    if quick() {
        return;
    }
    // The coupled-SVM shape: 20 labeled at C plus 40 unlabeled at ρ*C.
    let (samples, labels) = gaussian_problem(60, 36, 11);
    let mut bounds = vec![10.0; 20];
    bounds.extend(vec![0.005; 40]);
    c.bench_function("smo_train/coupled_shape_20l_40u", |b| {
        b.iter(|| {
            let svm = train(
                black_box(&samples),
                black_box(&labels),
                black_box(&bounds),
                RbfKernel::new(1.0 / 36.0),
                &SmoParams::default(),
            )
            .unwrap();
            black_box(svm.stats.iterations)
        })
    });
}

/// Multi-round sessions through the serving-plane API at growing log
/// sizes: warm steady-state rerank (the session's persistent WarmState
/// seeds every retrain) vs. the stateless cold ranking of the same
/// accumulated example.
fn bench_session_rounds(c: &mut Criterion) {
    if quick() {
        return;
    }
    let ds = CorelDataset::build(CorelSpec::tiny(4, 12, 19));
    let proto = QueryProtocol {
        n_queries: 1,
        n_labeled: 12,
        seed: 3,
    };
    let example = proto.feedback_example(&ds.db, 9);
    let pool: Vec<usize> = (0..ds.db.len()).collect();
    let cfg = LrfConfig::default();

    let mut group = c.benchmark_group("svm_train/session");
    group.sample_size(10);
    for &n_log in &[0usize, 1_000, 10_000] {
        let log = if n_log == 0 {
            LogStore::new(ds.db.len())
        } else {
            collect_log(
                &ds.db,
                &SimulationConfig {
                    n_sessions: n_log,
                    judged_per_session: 8,
                    rounds_per_query: 1,
                    noise: 0.1,
                    seed: 23,
                },
            )
        };
        let ctx = QueryContext {
            db: &ds.db,
            log: &log,
            example: &example,
        };
        // Steady state: the session has already trained once; every
        // subsequent rerank re-solves warm from the deposited alphas.
        let mut fb = FeedbackLoop::new(SchemeKind::Lrf2Svms, cfg, 9, ds.db.len());
        for &(id, y) in &example.labeled {
            fb.mark(id, y > 0.0).unwrap();
        }
        let _ = fb.rerank(&ds.db, &log, &pool);
        group.bench_with_input(BenchmarkId::new("warm", n_log), &n_log, |b, _| {
            b.iter(|| {
                let ranking = fb.rerank(&ds.db, &log, &pool);
                black_box(ranking.len())
            })
        });
        let scheme = SchemeKind::Lrf2Svms.build(cfg);
        group.bench_with_input(BenchmarkId::new("cold", n_log), &n_log, |b, _| {
            b.iter(|| {
                let ranking = rank_candidates(scheme.as_ref(), &ctx, &pool);
                black_box(ranking.len())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_round_latency,
    bench_gram_paths,
    bench_smo_sizes,
    bench_smo_mixed_bounds,
    bench_session_rounds
);
criterion_main!(benches);
