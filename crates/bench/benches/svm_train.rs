//! Criterion bench: SMO solver cost vs. problem size and bound structure.
//!
//! The paper defers "the computation cost problem when applying the
//! algorithm to large scale applications" to future work; these benches
//! quantify the inner QP cost that dominates a feedback round.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lrf_svm::{train, RbfKernel, SmoParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn gaussian_problem(n: usize, dims: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samples = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let y = if i % 2 == 0 { 1.0 } else { -1.0 };
        let center = y * 0.5;
        samples.push(
            (0..dims)
                .map(|_| center + rng.gen_range(-1.0..1.0))
                .collect(),
        );
        labels.push(y);
    }
    (samples, labels)
}

fn bench_smo_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("smo_train");
    group.sample_size(30);
    for &n in &[20usize, 60, 120, 240] {
        let (samples, labels) = gaussian_problem(n, 36, 7);
        let bounds = vec![10.0; n];
        group.bench_with_input(BenchmarkId::new("uniform_c", n), &n, |b, _| {
            b.iter(|| {
                let svm = train(
                    black_box(&samples),
                    black_box(&labels),
                    black_box(&bounds),
                    RbfKernel::new(1.0 / 36.0),
                    &SmoParams::default(),
                )
                .unwrap();
                black_box(svm.stats.iterations)
            })
        });
    }
    group.finish();
}

fn bench_smo_mixed_bounds(c: &mut Criterion) {
    // The coupled-SVM shape: 20 labeled at C plus 40 unlabeled at ρ*C.
    let (samples, labels) = gaussian_problem(60, 36, 11);
    let mut bounds = vec![10.0; 20];
    bounds.extend(vec![0.005; 40]);
    c.bench_function("smo_train/coupled_shape_20l_40u", |b| {
        b.iter(|| {
            let svm = train(
                black_box(&samples),
                black_box(&labels),
                black_box(&bounds),
                RbfKernel::new(1.0 / 36.0),
                &SmoParams::default(),
            )
            .unwrap();
            black_box(svm.stats.iterations)
        })
    });
}

criterion_group!(benches, bench_smo_sizes, bench_smo_mixed_bounds);
criterion_main!(benches);
