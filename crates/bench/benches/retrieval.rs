//! Criterion bench: end-to-end query latency per scheme — the figure a
//! CBIR deployment cares about ("a relevance feedback algorithm requires
//! to respond fast", §5).

use criterion::{criterion_group, criterion_main, Criterion};
use lrf_cbir::{collect_log, CorelDataset, CorelSpec, QueryProtocol};
use lrf_core::{
    EuclideanScheme, Lrf2Svms, LrfConfig, LrfCsvm, QueryContext, RelevanceFeedback, RfSvm,
};
use lrf_logdb::SimulationConfig;
use std::hint::black_box;

fn bench_schemes(c: &mut Criterion) {
    // A mid-size database (10 × 50) keeps bench wall time reasonable while
    // exercising the full scoring path.
    let ds = CorelDataset::build(CorelSpec::tiny(10, 50, 77));
    let log = collect_log(
        &ds.db,
        &SimulationConfig {
            n_sessions: 80,
            judged_per_session: 20,
            rounds_per_query: 3,
            noise: 0.1,
            seed: 3,
        },
    );
    let protocol = QueryProtocol {
        n_queries: 1,
        n_labeled: 20,
        seed: 1,
    };
    let example = protocol.feedback_example(&ds.db, 123);
    let ctx = QueryContext {
        db: &ds.db,
        log: &log,
        example: &example,
    };

    let config = LrfConfig::default();
    let mut group = c.benchmark_group("retrieval_500img");
    group.sample_size(20);
    group.bench_function("euclidean", |b| {
        b.iter(|| black_box(EuclideanScheme.rank(black_box(&ctx))))
    });
    let rf = RfSvm::new(config);
    group.bench_function("rf_svm", |b| b.iter(|| black_box(rf.rank(black_box(&ctx)))));
    let two = Lrf2Svms::new(config);
    group.bench_function("lrf_2svms", |b| {
        b.iter(|| black_box(two.rank(black_box(&ctx))))
    });
    let csvm = LrfCsvm::new(config);
    group.bench_function("lrf_csvm", |b| {
        b.iter(|| black_box(csvm.rank(black_box(&ctx))))
    });
    group.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
