//! Criterion bench: the durable flush path.
//!
//! Measures the complete close-path session (open → judge → close) with
//! the flush landing (a) in the in-memory log only — the volatile
//! baseline — and (b) through the checksummed WAL on `MemIo` with an
//! fsync before the acknowledgement. `tools/bench_check.sh` gates CI on
//! the durable path staying within the documented margin of the
//! volatile one (`WAL_MARGIN_PCT`): durability must stay a bounded tax
//! on the ack, not a rewrite of the latency budget.
//!
//! Also reports the service's own `stage_durable_flush_ns` percentiles
//! in the `bench … ns/iter` line format, so the flush-durability stage
//! lands in BENCH_latency.json next to the other stage latencies.
//!
//! Set `BENCH_QUICK=1` for the CI smoke configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use lrf_cbir::{build_flat_index, collect_log, CorelDataset, CorelSpec};
use lrf_core::{LrfConfig, SchemeKind};
use lrf_logdb::SimulationConfig;
use lrf_service::{DurabilityConfig, Request, Response, Service, ServiceConfig};
use lrf_storage::MemIo;
use std::hint::black_box;
use std::path::Path;

fn quick() -> bool {
    std::env::var("BENCH_QUICK").is_ok()
}

fn build_corpus() -> (lrf_cbir::ImageDatabase, lrf_logdb::LogStore) {
    let (categories, per_category) = if quick() { (4, 12) } else { (8, 40) };
    let ds = CorelDataset::build(CorelSpec::tiny(categories, per_category, 19));
    let log = collect_log(
        &ds.db,
        &SimulationConfig {
            n_sessions: 30,
            judged_per_session: 10,
            rounds_per_query: 2,
            noise: 0.1,
            seed: 23,
        },
    );
    (ds.db, log)
}

fn service_config() -> ServiceConfig {
    ServiceConfig {
        max_sessions: 256,
        ttl_requests: 0,
        screen_size: 10,
        pool_size: 60,
        lrf: LrfConfig {
            n_unlabeled: 8,
            ..LrfConfig::default()
        },
    }
}

fn durable_service(db: lrf_cbir::ImageDatabase, log: lrf_logdb::LogStore) -> Service {
    let index = Box::new(build_flat_index(&db));
    let (svc, _) = Service::with_durability(
        db,
        index,
        MemIo::io_ref(),
        Path::new("/srv/feedback-wal"),
        log,
        service_config(),
        DurabilityConfig {
            // Auto-compaction rewrites a full snapshot every N segments —
            // an amortized cost that would spike individual samples. Off
            // here so every iteration pays the same per-close WAL price.
            compact_segments: 0,
            ..DurabilityConfig::default()
        },
    )
    .expect("durable service over a fresh MemIo must open");
    svc
}

/// The close-path session: open, judge the screen, close. No rerank —
/// the retrain would dwarf the flush this bench isolates.
fn run_session(svc: &Service, query: usize) -> usize {
    let Response::Opened { session, screen } = svc.handle(Request::Open {
        query,
        scheme: SchemeKind::RfSvm,
    }) else {
        panic!("open failed")
    };
    for &id in &screen {
        svc.handle(Request::Mark {
            session,
            image: id,
            relevant: svc.db().same_category(id, query),
        });
    }
    match svc.handle(Request::Close { session }) {
        Response::Closed { log_session, .. } => log_session.unwrap_or(0),
        other => panic!("close failed: {other:?}"),
    }
}

/// `stage_durable_flush_ns` percentiles from a driven durable service,
/// printed for BENCH_latency.json.
fn report_flush_durability_percentiles() {
    let (db, log) = build_corpus();
    let n_images = db.len();
    let svc = durable_service(db, log);
    let sessions = if quick() { 8 } else { 32 };
    for i in 0..sessions {
        run_session(&svc, (i * 17 + 3) % n_images);
    }
    let snapshot = svc.metrics_snapshot();
    let h = snapshot
        .histogram("stage_durable_flush_ns")
        .expect("durable flush histogram registered");
    for (q, q_label) in [(0.50, "p50"), (0.95, "p95"), (0.99, "p99")] {
        println!(
            "bench {:<40} {:>14} ns/iter",
            format!("service_latency/flush_durability/{q_label}"),
            h.quantile(q)
        );
    }
}

fn bench_wal_flush(c: &mut Criterion) {
    // One prebuilt service per side; the measured unit is the session
    // loop alone, so the comparison isolates what durability adds to the
    // close path (WAL framing + checksum + fsync on MemIo) rather than
    // re-measuring service construction and WAL seeding every iteration.
    // Both sides' logs grow as iterations flush — symmetrically, and the
    // close path is O(session), not O(log), so samples stay comparable.
    let (db, log) = build_corpus();
    let n = if quick() { 4 } else { 12 };
    let n_images = db.len();
    let queries: Vec<usize> = (0..n).map(|i| (i * 17 + 3) % n_images).collect();
    let mut group = c.benchmark_group("wal_flush");
    group.sample_size(10);
    let volatile = Service::new(db.clone(), log.clone(), service_config());
    group.bench_function("volatile", |b| {
        b.iter(|| {
            let total: usize = queries.iter().map(|&q| run_session(&volatile, q)).sum();
            black_box(total)
        })
    });
    let durable = durable_service(db, log);
    group.bench_function("durable", |b| {
        b.iter(|| {
            let total: usize = queries.iter().map(|&q| run_session(&durable, q)).sum();
            black_box(total)
        })
    });
    group.finish();
    report_flush_durability_percentiles();
}

criterion_group!(benches, bench_wal_flush);
criterion_main!(benches);
