//! ANN backend shoot-out: recall@20 vs. queries/sec across collection
//! sizes.
//!
//! For each `N ∈ {2k, 20k, 200k}` synthetic 36-D images (clustered, like
//! real feature corpora), this bench prints each backend's recall@20
//! against exact search and times a single query. The flat scan is the
//! exact baseline; IVF and LSH should hold recall ≥ ~0.9 while doing a
//! fraction of its distance work — the gap widens with `N`, which is the
//! whole argument for the index subsystem.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lrf_index::{AnnIndex, FlatIndex, IvfConfig, IvfIndex, LshConfig, LshIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const DIM: usize = 36;
const K: usize = 20;
const N_QUERIES: usize = 32;

/// Clustered synthetic features: cluster centers in [-1,1]^dim with ±0.12
/// jitter (roughly the spread of the synthetic COREL corpus after
/// normalization).
fn clustered(n: usize, seed: u64) -> Vec<f64> {
    let n_clusters = (n as f64).sqrt() as usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<f64> = (0..n_clusters * DIM)
        .map(|_| rng.gen_range(-1.0f64..1.0))
        .collect();
    let mut data = Vec::with_capacity(n * DIM);
    for i in 0..n {
        let c = i % n_clusters;
        for d in 0..DIM {
            data.push(centers[c * DIM + d] + rng.gen_range(-0.12..0.12));
        }
    }
    data
}

fn queries(data: &[f64], n: usize) -> Vec<Vec<f64>> {
    (0..N_QUERIES)
        .map(|q| {
            let id = (q * 8117) % n;
            data[id * DIM..(id + 1) * DIM].to_vec()
        })
        .collect()
}

fn report_recall(name: &str, n: usize, index: &dyn AnnIndex, flat: &FlatIndex, qs: &[Vec<f64>]) {
    let mut total_recall = 0.0;
    let mut total_evals = 0usize;
    for q in qs {
        let exact = flat.search(q, K);
        let (approx, stats) = index.search_with_stats(q, K);
        total_recall += lrf_index::recall(&exact, &approx);
        total_evals += stats.distance_evals;
    }
    println!(
        "ann_index/n={n} {name}: recall@{K} = {:.3}, mean distance evals = {} ({:.1}% of N)",
        total_recall / qs.len() as f64,
        total_evals / qs.len(),
        100.0 * total_evals as f64 / (qs.len() * n) as f64,
    );
}

fn bench_backends(c: &mut Criterion) {
    for &n in &[2_000usize, 20_000, 200_000] {
        let data = clustered(n, 0xA11_5EED ^ n as u64);
        let flat = FlatIndex::build(&data, DIM);
        let ivf = IvfIndex::build(
            &data,
            DIM,
            &IvfConfig {
                nlist: (n as f64).sqrt() as usize,
                nprobe: ((n as f64).sqrt() as usize / 8).max(4),
                max_iters: 8,
                ..Default::default()
            },
        );
        let lsh = LshIndex::build(
            &data,
            DIM,
            &LshConfig {
                n_tables: 10,
                n_bits: ((n as f64).log2() as usize).saturating_sub(4).clamp(8, 20),
                probes: 8,
                ..Default::default()
            },
        );
        let qs = queries(&data, n);

        report_recall("ivf", n, &ivf, &flat, &qs);
        report_recall("lsh", n, &lsh, &flat, &qs);

        let mut group = c.benchmark_group(format!("ann_search/n={n}"));
        group.sample_size(10);
        let backends: [(&str, &dyn AnnIndex); 3] = [("flat", &flat), ("ivf", &ivf), ("lsh", &lsh)];
        for (name, index) in backends {
            group.bench_with_input(BenchmarkId::new(name, n), &qs, |b, qs| {
                let mut i = 0usize;
                b.iter(|| {
                    i = (i + 1) % qs.len();
                    black_box(index.search(black_box(&qs[i]), K))
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
