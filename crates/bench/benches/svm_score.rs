//! Criterion bench: full-database `SVM_Dist` scoring — the per-round hot
//! path of every SVM-based relevance-feedback scheme.
//!
//! Compares the serial per-sample `decision` loop (the pre-refactor path)
//! against the parallel `decision_batch_rows` scan over the flat feature
//! matrix, across database sizes N and support-set sizes n_sv. The
//! measured numbers seed `BENCH_scoring.json` at the repo root.
//!
//! Set `BENCH_QUICK=1` to restrict to the smallest N (the CI smoke run).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lrf_svm::{RbfKernel, SvmModel};
use std::hint::black_box;

const DIM: usize = 36;

/// Deterministic pseudo-random row-major matrix (no RNG needed).
fn waves(n: usize, phase: f64) -> Vec<f64> {
    (0..n * DIM)
        .map(|i| ((i as f64) * 0.1371 + phase).sin())
        .collect()
}

fn model(n_sv: usize) -> SvmModel<[f64], RbfKernel> {
    let svs: Vec<Vec<f64>> = waves(n_sv, 0.77).chunks(DIM).map(<[f64]>::to_vec).collect();
    let coefs: Vec<f64> = (0..n_sv)
        .map(|i| if i % 2 == 0 { 0.8 } else { -1.1 })
        .collect();
    SvmModel::from_parts(RbfKernel::new(1.0 / DIM as f64), svs, coefs, -0.1)
}

fn sizes() -> Vec<usize> {
    if std::env::var("BENCH_QUICK").is_ok() {
        vec![2_000]
    } else {
        vec![2_000, 20_000, 200_000]
    }
}

fn bench_full_db_scoring(c: &mut Criterion) {
    for &n_sv in &[8usize, 64] {
        let m = model(n_sv);
        let mut group = c.benchmark_group(format!("svm_score/nsv{n_sv}"));
        group.sample_size(10);
        for &n in &sizes() {
            let data = waves(n, 3.3);
            group.bench_with_input(BenchmarkId::new("serial", n), &n, |b, _| {
                b.iter(|| {
                    let scores: Vec<f64> = black_box(&data)
                        .chunks_exact(DIM)
                        .map(|row| m.decision(row))
                        .collect();
                    black_box(scores.len())
                })
            });
            group.bench_with_input(BenchmarkId::new("batch", n), &n, |b, _| {
                b.iter(|| {
                    let scores = m.decision_batch_rows(black_box(&data), DIM);
                    black_box(scores.len())
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_full_db_scoring);
criterion_main!(benches);
