//! Model-checked invariants of [`SharedLogStore`]'s copy-on-write cell.
//!
//! Each test runs its closure under the vendored loom-style checker, which
//! explores every interleaving of the instrumented lock/`Arc` operations
//! within a bounded-preemption schedule space (see `crates/vendor/loom`).
//! The third workspace concurrency invariant lives here: **copy-on-write
//! readers never observe torn log state** — a snapshot is one consistent
//! store, frozen at acquisition, no matter how appends race it.

use lrf_logdb::{LogSession, Relevance, SharedLogStore};
use lrf_sync::Arc;

fn session(pairs: &[(usize, bool)]) -> LogSession {
    LogSession::new(
        pairs
            .iter()
            .map(|&(id, r)| (id, Relevance::from_bool(r)))
            .collect(),
    )
}

/// A snapshot acquired while an appender races is internally consistent:
/// its session count and its matrix agree, and neither moves while the
/// snapshot is held — even as the live store advances underneath.
#[test]
fn snapshots_are_never_torn_by_racing_appends() {
    let report = loom::explore(|| {
        let shared = Arc::new(SharedLogStore::new(4));
        shared.record(session(&[(0, true)]));
        let appender = {
            let shared = Arc::clone(&shared);
            loom::thread::spawn(move || {
                shared.record(session(&[(1, true), (2, false)]));
            })
        };
        // Reader: the snapshot must be exactly the 1-session store or
        // exactly the 2-session store — nothing in between or mixed.
        let snap = shared.snapshot();
        let n = snap.n_sessions();
        assert!(n == 1 || n == 2, "torn session count: {n}");
        assert_eq!(snap.entry(0, 0), 1.0, "prefix session lost");
        if n == 2 {
            assert_eq!(snap.entry(1, 1), 1.0, "appended session half-visible");
            assert_eq!(snap.entry(2, 1), -1.0, "appended session half-visible");
        } else {
            assert!(snap.log_vector(1).is_empty());
        }
        // Frozen: the held snapshot must not advance when the append
        // lands after it was taken.
        appender.join().unwrap();
        assert_eq!(snap.n_sessions(), n, "snapshot advanced while held");
        assert_eq!(shared.snapshot().n_sessions(), 2);
    })
    .expect("copy-on-write snapshots must never tear");
    assert!(report.executions > 1);
}

/// Two appenders racing each other: the append mutex must serialize the
/// clone-and-swap so neither session is lost, whether either append went
/// in-place or through the copy path.
#[test]
fn racing_appends_lose_no_session() {
    loom::explore(|| {
        let shared = Arc::new(SharedLogStore::new(4));
        // Holding a snapshot forces at least one append onto the
        // clone-outside-the-lock path, the protocol's delicate half.
        let held = shared.snapshot();
        let appender = {
            let shared = Arc::clone(&shared);
            loom::thread::spawn(move || shared.record(session(&[(1, true)])))
        };
        shared.record(session(&[(2, false)]));
        appender.join().unwrap();
        drop(held);
        assert_eq!(shared.n_sessions(), 2, "an append was lost");
        // Both sessions' judgments are present regardless of arrival
        // order.
        let snap = shared.snapshot();
        assert_eq!(snap.log_vector(1).nnz(), 1);
        assert_eq!(snap.log_vector(2).nnz(), 1);
    })
    .expect("the append mutex must serialize clone-and-swap appends");
}
