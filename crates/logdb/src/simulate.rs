//! Simulated collection of user feedback logs.
//!
//! **Substitution notice (DESIGN.md §3).** The paper collected 150 log
//! sessions per dataset from real users of the authors' CBIR system:
//!
//! > "For each participant user, he or she first specifies a query example
//! > and submits it to the CBIR system. The CBIR system returns 20 initial
//! > similar images to the user according the measurement of low-level
//! > visual features of image content. The user then employs the relevance
//! > feedback tool to improve the retrieval performance. ... When a
//! > relevance feedback round is finished, the information of user feedback
//! > will be logged into a log database. Each relevance feedback round
//! > corresponds to a log session unit."
//!
//! Crucially, a *user interaction* spans **multiple feedback rounds**: the
//! first screen is the content-based top-20, every further screen comes
//! from the system's refined ranking. This module reproduces that loop with
//! simulated users:
//!
//! 1. a query image is drawn uniformly at random;
//! 2. for each round, the **caller-provided retrieval function** maps the
//!    judgments accumulated so far to the next screen of `N_l` images
//!    (round 0 receives an empty accumulation → the initial content
//!    ranking; later rounds let the caller run its relevance-feedback
//!    refinement);
//! 3. each returned image is judged relevant iff it shares the query's
//!    ground-truth category, then the judgment is **flipped with
//!    probability `noise`** — the paper's user-subjectivity model ("a
//!    certain amount of noise is inevitable");
//! 4. every round is recorded as its own log session, exactly as the
//!    paper's log database does.
//!
//! The retrieval function is injected so this crate stays independent of
//! the retrieval/learning stack; `lrf-cbir` wires a pure content ranker and
//! `lrf-core` wires the full RF-SVM refinement loop.

use crate::session::{LogSession, Relevance};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the simulated collection.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Total number of sessions to collect (the paper: 150 per dataset).
    /// Sessions group into user interactions of `rounds_per_query` rounds.
    pub n_sessions: usize,
    /// Images judged per session (the paper: 20).
    pub judged_per_session: usize,
    /// Feedback rounds per user query. The collection stops mid-interaction
    /// when `n_sessions` is reached, so `n_sessions` need not be a multiple.
    pub rounds_per_query: usize,
    /// Probability that a judgment is flipped (user subjectivity noise).
    pub noise: f64,
    /// RNG seed: collections are deterministic per seed.
    pub seed: u64,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        Self {
            n_sessions: 150,
            judged_per_session: 20,
            rounds_per_query: 3,
            noise: 0.1,
            seed: 0xfeed,
        }
    }
}

/// Runs the simulated collection.
///
/// * `categories[i]` — ground-truth category of image `i` (drives the
///   simulated judgment).
/// * `next_screen(query, judged_so_far, k)` — the CBIR system's next result
///   screen for the interaction: `judged_so_far` holds every judgment the
///   simulated user has made for this query (empty on the first round).
///   Implementations choose their presentation policy: re-present the
///   refined top-`k` (confirmed positives reappear and are re-marked, as in
///   the paper's system) or exclude judged images ("show me more"). Ids out
///   of range are rejected.
///
/// Returns the collected sessions in collection order.
///
/// # Panics
/// Panics if `categories` is empty, `noise ∉ [0, 1]`,
/// `rounds_per_query == 0`, or the retrieval function returns an id out of
/// range.
pub fn simulate_sessions(
    config: &SimulationConfig,
    categories: &[usize],
    mut next_screen: impl FnMut(usize, &[(usize, Relevance)], usize) -> Vec<usize>,
) -> Vec<LogSession> {
    assert!(!categories.is_empty(), "need a nonempty image database");
    assert!(
        (0.0..=1.0).contains(&config.noise),
        "noise must be a probability, got {}",
        config.noise
    );
    assert!(
        config.rounds_per_query > 0,
        "need at least one round per query"
    );
    let n_images = categories.len();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut sessions = Vec::with_capacity(config.n_sessions);

    'collection: loop {
        let query = rng.gen_range(0..n_images);
        let query_cat = categories[query];
        let mut judged: Vec<(usize, Relevance)> = Vec::new();

        for _round in 0..config.rounds_per_query {
            if sessions.len() >= config.n_sessions {
                break 'collection;
            }
            let screen = next_screen(query, &judged, config.judged_per_session);
            if screen.is_empty() {
                // Database exhausted for this interaction; move on.
                break;
            }
            let judgments: Vec<(usize, Relevance)> = screen
                .into_iter()
                .map(|image_id| {
                    assert!(
                        image_id < n_images,
                        "retrieval returned unknown image {image_id}"
                    );
                    let truly_relevant = categories[image_id] == query_cat;
                    let flipped = rng.gen_bool(config.noise);
                    (image_id, Relevance::from_bool(truly_relevant != flipped))
                })
                .collect();
            judged.extend(judgments.iter().copied());
            sessions.push(LogSession::new(judgments));
        }
        if sessions.len() >= config.n_sessions {
            break;
        }
    }
    sessions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::LogStore;

    /// A toy "retrieval system": returns the k unjudged images nearest in
    /// id space (ids of one category are contiguous, so this mimics a
    /// decent content ranker with a show-me-more policy).
    fn toy_next_screen(
        query: usize,
        judged: &[(usize, Relevance)],
        k: usize,
        n: usize,
    ) -> Vec<usize> {
        let seen: std::collections::HashSet<usize> = judged.iter().map(|&(id, _)| id).collect();
        let mut ids: Vec<usize> = (0..n).filter(|id| !seen.contains(id)).collect();
        ids.sort_by_key(|&i| (i as isize - query as isize).unsigned_abs());
        ids.truncate(k);
        ids
    }

    fn categories(n_cat: usize, per_cat: usize) -> Vec<usize> {
        (0..n_cat * per_cat).map(|i| i / per_cat).collect()
    }

    fn cfg(n_sessions: usize, k: usize, rounds: usize, noise: f64, seed: u64) -> SimulationConfig {
        SimulationConfig {
            n_sessions,
            judged_per_session: k,
            rounds_per_query: rounds,
            noise,
            seed,
        }
    }

    #[test]
    fn collection_is_deterministic() {
        let cats = categories(4, 10);
        let c = cfg(7, 5, 2, 0.2, 3);
        let a = simulate_sessions(&c, &cats, |q, j, k| toy_next_screen(q, j, k, cats.len()));
        let b = simulate_sessions(&c, &cats, |q, j, k| toy_next_screen(q, j, k, cats.len()));
        assert_eq!(a, b);
    }

    #[test]
    fn session_counts_match_config() {
        let cats = categories(3, 20);
        let c = cfg(12, 6, 3, 0.0, 1);
        let sessions = simulate_sessions(&c, &cats, |q, j, k| toy_next_screen(q, j, k, cats.len()));
        assert_eq!(sessions.len(), 12);
        assert!(sessions.iter().all(|s| s.len() == 6));
    }

    #[test]
    fn rounds_accumulate_without_rejudging() {
        // Within one interaction, later rounds never repeat an image the
        // user already judged (the closure excludes them); all rounds of an
        // interaction share the query category for their relevant marks.
        let cats = categories(2, 30);
        let c = cfg(4, 8, 2, 0.0, 5);
        let mut interaction_screens: Vec<(usize, Vec<usize>)> = Vec::new();
        let sessions = simulate_sessions(&c, &cats, |q, j, k| {
            let screen = toy_next_screen(q, j, k, cats.len());
            interaction_screens.push((q, screen.clone()));
            screen
        });
        assert_eq!(sessions.len(), 4);
        // sessions 0,1 belong to query A; 2,3 to query B (2 rounds each)
        let (q0, ref s0) = interaction_screens[0];
        let (q1, ref s1) = interaction_screens[1];
        assert_eq!(q0, q1, "rounds of one interaction share the query");
        assert!(
            s0.iter().all(|id| !s1.contains(id)),
            "round 2 must show fresh images"
        );
    }

    #[test]
    fn noise_free_judgments_match_ground_truth() {
        let cats = categories(2, 20);
        let c = cfg(10, 8, 2, 0.0, 5);
        let mut queries = Vec::new();
        let sessions = simulate_sessions(&c, &cats, |q, j, k| {
            if j.is_empty() {
                queries.push(q);
            }
            toy_next_screen(q, j, k, cats.len())
        });
        let mut qi = 0;
        let mut round = 0;
        for s in &sessions {
            let q = queries[qi];
            for (id, r) in s.iter() {
                assert_eq!(r, Relevance::from_bool(cats[id] == cats[q]));
            }
            round += 1;
            if round == c.rounds_per_query {
                round = 0;
                qi += 1;
            }
        }
    }

    #[test]
    fn full_noise_inverts_judgments() {
        let cats = categories(2, 10);
        let c = cfg(5, 6, 1, 1.0, 9);
        let mut queries = Vec::new();
        let sessions = simulate_sessions(&c, &cats, |q, j, k| {
            if j.is_empty() {
                queries.push(q);
            }
            toy_next_screen(q, j, k, cats.len())
        });
        for (s, &q) in sessions.iter().zip(&queries) {
            for (id, r) in s.iter() {
                let truly_relevant = cats[id] == cats[q];
                assert_eq!(
                    r,
                    Relevance::from_bool(!truly_relevant),
                    "noise=1 must invert the judgment of image {id}"
                );
            }
        }
    }

    #[test]
    fn moderate_noise_flips_roughly_expected_fraction() {
        let cats = categories(2, 100);
        let clean = cfg(50, 20, 1, 0.0, 42);
        let noisy = SimulationConfig {
            noise: 0.1,
            ..clean
        };
        let a = simulate_sessions(&clean, &cats, |q, j, k| {
            toy_next_screen(q, j, k, cats.len())
        });
        let b = simulate_sessions(&noisy, &cats, |q, j, k| {
            toy_next_screen(q, j, k, cats.len())
        });
        let mut flips = 0usize;
        let mut total = 0usize;
        for (cs, ns) in a.iter().zip(&b) {
            for ((_, r_c), (_, r_n)) in cs.iter().zip(ns.iter()) {
                total += 1;
                if r_c != r_n {
                    flips += 1;
                }
            }
        }
        let rate = flips as f64 / total as f64;
        assert!((0.05..=0.16).contains(&rate), "flip rate {rate}");
    }

    #[test]
    fn exhausted_database_ends_interaction_gracefully() {
        // 10-image database, 8 judged per round: round 2 has only 2 left,
        // round 3 none — the interaction ends early but collection
        // continues with new queries until n_sessions is reached.
        let cats = categories(1, 10);
        let c = cfg(6, 8, 5, 0.0, 2);
        let sessions = simulate_sessions(&c, &cats, |q, j, k| toy_next_screen(q, j, k, cats.len()));
        assert_eq!(sessions.len(), 6);
        // sessions alternate sizes 8, 2, 8, 2, ... (fresh query each time
        // the pool empties)
        assert_eq!(sessions[0].len(), 8);
        assert_eq!(sessions[1].len(), 2);
    }

    #[test]
    fn sessions_feed_the_store() {
        let cats = categories(3, 10);
        let c = cfg(10, 5, 2, 0.1, 7);
        let sessions = simulate_sessions(&c, &cats, |q, j, k| toy_next_screen(q, j, k, cats.len()));
        let mut store = LogStore::new(cats.len());
        for s in sessions {
            store.record(s);
        }
        assert_eq!(store.n_sessions(), 10);
        assert!(store.n_judged_images() > 0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_noise_rejected() {
        let cats = categories(2, 4);
        let c = SimulationConfig {
            noise: 1.5,
            ..Default::default()
        };
        let _ = simulate_sessions(&c, &cats, |q, j, k| toy_next_screen(q, j, k, cats.len()));
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_rejected() {
        let cats = categories(2, 4);
        let c = SimulationConfig {
            rounds_per_query: 0,
            ..Default::default()
        };
        let _ = simulate_sessions(&c, &cats, |q, j, k| toy_next_screen(q, j, k, cats.len()));
    }
}
