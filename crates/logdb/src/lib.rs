//! # lrf-logdb — the user feedback log database
//!
//! Section 2 of the paper organizes historical relevance feedback as a
//! **relevance matrix** `R`: "each column corresponds to an image in the
//! image database and each row represents a user log session in the log
//! database. Each element r_{i,j} indicates the relevance judgement made
//! about the i-th image during the j-th user log session ('+1' and '−1'
//! for relevant and irrelevant, and '0' for unknown)."
//!
//! This crate is that database:
//!
//! * [`session::LogSession`] — one feedback round: the judged image ids and
//!   their ±1 marks.
//! * [`store::LogStore`] — the append-only session store, maintaining the
//!   column-sparse view: per image, a sparse **log vector** `r_i` over
//!   session ids. Dimension `M` = number of sessions grows as feedback is
//!   collected, exactly as a deployed CBIR system would accumulate it.
//! * [`sparse::SparseVector`] — the sparse vector type with the dot/norm
//!   operations the log-side SVM kernel needs.
//! * [`simulate`] — the **substitution for the paper's human log
//!   collection** (150 sessions gathered from real users): simulated users
//!   judge the top-20 of a content-based ranking by ground-truth category
//!   with an injectable mislabel (noise) probability. See DESIGN.md §3.
//! * [`persist`] — JSON round-tripping of the store (a real deployment
//!   keeps its log database on disk), crash-safe via atomic temp+fsync+
//!   rename publication.
//! * [`shared`] — the concurrent wrapper: snapshot reads + `&self` appends
//!   (copy-on-write), so a serving plane can flush completed sessions
//!   without stalling queries that are training on the log.
//! * [`wal`] — the judgment WAL: checksummed, fsynced, incremental
//!   session appends with snapshot compaction, so acknowledged feedback
//!   survives a crash without whole-store rewrites.
//! * [`durable`] — [`durable::DurableLogStore`], uniting [`shared`] and
//!   [`wal`]: WAL-first recording, spill backfill, compaction.

pub mod durable;
pub mod persist;
pub mod session;
pub mod shared;
pub mod simulate;
pub mod sparse;
pub mod store;
pub mod wal;

pub use durable::{DurableLogStore, DurableRecovery};
pub use session::{LogSession, Relevance};
pub use shared::{LogStoreCounters, SharedLogStore};
pub use simulate::{simulate_sessions, SimulationConfig};
pub use sparse::SparseVector;
pub use store::LogStore;
pub use wal::{JudgmentWal, WalError, WalRecoveryReport};
