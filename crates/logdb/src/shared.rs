//! Concurrent access to the log store: snapshot reads, `&self` appends.
//!
//! [`LogStore::record`] requires `&mut self`, which is the right contract
//! for a single-owner store but wrong for a serving plane: a feedback
//! service flushing a completed session must not stall the queries that are
//! concurrently training on the log. [`SharedLogStore`] wraps the store in
//! a copy-on-write cell:
//!
//! * **Readers** ([`SharedLogStore::snapshot`]) clone an [`Arc`] under a
//!   read lock held for nanoseconds, then use the snapshot lock-free for as
//!   long as they like (a whole coupled-SVM retrain, typically). A reader
//!   never waits on a flush and a flush never waits on a reader.
//! * **Appenders** ([`SharedLogStore::record`]) serialize among themselves
//!   on a separate append mutex. When no snapshot is outstanding the
//!   append is in-place and O(session); when readers hold snapshots the
//!   store is cloned **outside** the reader-facing lock — the `RwLock` is
//!   only ever held for an `Arc` clone or pointer swap, so a flush can
//!   never stall a `snapshot()` call for the duration of the copy. The
//!   append cost is paid by the (rare) flush path, never by the (hot)
//!   query path.
//!
//! Snapshots are immutable: a session recorded after a snapshot was taken
//! is invisible to it, exactly the semantics a retrieval round wants (one
//! consistent log for the whole round).

use crate::session::LogSession;
use crate::store::LogStore;
use lrf_obs::Counter;
use lrf_sync::{Arc, Mutex, MutexExt, PoisonError, RwLock, RwLockExt};

/// An interior-locked, copy-on-write [`LogStore`] for concurrent services.
#[derive(Debug)]
pub struct SharedLogStore {
    /// The live store. Readers and writers hold this lock only for an
    /// `Arc` clone / pointer swap (nanoseconds) — never for a data copy.
    inner: RwLock<Arc<LogStore>>,
    /// Serializes appenders so a clone-and-swap cannot lose a concurrent
    /// append (two appenders cloning the same base would drop one
    /// session).
    append: Mutex<()>,
    /// Event counters behind `Arc` handles so a service can adopt them
    /// into its `lrf_obs::Registry` (see [`SharedLogStore::counters`]).
    snapshots: Arc<Counter>,
    appends: Arc<Counter>,
    cow_clones: Arc<Counter>,
}

/// Shared handles to a [`SharedLogStore`]'s internal event counters, for
/// adoption into an [`lrf_obs::Registry`] — the store counts, the
/// registry reports.
#[derive(Clone, Debug)]
pub struct LogStoreCounters {
    /// `snapshot()` calls served (one per retrieval round, plus the
    /// store's own reads).
    pub snapshots: Arc<Counter>,
    /// Sessions appended via `record()`.
    pub appends: Arc<Counter>,
    /// Appends that had to copy the store because snapshots were
    /// outstanding (the slow, flush-path-only case).
    pub cow_clones: Arc<Counter>,
}

impl SharedLogStore {
    /// Creates an empty shared store over `n_images` images.
    ///
    /// # Panics
    /// Panics if `n_images == 0` (see [`LogStore::new`]).
    pub fn new(n_images: usize) -> Self {
        Self::from_store(LogStore::new(n_images))
    }

    /// Wraps an existing store (e.g. a log loaded from disk).
    pub fn from_store(store: LogStore) -> Self {
        Self {
            inner: RwLock::new(Arc::new(store)),
            append: Mutex::new(()),
            snapshots: Arc::new(Counter::new()),
            appends: Arc::new(Counter::new()),
            cow_clones: Arc::new(Counter::new()),
        }
    }

    /// Handles to the store's event counters (snapshots, appends,
    /// copy-on-write clones). The handles stay live for the store's
    /// lifetime; adopt them into a registry to expose them.
    pub fn counters(&self) -> LogStoreCounters {
        LogStoreCounters {
            snapshots: Arc::clone(&self.snapshots),
            appends: Arc::clone(&self.appends),
            cow_clones: Arc::clone(&self.cow_clones),
        }
    }

    /// A frozen, lock-free view of the store as of now. Cheap (one `Arc`
    /// clone); hold it for the duration of a retrieval round.
    ///
    /// Lock poisoning is recovered from, not propagated: the copy-on-write
    /// protocol only ever publishes fully-built stores (the swap is a
    /// pointer assignment), so even a poisoned cell holds a valid store.
    pub fn snapshot(&self) -> Arc<LogStore> {
        self.snapshots.inc();
        Arc::clone(&self.inner.read_recover())
    }

    /// Appends a session without exclusive access from the caller's side;
    /// returns the new session id. Outstanding snapshots are unaffected,
    /// and concurrent `snapshot()` calls are never blocked for longer
    /// than a pointer swap, even when the append has to copy the store.
    pub fn record(&self, session: LogSession) -> usize {
        let _appender = self.append.lock_recover();
        self.appends.inc();
        {
            let mut guard = self.inner.write_recover();
            // No snapshot outstanding (`guard` holds the only Arc): mutate
            // in place, O(session), lock held only that long.
            if let Some(store) = Arc::get_mut(&mut guard) {
                return store.record(session);
            }
        }
        // Snapshots outstanding: copy the store without holding the
        // reader-facing lock (the append mutex keeps this base current —
        // no other appender can swap underneath us).
        self.cow_clones.inc();
        let base = self.snapshot();
        let mut next = (*base).clone();
        drop(base);
        let id = next.record(session);
        *self.inner.write_recover() = Arc::new(next);
        id
    }

    /// Number of recorded sessions (in the live store, not any snapshot).
    pub fn n_sessions(&self) -> usize {
        self.snapshot().n_sessions()
    }

    /// Number of images the store covers.
    pub fn n_images(&self) -> usize {
        self.snapshot().n_images()
    }

    /// Extracts the current store, consuming the wrapper (end of serving:
    /// persist the accumulated log). Clones only if snapshots still exist.
    pub fn into_store(self) -> LogStore {
        let arc = self
            .inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        Arc::try_unwrap(arc).unwrap_or_else(|shared| (*shared).clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Relevance;

    fn session(pairs: &[(usize, bool)]) -> LogSession {
        LogSession::new(
            pairs
                .iter()
                .map(|&(id, r)| (id, Relevance::from_bool(r)))
                .collect(),
        )
    }

    #[test]
    fn record_through_shared_reference() {
        let shared = SharedLogStore::new(8);
        let s0 = shared.record(session(&[(0, true), (3, false)]));
        let s1 = shared.record(session(&[(3, true)]));
        assert_eq!((s0, s1), (0, 1));
        assert_eq!(shared.n_sessions(), 2);
        assert_eq!(shared.n_images(), 8);
        assert_eq!(shared.snapshot().entry(3, 1), 1.0);
    }

    #[test]
    fn snapshots_are_frozen_while_appends_continue() {
        let shared = SharedLogStore::new(4);
        shared.record(session(&[(0, true)]));
        let snap = shared.snapshot();
        shared.record(session(&[(1, true)]));
        shared.record(session(&[(2, false)]));
        // The snapshot still sees one session; the live store sees three.
        assert_eq!(snap.n_sessions(), 1);
        assert_eq!(shared.n_sessions(), 3);
        assert!(snap.log_vector(1).is_empty());
        assert_eq!(shared.snapshot().log_vector(1).nnz(), 1);
    }

    #[test]
    fn appends_without_snapshots_do_not_clone() {
        let shared = SharedLogStore::new(4);
        let before = Arc::as_ptr(&shared.snapshot());
        // No snapshot outstanding now — the append mutates in place.
        shared.record(session(&[(0, true)]));
        let after = Arc::as_ptr(&shared.snapshot());
        assert_eq!(before, after, "in-place append must not clone the store");
    }

    #[test]
    fn concurrent_readers_and_appenders() {
        let shared = SharedLogStore::new(16);
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let shared = &shared;
                scope.spawn(move || {
                    for i in 0..25usize {
                        shared.record(session(&[(t * 4 + i % 4, i % 2 == 0)]));
                        // This thread alone has recorded i+1 sessions, so
                        // any snapshot taken now must see more than i.
                        let snap = shared.snapshot();
                        assert!(snap.n_sessions() > i);
                    }
                });
            }
        });
        assert_eq!(shared.n_sessions(), 100);
    }

    #[test]
    fn counters_track_snapshots_appends_and_cow_clones() {
        let shared = SharedLogStore::new(4);
        let c = shared.counters();
        shared.record(session(&[(0, true)])); // no snapshot held: in place
        assert_eq!((c.appends.get(), c.cow_clones.get()), (1, 0));
        let held = shared.snapshot();
        shared.record(session(&[(1, true)])); // snapshot held: must copy
        assert_eq!((c.appends.get(), c.cow_clones.get()), (2, 1));
        drop(held);
        assert!(c.snapshots.get() >= 1);
        // The handles outlive the wrapper.
        drop(shared);
        assert_eq!(c.appends.get(), 2);
    }

    #[test]
    fn into_store_returns_accumulated_log() {
        let shared = SharedLogStore::new(4);
        shared.record(session(&[(1, true)]));
        let _held = shared.snapshot(); // force the clone path
        let store = shared.into_store();
        assert_eq!(store.n_sessions(), 1);
    }
}
