//! Log store persistence.
//!
//! A deployed CBIR system accumulates its feedback log across restarts, so
//! the store must round-trip to disk. JSON keeps the artifact
//! human-inspectable; the format is versioned so future layouts can evolve.

use crate::store::LogStore;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path;

/// Current on-disk format version.
pub const FORMAT_VERSION: u32 = 1;

#[derive(Serialize, Deserialize)]
struct Envelope {
    version: u32,
    store: LogStore,
}

/// Errors from loading/saving a log store.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not valid JSON for this schema.
    Format(serde_json::Error),
    /// The file's version field is not supported by this build.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "log store I/O error: {e}"),
            PersistError::Format(e) => write!(f, "log store format error: {e}"),
            PersistError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "log store version {found} unsupported (expected {FORMAT_VERSION})"
                )
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Format(e) => Some(e),
            PersistError::UnsupportedVersion { .. } => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Format(e)
    }
}

/// Serializes the store to a JSON byte vector.
pub fn to_json(store: &LogStore) -> Result<Vec<u8>, PersistError> {
    Ok(serde_json::to_vec(&Envelope {
        version: FORMAT_VERSION,
        store: store.clone(),
    })?)
}

/// Deserializes a store from JSON bytes.
pub fn from_json(bytes: &[u8]) -> Result<LogStore, PersistError> {
    let env: Envelope = serde_json::from_slice(bytes)?;
    if env.version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion { found: env.version });
    }
    Ok(env.store)
}

/// Saves the store to a file (overwrite).
pub fn save(store: &LogStore, path: &Path) -> Result<(), PersistError> {
    Ok(fs::write(path, to_json(store)?)?)
}

/// Loads a store from a file.
pub fn load(path: &Path) -> Result<LogStore, PersistError> {
    from_json(&fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{LogSession, Relevance};

    fn sample_store() -> LogStore {
        let mut store = LogStore::new(8);
        store.record(LogSession::new(vec![
            (0, Relevance::Relevant),
            (3, Relevance::Irrelevant),
        ]));
        store.record(LogSession::new(vec![
            (3, Relevance::Relevant),
            (7, Relevance::Relevant),
        ]));
        store
    }

    #[test]
    fn json_roundtrip_preserves_store() {
        let store = sample_store();
        let bytes = to_json(&store).unwrap();
        let back = from_json(&bytes).unwrap();
        assert_eq!(store, back);
        assert_eq!(back.entry(3, 0), -1.0);
        assert_eq!(back.entry(3, 1), 1.0);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("lrf_logdb_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.json");
        let store = sample_store();
        save(&store, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(store, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_version_is_rejected() {
        let store = sample_store();
        let mut v: serde_json::Value = serde_json::from_slice(&to_json(&store).unwrap()).unwrap();
        v["version"] = serde_json::json!(99);
        let err = from_json(serde_json::to_vec(&v).unwrap().as_slice()).unwrap_err();
        assert!(matches!(
            err,
            PersistError::UnsupportedVersion { found: 99 }
        ));
    }

    #[test]
    fn garbage_is_a_format_error() {
        let err = from_json(b"not json").unwrap_err();
        assert!(matches!(err, PersistError::Format(_)));
        assert!(err.to_string().contains("format"));
    }
}
