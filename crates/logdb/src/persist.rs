//! Log store persistence.
//!
//! A deployed CBIR system accumulates its feedback log across restarts, so
//! the store must round-trip to disk. JSON keeps the artifact
//! human-inspectable; the format is versioned so future layouts can evolve.

use crate::store::LogStore;
use lrf_storage::{atomic_write, StdIo, StorageIo};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// Current on-disk format version.
pub const FORMAT_VERSION: u32 = 1;

#[derive(Serialize, Deserialize)]
struct Envelope {
    version: u32,
    store: LogStore,
}

/// Errors from loading/saving a log store.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not valid JSON for this schema.
    Format(serde_json::Error),
    /// The file's version field is not supported by this build.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "log store I/O error: {e}"),
            PersistError::Format(e) => write!(f, "log store format error: {e}"),
            PersistError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "log store version {found} unsupported (expected {FORMAT_VERSION})"
                )
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Format(e) => Some(e),
            PersistError::UnsupportedVersion { .. } => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Format(e)
    }
}

/// Serializes the store to a JSON byte vector.
pub fn to_json(store: &LogStore) -> Result<Vec<u8>, PersistError> {
    Ok(serde_json::to_vec(&Envelope {
        version: FORMAT_VERSION,
        store: store.clone(),
    })?)
}

/// Deserializes a store from JSON bytes.
pub fn from_json(bytes: &[u8]) -> Result<LogStore, PersistError> {
    let env: Envelope = serde_json::from_slice(bytes)?;
    if env.version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion { found: env.version });
    }
    Ok(env.store)
}

/// Saves the store to a file, crash-safely: the JSON is written to a
/// sibling temp file, fsynced, and atomically renamed over `path`, so a
/// crash mid-save leaves the previous snapshot intact rather than a torn
/// hybrid. (The old in-place overwrite destroyed the previous good
/// snapshot the moment it started.)
pub fn save(store: &LogStore, path: &Path) -> Result<(), PersistError> {
    save_with(&StdIo, store, path)
}

/// [`save`] over an injectable IO backend (fault-injection tests).
pub fn save_with(io: &dyn StorageIo, store: &LogStore, path: &Path) -> Result<(), PersistError> {
    Ok(atomic_write(io, path, &to_json(store)?)?)
}

/// Loads a store from a file.
pub fn load(path: &Path) -> Result<LogStore, PersistError> {
    load_with(&StdIo, path)
}

/// [`load`] over an injectable IO backend (fault-injection tests).
pub fn load_with(io: &dyn StorageIo, path: &Path) -> Result<LogStore, PersistError> {
    from_json(&io.read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{LogSession, Relevance};

    fn sample_store() -> LogStore {
        let mut store = LogStore::new(8);
        store.record(LogSession::new(vec![
            (0, Relevance::Relevant),
            (3, Relevance::Irrelevant),
        ]));
        store.record(LogSession::new(vec![
            (3, Relevance::Relevant),
            (7, Relevance::Relevant),
        ]));
        store
    }

    #[test]
    fn json_roundtrip_preserves_store() {
        let store = sample_store();
        let bytes = to_json(&store).unwrap();
        let back = from_json(&bytes).unwrap();
        assert_eq!(store, back);
        assert_eq!(back.entry(3, 0), -1.0);
        assert_eq!(back.entry(3, 1), 1.0);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("lrf_logdb_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.json");
        let store = sample_store();
        save(&store, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(store, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_version_is_rejected() {
        let store = sample_store();
        let mut v: serde_json::Value = serde_json::from_slice(&to_json(&store).unwrap()).unwrap();
        v["version"] = serde_json::json!(99);
        let err = from_json(serde_json::to_vec(&v).unwrap().as_slice()).unwrap_err();
        assert!(matches!(
            err,
            PersistError::UnsupportedVersion { found: 99 }
        ));
    }

    #[test]
    fn garbage_is_a_format_error() {
        let err = from_json(b"not json").unwrap_err();
        assert!(matches!(err, PersistError::Format(_)));
        assert!(err.to_string().contains("format"));
    }

    #[test]
    fn truncated_file_is_a_format_error() {
        // A snapshot cut off mid-write (the torn-file case atomic save
        // prevents, but an operator can still hand us one).
        let bytes = to_json(&sample_store()).unwrap();
        for cut in [1, bytes.len() / 2, bytes.len() - 1] {
            let err = from_json(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, PersistError::Format(_)),
                "cut at {cut} must be a typed Format error, got: {err}"
            );
        }
    }

    #[test]
    fn missing_file_is_a_typed_io_error() {
        let err = load(Path::new("/definitely/not/here.json")).unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }

    #[test]
    fn crash_mid_save_preserves_previous_snapshot() {
        use lrf_storage::{FaultIo, FaultPlan, MemIo};

        let mem = MemIo::handle();
        let path = Path::new("/db/store.json");
        let old = sample_store();
        save_with(mem.as_ref(), &old, path).unwrap();

        // Next save crashes mid-publish: ops write-tmp(0), sync-tmp(1),
        // rename(2) — kill it at each stage in turn.
        for crash_at in 0..3 {
            let mut bigger = old.clone();
            bigger.record(LogSession::new(vec![(1, Relevance::Relevant)]));
            let faulty = FaultIo::new(mem.clone(), FaultPlan::new().with_crash_at(crash_at));
            assert!(save_with(&faulty, &bigger, path).is_err());
            mem.crash();
            let back = load_with(mem.as_ref(), path).unwrap();
            assert_eq!(
                back, old,
                "crash at publish op {crash_at} must keep the old snapshot"
            );
        }
    }
}
