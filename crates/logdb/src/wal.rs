//! The judgment WAL: crash-safe incremental persistence for the log store.
//!
//! [`crate::persist`] snapshots the whole store; fine at shutdown, wrong
//! for a live service where every flushed session must survive a crash
//! without rewriting megabytes of JSON. [`JudgmentWal`] layers the log's
//! semantics onto [`lrf_storage::Wal`]:
//!
//! * each **record** is one [`LogSession`], JSON-encoded, CRC-framed and
//!   fsynced by the storage layer before the append returns;
//! * each **snapshot** is the existing [`crate::persist`] envelope (same
//!   versioned JSON format `save`/`load` use — a compacted WAL directory
//!   holds a file any existing tooling can read);
//! * **recovery** rebuilds the [`LogStore`] by loading the snapshot and
//!   replaying intact sessions, validating every image id against the
//!   store's image count (a corrupt-but-CRC-valid record must surface as
//!   a typed error, not a panic deep inside `LogStore::record`).

use std::io;
use std::path::Path;

use lrf_storage::wal::{Wal, WalOptions};
use lrf_storage::IoRef;

use crate::persist::{self, PersistError};
use crate::session::LogSession;
use crate::store::LogStore;

/// Errors from the judgment WAL.
#[derive(Debug)]
pub enum WalError {
    /// Underlying storage failure (the append/compact did not happen).
    Io(io::Error),
    /// The compaction snapshot could not be encoded or decoded.
    Persist(PersistError),
    /// A recovered record is intact per its checksum but semantically
    /// invalid for this store.
    Replay {
        /// Zero-based index of the offending record in replay order.
        record: usize,
        /// What was wrong with it.
        reason: String,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "judgment wal I/O error: {e}"),
            WalError::Persist(e) => write!(f, "judgment wal snapshot error: {e}"),
            WalError::Replay { record, reason } => {
                write!(f, "judgment wal replay error at record {record}: {reason}")
            }
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            WalError::Persist(e) => Some(e),
            WalError::Replay { .. } => None,
        }
    }
}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

impl From<PersistError> for WalError {
    fn from(e: PersistError) -> Self {
        WalError::Persist(e)
    }
}

/// What recovery found, alongside the rebuilt store.
#[derive(Debug)]
pub struct WalRecoveryReport {
    /// The store as of the crash: snapshot plus replayed sessions.
    pub store: LogStore,
    /// Sessions replayed from WAL segments (not counting the snapshot).
    pub replayed_sessions: u64,
    /// Whether a compaction snapshot was present.
    pub had_snapshot: bool,
    /// Segments of the current epoch that were replayed.
    pub segments_replayed: u64,
    /// Torn/corrupt frame runs dropped during recovery.
    pub truncated_records: u64,
    /// Bytes dropped with them.
    pub truncated_bytes: u64,
    /// Transient read faults healed by re-reading a segment.
    pub reread_recoveries: u64,
    /// Leftover files from older epochs / interrupted publishes removed.
    pub stale_files_removed: u64,
}

/// Append-only durable log of [`LogSession`]s with snapshot compaction.
#[derive(Debug)]
pub struct JudgmentWal {
    wal: Wal,
    n_images: usize,
    /// Sessions appended since the last compaction (recovered ones count).
    appended_since_compact: u64,
}

impl JudgmentWal {
    /// Opens (or creates) the WAL at `dir` and runs recovery, rebuilding
    /// the store it protects. `n_images` must match the image database;
    /// a snapshot recorded for a different image count is refused.
    pub fn open(
        io: IoRef,
        dir: &Path,
        n_images: usize,
        opts: WalOptions,
    ) -> Result<(Self, WalRecoveryReport), WalError> {
        if n_images == 0 {
            return Err(WalError::Replay {
                record: 0,
                reason: "log store requires at least one image".into(),
            });
        }
        let (wal, recovery) = Wal::open(io, dir, opts)?;

        let had_snapshot = recovery.snapshot.is_some();
        let mut store = match &recovery.snapshot {
            Some(bytes) => {
                let store = persist::from_json(bytes)?;
                if store.n_images() != n_images {
                    return Err(WalError::Replay {
                        record: 0,
                        reason: format!(
                            "snapshot covers {} images, database has {n_images}",
                            store.n_images()
                        ),
                    });
                }
                store
            }
            None => LogStore::new(n_images),
        };

        let mut replayed_sessions = 0;
        for (idx, payload) in recovery.records.iter().enumerate() {
            let session = decode_session(idx, payload)?;
            validate_session(idx, &session, n_images)?;
            store.record(session);
            replayed_sessions += 1;
        }

        let report = WalRecoveryReport {
            store,
            replayed_sessions,
            had_snapshot,
            segments_replayed: recovery.segments_replayed,
            truncated_records: recovery.truncated_records,
            truncated_bytes: recovery.truncated_bytes,
            reread_recoveries: recovery.reread_recoveries,
            stale_files_removed: recovery.stale_files_removed,
        };
        Ok((
            Self {
                wal,
                n_images,
                appended_since_compact: replayed_sessions,
            },
            report,
        ))
    }

    /// Durably append one session. `Ok` means it survives a crash.
    pub fn append(&mut self, session: &LogSession) -> Result<(), WalError> {
        let payload =
            serde_json::to_vec(session).map_err(|e| WalError::Persist(PersistError::Format(e)))?;
        self.wal.append(&payload)?;
        self.appended_since_compact += 1;
        Ok(())
    }

    /// Atomically publish `store` as the new snapshot and retire the
    /// replay segments. The caller is responsible for `store` containing
    /// every session appended so far (the durable wrapper guarantees it).
    pub fn compact(&mut self, store: &LogStore) -> Result<(), WalError> {
        let bytes = persist::to_json(store)?;
        self.wal.compact(&bytes)?;
        self.appended_since_compact = 0;
        Ok(())
    }

    /// Sessions appended (or recovered) since the last compaction —
    /// the replay debt a crash right now would incur.
    pub fn appended_since_compact(&self) -> u64 {
        self.appended_since_compact
    }

    /// Current compaction epoch.
    pub fn epoch(&self) -> u64 {
        self.wal.epoch()
    }

    /// Segments started this epoch.
    pub fn segments_started(&self) -> u64 {
        self.wal.segments_started()
    }

    /// Image count this WAL validates against.
    pub fn n_images(&self) -> usize {
        self.n_images
    }
}

fn decode_session(idx: usize, payload: &[u8]) -> Result<LogSession, WalError> {
    serde_json::from_slice(payload).map_err(|e| WalError::Replay {
        record: idx,
        reason: format!("undecodable session payload: {e}"),
    })
}

fn validate_session(idx: usize, session: &LogSession, n_images: usize) -> Result<(), WalError> {
    for (image_id, _) in session.iter() {
        if image_id >= n_images {
            return Err(WalError::Replay {
                record: idx,
                reason: format!("image id {image_id} out of range (n_images = {n_images})"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Relevance;
    use lrf_storage::{FaultIo, FaultKind, FaultPlan, MemIo};

    fn session(pairs: &[(usize, bool)]) -> LogSession {
        LogSession::new(
            pairs
                .iter()
                .map(|&(id, r)| (id, Relevance::from_bool(r)))
                .collect(),
        )
    }

    fn dir() -> &'static Path {
        Path::new("/log/wal")
    }

    #[test]
    fn sessions_survive_crash_and_replay_in_order() {
        let mem = MemIo::handle();
        let (mut wal, rec) =
            JudgmentWal::open(mem.clone(), dir(), 8, WalOptions::default()).unwrap();
        assert_eq!(rec.store.n_sessions(), 0);
        wal.append(&session(&[(0, true), (3, false)])).unwrap();
        wal.append(&session(&[(7, true)])).unwrap();
        drop(wal);
        mem.crash();

        let (_, rec) = JudgmentWal::open(mem.clone(), dir(), 8, WalOptions::default()).unwrap();
        assert_eq!(rec.replayed_sessions, 2);
        assert_eq!(rec.store.n_sessions(), 2);
        assert_eq!(rec.store.entry(3, 0), -1.0);
        assert_eq!(rec.store.entry(7, 1), 1.0);
    }

    #[test]
    fn compaction_snapshot_is_the_persist_format() {
        let mem = MemIo::handle();
        let (mut wal, _) = JudgmentWal::open(mem.clone(), dir(), 8, WalOptions::default()).unwrap();
        let mut store = LogStore::new(8);
        store.record(session(&[(1, true)]));
        wal.append(&session(&[(1, true)])).unwrap();
        wal.compact(&store).unwrap();
        assert_eq!(wal.appended_since_compact(), 0);
        wal.append(&session(&[(2, false)])).unwrap();
        drop(wal);
        mem.crash();

        // The compacted snapshot is readable by plain persist::load_with —
        // the on-disk contract the module docs promise.
        let snap_path = dir().join("snapshot-000001.json");
        let from_snapshot = crate::persist::load_with(mem.as_ref(), &snap_path).unwrap();
        assert_eq!(from_snapshot.n_sessions(), 1);

        let (_, rec) = JudgmentWal::open(mem.clone(), dir(), 8, WalOptions::default()).unwrap();
        assert!(rec.had_snapshot);
        assert_eq!(rec.replayed_sessions, 1);
        assert_eq!(rec.store.n_sessions(), 2);
        assert_eq!(rec.store.entry(2, 1), -1.0);
    }

    #[test]
    fn out_of_range_image_id_is_a_typed_replay_error() {
        let mem = MemIo::handle();
        let (mut wal, _) =
            JudgmentWal::open(mem.clone(), dir(), 16, WalOptions::default()).unwrap();
        wal.append(&session(&[(15, true)])).unwrap();
        drop(wal);
        mem.crash();

        // Reopen against a smaller image database: the record is intact
        // (CRC passes) but its ids are out of range — typed error, no
        // panic from LogStore::record.
        let err = JudgmentWal::open(mem.clone(), dir(), 8, WalOptions::default()).unwrap_err();
        assert!(
            matches!(err, WalError::Replay { record: 0, .. }),
            "got: {err}"
        );
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn snapshot_image_count_mismatch_is_refused() {
        let mem = MemIo::handle();
        let (mut wal, _) = JudgmentWal::open(mem.clone(), dir(), 8, WalOptions::default()).unwrap();
        wal.append(&session(&[(1, true)])).unwrap();
        let mut store = LogStore::new(8);
        store.record(session(&[(1, true)]));
        wal.compact(&store).unwrap();
        drop(wal);
        mem.crash();

        let err = JudgmentWal::open(mem.clone(), dir(), 4, WalOptions::default()).unwrap_err();
        assert!(err.to_string().contains("images"));
    }

    #[test]
    fn failed_append_is_not_replayed() {
        let mem = MemIo::handle();
        let (wal, _) = JudgmentWal::open(mem.clone(), dir(), 8, WalOptions::default()).unwrap();
        drop(wal);
        // Ops through the faulty io: open = mkdir(0)+list(1); first
        // append = append(2)+sync(3); second = append(4), sync(5) fails,
        // repair truncate(6) succeeds.
        let faulty: IoRef = FaultIo::handle(
            mem.clone(),
            FaultPlan::new().with_fault(5, FaultKind::SyncFail),
        );
        let (mut wal, _) = JudgmentWal::open(faulty, dir(), 8, WalOptions::default()).unwrap();
        wal.append(&session(&[(0, true)])).unwrap();
        assert!(wal.append(&session(&[(1, true)])).is_err());
        drop(wal);
        mem.crash();

        let (_, rec) = JudgmentWal::open(mem.clone(), dir(), 8, WalOptions::default()).unwrap();
        assert_eq!(rec.replayed_sessions, 1);
        assert!(
            rec.store.log_vector(1).is_empty(),
            "failed append must not resurrect"
        );
    }

    #[test]
    fn zero_images_is_a_typed_error() {
        let mem = MemIo::handle();
        let err = JudgmentWal::open(mem, dir(), 0, WalOptions::default()).unwrap_err();
        assert!(matches!(err, WalError::Replay { .. }));
    }
}
