//! The log store — the relevance matrix `R` in column-sparse form.
//!
//! Rows are sessions, columns are images; [`LogStore`] maintains, for each
//! image, its sparse log vector `r_i` (the column), because that is what
//! the learning algorithms consume: "each image corresponds to a user log
//! vector r_i, whose dimension M is the total number of user log sessions
//! collected."

use crate::session::LogSession;
use crate::sparse::SparseVector;
use serde::{Deserialize, Serialize};

/// Append-only store of feedback sessions over a fixed image database.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LogStore {
    n_images: usize,
    sessions: Vec<LogSession>,
    /// Column view: `columns[i]` is image `i`'s log vector `r_i`, indexed by
    /// session id.
    columns: Vec<SparseVector>,
}

impl LogStore {
    /// Creates an empty store over a database of `n_images` images.
    ///
    /// # Panics
    /// Panics if `n_images == 0`.
    pub fn new(n_images: usize) -> Self {
        assert!(n_images > 0, "log store needs a nonempty image database");
        Self {
            n_images,
            sessions: Vec::new(),
            columns: vec![SparseVector::new(); n_images],
        }
    }

    /// Number of images the store covers (the matrix's column count `N`).
    pub fn n_images(&self) -> usize {
        self.n_images
    }

    /// Number of recorded sessions (the matrix's row count and the log
    /// vectors' dimension `M`).
    pub fn n_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Appends a session, updating every judged image's column. Returns the
    /// new session's id.
    ///
    /// # Panics
    /// Panics if the session references an image id `>= n_images`.
    pub fn record(&mut self, session: LogSession) -> usize {
        let sid = self.sessions.len();
        assert!(sid <= u32::MAX as usize, "session id overflow");
        for (image_id, judgment) in session.iter() {
            assert!(
                image_id < self.n_images,
                "session references image {image_id} outside database of {}",
                self.n_images
            );
            self.columns[image_id].set(sid as u32, judgment.sign());
        }
        self.sessions.push(session);
        sid
    }

    /// The sparse log vector `r_i` of image `i`.
    ///
    /// # Panics
    /// Panics if `image_id >= n_images`.
    pub fn log_vector(&self, image_id: usize) -> &SparseVector {
        &self.columns[image_id]
    }

    /// All log vectors, indexed by image id.
    pub fn log_vectors(&self) -> &[SparseVector] {
        &self.columns
    }

    /// A recorded session by id.
    pub fn session(&self, session_id: usize) -> &LogSession {
        &self.sessions[session_id]
    }

    /// Iterates all recorded sessions in id order.
    pub fn sessions(&self) -> impl Iterator<Item = &LogSession> {
        self.sessions.iter()
    }

    /// The raw matrix element `r_{image, session}` (`+1`, `−1`, or `0`).
    pub fn entry(&self, image_id: usize, session_id: usize) -> f64 {
        assert!(
            session_id < self.sessions.len(),
            "unknown session {session_id}"
        );
        self.columns[image_id].get(session_id as u32)
    }

    /// Number of images that have at least one judgment — coverage is the
    /// key statistic determining how much the log can help retrieval.
    pub fn n_judged_images(&self) -> usize {
        self.columns.iter().filter(|c| !c.is_empty()).count()
    }

    /// Total judgments across all sessions (the matrix's nonzero count).
    pub fn nnz(&self) -> usize {
        self.columns.iter().map(|c| c.nnz()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Relevance;

    fn session(pairs: &[(usize, bool)]) -> LogSession {
        LogSession::new(
            pairs
                .iter()
                .map(|&(id, r)| (id, Relevance::from_bool(r)))
                .collect(),
        )
    }

    #[test]
    fn empty_store() {
        let store = LogStore::new(10);
        assert_eq!(store.n_images(), 10);
        assert_eq!(store.n_sessions(), 0);
        assert_eq!(store.n_judged_images(), 0);
        assert!(store.log_vector(3).is_empty());
    }

    #[test]
    fn record_updates_columns() {
        let mut store = LogStore::new(6);
        let s0 = store.record(session(&[(0, true), (1, false), (4, true)]));
        let s1 = store.record(session(&[(1, true), (4, true)]));
        assert_eq!((s0, s1), (0, 1));
        assert_eq!(store.n_sessions(), 2);

        assert_eq!(store.entry(0, 0), 1.0);
        assert_eq!(store.entry(1, 0), -1.0);
        assert_eq!(store.entry(1, 1), 1.0);
        assert_eq!(store.entry(2, 0), 0.0);
        assert_eq!(store.entry(4, 0), 1.0);
        assert_eq!(store.entry(4, 1), 1.0);

        // Column views as sparse vectors.
        assert_eq!(store.log_vector(4).nnz(), 2);
        assert_eq!(store.log_vector(2).nnz(), 0);
        assert_eq!(store.n_judged_images(), 3);
        assert_eq!(store.nnz(), 5);
    }

    #[test]
    fn co_relevant_images_have_similar_columns() {
        // Images repeatedly marked relevant together end up with identical
        // log vectors — the signal the paper exploits.
        let mut store = LogStore::new(5);
        for _ in 0..3 {
            store.record(session(&[(0, true), (1, true), (2, false)]));
        }
        let r0 = store.log_vector(0);
        let r1 = store.log_vector(1);
        let r2 = store.log_vector(2);
        assert_eq!(r0.squared_distance(r1), 0.0);
        assert!(r0.dot(r2) < 0.0);
    }

    #[test]
    #[should_panic(expected = "outside database")]
    fn out_of_range_image_rejected() {
        let mut store = LogStore::new(3);
        store.record(session(&[(5, true)]));
    }

    #[test]
    fn sessions_are_retrievable() {
        let mut store = LogStore::new(4);
        let s = session(&[(0, true), (3, false)]);
        store.record(s.clone());
        assert_eq!(store.session(0), &s);
        assert_eq!(store.sessions().count(), 1);
    }
}
