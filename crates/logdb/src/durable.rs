//! Durable wrapper uniting the concurrent store with the judgment WAL.
//!
//! [`DurableLogStore`] is what a service should own: the copy-on-write
//! [`SharedLogStore`] for concurrent reads/appends, plus (optionally) a
//! [`JudgmentWal`] that makes each recorded session durable *before* the
//! in-memory store sees it. The invariants it maintains:
//!
//! * **WAL order == store order.** [`DurableLogStore::record_durable`]
//!   holds the WAL lock across the in-memory append, so session ids
//!   assigned by the store match the WAL's replay order exactly.
//! * **Memory ⊇ WAL.** A session is never in the WAL without also being
//!   in memory; [`DurableLogStore::append_wal_only`] (the spill-drain
//!   path) is the one deliberate exception's repair: it backfills the
//!   WAL for sessions already recorded volatile, and compaction is the
//!   caller's tool to reconcile (see `lrf-service`'s durability policy).
//! * **Compaction never duplicates.** [`DurableLogStore::compact`]
//!   snapshots the in-memory store, which contains every WAL session
//!   (per the previous invariant), so snapshot + empty WAL ≡ old
//!   snapshot + replayed sessions.
//!
//! A store opened [`volatile`](DurableLogStore::volatile) has no WAL at
//! all — the pre-durability behaviour, still used by tests, benches and
//! read-only tooling.

use std::path::Path;

use lrf_storage::wal::WalOptions;
use lrf_storage::IoRef;
use lrf_sync::{Mutex, MutexExt};

use crate::session::LogSession;
use crate::shared::{LogStoreCounters, SharedLogStore};
use crate::store::LogStore;
use crate::wal::{JudgmentWal, WalError, WalRecoveryReport};

/// How a [`DurableLogStore`] came up, minus the store itself (which is
/// already inside the wrapper).
#[derive(Debug, Clone, Copy, Default)]
pub struct DurableRecovery {
    /// Sessions already on disk when we opened (snapshot + replay).
    pub recovered_sessions: u64,
    /// Sessions replayed from WAL segments.
    pub replayed_sessions: u64,
    /// Whether the disk was empty and the caller's seed store was
    /// published instead.
    pub seeded: bool,
    /// Torn/corrupt frame runs truncated during recovery.
    pub truncated_records: u64,
    /// Bytes dropped with them.
    pub truncated_bytes: u64,
    /// Transient read faults healed by re-reading a segment.
    pub reread_recoveries: u64,
    /// Stale files swept at open.
    pub stale_files_removed: u64,
}

impl DurableRecovery {
    fn from_report(report: &WalRecoveryReport, seeded: bool) -> Self {
        Self {
            recovered_sessions: report.store.n_sessions() as u64,
            replayed_sessions: report.replayed_sessions,
            seeded,
            truncated_records: report.truncated_records,
            truncated_bytes: report.truncated_bytes,
            reread_recoveries: report.reread_recoveries,
            stale_files_removed: report.stale_files_removed,
        }
    }
}

/// A [`SharedLogStore`] with optional write-ahead durability.
#[derive(Debug)]
pub struct DurableLogStore {
    shared: SharedLogStore,
    wal: Option<Mutex<JudgmentWal>>,
}

impl DurableLogStore {
    /// A WAL-less store: appends live only in memory. The pre-durability
    /// behaviour; callers opt into it explicitly.
    pub fn volatile(store: LogStore) -> Self {
        Self {
            shared: SharedLogStore::from_store(store),
            wal: None,
        }
    }

    /// Open the WAL at `dir` and recover the store from disk. An empty
    /// directory yields an empty store over `n_images` images.
    pub fn open(
        io: IoRef,
        dir: &Path,
        n_images: usize,
        opts: WalOptions,
    ) -> Result<(Self, DurableRecovery), WalError> {
        let (wal, report) = JudgmentWal::open(io, dir, n_images, opts)?;
        let recovery = DurableRecovery::from_report(&report, false);
        Ok((
            Self {
                shared: SharedLogStore::from_store(report.store),
                wal: Some(Mutex::new(wal)),
            },
            recovery,
        ))
    }

    /// Like [`open`](Self::open), but if the disk holds nothing (no
    /// snapshot, no sessions), publish `seed` as the initial snapshot so
    /// a bootstrapped log (e.g. a simulated collection) is durable from
    /// the first moment. When the disk does hold state, the seed is
    /// discarded — disk wins.
    pub fn open_with_seed(
        io: IoRef,
        dir: &Path,
        seed: LogStore,
        opts: WalOptions,
    ) -> Result<(Self, DurableRecovery), WalError> {
        let n_images = seed.n_images();
        let (mut wal, report) = JudgmentWal::open(io, dir, n_images, opts)?;
        let disk_empty = !report.had_snapshot && report.replayed_sessions == 0;
        if disk_empty && seed.n_sessions() > 0 {
            wal.compact(&seed)?;
            let recovery = DurableRecovery {
                recovered_sessions: 0,
                seeded: true,
                ..DurableRecovery::from_report(&report, true)
            };
            return Ok((
                Self {
                    shared: SharedLogStore::from_store(seed),
                    wal: Some(Mutex::new(wal)),
                },
                recovery,
            ));
        }
        let recovery = DurableRecovery::from_report(&report, false);
        Ok((
            Self {
                shared: SharedLogStore::from_store(report.store),
                wal: Some(Mutex::new(wal)),
            },
            recovery,
        ))
    }

    /// Whether records go through a WAL before acknowledgement.
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// Durably record a session: WAL append first (fsynced), then the
    /// in-memory store, with the WAL lock held across both so replay
    /// order matches session-id order. On a WAL-less store this is just
    /// an in-memory record.
    ///
    /// An `Err` means *neither* the WAL nor the store recorded the
    /// session — the caller may retry, spill, or degrade.
    pub fn record_durable(&self, session: LogSession) -> Result<usize, WalError> {
        match &self.wal {
            None => Ok(self.shared.record(session)),
            Some(wal) => {
                let mut wal = wal.lock_recover();
                wal.append(&session)?;
                Ok(self.shared.record(session))
            }
        }
    }

    /// Record in memory only, bypassing the WAL. This is the degraded
    /// path: the session is *not* crash-safe until a later
    /// [`append_wal_only`](Self::append_wal_only) or
    /// [`compact`](Self::compact) reconciles it.
    pub fn record_volatile(&self, session: LogSession) -> usize {
        self.shared.record(session)
    }

    /// Backfill the WAL with a session that is already in memory (the
    /// spill-drain path after a degraded stretch). Call in the same
    /// order the sessions were recorded volatile.
    pub fn append_wal_only(&self, session: &LogSession) -> Result<(), WalError> {
        match &self.wal {
            None => Ok(()),
            Some(wal) => wal.lock_recover().append(session),
        }
    }

    /// Publish the current in-memory store as the WAL's snapshot and
    /// retire the replay segments. No-op on a WAL-less store.
    pub fn compact(&self) -> Result<(), WalError> {
        let Some(wal) = &self.wal else { return Ok(()) };
        let mut wal = wal.lock_recover();
        // Snapshot under the WAL lock: no durable append can interleave,
        // so the snapshot is guaranteed to contain every WAL session.
        let snapshot = self.shared.snapshot();
        wal.compact(&snapshot)
    }

    /// Sessions appended to the WAL since the last compaction.
    pub fn wal_debt(&self) -> u64 {
        self.wal
            .as_ref()
            .map_or(0, |w| w.lock_recover().appended_since_compact())
    }

    /// Segments started in the current WAL epoch (0 for WAL-less).
    pub fn wal_segments(&self) -> u64 {
        self.wal
            .as_ref()
            .map_or(0, |w| w.lock_recover().segments_started())
    }

    /// See [`SharedLogStore::snapshot`].
    pub fn snapshot(&self) -> lrf_sync::Arc<LogStore> {
        self.shared.snapshot()
    }

    /// See [`SharedLogStore::counters`].
    pub fn counters(&self) -> LogStoreCounters {
        self.shared.counters()
    }

    /// Number of recorded sessions in the live store.
    pub fn n_sessions(&self) -> usize {
        self.shared.n_sessions()
    }

    /// Number of images the store covers.
    pub fn n_images(&self) -> usize {
        self.shared.n_images()
    }

    /// Extract the accumulated store, consuming the wrapper. Durability
    /// note: this does *not* compact first — callers that want the final
    /// state snapshotted should [`compact`](Self::compact) before.
    pub fn into_store(self) -> LogStore {
        self.shared.into_store()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Relevance;
    use lrf_storage::MemIo;

    fn session(pairs: &[(usize, bool)]) -> LogSession {
        LogSession::new(
            pairs
                .iter()
                .map(|&(id, r)| (id, Relevance::from_bool(r)))
                .collect(),
        )
    }

    fn dir() -> &'static Path {
        Path::new("/log/durable")
    }

    #[test]
    fn volatile_store_records_without_a_wal() {
        let db = DurableLogStore::volatile(LogStore::new(4));
        assert!(!db.is_durable());
        let id = db.record_durable(session(&[(0, true)])).unwrap();
        assert_eq!(id, 0);
        assert_eq!(db.n_sessions(), 1);
        assert_eq!(db.wal_debt(), 0);
    }

    #[test]
    fn durable_records_survive_crash_with_matching_ids() {
        let mem = MemIo::handle();
        let (db, rec) =
            DurableLogStore::open(mem.clone(), dir(), 8, WalOptions::default()).unwrap();
        assert_eq!(rec.recovered_sessions, 0);
        let a = db.record_durable(session(&[(0, true)])).unwrap();
        let b = db.record_durable(session(&[(3, false)])).unwrap();
        assert_eq!((a, b), (0, 1));
        drop(db);
        mem.crash();

        let (db, rec) =
            DurableLogStore::open(mem.clone(), dir(), 8, WalOptions::default()).unwrap();
        assert_eq!(rec.recovered_sessions, 2);
        assert_eq!(db.n_sessions(), 2);
        assert_eq!(db.snapshot().entry(3, 1), -1.0);
    }

    #[test]
    fn compact_resets_debt_and_recovery_uses_snapshot() {
        let mem = MemIo::handle();
        let (db, _) = DurableLogStore::open(mem.clone(), dir(), 8, WalOptions::default()).unwrap();
        db.record_durable(session(&[(0, true)])).unwrap();
        db.record_durable(session(&[(1, true)])).unwrap();
        assert_eq!(db.wal_debt(), 2);
        db.compact().unwrap();
        assert_eq!(db.wal_debt(), 0);
        db.record_durable(session(&[(2, false)])).unwrap();
        drop(db);
        mem.crash();

        let (db, rec) =
            DurableLogStore::open(mem.clone(), dir(), 8, WalOptions::default()).unwrap();
        assert_eq!(rec.recovered_sessions, 3);
        assert_eq!(
            rec.replayed_sessions, 1,
            "only the post-compact session replays"
        );
        assert_eq!(db.n_sessions(), 3);
    }

    #[test]
    fn spill_drain_backfills_without_duplicating() {
        let mem = MemIo::handle();
        let (db, _) = DurableLogStore::open(mem.clone(), dir(), 8, WalOptions::default()).unwrap();
        // Degraded stretch: recorded volatile only.
        let spilled = session(&[(5, true)]);
        db.record_volatile(spilled.clone());
        // Drain: backfill the WAL for the already-in-memory session.
        db.append_wal_only(&spilled).unwrap();
        db.record_durable(session(&[(6, false)])).unwrap();
        drop(db);
        mem.crash();

        let (db, _) = DurableLogStore::open(mem.clone(), dir(), 8, WalOptions::default()).unwrap();
        assert_eq!(
            db.n_sessions(),
            2,
            "backfilled session replays exactly once"
        );
    }

    #[test]
    fn seed_store_is_published_when_disk_is_empty() {
        let mem = MemIo::handle();
        let mut seed = LogStore::new(8);
        seed.record(session(&[(0, true)]));
        seed.record(session(&[(1, false)]));
        let (db, rec) =
            DurableLogStore::open_with_seed(mem.clone(), dir(), seed, WalOptions::default())
                .unwrap();
        assert!(rec.seeded);
        assert_eq!(db.n_sessions(), 2);
        drop(db);
        mem.crash();

        // The seed was compacted to disk immediately: it survives.
        let mut other_seed = LogStore::new(8);
        other_seed.record(session(&[(7, true)]));
        let (db, rec) =
            DurableLogStore::open_with_seed(mem.clone(), dir(), other_seed, WalOptions::default())
                .unwrap();
        assert!(!rec.seeded, "disk state wins over the seed");
        assert_eq!(rec.recovered_sessions, 2);
        assert_eq!(db.n_sessions(), 2);
        assert!(db.snapshot().log_vector(7).is_empty());
    }
}
