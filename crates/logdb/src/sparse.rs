//! Sparse vectors over session indices.
//!
//! An image's log vector `r_i` has one ±1 entry per session that judged it
//! and is zero elsewhere; with 150 sessions of 20 judgments over thousands
//! of images, the matrix is overwhelmingly sparse. Entries are kept sorted
//! by index so dot products merge in linear time.

use serde::{Deserialize, Serialize};

/// A sparse `f64` vector: sorted `(index, value)` pairs, zeros omitted.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SparseVector {
    entries: Vec<(u32, f64)>,
}

impl SparseVector {
    /// The empty (all-zero) vector.
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// Builds from `(index, value)` pairs.
    ///
    /// # Panics
    /// Panics on duplicate indices or zero values (a zero entry is a bug in
    /// the caller — sparse semantics treat absence as zero).
    pub fn from_entries(mut entries: Vec<(u32, f64)>) -> Self {
        entries.sort_unstable_by_key(|&(i, _)| i);
        for w in entries.windows(2) {
            assert!(w[0].0 != w[1].0, "duplicate index {}", w[0].0);
        }
        assert!(
            entries.iter().all(|&(_, v)| v != 0.0 && v.is_finite()),
            "entries must be nonzero and finite"
        );
        Self { entries }
    }

    /// Number of stored (nonzero) entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the vector is all-zero.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The value at `index` (zero when absent).
    pub fn get(&self, index: u32) -> f64 {
        match self.entries.binary_search_by_key(&index, |&(i, _)| i) {
            Ok(pos) => self.entries[pos].1,
            Err(_) => 0.0,
        }
    }

    /// Sets `index` to `value`; `value == 0.0` removes the entry.
    pub fn set(&mut self, index: u32, value: f64) {
        assert!(value.is_finite(), "value must be finite");
        match self.entries.binary_search_by_key(&index, |&(i, _)| i) {
            Ok(pos) => {
                if value == 0.0 {
                    self.entries.remove(pos);
                } else {
                    self.entries[pos].1 = value;
                }
            }
            Err(pos) => {
                if value != 0.0 {
                    self.entries.insert(pos, (index, value));
                }
            }
        }
    }

    /// Iterates stored `(index, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// Sparse dot product (linear merge over the two entry lists).
    pub fn dot(&self, other: &SparseVector) -> f64 {
        let mut acc = 0.0;
        let (mut a, mut b) = (0usize, 0usize);
        while a < self.entries.len() && b < other.entries.len() {
            let (ia, va) = self.entries[a];
            let (ib, vb) = other.entries[b];
            match ia.cmp(&ib) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    acc += va * vb;
                    a += 1;
                    b += 1;
                }
            }
        }
        acc
    }

    /// Squared Euclidean norm.
    pub fn norm_sq(&self) -> f64 {
        self.entries.iter().map(|&(_, v)| v * v).sum()
    }

    /// Squared Euclidean distance `‖a − b‖²`, computed without
    /// materializing the difference: `‖a‖² + ‖b‖² − 2·a·b`.
    pub fn squared_distance(&self, other: &SparseVector) -> f64 {
        (self.norm_sq() + other.norm_sq() - 2.0 * self.dot(other)).max(0.0)
    }

    /// Densifies into a `dim`-length vector (diagnostics / interop).
    ///
    /// # Panics
    /// Panics if any stored index is `>= dim`.
    pub fn to_dense(&self, dim: usize) -> Vec<f64> {
        let mut out = vec![0.0; dim];
        for &(i, v) in &self.entries {
            assert!((i as usize) < dim, "index {i} out of dimension {dim}");
            out[i as usize] = v;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_vector_behaves_like_zero() {
        let z = SparseVector::new();
        assert_eq!(z.nnz(), 0);
        assert!(z.is_empty());
        assert_eq!(z.get(5), 0.0);
        assert_eq!(z.dot(&z), 0.0);
        assert_eq!(z.norm_sq(), 0.0);
    }

    #[test]
    fn from_entries_sorts() {
        let v = SparseVector::from_entries(vec![(5, 1.0), (1, -1.0), (3, 1.0)]);
        let idx: Vec<u32> = v.iter().map(|(i, _)| i).collect();
        assert_eq!(idx, vec![1, 3, 5]);
        assert_eq!(v.get(1), -1.0);
        assert_eq!(v.get(2), 0.0);
    }

    #[test]
    #[should_panic(expected = "duplicate index")]
    fn duplicate_indices_rejected() {
        let _ = SparseVector::from_entries(vec![(1, 1.0), (1, -1.0)]);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_entries_rejected() {
        let _ = SparseVector::from_entries(vec![(1, 0.0)]);
    }

    #[test]
    fn set_inserts_updates_removes() {
        let mut v = SparseVector::new();
        v.set(4, 1.0);
        v.set(2, -1.0);
        assert_eq!(v.nnz(), 2);
        v.set(4, 0.5);
        assert_eq!(v.get(4), 0.5);
        v.set(4, 0.0);
        assert_eq!(v.nnz(), 1);
        assert_eq!(v.get(4), 0.0);
        v.set(9, 0.0); // removing an absent entry is a no-op
        assert_eq!(v.nnz(), 1);
    }

    #[test]
    fn dot_product_merges_indices() {
        let a = SparseVector::from_entries(vec![(0, 1.0), (2, -1.0), (5, 1.0)]);
        let b = SparseVector::from_entries(vec![(2, -1.0), (3, 1.0), (5, -1.0)]);
        // overlap at 2 (1) and 5 (−1) → 0
        assert_eq!(a.dot(&b), 0.0);
        let c = SparseVector::from_entries(vec![(2, 1.0)]);
        assert_eq!(a.dot(&c), -1.0);
    }

    #[test]
    fn squared_distance_matches_dense() {
        let a = SparseVector::from_entries(vec![(0, 1.0), (3, -1.0)]);
        let b = SparseVector::from_entries(vec![(0, -1.0), (7, 1.0)]);
        let da = a.to_dense(8);
        let db = b.to_dense(8);
        let dense: f64 = da.iter().zip(&db).map(|(x, y)| (x - y) * (x - y)).sum();
        assert!((a.squared_distance(&b) - dense).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of dimension")]
    fn to_dense_checks_dim() {
        let v = SparseVector::from_entries(vec![(10, 1.0)]);
        let _ = v.to_dense(5);
    }

    proptest! {
        /// Sparse dot agrees with the dense dot for random ±1 patterns.
        #[test]
        fn dot_agrees_with_dense(
            a_idx in proptest::collection::btree_set(0u32..40, 0..15),
            b_idx in proptest::collection::btree_set(0u32..40, 0..15),
            signs in proptest::collection::vec(proptest::bool::ANY, 30),
        ) {
            let mut s = signs.iter().cycle();
            let a = SparseVector::from_entries(
                a_idx.iter().map(|&i| (i, if *s.next().unwrap() { 1.0 } else { -1.0 })).collect());
            let b = SparseVector::from_entries(
                b_idx.iter().map(|&i| (i, if *s.next().unwrap() { 1.0 } else { -1.0 })).collect());
            let da = a.to_dense(40);
            let db = b.to_dense(40);
            let dense: f64 = da.iter().zip(&db).map(|(x, y)| x * y).sum();
            prop_assert!((a.dot(&b) - dense).abs() < 1e-12);
        }

        /// Distance is symmetric, nonnegative, and zero iff equal patterns.
        #[test]
        fn distance_metric_axioms(
            a_idx in proptest::collection::btree_set(0u32..30, 0..10),
            b_idx in proptest::collection::btree_set(0u32..30, 0..10),
        ) {
            let a = SparseVector::from_entries(a_idx.iter().map(|&i| (i, 1.0)).collect());
            let b = SparseVector::from_entries(b_idx.iter().map(|&i| (i, 1.0)).collect());
            prop_assert!((a.squared_distance(&b) - b.squared_distance(&a)).abs() < 1e-12);
            prop_assert!(a.squared_distance(&b) >= 0.0);
            prop_assert!((a.squared_distance(&a)).abs() < 1e-12);
            if a_idx != b_idx {
                prop_assert!(a.squared_distance(&b) > 0.0);
            }
        }
    }
}
