//! Log sessions — the unit of collected feedback.
//!
//! "A typical relevance feedback round can be viewed as a unit of user log
//! session. For each user log session, suppose there are N_l images
//! returned to be judged by users, which are marked as relevant or
//! irrelevant."

use serde::{Deserialize, Serialize};

/// A single relevance judgment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Relevance {
    /// The user marked the image relevant (`+1` in the relevance matrix).
    Relevant,
    /// The user marked the image irrelevant (`−1`).
    Irrelevant,
}

impl Relevance {
    /// The matrix encoding: `+1.0` / `−1.0`.
    pub fn sign(self) -> f64 {
        match self {
            Relevance::Relevant => 1.0,
            Relevance::Irrelevant => -1.0,
        }
    }

    /// Builds from a boolean "is relevant" judgment.
    pub fn from_bool(relevant: bool) -> Self {
        if relevant {
            Relevance::Relevant
        } else {
            Relevance::Irrelevant
        }
    }
}

/// One feedback round: a set of judged images. Unjudged images are
/// implicitly `0` ("unknown") in the relevance matrix.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LogSession {
    /// `(image_id, judgment)` pairs; image ids are indices into the image
    /// database that the store was created for.
    judgments: Vec<(usize, Relevance)>,
}

impl LogSession {
    /// Builds a session from judgments.
    ///
    /// # Panics
    /// Panics if the same image is judged twice in one session (a session
    /// is one screen of results; duplicates indicate a caller bug).
    pub fn new(mut judgments: Vec<(usize, Relevance)>) -> Self {
        judgments.sort_unstable_by_key(|&(id, _)| id);
        for w in judgments.windows(2) {
            assert!(
                w[0].0 != w[1].0,
                "image {} judged twice in one session",
                w[0].0
            );
        }
        Self { judgments }
    }

    /// Number of judged images (the paper's per-session `N_l`, 20 in its
    /// collection protocol).
    pub fn len(&self) -> usize {
        self.judgments.len()
    }

    /// `true` when the session judged nothing.
    pub fn is_empty(&self) -> bool {
        self.judgments.is_empty()
    }

    /// Iterates `(image_id, judgment)` in image-id order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Relevance)> + '_ {
        self.judgments.iter().copied()
    }

    /// The judgment for `image_id`, if this session judged it.
    pub fn judgment(&self, image_id: usize) -> Option<Relevance> {
        self.judgments
            .binary_search_by_key(&image_id, |&(id, _)| id)
            .ok()
            .map(|pos| self.judgments[pos].1)
    }

    /// Count of relevant marks.
    pub fn n_relevant(&self) -> usize {
        self.judgments
            .iter()
            .filter(|&&(_, r)| r == Relevance::Relevant)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relevance_signs() {
        assert_eq!(Relevance::Relevant.sign(), 1.0);
        assert_eq!(Relevance::Irrelevant.sign(), -1.0);
        assert_eq!(Relevance::from_bool(true), Relevance::Relevant);
        assert_eq!(Relevance::from_bool(false), Relevance::Irrelevant);
    }

    #[test]
    fn session_sorts_and_looks_up() {
        let s = LogSession::new(vec![
            (9, Relevance::Irrelevant),
            (2, Relevance::Relevant),
            (5, Relevance::Relevant),
        ]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.n_relevant(), 2);
        assert_eq!(s.judgment(2), Some(Relevance::Relevant));
        assert_eq!(s.judgment(9), Some(Relevance::Irrelevant));
        assert_eq!(s.judgment(4), None);
        let ids: Vec<usize> = s.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![2, 5, 9]);
    }

    #[test]
    #[should_panic(expected = "judged twice")]
    fn duplicate_judgment_rejected() {
        let _ = LogSession::new(vec![(1, Relevance::Relevant), (1, Relevance::Irrelevant)]);
    }

    #[test]
    fn empty_session_is_allowed() {
        let s = LogSession::new(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.n_relevant(), 0);
    }
}
