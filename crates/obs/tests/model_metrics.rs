//! Model-checked invariants of the lock-free instruments.
//!
//! The observability layer sits on the hottest paths, so its claims are
//! proved, not assumed, under the vendored loom-style checker (every
//! interleaving of the instrumented atomic operations within the bounded
//! schedule space):
//!
//! * **Losslessness** — N concurrent `inc`/`record` calls always land as
//!   N counted events once the threads join.
//! * **Tear-freedom** — a snapshot racing the recorders never observes a
//!   state where a sample's bucket count is visible but its contribution
//!   to `sum`/`max` is not (the release-before-bucket / acquire-buckets-
//!   first protocol documented in `lrf_obs::metrics`).
//!
//! The histograms here use `with_max_value` to keep the atomic count (and
//! thus the schedule space) small; the bucket math itself is covered by
//! unit and property tests in the crate.

use lrf_obs::{Counter, Histogram, Registry};
use lrf_sync::Arc;

#[test]
fn concurrent_counter_increments_are_lossless() {
    let report = loom::explore(|| {
        let c = Arc::new(Counter::new());
        let t = {
            let c = Arc::clone(&c);
            loom::thread::spawn(move || {
                c.inc();
                c.add(2);
            })
        };
        c.inc();
        // A racing read sees some prefix of the four increments.
        assert!(c.get() <= 4);
        t.join().unwrap();
        assert_eq!(c.get(), 4, "an increment was lost");
    })
    .expect("counter increments must be lossless");
    assert!(report.executions > 1);
}

#[test]
fn concurrent_histogram_records_are_lossless_and_snapshots_tear_free() {
    let report = loom::explore(|| {
        // Two buckets only (values clamp to 1): the smallest histogram
        // that still exercises the sum/max/bucket ordering protocol.
        let h = Arc::new(Histogram::with_max_value(1));
        let recorders: Vec<_> = (0..2)
            .map(|_| {
                let h = Arc::clone(&h);
                loom::thread::spawn(move || h.record(1))
            })
            .collect();
        // Snapshot racing both recorders: every record whose bucket count
        // is visible must already be in sum (≥) and bounded by max.
        let s = h.snapshot();
        assert!(s.count <= 2, "phantom record: count {}", s.count);
        assert!(
            s.sum >= s.count,
            "torn snapshot: {} records visible but sum {}",
            s.count,
            s.sum
        );
        assert!(s.sum <= 2, "sum overshot the records started");
        if s.count > 0 {
            assert_eq!(s.max, 1, "record visible before its max was published");
        }
        for r in recorders {
            r.join().unwrap();
        }
        let final_snap = h.snapshot();
        assert_eq!(final_snap.count, 2, "a record was lost");
        assert_eq!(final_snap.sum, 2);
        assert_eq!(final_snap.max, 1);
    })
    .expect("histogram records must be lossless and snapshots tear-free");
    assert!(report.executions > 1);
}

#[test]
fn racing_get_or_create_yields_one_instrument() {
    let report = loom::explore(|| {
        let r = Arc::new(Registry::new());
        let t = {
            let r = Arc::clone(&r);
            loom::thread::spawn(move || r.counter("requests_total").inc())
        };
        r.counter("requests_total").inc();
        t.join().unwrap();
        assert_eq!(
            r.snapshot().counter("requests_total"),
            Some(2),
            "the racing registrations must resolve to one shared counter"
        );
    })
    .expect("registry get-or-create must be race-free");
    assert!(report.executions > 1);
}
