//! Lock-free metric instruments: [`Counter`], [`Gauge`], [`Histogram`].
//!
//! All three are plain atomics from the `lrf-sync` facade, so recording
//! never takes a lock and the loom model checker can explore every
//! interleaving of concurrent `record`/`snapshot` pairs (see
//! `tests/model_metrics.rs`).
//!
//! ## Histogram layout and error bound
//!
//! [`Histogram`] buckets values (u64, typically nanoseconds) on a
//! **log-linear** grid: values below [`SUB_BUCKETS`] get one bucket each
//! (exact), and every power-of-two octave above is split into
//! [`SUB_BUCKETS`] equal-width sub-buckets. A quantile estimate returns
//! the midpoint of the bucket holding the target rank, so its relative
//! error is bounded by half a bucket width over the bucket's lower bound:
//!
//! ```text
//! |estimate − exact| ≤ width/2 ≤ lo / (2·SUB_BUCKETS) = exact / 64
//! ```
//!
//! i.e. **≤ 1/64 ≈ 1.6 % relative error** (exact below [`SUB_BUCKETS`],
//! and `quantile(1.0)` returns the separately tracked maximum, which is
//! exact). The property tests in this module verify the bound against
//! sorted-sample quantiles.
//!
//! ## Tear-free snapshots
//!
//! `record` publishes `sum` and `max` (release) *before* the bucket
//! count; `snapshot` reads bucket counts (acquire) *before* `max` and
//! `sum`. Every record visible in a snapshot's `count` therefore has its
//! value already included in that snapshot's `sum` and bounded by its
//! `max` — a concurrent snapshot can run behind, never torn. The loom
//! model test proves this exhaustively.

use lrf_sync::atomic::{AtomicU64, Ordering};
use serde::{Deserialize, Serialize};

/// Sub-buckets per power-of-two octave (and the size of the exact linear
/// region). Higher means finer quantiles and more memory; 32 gives the
/// documented 1/64 relative-error bound in ~15 KiB per histogram.
pub const SUB_BUCKETS: usize = 32;
const LOG2_SUB: u32 = SUB_BUCKETS.trailing_zeros();
/// Buckets needed to cover the full `u64` range.
pub const NUM_BUCKETS: usize = (64 - LOG2_SUB as usize) * SUB_BUCKETS + SUB_BUCKETS;

/// The bucket index for a value. Exact (identity) below [`SUB_BUCKETS`];
/// log-linear above.
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        value as usize
    } else {
        let exponent = 63 - value.leading_zeros();
        let shift = exponent - LOG2_SUB;
        (shift as usize + 1) * SUB_BUCKETS + ((value >> shift) as usize - SUB_BUCKETS)
    }
}

/// The inclusive `(low, high)` value range of a bucket.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < SUB_BUCKETS {
        (index as u64, index as u64)
    } else {
        let octave = index / SUB_BUCKETS;
        let sub = (index % SUB_BUCKETS) as u64;
        let shift = (octave - 1) as u32;
        let lo = (SUB_BUCKETS as u64 + sub) << shift;
        let width = 1u64 << shift;
        (lo, lo + (width - 1))
    }
}

/// The representative (midpoint) value reported for a bucket.
fn bucket_mid(index: usize) -> u64 {
    let (lo, hi) = bucket_bounds(index);
    lo + (hi - lo) / 2
}

/// A monotonically increasing event count.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

/// A value that goes up and down (resident sessions, queue depth).
#[derive(Debug)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Sets the gauge.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Increments the gauge (e.g. a job entering a queue).
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements the gauge, saturating at zero — a decrement racing a
    /// reset must not wrap a depth gauge to 2⁶⁴.
    pub fn dec(&self) {
        let mut cur = self.value.load(Ordering::Relaxed);
        while let Err(seen) = self.value.compare_exchange(
            cur,
            cur.saturating_sub(1),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            cur = seen;
        }
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

/// A lock-free log-linear histogram of `u64` samples (see the module docs
/// for the bucket layout and quantile error bound).
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    max: AtomicU64,
    /// Records above this are clamped into the top bucket.
    limit: u64,
}

impl Histogram {
    /// A histogram covering the full `u64` range (1920 buckets, ~15 KiB).
    pub fn new() -> Self {
        Self::with_max_value(u64::MAX)
    }

    /// A histogram whose trackable range is capped at `max_value`
    /// (records above it are clamped). Allocates only the buckets the
    /// range needs — useful where footprint or (in model tests) the
    /// number of atomics matters.
    pub fn with_max_value(max_value: u64) -> Self {
        let n = bucket_index(max_value) + 1;
        Self {
            buckets: (0..n).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            limit: max_value,
        }
    }

    /// Records one sample. Lock-free: one `fetch_add` on `sum`, a
    /// compare-exchange loop on `max` (uncontended in the common case),
    /// one `fetch_add` on the bucket. The ordering protocol (sum/max
    /// release-before-bucket) is what makes concurrent snapshots
    /// tear-free; see the module docs.
    pub fn record(&self, value: u64) {
        let v = value.min(self.limit);
        self.sum.fetch_add(v, Ordering::Release);
        let mut cur = self.max.load(Ordering::Relaxed);
        while v > cur {
            match self
                .max
                .compare_exchange(cur, v, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Release);
    }

    /// A consistent point-in-time view (see the module docs for the
    /// guarantee under concurrent `record`s).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (index, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Acquire);
            if c > 0 {
                count += c;
                buckets.push(BucketCount { index, count: c });
            }
        }
        let max = self.max.load(Ordering::Acquire);
        let sum = self.sum.load(Ordering::Acquire);
        HistogramSnapshot {
            count,
            sum,
            max: if count == 0 { 0 } else { max },
            buckets,
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// One occupied histogram bucket (sparse representation).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Bucket index; decode with [`bucket_bounds`].
    pub index: usize,
    /// Samples recorded into the bucket.
    pub count: u64,
}

/// An immutable, mergeable view of a [`Histogram`]. Integer-only, so it
/// derives `Eq` and round-trips exactly through serde.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (clamped samples contribute their clamped
    /// value).
    pub sum: u64,
    /// Largest sample (exact, not bucketed). Zero when empty.
    pub max: u64,
    /// Occupied buckets in ascending index order.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// The `q`-quantile estimate (`q` clamped to `[0, 1]`): the midpoint
    /// of the bucket holding rank `ceil(q·count)`, within the documented
    /// 1/64 relative-error bound of the exact sorted-sample quantile.
    /// `quantile(1.0)` returns [`max`](Self::max) exactly; an empty
    /// snapshot returns 0.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = ((q.max(0.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for b in &self.buckets {
            seen += b.count;
            if seen >= target {
                return bucket_mid(b.index);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Arithmetic mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds `other` into `self` (bucket-wise sum) — snapshots from
    /// different shards/instances merge into one distribution with the
    /// same error bound.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        let mut merged: Vec<BucketCount> = Vec::with_capacity(self.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(x), Some(y)) if x.index == y.index => {
                    merged.push(BucketCount {
                        index: x.index,
                        count: x.count + y.count,
                    });
                    a.next();
                    b.next();
                }
                (Some(x), Some(y)) if x.index < y.index => {
                    merged.push(**x);
                    a.next();
                }
                (Some(_), Some(y)) => {
                    merged.push(**y);
                    b.next();
                }
                (Some(x), None) => {
                    merged.push(**x);
                    a.next();
                }
                (None, Some(y)) => {
                    merged.push(**y);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gauge_inc_dec_saturates_at_zero() {
        let g = Gauge::new();
        g.dec();
        assert_eq!(g.get(), 0, "decrementing an empty gauge must not wrap");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(7);
        g.dec();
        assert_eq!(g.get(), 6);
    }

    #[test]
    fn bucket_index_is_monotone_and_bounds_invert_it() {
        let probes = [
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            65,
            1000,
            4096,
            1 << 20,
            (1 << 40) + 12345,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut last = None;
        for &v in &probes {
            let i = bucket_index(v);
            assert!(i < NUM_BUCKETS, "index {i} out of range for {v}");
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "{v} outside its bucket [{lo}, {hi}]");
            if let Some(prev) = last {
                assert!(i >= prev, "index must be monotone in the value");
            }
            last = Some(i);
        }
        // Exhaustive inversion over the first octaves.
        for v in 0u64..4096 {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi);
        }
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        assert_eq!(g.get(), 7);
        g.set(2);
        assert_eq!(g.get(), 2);
    }

    #[test]
    fn histogram_tracks_count_sum_max_exactly() {
        let h = Histogram::new();
        for v in [0u64, 1, 31, 32, 1000, 123_456_789] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 123_457_853);
        assert_eq!(s.max, 123_456_789);
        assert_eq!(s.quantile(1.0), 123_456_789, "p100 is the exact max");
    }

    #[test]
    fn values_below_the_linear_region_are_exact() {
        let h = Histogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        let s = h.snapshot();
        for (rank, v) in (1..=SUB_BUCKETS as u64).zip(0..) {
            let q = rank as f64 / SUB_BUCKETS as f64;
            assert_eq!(s.quantile(q - 1e-9), v, "rank {rank}");
        }
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.sum, s.max), (0, 0, 0));
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn with_max_value_clamps_records() {
        let h = Histogram::with_max_value(31);
        h.record(5);
        h.record(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 36, "the huge record clamps to the limit");
        assert_eq!(s.max, 31);
    }

    #[test]
    fn snapshots_roundtrip_through_serde() {
        let h = Histogram::new();
        for v in [3u64, 77, 500_000] {
            h.record(v);
        }
        let s = h.snapshot();
        let json = serde_json::to_string(&s).unwrap();
        let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    /// The exact sorted-sample quantile matching `quantile`'s rank rule.
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let n = sorted.len() as f64;
        let rank = ((q * n).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    proptest! {
        /// The headline guarantee: every quantile estimate is within the
        /// documented 1/64 relative error of the exact sorted-sample
        /// quantile, across the linear region, octave boundaries, and
        /// values up to 2^40.
        #[test]
        fn quantiles_within_documented_bound(
            values in proptest::collection::vec(0u64..(1 << 40), 1..300),
            qs in proptest::collection::vec(0.0f64..1.0, 1..8),
        ) {
            let h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let s = h.snapshot();
            let mut sorted = values.clone();
            sorted.sort_unstable();
            prop_assert_eq!(s.count, values.len() as u64);
            prop_assert_eq!(s.max, *sorted.last().unwrap());
            for &q in qs.iter().chain([0.5, 0.9, 0.99, 1.0].iter()) {
                let exact = exact_quantile(&sorted, q);
                let est = s.quantile(q);
                let bound = exact / 64; // exact/2^LOG2_SUB·2 — see module docs
                prop_assert!(
                    est.abs_diff(exact) <= bound,
                    "q={} est={} exact={} bound={}", q, est, exact, bound
                );
            }
        }

        /// Merging per-shard snapshots equals one histogram over the
        /// concatenated samples.
        #[test]
        fn merge_equals_single_histogram(
            a in proptest::collection::vec(0u64..(1 << 30), 0..120),
            b in proptest::collection::vec(0u64..(1 << 30), 0..120),
        ) {
            let (ha, hb, hall) = (Histogram::new(), Histogram::new(), Histogram::new());
            for &v in &a { ha.record(v); hall.record(v); }
            for &v in &b { hb.record(v); hall.record(v); }
            let mut merged = ha.snapshot();
            merged.merge(&hb.snapshot());
            prop_assert_eq!(merged, hall.snapshot());
        }
    }
}
