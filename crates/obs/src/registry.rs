//! The metrics registry: named instruments, shared handles, mergeable
//! snapshots.
//!
//! Registration (`counter`/`gauge`/`histogram`) takes a short mutex on a
//! name table and hands back an `Arc` handle; callers retain the handle,
//! so the **hot path never touches the registry** — recording is the
//! instrument's own lock-free atomics. Registries are per-instance (a
//! `Service` owns one), not global: tests can assert exact counts without
//! cross-talk from parallel test threads.
//!
//! [`Registry::snapshot`] freezes every instrument into a
//! [`RegistrySnapshot`] — integer-only, `Eq`, serde-serializable (the
//! `Request::Metrics` payload) and renderable as Prometheus text
//! ([`crate::prometheus::render`]).

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use lrf_sync::{Arc, Mutex, MutexExt};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A named collection of instruments. Cheap to share behind an `Arc`.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(
            self.counters
                .lock_recover()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Registers an externally owned counter under `name`, so counts
    /// maintained inside another component (e.g. a store's internal
    /// counters) appear in this registry's snapshots. If the name is
    /// already registered the existing instrument wins; the returned
    /// handle is whichever the registry now holds.
    pub fn adopt_counter(&self, name: &str, counter: Arc<Counter>) -> Arc<Counter> {
        Arc::clone(
            self.counters
                .lock_recover()
                .entry(name.to_string())
                .or_insert(counter),
        )
    }

    /// The gauge named `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(
            self.gauges
                .lock_recover()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// The histogram named `name`, created on first use (full `u64`
    /// range).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Arc::clone(
            self.histograms
                .lock_recover()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Freezes every instrument, names sorted, into one serializable
    /// snapshot.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let counters = self
            .counters
            .lock_recover()
            .iter()
            .map(|(name, c)| CounterSnapshot {
                name: name.clone(),
                value: c.get(),
            })
            .collect();
        let gauges = self
            .gauges
            .lock_recover()
            .iter()
            .map(|(name, g)| GaugeSnapshot {
                name: name.clone(),
                value: g.get(),
            })
            .collect();
        let histograms = self
            .histograms
            .lock_recover()
            .iter()
            .map(|(name, h)| HistogramEntry {
                name: name.clone(),
                histogram: h.snapshot(),
            })
            .collect();
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// One counter's frozen value.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Instrument name.
    pub name: String,
    /// Count at snapshot time.
    pub value: u64,
}

/// One gauge's frozen value.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Instrument name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// One histogram's frozen distribution.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramEntry {
    /// Instrument name.
    pub name: String,
    /// The frozen distribution.
    pub histogram: HistogramSnapshot,
}

/// A frozen registry: every instrument by name, sorted. Integer-only so
/// it derives `Eq` and round-trips exactly through serde; quantiles are
/// computed on demand from the bucket counts.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// All counters, name-sorted.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, name-sorted.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, name-sorted.
    pub histograms: Vec<HistogramEntry>,
}

impl RegistrySnapshot {
    /// The named counter's value, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The named gauge's value, if present.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// The named histogram's distribution, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|h| h.name == name)
            .map(|h| &h.histogram)
    }

    /// Folds `other` into `self`: counters add, histograms merge
    /// distribution-wise, and for gauges (a point-in-time reading, not an
    /// accumulation) `other`'s value wins. Instruments present on one
    /// side only are kept. Name order is preserved.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for oc in &other.counters {
            match self.counters.iter_mut().find(|c| c.name == oc.name) {
                Some(c) => c.value += oc.value,
                None => self.counters.push(oc.clone()),
            }
        }
        self.counters.sort_by(|a, b| a.name.cmp(&b.name));
        for og in &other.gauges {
            match self.gauges.iter_mut().find(|g| g.name == og.name) {
                Some(g) => g.value = og.value,
                None => self.gauges.push(og.clone()),
            }
        }
        self.gauges.sort_by(|a, b| a.name.cmp(&b.name));
        for oh in &other.histograms {
            match self.histograms.iter_mut().find(|h| h.name == oh.name) {
                Some(h) => h.histogram.merge(&oh.histogram),
                None => self.histograms.push(oh.clone()),
            }
        }
        self.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_instrument() {
        let r = Registry::new();
        let a = r.counter("requests_total");
        let b = r.counter("requests_total");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("requests_total").get(), 3);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn adopt_exposes_an_external_counter() {
        let r = Registry::new();
        let external = Arc::new(Counter::new());
        external.add(5);
        r.adopt_counter("log_appends_total", Arc::clone(&external));
        external.add(2);
        assert_eq!(r.snapshot().counter("log_appends_total"), Some(7));
        // An existing registration wins over a later adoption.
        let other = Arc::new(Counter::new());
        let kept = r.adopt_counter("log_appends_total", other);
        assert!(Arc::ptr_eq(&kept, &external));
    }

    #[test]
    fn snapshot_is_name_sorted_and_queryable() {
        let r = Registry::new();
        r.counter("zeta").add(1);
        r.counter("alpha").add(2);
        r.gauge("active").set(4);
        r.histogram("latency_ns").record(99);
        let s = r.snapshot();
        let names: Vec<&str> = s.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["alpha", "zeta"]);
        assert_eq!(s.counter("alpha"), Some(2));
        assert_eq!(s.counter("missing"), None);
        assert_eq!(s.gauge("active"), Some(4));
        assert_eq!(s.histogram("latency_ns").unwrap().count, 1);
    }

    #[test]
    fn snapshot_roundtrips_through_serde() {
        let r = Registry::new();
        r.counter("a").add(3);
        r.gauge("g").set(1);
        let h = r.histogram("h");
        h.record(10);
        h.record(2_000_000);
        let s = r.snapshot();
        let json = serde_json::to_string(&s).unwrap();
        let back: RegistrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn merge_adds_counters_and_merges_histograms() {
        let (ra, rb) = (Registry::new(), Registry::new());
        ra.counter("shared").add(2);
        rb.counter("shared").add(5);
        rb.counter("only_b").add(1);
        ra.gauge("active").set(3);
        rb.gauge("active").set(9);
        ra.histogram("lat").record(100);
        rb.histogram("lat").record(200);
        let mut merged = ra.snapshot();
        merged.merge(&rb.snapshot());
        assert_eq!(merged.counter("shared"), Some(7));
        assert_eq!(merged.counter("only_b"), Some(1));
        assert_eq!(merged.gauge("active"), Some(9), "gauge: right-hand wins");
        let h = merged.histogram("lat").unwrap();
        assert_eq!((h.count, h.sum, h.max), (2, 300, 200));
    }
}
