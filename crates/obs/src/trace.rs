//! The tracing facade: scope guards that record stage durations into
//! histograms, and the [`span!`](crate::span)/[`event!`](crate::event)
//! macro sugar over them.
//!
//! No background collector, no thread-locals, no allocation: a
//! [`SpanTimer`] reads the injected [`Clock`] twice and does one lock-free
//! [`Histogram::record`] on drop. That keeps per-span overhead in the
//! tens of nanoseconds — small enough to leave enabled on the hottest
//! request path (the CI bench gate asserts < 5 % service overhead).

use crate::clock::Clock;
use crate::metrics::{Counter, Histogram};

/// Times a scope into a histogram: starts on construction, records the
/// elapsed nanoseconds when dropped (or explicitly via [`stop`]).
///
/// [`stop`]: SpanTimer::stop
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct SpanTimer<'a> {
    clock: &'a dyn Clock,
    histogram: &'a Histogram,
    started_ns: u64,
}

impl<'a> SpanTimer<'a> {
    /// Starts the span.
    pub fn start(clock: &'a dyn Clock, histogram: &'a Histogram) -> Self {
        Self {
            clock,
            histogram,
            started_ns: clock.now_ns(),
        }
    }

    /// Nanoseconds since the span started.
    pub fn elapsed_ns(&self) -> u64 {
        self.clock.now_ns().saturating_sub(self.started_ns)
    }

    /// Ends the span now, returning the recorded duration.
    pub fn stop(self) -> u64 {
        let elapsed = self.elapsed_ns();
        self.histogram.record(elapsed);
        std::mem::forget(self);
        elapsed
    }
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        self.histogram.record(self.elapsed_ns());
    }
}

/// Starts a [`SpanTimer`] over a clock and histogram:
/// `let _span = span!(clock, histogram);`.
#[macro_export]
macro_rules! span {
    ($clock:expr, $histogram:expr) => {
        $crate::SpanTimer::start($clock, $histogram)
    };
}

/// Counts an event: `event!(counter)` adds one, `event!(counter, n)` adds
/// `n`.
#[macro_export]
macro_rules! event {
    ($counter:expr) => {
        $crate::trace::count_event($counter, 1)
    };
    ($counter:expr, $n:expr) => {
        $crate::trace::count_event($counter, $n)
    };
}

/// The function behind [`event!`](crate::event) (a call site the macro
/// can expand to without caring whether `$counter` is a `Counter`,
/// `&Counter`, or `Arc<Counter>`).
pub fn count_event(counter: &Counter, n: u64) {
    counter.add(n);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn span_records_elapsed_on_drop() {
        let clock = ManualClock::new();
        let h = Histogram::new();
        {
            let span = SpanTimer::start(&clock, &h);
            clock.advance(120);
            assert_eq!(span.elapsed_ns(), 120);
            clock.advance(30);
        }
        let s = h.snapshot();
        assert_eq!((s.count, s.sum), (1, 150));
    }

    #[test]
    fn stop_records_exactly_once() {
        let clock = ManualClock::new();
        let h = Histogram::new();
        let span = SpanTimer::start(&clock, &h);
        clock.advance(40);
        assert_eq!(span.stop(), 40);
        let s = h.snapshot();
        assert_eq!(
            (s.count, s.sum),
            (1, 40),
            "drop after stop must not double-record"
        );
    }

    #[test]
    fn macros_expand_to_the_guards() {
        let clock = ManualClock::new();
        let h = Histogram::new();
        let c = Counter::new();
        {
            let _span = span!(&clock, &h);
            clock.advance(9);
            event!(&c);
            event!(&c, 4);
        }
        assert_eq!(h.snapshot().sum, 9);
        assert_eq!(c.get(), 5);
    }
}
