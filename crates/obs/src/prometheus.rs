//! Prometheus text-format rendering of a [`RegistrySnapshot`].
//!
//! Produces [exposition format 0.0.4] — the plain-text page a
//! `/metrics` endpoint serves. Counters and gauges render as single
//! samples; histograms render as the conventional cumulative
//! `_bucket{le="…"}` series plus `_sum` and `_count`, with `le`
//! thresholds taken from the log-linear buckets' inclusive upper bounds.
//!
//! Instrument names are sanitized into the metric-name alphabet
//! (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every other character becomes `_`, and a
//! leading digit gets a `_` prefix.
//!
//! [exposition format 0.0.4]:
//!     https://prometheus.io/docs/instrumenting/exposition_formats/

use crate::metrics::bucket_bounds;
use crate::registry::RegistrySnapshot;
use std::fmt::Write as _;

/// A metric name restricted to the Prometheus alphabet.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Renders the snapshot as a Prometheus text page.
pub fn render(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for c in &snapshot.counters {
        let name = sanitize(&c.name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {}", c.value);
    }
    for g in &snapshot.gauges {
        let name = sanitize(&g.name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", g.value);
    }
    for h in &snapshot.histograms {
        let name = sanitize(&h.name);
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for b in &h.histogram.buckets {
            cumulative += b.count;
            let (_, hi) = bucket_bounds(b.index);
            let _ = writeln!(out, "{name}_bucket{{le=\"{hi}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.histogram.count);
        let _ = writeln!(out, "{name}_sum {}", h.histogram.sum);
        let _ = writeln!(out, "{name}_count {}", h.histogram.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn sanitizes_names_into_the_metric_alphabet() {
        assert_eq!(sanitize("request_latency_ns"), "request_latency_ns");
        assert_eq!(
            sanitize("stage/session-lookup.ns"),
            "stage_session_lookup_ns"
        );
        assert_eq!(sanitize("9lives"), "_9lives");
        assert_eq!(sanitize(""), "_");
    }

    #[test]
    fn renders_counters_gauges_and_cumulative_histograms() {
        let r = Registry::new();
        r.counter("requests_total").add(3);
        r.gauge("active_sessions").set(2);
        let h = r.histogram("latency_ns");
        h.record(5);
        h.record(5);
        h.record(40);
        let page = render(&r.snapshot());

        assert!(page.contains("# TYPE requests_total counter\nrequests_total 3\n"));
        assert!(page.contains("# TYPE active_sessions gauge\nactive_sessions 2\n"));
        assert!(page.contains("# TYPE latency_ns histogram\n"));
        // Buckets are cumulative: two samples at 5, then three total ≤ 40.
        assert!(page.contains("latency_ns_bucket{le=\"5\"} 2\n"));
        assert!(page.contains("latency_ns_bucket{le=\"40\"} 3\n"));
        assert!(page.contains("latency_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(page.contains("latency_ns_sum 50\n"));
        assert!(page.contains("latency_ns_count 3\n"));
    }

    #[test]
    fn every_line_is_well_formed() {
        let r = Registry::new();
        r.counter("c").add(1);
        r.gauge("g").set(1);
        r.histogram("h").record(123_456);
        for line in render(&r.snapshot()).lines() {
            assert!(
                line.starts_with("# TYPE ") || {
                    let mut parts = line.split(' ');
                    let name = parts.next().unwrap_or("");
                    let value = parts.next().unwrap_or("");
                    let name_ok = name
                        .trim_end_matches(|c: char| c != '}' && c != '{')
                        .chars()
                        .take_while(|&c| c != '{')
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':');
                    name_ok && value.parse::<u64>().is_ok() && parts.next().is_none()
                },
                "malformed line: {line}"
            );
        }
    }
}
