//! # lrf-obs — the workspace observability layer
//!
//! One small crate answers "what is the serving tier doing right now":
//!
//! * **Instruments** ([`Counter`], [`Gauge`], [`Histogram`]): lock-free
//!   atomics from the `lrf-sync` facade, so the loom model checker can
//!   prove concurrent recording lossless and snapshots tear-free (see
//!   `tests/model_metrics.rs`). Histograms are log-linear with a
//!   documented ≤ 1/64 (≈ 1.6 %) relative error on quantile estimates
//!   and exact `count`/`sum`/`max`.
//! * **Registry** ([`Registry`] → [`RegistrySnapshot`]): named handles
//!   resolved once at startup; the hot path records through retained
//!   `Arc`s and never touches the registry lock. Snapshots are
//!   integer-only serde values — mergeable across shards, comparable
//!   with `==` in tests, servable as JSON.
//! * **Tracing** ([`SpanTimer`], [`span!`], [`event!`]): scope guards
//!   that time a stage into a histogram via an injectable [`Clock`] —
//!   [`MonotonicClock`] in production (the single sanctioned wall-clock
//!   read, enforced by `tools/lint`'s `wall-clock` rule),
//!   [`ManualClock`] in tests.
//! * **Export** ([`prometheus::render`]): the standard text exposition
//!   format, cumulative `_bucket`/`_sum`/`_count` series included, ready
//!   for a `/metrics` endpoint.
//!
//! ## Example
//!
//! ```
//! use lrf_obs::{ManualClock, Registry, span};
//!
//! let registry = Registry::new();
//! let latency = registry.histogram("request_latency_ns");
//! let requests = registry.counter("requests_total");
//! let clock = ManualClock::new();
//!
//! for _ in 0..3 {
//!     let _span = span!(&clock, &latency);
//!     clock.advance(1_000);
//!     requests.inc();
//! }
//!
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("requests_total"), Some(3));
//! let p50 = snap.histogram("request_latency_ns").unwrap().p50();
//! assert!(p50.abs_diff(1_000) <= 1_000 / 64); // documented quantile error bound
//! let page = lrf_obs::prometheus::render(&snap);
//! assert!(page.contains("request_latency_ns_count 3"));
//! ```

pub mod clock;
pub mod metrics;
pub mod prometheus;
pub mod registry;
pub mod trace;

pub use clock::{Clock, ClockRef, ManualClock, MonotonicClock};
pub use metrics::{
    bucket_bounds, bucket_index, BucketCount, Counter, Gauge, Histogram, HistogramSnapshot,
    NUM_BUCKETS, SUB_BUCKETS,
};
pub use registry::{CounterSnapshot, GaugeSnapshot, HistogramEntry, Registry, RegistrySnapshot};
pub use trace::SpanTimer;
