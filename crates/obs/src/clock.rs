//! The injectable time source.
//!
//! Nothing in the workspace outside this module reads the wall clock
//! (`tools/lint`'s `wall-clock` rule enforces it): timed code takes a
//! [`Clock`] and the caller decides whether time is real
//! ([`MonotonicClock`]) or logical ([`ManualClock`]). That keeps session
//! logic deterministic and lets tests drive span durations by hand.

use lrf_sync::atomic::{AtomicU64, Ordering};

/// A monotone nanosecond source.
pub trait Clock: Send + Sync {
    /// Nanoseconds since the clock's origin. Monotone non-decreasing.
    fn now_ns(&self) -> u64;
}

/// A shared clock handle. Plain `std::sync::Arc` (not the facade's
/// instrumented one, which cannot hold trait objects): the handle itself
/// carries no state the model checker needs to interleave.
pub type ClockRef = std::sync::Arc<dyn Clock>;

/// Real time, anchored at construction — the production clock, and the
/// single sanctioned wall-clock read site in the workspace.
#[derive(Clone, Copy, Debug)]
pub struct MonotonicClock {
    // lrf-lint: allow(wall-clock): MonotonicClock IS the Clock trait's
    // production backend — the one place wall time may be read. Everything
    // else injects `Clock`.
    origin: std::time::Instant,
}

impl MonotonicClock {
    /// A clock whose origin is now.
    pub fn new() -> Self {
        Self {
            // lrf-lint: allow(wall-clock): the sanctioned wall-clock read
            // (see the field's justification above)
            origin: std::time::Instant::now(),
        }
    }

    /// A shared handle to a fresh monotonic clock.
    pub fn shared() -> ClockRef {
        std::sync::Arc::new(Self::new())
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // > 500 years of nanoseconds fit in u64; the cast cannot
        // realistically truncate, but saturate anyway.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A hand-driven logical clock for tests: starts at 0, advances only when
/// told to. Shared freely across threads.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A clock at 0 ns.
    pub fn new() -> Self {
        Self::default()
    }

    /// A shared handle to a fresh manual clock. Keep a second
    /// `std::sync::Arc` clone to advance it after handing this one off.
    pub fn shared() -> std::sync::Arc<ManualClock> {
        std::sync::Arc::new(Self::new())
    }

    /// Moves time forward by `ns`.
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_monotone() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_advances_only_by_hand() {
        let c = ManualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(250);
        c.advance(50);
        assert_eq!(c.now_ns(), 300);
    }

    #[test]
    fn clocks_erase_to_trait_objects() {
        let manual = ManualClock::shared();
        let clocks: Vec<ClockRef> = vec![MonotonicClock::shared(), manual.clone()];
        manual.advance(7);
        assert_eq!(clocks[1].now_ns(), 7);
    }
}
