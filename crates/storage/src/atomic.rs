//! Crash-safe whole-file publication.
//!
//! The only safe way to replace a file whose previous contents must
//! survive a crash mid-write: write a sibling temp file, fsync it, then
//! atomically rename over the destination. At no point does the
//! destination name refer to partial data — a crash leaves either the old
//! file or the new one, never a torn hybrid.

use std::io;
use std::path::{Path, PathBuf};

use crate::io::StorageIo;

/// Suffix used for in-flight temp files. Recovery code treats `*.tmp`
/// files as garbage from an interrupted publish and removes them.
pub const TMP_SUFFIX: &str = ".tmp";

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(TMP_SUFFIX);
    PathBuf::from(name)
}

/// Atomically replace `path` with `data`: temp file + fsync + rename.
///
/// On any failure the destination is untouched (the previous content, if
/// any, is still there) and the temp file is removed best-effort.
pub fn atomic_write(io: &dyn StorageIo, path: &Path, data: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    if let Err(e) = io.write(&tmp, data) {
        let _ = io.remove(&tmp);
        return Err(e);
    }
    if let Err(e) = io.sync(&tmp) {
        let _ = io.remove(&tmp);
        return Err(e);
    }
    if let Err(e) = io.rename(&tmp, path) {
        let _ = io.remove(&tmp);
        return Err(e);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultIo, FaultKind, FaultPlan};
    use crate::mem::MemIo;

    #[test]
    fn publishes_atomically_and_survives_crash() {
        let mem = MemIo::handle();
        let p = Path::new("/d/snap.json");
        atomic_write(mem.as_ref(), p, b"v1").unwrap();
        mem.crash();
        assert_eq!(mem.read(p).unwrap(), b"v1");

        atomic_write(mem.as_ref(), p, b"v2").unwrap();
        mem.crash();
        assert_eq!(mem.read(p).unwrap(), b"v2");
    }

    #[test]
    fn failed_sync_leaves_old_content_intact() {
        let mem = MemIo::handle();
        let p = Path::new("/d/snap.json");
        atomic_write(mem.as_ref(), p, b"old").unwrap();

        // Ops per atomic_write through this FaultIo: write(0) sync(1)
        // rename(2). Fault the sync.
        let io = FaultIo::new(
            mem.clone(),
            FaultPlan::new().with_fault(1, FaultKind::SyncFail),
        );
        assert!(atomic_write(&io, p, b"new").is_err());
        assert_eq!(mem.read(p).unwrap(), b"old");
        assert_eq!(mem.file_count(), 1, "temp file cleaned up");
    }

    #[test]
    fn crash_between_sync_and_rename_preserves_old_content() {
        let mem = MemIo::handle();
        let p = Path::new("/d/snap.json");
        atomic_write(mem.as_ref(), p, b"old").unwrap();

        // Second publish: write(0) sync(1) rename(2) — crash at the rename.
        let io = FaultIo::new(mem.clone(), FaultPlan::new().with_crash_at(2));
        assert!(atomic_write(&io, p, b"new").is_err());
        mem.crash();
        assert_eq!(mem.read(p).unwrap(), b"old");
    }
}
