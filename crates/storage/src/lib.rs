//! # lrf-storage — the crash-safe storage layer
//!
//! Everything in the workspace that touches a file does it through this
//! crate (the `raw-fs` lint rule in `tools/lint` enforces it). The point
//! is not abstraction for its own sake: file IO is the one dependency the
//! test suite cannot otherwise control, and crash safety is exactly the
//! property that only shows up when writes tear, fsyncs fail, and the
//! process dies between two of them. Routing every byte through an
//! injectable [`StorageIo`] makes those failures schedulable:
//!
//! * [`StdIo`] — the production backend over `std::fs`.
//! * [`MemIo`] — an in-memory filesystem with a **durable/volatile
//!   split**: writes land in the volatile layer, [`StorageIo::sync`]
//!   promotes them to the durable layer, and [`MemIo::crash`] discards
//!   everything volatile — the precise semantics a power loss has on a
//!   real disk, minus the disk.
//! * [`FaultIo`] — wraps any backend and injects faults on a seeded,
//!   deterministic schedule: torn writes (a strict prefix lands, the call
//!   errors), fsync failures (no durability, the call errors), ENOSPC,
//!   transient bit flips and short reads on the read path, and a crash
//!   point after which every operation fails.
//!
//! On top of the IO trait sits [`Wal`], a checksummed append-only write-
//! ahead log: CRC32-framed records, size-based segment rotation, epoch-
//! numbered atomic compaction into an opaque snapshot (temp file + fsync +
//! rename, see [`atomic_write`]), and recovery that replays intact records
//! and truncates a torn tail — reporting exactly what it dropped.
//!
//! The crate's contract, enforced by the chaos suite in
//! `tests/chaos_wal.rs` across hundreds of seeded fault schedules:
//! **after a crash, recovery returns exactly the acknowledged records** —
//! an append that returned `Ok` is never lost, an append that returned
//! `Err` is never resurrected.

pub mod atomic;
pub mod crc;
pub mod fault;
pub mod io;
pub mod mem;
pub mod wal;

pub use atomic::atomic_write;
pub use crc::crc32;
pub use fault::{FaultIo, FaultKind, FaultPlan};
pub use io::{IoRef, StdIo, StorageIo};
pub use mem::MemIo;
pub use wal::{Wal, WalOptions, WalRecovery};
