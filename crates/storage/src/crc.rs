//! CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320).
//!
//! Small, table-driven, and dependency-free — the WAL frames every record
//! with this checksum so recovery can tell an intact record from a torn
//! or bit-flipped one. Not cryptographic; it guards against accidental
//! corruption, which is the failure mode disks actually have.

const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC32 checksum of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        let idx = ((crc ^ byte as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vector() {
        // The canonical CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"the accumulated user-feedback log".to_vec();
        let clean = crc32(&data);
        data[7] ^= 0x10;
        assert_ne!(crc32(&data), clean);
    }
}
