//! In-memory storage backend with crash semantics.
//!
//! [`MemIo`] models the one property of real disks that matters for
//! durability testing: **writes are not durable until synced**. Every file
//! carries two images — the *volatile* content (what reads observe, i.e.
//! the page cache) and the *durable* content (what survives a crash, i.e.
//! the platters). Mutating operations touch only the volatile image;
//! [`StorageIo::sync`] copies volatile → durable; [`MemIo::crash`] throws
//! away every volatile image, snapping the filesystem back to its durable
//! state. A file that was never synced disappears entirely.
//!
//! Simplification, stated so nobody mistakes it for an accident: `rename`
//! here is atomic *and* durable in one step, matching the post-
//! "rename + fsync(dir)" state that [`StdIo`](crate::StdIo) produces. We
//! do not model the window where a rename itself is torn, because the
//! callers in this workspace only rename after syncing the source (see
//! [`atomic_write`](crate::atomic_write)).

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::{Path, PathBuf};

use lrf_sync::{Mutex, MutexExt};

use crate::io::{IoRef, StorageIo};

#[derive(Debug, Clone)]
struct FileState {
    /// What reads see right now (page cache).
    volatile: Vec<u8>,
    /// What a crash preserves; `None` until the first successful sync.
    durable: Option<Vec<u8>>,
}

#[derive(Debug, Default)]
struct Fs {
    files: BTreeMap<PathBuf, FileState>,
    dirs: BTreeSet<PathBuf>,
}

/// In-memory [`StorageIo`] backend with a durable/volatile split.
#[derive(Debug, Default)]
pub struct MemIo {
    fs: Mutex<Fs>,
}

impl MemIo {
    pub fn new() -> Self {
        Self::default()
    }

    /// Concrete shared handle; coerces to [`IoRef`] where needed.
    pub fn handle() -> std::sync::Arc<MemIo> {
        std::sync::Arc::new(MemIo::new())
    }

    /// Shared handle pre-coerced to the trait object.
    pub fn io_ref() -> IoRef {
        std::sync::Arc::new(MemIo::new())
    }

    /// Simulate a power loss: every file reverts to its durable image;
    /// never-synced files vanish. Directories persist (directory creation
    /// is metadata we treat as durable — the WAL re-creates its directory
    /// on open anyway).
    pub fn crash(&self) {
        self.crash_with_writeback(|_, _| 0);
    }

    /// Crash, but first let background writeback race the power loss:
    /// for each file whose volatile image extends its durable one,
    /// `decide(path, tail_len)` says how many extra tail bytes reached
    /// the platters before the lights went out (clamped to `tail_len`).
    ///
    /// This models the reality that an un-fsynced append is not
    /// guaranteed *lost* — the kernel may have flushed part of it — which
    /// is exactly how torn tails appear on real disks. Chaos tests use a
    /// *strictly partial* writeback (`keep < tail_len`) because a full
    /// flush of an in-flight frame is the single-fsync WAL ambiguity no
    /// recovery scheme can resolve (the record was written but the writer
    /// was never told); see the chaos suite for the precise contract.
    ///
    /// Files whose volatile image is not a pure extension of the durable
    /// one (e.g. a rewritten temp file) keep their durable image as-is —
    /// writeback of non-append modifications is not modeled.
    pub fn crash_with_writeback(&self, mut decide: impl FnMut(&Path, usize) -> usize) {
        let mut fs = self.fs.lock_recover();
        let mut gone = Vec::new();
        for (path, state) in fs.files.iter_mut() {
            let durable_len = state.durable.as_ref().map_or(0, |d| d.len());
            let is_extension = state.volatile.len() >= durable_len
                && state
                    .durable
                    .as_ref()
                    .is_none_or(|d| state.volatile[..durable_len] == d[..]);
            if !is_extension {
                // Rewritten (not appended) content: writeback of it is
                // not modeled — revert to the durable image untouched.
                match &state.durable {
                    Some(d) => state.volatile = d.clone(),
                    None => gone.push(path.clone()),
                }
                continue;
            }
            let tail_len = state.volatile.len() - durable_len;
            let keep = if tail_len == 0 {
                0
            } else {
                decide(path, tail_len).min(tail_len)
            };
            let survives = durable_len + keep;
            if state.durable.is_none() && survives == 0 {
                gone.push(path.clone());
                continue;
            }
            let image = state.volatile[..survives].to_vec();
            state.durable = Some(image.clone());
            state.volatile = image;
        }
        for path in gone {
            fs.files.remove(&path);
        }
    }

    /// Flip one bit in the *durable* image of `path` (silent media
    /// corruption, as opposed to a torn write). Test hook for checksum
    /// coverage; errors if the file or offset does not exist.
    pub fn corrupt_durable(&self, path: &Path, offset: usize, mask: u8) -> io::Result<()> {
        let mut fs = self.fs.lock_recover();
        let state = fs
            .files
            .get_mut(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        let durable = state
            .durable
            .as_mut()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "file never synced"))?;
        if offset >= durable.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "corrupt offset past end of durable image",
            ));
        }
        durable[offset] ^= mask;
        // The page cache would still hold the clean copy in reality, but
        // tests corrupt-then-crash, so mirroring keeps behaviour obvious.
        state.volatile = durable.clone();
        Ok(())
    }

    /// Length of the durable image, if the file has ever been synced.
    pub fn durable_len(&self, path: &Path) -> Option<u64> {
        let fs = self.fs.lock_recover();
        fs.files
            .get(path)
            .and_then(|s| s.durable.as_ref())
            .map(|d| d.len() as u64)
    }

    /// Number of files currently visible (volatile view).
    pub fn file_count(&self) -> usize {
        self.fs.lock_recover().files.len()
    }

    fn not_found() -> io::Error {
        io::Error::new(io::ErrorKind::NotFound, "no such file")
    }
}

impl StorageIo for MemIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let fs = self.fs.lock_recover();
        fs.files
            .get(path)
            .map(|s| s.volatile.clone())
            .ok_or_else(Self::not_found)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut fs = self.fs.lock_recover();
        match fs.files.get_mut(path) {
            Some(state) => state.volatile = data.to_vec(),
            None => {
                fs.files.insert(
                    path.to_path_buf(),
                    FileState {
                        volatile: data.to_vec(),
                        durable: None,
                    },
                );
            }
        }
        Ok(())
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut fs = self.fs.lock_recover();
        match fs.files.get_mut(path) {
            Some(state) => state.volatile.extend_from_slice(data),
            None => {
                fs.files.insert(
                    path.to_path_buf(),
                    FileState {
                        volatile: data.to_vec(),
                        durable: None,
                    },
                );
            }
        }
        Ok(())
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let mut fs = self.fs.lock_recover();
        let state = fs.files.get_mut(path).ok_or_else(Self::not_found)?;
        // Match std's set_len: shrink or zero-extend.
        state.volatile.resize(len as usize, 0);
        Ok(())
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        let mut fs = self.fs.lock_recover();
        let state = fs.files.get_mut(path).ok_or_else(Self::not_found)?;
        state.durable = Some(state.volatile.clone());
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut fs = self.fs.lock_recover();
        let state = fs.files.remove(from).ok_or_else(Self::not_found)?;
        // Durable in one step — see module docs for why.
        fs.files.insert(to.to_path_buf(), state);
        Ok(())
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        let mut fs = self.fs.lock_recover();
        fs.files
            .remove(path)
            .map(|_| ())
            .ok_or_else(Self::not_found)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let fs = self.fs.lock_recover();
        if !fs.dirs.contains(dir) && !fs.files.keys().any(|p| p.parent() == Some(dir)) {
            return Err(io::Error::new(io::ErrorKind::NotFound, "no such directory"));
        }
        Ok(fs
            .files
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .cloned()
            .collect())
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        let mut fs = self.fs.lock_recover();
        let mut cur = Some(dir);
        while let Some(d) = cur {
            fs.dirs.insert(d.to_path_buf());
            cur = d.parent();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsynced_writes_vanish_on_crash() {
        let mem = MemIo::new();
        let p = Path::new("/wal/a.log");
        mem.write(p, b"acked").unwrap();
        mem.sync(p).unwrap();
        mem.append(p, b" not-yet-synced").unwrap();
        assert_eq!(mem.read(p).unwrap(), b"acked not-yet-synced");

        mem.crash();
        assert_eq!(mem.read(p).unwrap(), b"acked");
    }

    #[test]
    fn never_synced_file_disappears_entirely() {
        let mem = MemIo::new();
        let p = Path::new("/wal/ghost.log");
        mem.write(p, b"ephemeral").unwrap();
        mem.crash();
        assert!(mem.read(p).is_err());
    }

    #[test]
    fn rename_is_durable() {
        let mem = MemIo::new();
        let tmp = Path::new("/d/x.tmp");
        let fin = Path::new("/d/x.json");
        mem.write(tmp, b"snapshot").unwrap();
        mem.sync(tmp).unwrap();
        mem.rename(tmp, fin).unwrap();
        mem.crash();
        assert_eq!(mem.read(fin).unwrap(), b"snapshot");
        assert!(mem.read(tmp).is_err());
    }

    #[test]
    fn truncate_shrinks_volatile_only_until_sync() {
        let mem = MemIo::new();
        let p = Path::new("/wal/t.log");
        mem.write(p, b"0123456789").unwrap();
        mem.sync(p).unwrap();
        mem.truncate(p, 4).unwrap();
        assert_eq!(mem.read(p).unwrap(), b"0123");
        mem.crash();
        assert_eq!(mem.read(p).unwrap(), b"0123456789");

        mem.truncate(p, 4).unwrap();
        mem.sync(p).unwrap();
        mem.crash();
        assert_eq!(mem.read(p).unwrap(), b"0123");
    }

    #[test]
    fn list_scopes_to_directory_and_sorts() {
        let mem = MemIo::new();
        mem.create_dir_all(Path::new("/wal")).unwrap();
        mem.write(Path::new("/wal/b.log"), b"").unwrap();
        mem.write(Path::new("/wal/a.log"), b"").unwrap();
        mem.write(Path::new("/other/c.log"), b"").unwrap();
        let listed = mem.list(Path::new("/wal")).unwrap();
        assert_eq!(
            listed,
            vec![PathBuf::from("/wal/a.log"), PathBuf::from("/wal/b.log")]
        );
        assert!(mem.list(Path::new("/nope")).is_err());
    }

    #[test]
    fn corrupt_durable_flips_exactly_one_bit() {
        let mem = MemIo::new();
        let p = Path::new("/wal/c.log");
        mem.write(p, b"payload").unwrap();
        mem.sync(p).unwrap();
        mem.corrupt_durable(p, 0, 0x01).unwrap();
        mem.crash();
        let got = mem.read(p).unwrap();
        assert_eq!(got[0], b'p' ^ 0x01);
        assert_eq!(&got[1..], b"ayload");
    }
}
