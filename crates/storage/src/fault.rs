//! Deterministic fault injection for [`StorageIo`] backends.
//!
//! [`FaultIo`] wraps any backend and consults a [`FaultPlan`] — a map from
//! *operation index* (every trait call increments a counter) to the fault
//! to inject there, plus an optional crash point after which every call
//! fails. Plans are either built explicitly (`with_fault`, `outage`) or
//! derived from a seed ([`FaultPlan::seeded`]) via an inline SplitMix64
//! generator, so a chaos run is reproducible from a single `u64`.
//!
//! Faults are adapted to the operation they land on:
//!
//! * append/write — [`FaultKind::Torn`] lands a strict prefix then errors
//!   (the torn write); [`FaultKind::NoSpace`] errors with nothing written.
//! * read — [`FaultKind::BitFlip`] and [`FaultKind::ShortRead`] corrupt
//!   only the returned buffer (*transient* faults: the backing store is
//!   untouched, a re-read sees clean data — how a flaky bus behaves).
//! * sync — errors without promoting durability.
//! * everything else — a generic IO error with no effect.
//!
//! The distinction between torn (durable damage) and transient (read-path)
//! faults matters for the exactness invariant: recovery must survive both,
//! but only the former may cost it the un-acknowledged tail.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
// Plain std atomics on purpose: the op counter is bookkeeping, not a
// concurrency protocol for loom to explore, and this crate sits below
// the lrf-sync facade in the dependency order.
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::io::{IoRef, StorageIo};

/// A single injectable fault. See the module docs for how each kind is
/// adapted to the operation it lands on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Torn write: a strict prefix (`frac`/256 of the payload) reaches the
    /// backend, then the call errors.
    Torn { frac: u8 },
    /// Out of space: the call errors with `ErrorKind::StorageFull`,
    /// nothing written.
    NoSpace,
    /// Fsync failure: the call errors, durability is not promoted.
    SyncFail,
    /// Transient single-bit corruption in a read's returned buffer.
    BitFlip,
    /// Transient short read: the returned buffer is truncated.
    ShortRead,
    /// Generic IO error with no side effect.
    Error,
}

/// Deterministic schedule of faults keyed by operation index.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: HashMap<u64, FaultKind>,
    /// Every op in `[start, end)` fails (storage outage window).
    outage: Option<(u64, u64)>,
    /// From this op index on, every call fails with a crash error.
    pub crash_at: Option<u64>,
}

impl FaultPlan {
    pub fn new() -> Self {
        Self::default()
    }

    /// Inject `kind` at operation index `op`.
    pub fn with_fault(mut self, op: u64, kind: FaultKind) -> Self {
        self.faults.insert(op, kind);
        self
    }

    /// Simulate a full storage outage for ops in `[start, end)`.
    pub fn outage(start: u64, end: u64) -> Self {
        Self {
            outage: Some((start, end)),
            ..Self::default()
        }
    }

    /// Crash (permanently fail) from operation index `op` onward.
    pub fn with_crash_at(mut self, op: u64) -> Self {
        self.crash_at = Some(op);
        self
    }

    /// Derive a reproducible schedule from `seed`: roughly 8% of the first
    /// `horizon` operations get a random fault, and a crash point lands
    /// somewhere in the middle-to-late portion of the horizon.
    pub fn seeded(seed: u64, horizon: u64) -> Self {
        let mut state = seed;
        let mut faults = HashMap::new();
        for op in 0..horizon {
            if splitmix64(&mut state) % 100 < 8 {
                let kind = match splitmix64(&mut state) % 6 {
                    0 => FaultKind::Torn {
                        frac: (splitmix64(&mut state) % 256) as u8,
                    },
                    1 => FaultKind::NoSpace,
                    2 => FaultKind::SyncFail,
                    3 => FaultKind::BitFlip,
                    4 => FaultKind::ShortRead,
                    _ => FaultKind::Error,
                };
                faults.insert(op, kind);
            }
        }
        let lo = horizon / 4;
        let span = (horizon - lo).max(1);
        let crash_at = lo + splitmix64(&mut state) % span;
        Self {
            faults,
            outage: None,
            crash_at: Some(crash_at),
        }
    }

    fn fault_for(&self, op: u64) -> Option<FaultKind> {
        if let Some((start, end)) = self.outage {
            if op >= start && op < end {
                return Some(FaultKind::Error);
            }
        }
        self.faults.get(&op).copied()
    }
}

/// SplitMix64 — tiny, seedable, and good enough for fault schedules.
/// Inlined (and exported for test harnesses) so the storage layer stays
/// dependency-free.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fault-injecting wrapper around another [`StorageIo`].
pub struct FaultIo {
    inner: IoRef,
    plan: FaultPlan,
    op: AtomicU64,
    injected: AtomicU64,
    crashed: AtomicBool,
}

impl FaultIo {
    pub fn new(inner: IoRef, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            op: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
        }
    }

    pub fn handle(inner: IoRef, plan: FaultPlan) -> std::sync::Arc<FaultIo> {
        std::sync::Arc::new(Self::new(inner, plan))
    }

    /// Operations attempted so far (including faulted ones).
    pub fn ops(&self) -> u64 {
        self.op.load(Ordering::Relaxed)
    }

    /// Faults actually injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Whether the crash point has been reached.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::Relaxed)
    }

    fn crash_error() -> io::Error {
        io::Error::other("simulated crash: storage is gone")
    }

    fn eio(what: &str) -> io::Error {
        io::Error::other(format!("injected fault: {what}"))
    }

    /// Claim the next op index; returns the fault scheduled for it, or an
    /// error if the crash point has been reached.
    fn next_op(&self) -> io::Result<Option<FaultKind>> {
        let op = self.op.fetch_add(1, Ordering::Relaxed);
        if let Some(crash) = self.plan.crash_at {
            if op >= crash {
                self.crashed.store(true, Ordering::Relaxed);
                return Err(Self::crash_error());
            }
        }
        let fault = self.plan.fault_for(op);
        if fault.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        Ok(fault)
    }
}

impl StorageIo for FaultIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self.next_op()? {
            None => self.inner.read(path),
            Some(FaultKind::BitFlip) => {
                let mut data = self.inner.read(path)?;
                if !data.is_empty() {
                    // Deterministic position derived from the op index.
                    let pos = (self.ops() as usize).wrapping_mul(31) % data.len();
                    data[pos] ^= 0x40;
                }
                Ok(data)
            }
            Some(FaultKind::ShortRead) => {
                let mut data = self.inner.read(path)?;
                data.truncate(data.len() / 2);
                Ok(data)
            }
            Some(_) => Err(Self::eio("read error")),
        }
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        match self.next_op()? {
            None => self.inner.write(path, data),
            Some(FaultKind::Torn { frac }) => {
                let keep = data.len() * frac as usize / 256;
                self.inner.write(path, &data[..keep])?;
                Err(Self::eio("torn write"))
            }
            Some(FaultKind::NoSpace) => Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "injected fault: no space left on device",
            )),
            Some(_) => Err(Self::eio("write error")),
        }
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        match self.next_op()? {
            None => self.inner.append(path, data),
            Some(FaultKind::Torn { frac }) => {
                let keep = data.len() * frac as usize / 256;
                self.inner.append(path, &data[..keep])?;
                Err(Self::eio("torn append"))
            }
            Some(FaultKind::NoSpace) => Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "injected fault: no space left on device",
            )),
            Some(_) => Err(Self::eio("append error")),
        }
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        match self.next_op()? {
            None => self.inner.truncate(path, len),
            Some(_) => Err(Self::eio("truncate error")),
        }
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        match self.next_op()? {
            None => self.inner.sync(path),
            Some(_) => Err(Self::eio("fsync error")),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.next_op()? {
            None => self.inner.rename(from, to),
            Some(_) => Err(Self::eio("rename error")),
        }
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        match self.next_op()? {
            None => self.inner.remove(path),
            Some(_) => Err(Self::eio("remove error")),
        }
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        match self.next_op()? {
            None => self.inner.list(dir),
            Some(_) => Err(Self::eio("list error")),
        }
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        match self.next_op()? {
            None => self.inner.create_dir_all(dir),
            Some(_) => Err(Self::eio("mkdir error")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemIo;

    #[test]
    fn torn_append_lands_a_strict_prefix() {
        let mem = MemIo::handle();
        let io = FaultIo::new(
            mem.clone(),
            FaultPlan::new().with_fault(0, FaultKind::Torn { frac: 128 }),
        );
        let p = Path::new("/w/a.log");
        let err = io.append(p, b"12345678").unwrap_err();
        assert!(err.to_string().contains("torn"));
        assert_eq!(mem.read(p).unwrap(), b"1234");
    }

    #[test]
    fn sync_fault_blocks_durability() {
        let mem = MemIo::handle();
        let io = FaultIo::new(
            mem.clone(),
            FaultPlan::new().with_fault(1, FaultKind::SyncFail),
        );
        let p = Path::new("/w/a.log");
        io.append(p, b"data").unwrap(); // op 0: clean
        assert!(io.sync(p).is_err()); // op 1: fsync fails
        mem.crash();
        assert!(mem.read(p).is_err(), "never-synced file must vanish");
    }

    #[test]
    fn bit_flip_is_transient() {
        let mem = MemIo::handle();
        let io = FaultIo::new(
            mem.clone(),
            FaultPlan::new().with_fault(2, FaultKind::BitFlip),
        );
        let p = Path::new("/w/a.log");
        io.write(p, b"clean payload").unwrap(); // op 0
        io.sync(p).unwrap(); // op 1
        let flipped = io.read(p).unwrap(); // op 2: corrupted in flight
        assert_ne!(flipped, b"clean payload");
        let again = io.read(p).unwrap(); // op 3: clean again
        assert_eq!(again, b"clean payload");
    }

    #[test]
    fn crash_point_fails_everything_after() {
        let mem = MemIo::handle();
        let io = FaultIo::new(mem.clone(), FaultPlan::new().with_crash_at(2));
        let p = Path::new("/w/a.log");
        io.write(p, b"x").unwrap();
        io.sync(p).unwrap();
        assert!(io.read(p).is_err());
        assert!(io.crashed());
        assert!(io.write(p, b"y").is_err(), "crash is permanent");
    }

    #[test]
    fn seeded_plans_are_reproducible_and_distinct() {
        let a = FaultPlan::seeded(42, 200);
        let b = FaultPlan::seeded(42, 200);
        let c = FaultPlan::seeded(43, 200);
        assert_eq!(a.crash_at, b.crash_at);
        for op in 0..200 {
            assert_eq!(a.fault_for(op), b.fault_for(op));
        }
        let differs =
            a.crash_at != c.crash_at || (0..200).any(|op| a.fault_for(op) != c.fault_for(op));
        assert!(differs, "different seeds should give different schedules");
    }

    #[test]
    fn outage_window_fails_every_op_inside_it() {
        let mem = MemIo::handle();
        let io = FaultIo::new(mem.clone(), FaultPlan::outage(1, 3));
        let p = Path::new("/w/a.log");
        io.write(p, b"x").unwrap(); // op 0: fine
        assert!(io.sync(p).is_err()); // op 1: outage
        assert!(io.sync(p).is_err()); // op 2: outage
        io.sync(p).unwrap(); // op 3: recovered
    }
}
