//! Checksummed append-only write-ahead log with segment rotation and
//! atomic snapshot compaction.
//!
//! ## On-disk layout
//!
//! A WAL directory holds at most one *snapshot* plus a run of *segments*,
//! all tagged with an **epoch** number:
//!
//! ```text
//! snapshot-000003.json      # opaque snapshot bytes, published atomically
//! wal-000003-000000.log     # segments of the same epoch, replayed in
//! wal-000003-000001.log     # sequence order on top of the snapshot
//! ```
//!
//! Each segment is a run of CRC-framed records:
//! `[len: u32 LE][crc32(payload): u32 LE][payload]`. Appends are synced
//! before they return — an `Ok` from [`Wal::append`] means the record is
//! durable.
//!
//! ## Compaction
//!
//! [`Wal::compact`] publishes caller-provided snapshot bytes under the
//! *next* epoch via [`atomic_write`] (temp + fsync + rename). The rename
//! is the commit point: recovery keys everything off the highest complete
//! snapshot, so a crash anywhere during compaction leaves either the old
//! epoch fully intact or the new one fully committed. Superseded files
//! are deleted best-effort afterwards; leftovers are recognised as stale
//! by the next open and removed then.
//!
//! ## Recovery
//!
//! [`Wal::open`] loads the highest-epoch snapshot, replays that epoch's
//! segments in order, and truncates a torn tail: the first frame that is
//! incomplete or fails its checksum ends the segment, and everything from
//! there on is dropped and reported in [`WalRecovery`]. Because every
//! acknowledged append was synced past that point, and every failed
//! append was truncated back out of the volatile image before any later
//! sync (see [`Wal::append`]'s repair path), the replayed records are
//! exactly the acknowledged ones.
//!
//! Each segment is read twice during recovery: transient read faults (bit
//! flips, short reads) make the two reads disagree, in which case the
//! parse that recovers more records wins. Durable corruption reads the
//! same both times and is truncated honestly.

use std::io;
use std::path::{Path, PathBuf};

use crate::atomic::{atomic_write, TMP_SUFFIX};
use crate::crc::crc32;
use crate::io::{IoRef, StorageIo};

/// Frame header: 4 bytes length + 4 bytes CRC32.
const FRAME_HEADER: usize = 8;

/// Upper bound on a single record; anything larger in a length field is
/// treated as corruption rather than an allocation request.
pub const MAX_RECORD_BYTES: usize = 16 * 1024 * 1024;

/// Tuning knobs for a [`Wal`].
#[derive(Debug, Clone, Copy)]
pub struct WalOptions {
    /// Rotate to a new segment once the active one exceeds this size.
    /// A single record larger than this still gets written (alone, in a
    /// fresh segment); rotation is a soft bound.
    pub segment_bytes: u64,
}

impl Default for WalOptions {
    fn default() -> Self {
        Self {
            segment_bytes: 64 * 1024,
        }
    }
}

/// What [`Wal::open`] found and did. The `records` are exactly the
/// acknowledged appends since the snapshot, in append order.
#[derive(Debug, Default)]
pub struct WalRecovery {
    /// Snapshot bytes of the current epoch, if a compaction ever ran.
    pub snapshot: Option<Vec<u8>>,
    /// Replayed record payloads, oldest first.
    pub records: Vec<Vec<u8>>,
    /// Segments of the current epoch that were replayed.
    pub segments_replayed: u64,
    /// Torn/corrupt frame runs dropped (at most one per segment).
    pub truncated_records: u64,
    /// Total bytes dropped by tail truncation.
    pub truncated_bytes: u64,
    /// Segments whose two recovery reads disagreed and where the re-read
    /// recovered more than the first attempt (transient fault healed).
    pub reread_recoveries: u64,
    /// Stale files (older epochs, leftover temp files) removed.
    pub stale_files_removed: u64,
}

#[derive(Debug)]
struct ActiveSegment {
    path: PathBuf,
    /// Known-good length: every byte below this is a synced, intact frame.
    len: u64,
}

/// Append-only checksummed log over an injectable [`StorageIo`].
pub struct Wal {
    io: IoRef,
    dir: PathBuf,
    opts: WalOptions,
    epoch: u64,
    next_seq: u64,
    /// `None` means the next append starts a fresh segment — either
    /// nothing has been written this epoch, or the last segment was
    /// sealed because its repair truncate failed.
    active: Option<ActiveSegment>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.dir)
            .field("epoch", &self.epoch)
            .field("next_seq", &self.next_seq)
            .field("active", &self.active)
            .finish_non_exhaustive()
    }
}

fn segment_name(epoch: u64, seq: u64) -> String {
    format!("wal-{epoch:06}-{seq:06}.log")
}

fn snapshot_name(epoch: u64) -> String {
    format!("snapshot-{epoch:06}.json")
}

fn parse_segment_name(name: &str) -> Option<(u64, u64)> {
    let rest = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    let (epoch, seq) = rest.split_once('-')?;
    Some((epoch.parse().ok()?, seq.parse().ok()?))
}

fn parse_snapshot_name(name: &str) -> Option<u64> {
    name.strip_prefix("snapshot-")?
        .strip_suffix(".json")?
        .parse()
        .ok()
}

fn file_name(path: &Path) -> Option<&str> {
    path.file_name().and_then(|n| n.to_str())
}

fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

#[derive(Debug)]
struct SegmentParse {
    records: Vec<Vec<u8>>,
    /// Byte offset of the first non-intact frame (== data len when clean).
    good_len: u64,
    dropped_bytes: u64,
}

impl SegmentParse {
    fn clean(&self) -> bool {
        self.dropped_bytes == 0
    }
}

/// Walk frames until the data ends or a frame fails validation; the
/// remainder past the first bad frame is unreachable and counted dropped.
fn parse_frames(data: &[u8]) -> SegmentParse {
    let mut pos = 0usize;
    let mut records = Vec::new();
    while pos < data.len() {
        let remaining = data.len() - pos;
        if remaining < FRAME_HEADER {
            break; // torn mid-header
        }
        let len =
            u32::from_le_bytes([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]]) as usize;
        if len > MAX_RECORD_BYTES || pos + FRAME_HEADER + len > data.len() {
            break; // corrupt length or torn mid-payload
        }
        let crc = u32::from_le_bytes([data[pos + 4], data[pos + 5], data[pos + 6], data[pos + 7]]);
        let payload = &data[pos + FRAME_HEADER..pos + FRAME_HEADER + len];
        if crc32(payload) != crc {
            break; // bit rot or torn payload that still parsed a length
        }
        records.push(payload.to_vec());
        pos += FRAME_HEADER + len;
    }
    SegmentParse {
        records,
        good_len: pos as u64,
        dropped_bytes: (data.len() - pos) as u64,
    }
}

/// Read a segment twice and reconcile (see module docs). Returns the
/// winning parse and whether the re-read beat a transiently-corrupt first
/// read. Read errors are retried once per attempt before giving up.
fn read_and_parse(io: &dyn StorageIo, path: &Path) -> io::Result<(SegmentParse, bool)> {
    let first = io.read(path).or_else(|_| io.read(path))?;
    let second = match io.read(path).or_else(|_| io.read(path)) {
        Ok(bytes) => bytes,
        // If the confirmation read is impossible, the first read stands.
        Err(_) => return Ok((parse_frames(&first), false)),
    };
    if first == second {
        return Ok((parse_frames(&first), false));
    }
    let p1 = parse_frames(&first);
    let p2 = parse_frames(&second);
    if p2.records.len() > p1.records.len() {
        Ok((p2, true))
    } else if p1.records.len() > p2.records.len() {
        Ok((p1, true))
    } else if p2.clean() && !p1.clean() {
        Ok((p2, true))
    } else {
        Ok((p1, false))
    }
}

impl Wal {
    /// Open (or create) the WAL at `dir`, running full recovery.
    pub fn open(io: IoRef, dir: &Path, opts: WalOptions) -> io::Result<(Self, WalRecovery)> {
        io.create_dir_all(dir)?;
        let files = io.list(dir)?;

        let epoch = files
            .iter()
            .filter_map(|p| file_name(p).and_then(parse_snapshot_name))
            .max()
            .unwrap_or(0);

        let mut recovery = WalRecovery::default();

        if epoch > 0 {
            let snap_path = dir.join(snapshot_name(epoch));
            let bytes = io.read(&snap_path).or_else(|_| io.read(&snap_path))?;
            recovery.snapshot = Some(bytes);
        }

        let mut segments: Vec<(u64, PathBuf)> = Vec::new();
        for path in &files {
            let Some(name) = file_name(path) else {
                continue;
            };
            if let Some((seg_epoch, seq)) = parse_segment_name(name) {
                if seg_epoch > epoch {
                    // Segments can only be created after their epoch's
                    // snapshot is durable; a future-epoch orphan means the
                    // directory was tampered with. Refuse to guess.
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("wal segment {name} from epoch {seg_epoch} has no snapshot"),
                    ));
                }
                if seg_epoch == epoch {
                    segments.push((seq, path.clone()));
                }
            }
        }
        segments.sort_by_key(|(seq, _)| *seq);

        let mut active = None;
        let mut next_seq = 0;
        for (idx, (seq, path)) in segments.iter().enumerate() {
            let (parse, reread) = read_and_parse(io.as_ref(), path)?;
            recovery.segments_replayed += 1;
            if reread {
                recovery.reread_recoveries += 1;
            }
            if !parse.clean() {
                recovery.truncated_records += 1;
                recovery.truncated_bytes += parse.dropped_bytes;
            }
            let is_last = idx + 1 == segments.len();
            if is_last {
                next_seq = seq + 1;
                if parse.clean() {
                    active = Some(ActiveSegment {
                        path: path.clone(),
                        len: parse.good_len,
                    });
                } else {
                    // Repair the torn tail so future appends extend a
                    // clean file; if the repair cannot be made durable,
                    // seal the segment instead of trusting it.
                    let repaired =
                        io.truncate(path, parse.good_len).is_ok() && io.sync(path).is_ok();
                    if repaired {
                        active = Some(ActiveSegment {
                            path: path.clone(),
                            len: parse.good_len,
                        });
                    }
                }
            }
            recovery.records.extend(parse.records);
        }

        // Sweep leftovers from interrupted compactions: older-epoch
        // snapshots and segments, and orphaned temp files.
        for path in &files {
            let Some(name) = file_name(path) else {
                continue;
            };
            let stale = name.ends_with(TMP_SUFFIX)
                || file_name(path)
                    .and_then(parse_snapshot_name)
                    .is_some_and(|e| e < epoch)
                || file_name(path)
                    .and_then(parse_segment_name)
                    .is_some_and(|(e, _)| e < epoch);
            if stale && io.remove(path).is_ok() {
                recovery.stale_files_removed += 1;
            }
        }

        Ok((
            Self {
                io,
                dir: dir.to_path_buf(),
                opts,
                epoch,
                next_seq,
                active,
            },
            recovery,
        ))
    }

    /// Durably append one record. `Ok` means the record (and everything
    /// before it) survives a crash; `Err` means it is as if the call
    /// never happened — a torn prefix is truncated back out of the
    /// volatile file, or the segment is sealed if even that fails.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        if payload.len() > MAX_RECORD_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "record exceeds MAX_RECORD_BYTES",
            ));
        }
        let frame = encode_frame(payload);
        let rotate = match &self.active {
            None => true,
            Some(a) => a.len > 0 && a.len + frame.len() as u64 > self.opts.segment_bytes,
        };
        if rotate {
            // Lazy rotation: no IO here — the first append creates the
            // file, and a crash before its first sync leaves nothing.
            let path = self.dir.join(segment_name(self.epoch, self.next_seq));
            self.next_seq += 1;
            self.active = Some(ActiveSegment { path, len: 0 });
        }
        let (path, good_len) = {
            let a = self
                .active
                .as_ref()
                .expect("rotation always sets an active segment");
            (a.path.clone(), a.len)
        };
        if let Err(e) = self.io.append(&path, &frame) {
            self.repair(&path, good_len);
            return Err(e);
        }
        if let Err(e) = self.io.sync(&path) {
            self.repair(&path, good_len);
            return Err(e);
        }
        if let Some(a) = self.active.as_mut() {
            a.len = good_len + frame.len() as u64;
        }
        Ok(())
    }

    /// After a failed append or sync the file may hold a torn,
    /// never-durable tail. Cut the volatile image back to the known-good
    /// length so no later successful sync can promote the torn bytes. If
    /// the cut itself fails, seal the segment: nothing will sync it
    /// again, so its durable image stays at the last acknowledged state
    /// and recovery drops whatever volatile tail a crash discards anyway.
    fn repair(&mut self, path: &Path, good_len: u64) {
        if self.io.truncate(path, good_len).is_err() {
            self.active = None;
        }
    }

    /// Publish `snapshot` as the new epoch and retire every current
    /// segment. The atomic snapshot rename is the commit point; file
    /// deletion afterwards is best-effort (recovery sweeps leftovers).
    pub fn compact(&mut self, snapshot: &[u8]) -> io::Result<()> {
        let new_epoch = self.epoch + 1;
        let snap_path = self.dir.join(snapshot_name(new_epoch));
        atomic_write(self.io.as_ref(), &snap_path, snapshot)?;
        // Commit point passed — everything below is cleanup.
        let old_epoch = self.epoch;
        self.epoch = new_epoch;
        self.next_seq = 0;
        self.active = None;
        if let Ok(files) = self.io.list(&self.dir) {
            for path in files {
                let Some(name) = file_name(&path) else {
                    continue;
                };
                let stale = parse_segment_name(name).is_some_and(|(e, _)| e <= old_epoch)
                    || parse_snapshot_name(name).is_some_and(|e| e <= old_epoch);
                if stale {
                    let _ = self.io.remove(&path);
                }
            }
        }
        Ok(())
    }

    /// Current compaction epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Segments started this epoch (rotations + the initial one).
    pub fn segments_started(&self) -> u64 {
        self.next_seq
    }

    /// Known-good byte length of the active segment, if one is open.
    pub fn active_len(&self) -> Option<u64> {
        self.active.as_ref().map(|a| a.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultIo, FaultKind, FaultPlan};
    use crate::mem::MemIo;

    fn dir() -> PathBuf {
        PathBuf::from("/wal")
    }

    fn recs(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| format!("record-{i:04}").into_bytes())
            .collect()
    }

    #[test]
    fn roundtrip_over_crash_is_exact() {
        let mem = MemIo::handle();
        let (mut wal, rec) = Wal::open(mem.clone(), &dir(), WalOptions::default()).unwrap();
        assert!(rec.records.is_empty());
        let payloads = recs(5);
        for p in &payloads {
            wal.append(p).unwrap();
        }
        drop(wal);
        mem.crash();
        let (_, rec) = Wal::open(mem.clone(), &dir(), WalOptions::default()).unwrap();
        assert_eq!(rec.records, payloads);
        assert_eq!(rec.truncated_records, 0);
    }

    #[test]
    fn rotation_splits_segments_and_preserves_order() {
        let mem = MemIo::handle();
        let opts = WalOptions { segment_bytes: 40 };
        let (mut wal, _) = Wal::open(mem.clone(), &dir(), opts).unwrap();
        let payloads = recs(10); // 11-byte payloads + 8-byte headers → rotations
        for p in &payloads {
            wal.append(p).unwrap();
        }
        assert!(wal.segments_started() > 1, "expected at least one rotation");
        drop(wal);
        mem.crash();
        let (_, rec) = Wal::open(mem.clone(), &dir(), opts).unwrap();
        assert_eq!(rec.records, payloads);
        assert!(rec.segments_replayed > 1);
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let mem = MemIo::handle();
        let (mut wal, _) = Wal::open(mem.clone(), &dir(), WalOptions::default()).unwrap();
        let payloads = recs(3);
        for p in &payloads {
            wal.append(p).unwrap();
        }
        // Simulate a torn append that somehow reached the durable image:
        // half a frame straight onto the segment file, synced.
        let seg = dir().join(segment_name(0, 0));
        let torn = &encode_frame(b"never-acknowledged")[..10];
        mem.append(&seg, torn).unwrap();
        mem.sync(&seg).unwrap();
        mem.crash();

        let (wal2, rec) = Wal::open(mem.clone(), &dir(), WalOptions::default()).unwrap();
        assert_eq!(rec.records, payloads, "acked records exact, torn tail gone");
        assert_eq!(rec.truncated_records, 1);
        assert_eq!(rec.truncated_bytes, torn.len() as u64);
        // The tail was repaired: the active segment is clean again.
        assert_eq!(wal2.active_len(), Some(mem.durable_len(&seg).unwrap()));
    }

    #[test]
    fn failed_append_is_never_resurrected() {
        let mem = MemIo::handle();
        let (mut wal, _) = Wal::open(mem.clone(), &dir(), WalOptions::default()).unwrap();
        wal.append(b"acked-1").unwrap();

        // Re-open through a faulty IO that tears the next append mid-frame.
        // Faulty ops: mkdir(0), list(1), segment read(2), re-read(3),
        // then the torn append lands on op 4.
        let faulty = FaultIo::handle(
            mem.clone(),
            FaultPlan::new().with_fault(4, FaultKind::Torn { frac: 200 }),
        );
        let (mut wal_faulty, rec) = Wal::open(faulty, &dir(), WalOptions::default()).unwrap();
        assert_eq!(rec.records, vec![b"acked-1".to_vec()]);
        assert!(wal_faulty.append(b"torn-loser").is_err());
        wal_faulty.append(b"acked-2").unwrap();
        drop(wal_faulty);
        mem.crash();

        let (_, rec) = Wal::open(mem.clone(), &dir(), WalOptions::default()).unwrap();
        assert_eq!(rec.records, vec![b"acked-1".to_vec(), b"acked-2".to_vec()]);
    }

    #[test]
    fn failed_sync_is_never_resurrected() {
        let mem = MemIo::handle();
        // Open cleanly first so the open's own ops don't consume indexes.
        let (wal, _) = Wal::open(mem.clone(), &dir(), WalOptions::default()).unwrap();
        drop(wal);
        // Faulty ops: open = mkdir(0) + list(1); first append = append(2)
        // + sync(3); the loser append = append(4) + sync(5) — fail that
        // sync, then let the repair truncate (6) succeed.
        let faulty = FaultIo::handle(
            mem.clone(),
            FaultPlan::new().with_fault(5, FaultKind::SyncFail),
        );
        let (mut wal, _) = Wal::open(faulty, &dir(), WalOptions::default()).unwrap();
        wal.append(b"acked-1").unwrap();
        assert!(wal.append(b"sync-loser").is_err());
        wal.append(b"acked-2").unwrap();
        drop(wal);
        mem.crash();
        let (_, rec) = Wal::open(mem.clone(), &dir(), WalOptions::default()).unwrap();
        assert_eq!(rec.records, vec![b"acked-1".to_vec(), b"acked-2".to_vec()]);
    }

    #[test]
    fn compaction_commits_snapshot_and_retires_segments() {
        let mem = MemIo::handle();
        let (mut wal, _) = Wal::open(mem.clone(), &dir(), WalOptions::default()).unwrap();
        wal.append(b"old-1").unwrap();
        wal.append(b"old-2").unwrap();
        wal.compact(b"{\"snapshot\":true}").unwrap();
        assert_eq!(wal.epoch(), 1);
        wal.append(b"new-1").unwrap();
        drop(wal);
        mem.crash();

        let (_, rec) = Wal::open(mem.clone(), &dir(), WalOptions::default()).unwrap();
        assert_eq!(rec.snapshot.as_deref(), Some(&b"{\"snapshot\":true}"[..]));
        assert_eq!(rec.records, vec![b"new-1".to_vec()]);
    }

    #[test]
    fn interrupted_compaction_cleanup_is_swept_at_open() {
        let mem = MemIo::handle();
        let (mut wal, _) = Wal::open(mem.clone(), &dir(), WalOptions::default()).unwrap();
        wal.append(b"old-1").unwrap();

        // Compact through an IO that crashes right after the commit-point
        // rename: the new snapshot is durable, old files never deleted.
        // Ops: open is clean; compact = write tmp(0), sync tmp(1),
        // rename(2), then list(3)+removes — crash at the list.
        let faulty = FaultIo::handle(mem.clone(), FaultPlan::new().with_crash_at(3));
        let (mut wal_faulty, _) = Wal::open(mem.clone(), &dir(), WalOptions::default()).unwrap();
        wal_faulty.io = faulty;
        wal_faulty.compact(b"snap-v1").unwrap(); // cleanup failure is swallowed
        drop(wal_faulty);
        drop(wal);
        mem.crash();

        let (_, rec) = Wal::open(mem.clone(), &dir(), WalOptions::default()).unwrap();
        assert_eq!(rec.snapshot.as_deref(), Some(&b"snap-v1"[..]));
        assert!(rec.records.is_empty(), "old epoch segments must not replay");
        assert!(
            rec.stale_files_removed > 0,
            "leftover old-epoch files swept"
        );
    }

    #[test]
    fn transient_bit_flip_during_recovery_is_healed_by_reread() {
        let mem = MemIo::handle();
        let (mut wal, _) = Wal::open(mem.clone(), &dir(), WalOptions::default()).unwrap();
        let payloads = recs(4);
        for p in &payloads {
            wal.append(p).unwrap();
        }
        drop(wal);
        mem.crash();

        // Recovery ops: mkdir(0), list(1), seg read(2), seg re-read(3).
        // Flip a bit in the first read only.
        let faulty = FaultIo::handle(
            mem.clone(),
            FaultPlan::new().with_fault(2, FaultKind::BitFlip),
        );
        let (_, rec) = Wal::open(faulty, &dir(), WalOptions::default()).unwrap();
        assert_eq!(rec.records, payloads, "re-read must recover every record");
        assert_eq!(rec.reread_recoveries, 1);
        assert_eq!(rec.truncated_records, 0);
    }

    #[test]
    fn durable_corruption_is_detected_and_truncated() {
        let mem = MemIo::handle();
        let (mut wal, _) = Wal::open(mem.clone(), &dir(), WalOptions::default()).unwrap();
        let payloads = recs(3);
        for p in &payloads {
            wal.append(p).unwrap();
        }
        drop(wal);
        // Flip one durable bit inside the *last* record's payload.
        let seg = dir().join(segment_name(0, 0));
        let len = mem.durable_len(&seg).unwrap();
        mem.corrupt_durable(&seg, len as usize - 2, 0x04).unwrap();
        mem.crash();

        let (_, rec) = Wal::open(mem.clone(), &dir(), WalOptions::default()).unwrap();
        assert_eq!(
            rec.records,
            payloads[..2].to_vec(),
            "corrupt record must not replay"
        );
        assert_eq!(rec.truncated_records, 1);
        assert!(rec.truncated_bytes > 0);
    }

    #[test]
    fn oversized_record_is_rejected_up_front() {
        let mem = MemIo::handle();
        let (mut wal, _) = Wal::open(mem.clone(), &dir(), WalOptions::default()).unwrap();
        let huge = vec![0u8; MAX_RECORD_BYTES + 1];
        assert_eq!(
            wal.append(&huge).unwrap_err().kind(),
            io::ErrorKind::InvalidInput
        );
    }

    #[test]
    fn future_epoch_orphan_segment_is_an_error() {
        let mem = MemIo::handle();
        mem.create_dir_all(&dir()).unwrap();
        let orphan = dir().join(segment_name(7, 0));
        mem.write(&orphan, &encode_frame(b"x")).unwrap();
        mem.sync(&orphan).unwrap();
        let err = Wal::open(mem.clone(), &dir(), WalOptions::default()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
