//! The injectable file-IO boundary.
//!
//! [`StorageIo`] is deliberately small and byte-oriented: whole-file reads,
//! overwrite-writes, appends, truncates, syncs, renames, removes, and
//! directory listing. That is everything the WAL and the snapshot writer
//! need, and nothing a fault injector cannot model. All paths are plain
//! `&Path`; backends decide what they mean (`StdIo` hands them to the OS,
//! `MemIo` uses them as map keys).
//!
//! Durability contract shared by all backends:
//!
//! * `write`/`append`/`truncate` affect only the *volatile* image of a
//!   file. After a crash their effects may be partially or wholly lost.
//! * `sync` makes the current volatile content durable. Data acknowledged
//!   only after a successful `sync` survives a crash.
//! * `rename` is atomic and durable: after it returns `Ok`, the
//!   destination holds the source's content even across a crash, and no
//!   crash can leave both or neither name pointing at the content. (This
//!   matches the rename+fsync'd-directory idiom `StdIo` implements; the
//!   in-memory backend models the post-fsync state directly.)

use std::io;
use std::path::{Path, PathBuf};

/// Alias for a shared handle to a storage backend.
///
/// This is deliberately `std::sync::Arc`, not `lrf_sync::Arc`: the loom-
/// instrumented `Arc` cannot hold trait objects, and an IO handle is an
/// immutable capability — there is no interleaving for loom to explore.
pub type IoRef = std::sync::Arc<dyn StorageIo>;

/// Byte-level file operations, injectable for fault testing.
///
/// Implementations must be safe to share across threads; interior
/// mutability is the backend's problem.
pub trait StorageIo: Send + Sync {
    /// Read the entire file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Create or truncate the file at `path` and write `data` to it.
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()>;

    /// Append `data` to the file at `path`, creating it if absent.
    ///
    /// On error the file may hold a strict prefix of `data` (a torn
    /// write); callers that need exactness must repair via [`truncate`]
    /// back to the last known-good length.
    ///
    /// [`truncate`]: StorageIo::truncate
    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()>;

    /// Truncate the file at `path` to `len` bytes.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;

    /// Make the file's current content durable (fsync).
    fn sync(&self, path: &Path) -> io::Result<()>;

    /// Atomically and durably rename `from` to `to` (see module docs).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Remove the file at `path`.
    fn remove(&self, path: &Path) -> io::Result<()>;

    /// List the files (not directories) directly under `dir`.
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;

    /// Create `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
}

/// The production backend: straight calls into `std::fs`.
///
/// `sync` opens the file and calls `sync_all`; `rename` follows with an
/// fsync of the containing directory so the rename itself is durable —
/// the standard crash-safe publish idiom on POSIX filesystems.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdIo;

impl StdIo {
    /// Shared handle to the std backend.
    pub fn handle() -> IoRef {
        std::sync::Arc::new(StdIo)
    }

    fn sync_dir_of(path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            // Opening a directory read-only is enough to fsync it on the
            // platforms we target; ignore platforms where it is not
            // supported rather than fail the rename that already happened.
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }
}

impl StorageIo for StdIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        std::fs::write(path, data)
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        f.write_all(data)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let f = std::fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(len)
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        let f = std::fs::File::open(path)?;
        f.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)?;
        Self::sync_dir_of(to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.path());
            }
        }
        out.sort();
        Ok(out)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let pid = std::process::id();
        let dir = std::env::temp_dir().join(format!("lrf-storage-io-{pid}-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn std_io_roundtrip_append_truncate() {
        let io = StdIo;
        let dir = tmp_dir("roundtrip");
        let path = dir.join("a.bin");

        io.write(&path, b"hello").unwrap();
        io.append(&path, b" world").unwrap();
        assert_eq!(io.read(&path).unwrap(), b"hello world");

        io.truncate(&path, 5).unwrap();
        assert_eq!(io.read(&path).unwrap(), b"hello");

        io.sync(&path).unwrap();
        let listed = io.list(&dir).unwrap();
        assert_eq!(listed, vec![path.clone()]);

        let moved = dir.join("b.bin");
        io.rename(&path, &moved).unwrap();
        assert_eq!(io.read(&moved).unwrap(), b"hello");
        assert!(io.read(&path).is_err());

        io.remove(&moved).unwrap();
        assert!(io.list(&dir).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn std_io_read_missing_is_not_found() {
        let io = StdIo;
        let dir = tmp_dir("missing");
        let err = io.read(&dir.join("nope")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
