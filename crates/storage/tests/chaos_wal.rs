//! Chaos property suite for the WAL: seeded fault schedules + injected
//! crashes, asserting the exactness invariant end to end.
//!
//! Each schedule runs one writer against a [`FaultIo`] whose faults and
//! crash point derive from a single seed, over a [`MemIo`] that models
//! the fsync barrier. The writer appends records (one retry per record),
//! periodically compacts the acknowledged prefix into a snapshot, and
//! stops when the injected crash point kills the storage. The crash then
//! fires with *strictly partial* writeback of any un-fsynced tail —
//! modeling kernel writeback racing the power loss, which is how torn
//! tails appear on real disks — and recovery runs over clean IO.
//!
//! Invariant, checked exactly per schedule:
//!
//! > snapshot ⧺ replayed records == the acknowledged records, in order.
//!
//! No acknowledged record lost, no unacknowledged record resurrected.
//!
//! Scope note on "strictly partial": if the kernel flushed an in-flight
//! frame *completely* before the crash, the record would replay even
//! though the writer never got its `Ok` — the inherent ambiguity of any
//! single-fsync WAL (the write happened; the acknowledgement didn't).
//! Callers that need idempotence across that window must dedup at a
//! higher layer. Everything short of that window is covered here.
//!
//! Env knobs (used by the CI chaos matrix):
//!   CHAOS_SEED_BASE  — offsets the seed range (default 0)
//!   CHAOS_SCHEDULES  — number of schedules (default 120, min 100 in CI)

use std::path::Path;

use lrf_storage::fault::splitmix64;
use lrf_storage::{FaultIo, FaultKind, FaultPlan, IoRef, MemIo, Wal, WalOptions};

/// Fault-schedule horizon in ops; the crash point lands in [H/4, H).
const HORIZON: u64 = 200;
/// Records the writer attempts per schedule — sized so the workload
/// usually reaches past the crash point (mid-run crash), but not always.
const RECORDS: usize = 80;
/// Compact every N acknowledged records.
const COMPACT_EVERY: usize = 17;
const SEGMENT_BYTES: u64 = 256;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Harness-level snapshot encoding: length-prefixed record list. The WAL
/// treats snapshot bytes as opaque; this stands in for the JSON store
/// snapshot the logdb layer uses.
fn encode_snapshot(records: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::new();
    for r in records {
        out.extend_from_slice(&(r.len() as u32).to_le_bytes());
        out.extend_from_slice(r);
    }
    out
}

fn decode_snapshot(mut bytes: &[u8]) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    while bytes.len() >= 4 {
        let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        assert!(bytes.len() >= 4 + len, "snapshot must never be torn");
        out.push(bytes[4..4 + len].to_vec());
        bytes = &bytes[4 + len..];
    }
    assert!(bytes.is_empty(), "snapshot must never be torn");
    out
}

#[derive(Debug, Default)]
struct Outcome {
    acked: usize,
    crashed_mid_run: bool,
    truncated_records: u64,
    reread_recoveries: u64,
}

fn run_schedule(seed: u64) -> Outcome {
    let mem = MemIo::handle();
    let dir = Path::new("/chaos/wal");
    let opts = WalOptions {
        segment_bytes: SEGMENT_BYTES,
    };

    let plan = FaultPlan::seeded(seed, HORIZON);
    let fault = FaultIo::handle(mem.clone(), plan);
    let io: IoRef = fault.clone();

    let mut acked: Vec<Vec<u8>> = Vec::new();
    let mut crashed = false;

    // Opening an empty dir can itself be faulted; a couple of retries
    // mirror how a real writer would come up. If it never opens, the
    // schedule degenerates to "crashed before anything was acked".
    let mut wal = None;
    for _ in 0..3 {
        match Wal::open(io.clone(), dir, opts) {
            Ok((w, _)) => {
                wal = Some(w);
                break;
            }
            Err(_) => {
                if fault.crashed() {
                    crashed = true;
                    break;
                }
            }
        }
    }

    if let Some(mut wal) = wal {
        for i in 0..RECORDS {
            let payload = format!("seed{seed:016x}-rec{i:03}").into_bytes();
            let mut ok = false;
            for _attempt in 0..2 {
                match wal.append(&payload) {
                    Ok(()) => {
                        ok = true;
                        break;
                    }
                    Err(_) => {
                        if fault.crashed() {
                            crashed = true;
                            break;
                        }
                    }
                }
            }
            if crashed {
                break;
            }
            if ok {
                acked.push(payload);
            }
            // An append that failed both attempts is simply unacknowledged;
            // the writer moves on (the service layer's spill queue handles
            // user-facing retries — here we only care about the invariant).

            if acked.len().is_multiple_of(COMPACT_EVERY) && !acked.is_empty() {
                // Compaction failure is fine: the epoch is unchanged and
                // the segments still hold everything since the last
                // successful snapshot.
                let _ = wal.compact(&encode_snapshot(&acked));
                if fault.crashed() {
                    crashed = true;
                    break;
                }
            }
        }
    }

    // Power loss, with kernel writeback racing it: each un-fsynced tail
    // gets a strictly partial flush (keep < tail_len — see module docs).
    let mut wb_state = seed ^ 0xD6E8_FEB8_6659_FD93;
    mem.crash_with_writeback(|_, tail_len| splitmix64(&mut wb_state) as usize % tail_len);

    // Recovery over clean IO (the machine rebooted; the disk is fine).
    let (_, recovery) =
        Wal::open(mem.clone(), dir, opts).expect("recovery over clean IO must succeed");

    let mut recovered = recovery
        .snapshot
        .as_deref()
        .map(decode_snapshot)
        .unwrap_or_default();
    recovered.extend(recovery.records.iter().cloned());

    assert_eq!(
        recovered,
        acked,
        "seed {seed}: recovered log must contain exactly the acknowledged \
         records ({} recovered vs {} acked, crashed_mid_run={})",
        recovered.len(),
        acked.len(),
        crashed
    );

    Outcome {
        acked: acked.len(),
        crashed_mid_run: crashed,
        truncated_records: recovery.truncated_records,
        reread_recoveries: recovery.reread_recoveries,
    }
}

#[test]
fn chaos_exactness_across_seeded_fault_schedules() {
    let base = env_u64("CHAOS_SEED_BASE", 0);
    let schedules = env_u64("CHAOS_SCHEDULES", 120);

    let mut crashes = 0u64;
    let mut truncations = 0u64;
    let mut rereads = 0u64;
    let mut total_acked = 0u64;
    for s in 0..schedules {
        let outcome = run_schedule(base.wrapping_mul(1_000_003).wrapping_add(s));
        crashes += outcome.crashed_mid_run as u64;
        truncations += outcome.truncated_records;
        rereads += outcome.reread_recoveries;
        total_acked += outcome.acked as u64;
    }

    println!(
        "chaos: {schedules} schedules (base {base}), {crashes} mid-run crashes, \
         {total_acked} records acked, {truncations} torn tails truncated, \
         {rereads} re-read recoveries"
    );

    // The suite must actually exercise what it claims to: most schedules
    // crash mid-run, and torn tails both occur and are reported.
    assert!(
        crashes >= schedules / 4,
        "too few mid-run crashes ({crashes}/{schedules}) — fault horizon mistuned"
    );
    assert!(
        truncations > 0,
        "no torn-tail truncation was ever reported across {schedules} schedules"
    );
}

/// Directed companion to the seeded sweep: a torn tail is *guaranteed*
/// here, so the recovery-metrics reporting path cannot silently rot even
/// if the seeded schedules drift.
#[test]
fn torn_tail_reporting_is_guaranteed() {
    let mem = MemIo::handle();
    let dir = Path::new("/chaos/directed");
    let opts = WalOptions::default();
    // Ops: mkdir(0), list(1); acked append(2)+sync(3); in-flight
    // append(4) lands, its sync(5) fails, and the repair truncate(6)
    // fails too — the segment is sealed with a full un-fsynced frame
    // sitting in the page cache.
    let plan = FaultPlan::new()
        .with_fault(5, FaultKind::SyncFail)
        .with_fault(6, FaultKind::Error);
    let io: IoRef = FaultIo::handle(mem.clone(), plan);
    let (mut wal, _) = Wal::open(io, dir, opts).unwrap();
    wal.append(b"acked").unwrap();
    assert!(wal.append(b"in-flight").is_err());
    drop(wal);
    // Power loss; writeback flushed exactly 3 bytes of the torn tail.
    mem.crash_with_writeback(|_, tail| tail.min(3));

    let (_, recovery) = Wal::open(mem.clone(), dir, opts).unwrap();
    assert_eq!(recovery.records, vec![b"acked".to_vec()]);
    assert_eq!(recovery.truncated_records, 1);
    assert_eq!(recovery.truncated_bytes, 3);
}
