//! Kernels over sparse feedback-log vectors.
//!
//! The log-side SVM of Eq. 3 operates on the relevance-matrix columns
//! `r_i`. These types implement [`lrf_svm::Kernel`] for
//! [`lrf_logdb::SparseVector`] so the same SMO solver drives both
//! modalities. (The impls live here — not in `lrf-logdb` — to keep the log
//! store free of any learning-stack dependency.)

use lrf_logdb::SparseVector;
use lrf_svm::Kernel;
use serde::{Deserialize, Serialize};

/// Gaussian RBF over sparse log vectors:
/// `K(r_a, r_b) = exp(−γ‖r_a − r_b‖²)`.
///
/// Entries are ±1 judgments, so `‖r_a − r_b‖²` counts (4×) disagreeing
/// sessions plus unshared judgments — two images consistently co-judged
/// get kernel ≈ 1, images with opposite feedback histories decay fast.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LogRbfKernel {
    /// Width parameter γ.
    pub gamma: f64,
}

impl LogRbfKernel {
    /// Creates the kernel.
    ///
    /// # Panics
    /// Panics unless `gamma` is positive and finite.
    pub fn new(gamma: f64) -> Self {
        assert!(
            gamma > 0.0 && gamma.is_finite(),
            "gamma must be positive and finite"
        );
        Self { gamma }
    }
}

impl Kernel<SparseVector> for LogRbfKernel {
    #[inline]
    fn compute(&self, a: &SparseVector, b: &SparseVector) -> f64 {
        (-self.gamma * a.squared_distance(b)).exp()
    }
}

/// Linear kernel over sparse log vectors: `K(r_a, r_b) = r_aᵀ r_b` — the
/// raw count of agreeing minus disagreeing co-judgments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogLinearKernel;

impl Kernel<SparseVector> for LogLinearKernel {
    #[inline]
    fn compute(&self, a: &SparseVector, b: &SparseVector) -> f64 {
        a.dot(b)
    }
}

/// RBF over **L2-normalized** log vectors:
/// `K(r_a, r_b) = exp(−γ‖φ(r_a) − φ(r_b)‖²)` with `φ(r) = r/‖r‖` (and
/// `φ(0) = 0`).
///
/// Raw log vectors differ mostly in their *degree* (how often an image was
/// judged), which swamps the overlap signal under a plain RBF; normalizing
/// makes the kernel respond to co-judgment *agreement*: identical feedback
/// histories → 1, disjoint histories → `e^{−2γ}`, perfectly contradictory
/// histories → `e^{−4γ}`. This is the default log kernel (`γ` from
/// [`crate::LrfConfig::log_kernel`] after calibration; see EXPERIMENTS.md).
///
/// Mercer validity: `φ` is an explicit feature map and the Gaussian of any
/// feature map is positive semidefinite.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LogCosineRbfKernel {
    /// Width parameter γ.
    pub gamma: f64,
}

impl LogCosineRbfKernel {
    /// Creates the kernel.
    ///
    /// # Panics
    /// Panics unless `gamma` is positive and finite.
    pub fn new(gamma: f64) -> Self {
        assert!(
            gamma > 0.0 && gamma.is_finite(),
            "gamma must be positive and finite"
        );
        Self { gamma }
    }
}

impl Kernel<SparseVector> for LogCosineRbfKernel {
    #[inline]
    fn compute(&self, a: &SparseVector, b: &SparseVector) -> f64 {
        let na = a.norm_sq();
        let nb = b.norm_sq();
        // ‖φa − φb‖² = 1{a≠0} + 1{b≠0} − 2·cos(a, b)
        let mut d2 = 0.0;
        if na > 0.0 {
            d2 += 1.0;
        }
        if nb > 0.0 {
            d2 += 1.0;
        }
        if na > 0.0 && nb > 0.0 {
            d2 -= 2.0 * a.dot(b) / (na.sqrt() * nb.sqrt());
        }
        (-self.gamma * d2.max(0.0)).exp()
    }
}

/// The log-side kernel choice, configurable per experiment (the paper does
/// not specify how its RBF treated the sparse log columns; the cosine
/// variant is our calibrated default, the plain variants are ablations).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum LogKernel {
    /// Plain RBF on raw log vectors.
    Rbf {
        /// Width parameter γ.
        gamma: f64,
    },
    /// RBF on L2-normalized log vectors (default).
    CosineRbf {
        /// Width parameter γ.
        gamma: f64,
    },
    /// Raw signed co-judgment count.
    Linear,
}

impl Kernel<SparseVector> for LogKernel {
    #[inline]
    fn compute(&self, a: &SparseVector, b: &SparseVector) -> f64 {
        match *self {
            LogKernel::Rbf { gamma } => LogRbfKernel { gamma }.compute(a, b),
            LogKernel::CosineRbf { gamma } => LogCosineRbfKernel { gamma }.compute(a, b),
            LogKernel::Linear => LogLinearKernel.compute(a, b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(entries: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_entries(entries.to_vec())
    }

    #[test]
    fn rbf_identical_histories_give_unit_kernel() {
        let a = sv(&[(0, 1.0), (3, -1.0)]);
        let k = LogRbfKernel::new(0.5);
        assert!((k.compute(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rbf_decays_with_disagreement() {
        let k = LogRbfKernel::new(0.5);
        let a = sv(&[(0, 1.0)]);
        let agree = sv(&[(0, 1.0)]);
        let disagree = sv(&[(0, -1.0)]);
        let unrelated = sv(&[(5, 1.0)]);
        let k_agree = k.compute(&a, &agree);
        let k_unrel = k.compute(&a, &unrelated);
        let k_disag = k.compute(&a, &disagree);
        assert!(k_agree > k_unrel, "{k_agree} vs {k_unrel}");
        assert!(k_unrel > k_disag, "{k_unrel} vs {k_disag}");
    }

    #[test]
    fn empty_vectors_look_identical_to_rbf() {
        // Images never judged carry no log information: the kernel sees
        // them as one point, so the log SVM scores them all equally.
        let k = LogRbfKernel::new(0.5);
        let empty1 = SparseVector::new();
        let empty2 = SparseVector::new();
        assert_eq!(k.compute(&empty1, &empty2), 1.0);
    }

    #[test]
    fn linear_counts_signed_overlap() {
        let a = sv(&[(0, 1.0), (1, 1.0), (2, -1.0)]);
        let b = sv(&[(0, 1.0), (2, 1.0), (7, -1.0)]);
        // session 0 agrees (+1), session 2 disagrees (−1) → 0
        assert_eq!(LogLinearKernel.compute(&a, &b), 0.0);
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn invalid_gamma_rejected() {
        let _ = LogRbfKernel::new(-1.0);
    }
}
