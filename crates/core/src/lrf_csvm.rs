//! The practical LRF-CSVM algorithm — a line-by-line implementation of the
//! paper's Fig. 1.
//!
//! ```text
//! 1. Selecting N' unlabeled samples:
//!      train SVM on labeled content, SVM on labeled log vectors;
//!      dist(z_i) = SVM_Dist(x_i, w, b_w) + SVM_Dist(r_i, u, b_u);
//!      S' = N'/2 samples with max dist ∪ N'/2 with min dist.
//! 2. Training the coupled SVM:
//!      ρ* = 10⁻⁴; anneal (×2) up to ρ with Δ-gated label correction.
//! 3. Retrieving:
//!      dist(z_i) = CSVM_Dist(x_i, r_i, w, b_w, u, b_u);
//!      return the N_r images with max dist.
//! ```
//!
//! §6.5 motivates step 1's max/min strategy: "choose unlabeled images
//! closest to the positive labeled images for half the samples, and those
//! closest to the negative labeled images for the other half"; the
//! active-learning alternative (samples nearest the boundary) "did not
//! achieve promising improvements" and is kept here as
//! [`UnlabeledSelection::ClosestToBoundary`] to reproduce that finding.

use crate::config::{LrfConfig, PseudoLabelInit, UnlabeledSelection};
use crate::coupled::{train_coupled, CoupledOutcome, TrainReport};
use crate::feedback::{
    PoolScorer, QueryContext, RelevanceFeedback, RoundDiagnostics, ScorerRef, WarmState,
};
use crate::lrf_2svms::{Lrf2Svms, SummedScorer};
use crate::rf_svm::RfSvm;
use lrf_logdb::SparseVector;
use lrf_svm::RbfKernel;

/// Output of [`LrfCsvm::fit_on`] — the coupled round's trained decision
/// function plus the diagnostics `run_inner` folds into its outcome.
struct CsvmFit {
    scorer: SummedScorer,
    unlabeled_ids: Vec<usize>,
    report: TrainReport,
}

/// The paper's algorithm.
#[derive(Clone, Debug, Default)]
pub struct LrfCsvm {
    /// Full configuration (see [`LrfConfig`] for per-field rationale).
    pub config: LrfConfig,
}

/// Everything one LRF-CSVM query produces beyond the ranking — exposed for
/// diagnostics, tests, and the ablation benches.
#[derive(Clone, Debug)]
pub struct LrfCsvmOutcome {
    /// The final ranking (most relevant first).
    pub ranking: Vec<usize>,
    /// The per-image `CSVM_Dist` scores the ranking was derived from.
    pub scores: Vec<f64>,
    /// Image ids chosen as the unlabeled pool `S'`.
    pub unlabeled_ids: Vec<usize>,
    /// Coupled-training diagnostics.
    pub report: TrainReport,
}

impl LrfCsvm {
    /// Creates the scheme with an explicit configuration.
    pub fn new(config: LrfConfig) -> Self {
        config.validate();
        Self { config }
    }

    /// Runs the full algorithm, returning ranking + diagnostics.
    pub fn run(&self, ctx: &QueryContext<'_>) -> LrfCsvmOutcome {
        self.run_on(ctx, None)
    }

    /// Runs the algorithm restricted to a candidate `pool` (typically the
    /// top candidates of an ANN index): unlabeled selection, and the final
    /// `CSVM_Dist` scoring/ranking, only touch pool members — the scale
    /// path where the index's pruning carries through the learning stack.
    /// `scores`/`ranking` in the outcome are aligned with/permutations of
    /// `pool`.
    pub fn run_pooled(&self, ctx: &QueryContext<'_>, pool: &[usize]) -> LrfCsvmOutcome {
        self.run_on(ctx, Some(pool))
    }

    fn run_on(&self, ctx: &QueryContext<'_>, universe: Option<&[usize]>) -> LrfCsvmOutcome {
        self.run_inner(ctx, universe, None)
    }

    fn run_inner(
        &self,
        ctx: &QueryContext<'_>,
        universe: Option<&[usize]>,
        warm: Option<&mut WarmState>,
    ) -> LrfCsvmOutcome {
        let universe: Vec<usize> =
            universe.map_or_else(|| (0..ctx.db.len()).collect(), <[usize]>::to_vec);
        let fit = self.fit_on(ctx, &universe, warm);

        // ---- Step 3: rank by CSVM_Dist over the retrieval universe. Both
        // machines score their whole candidate pool in one parallel batch
        // pass; the per-id sum equals `coupled_score` exactly. Scoring goes
        // through the fitted [`PoolScorer`] — the same object a
        // scatter-gather serving plane ships to shard workers, so the fused
        // and sharded paths run identical arithmetic.
        let scores = fit.scorer.score_ids(ctx.db, ctx.log, &universe);
        // Order universe members by descending score, ties by id — for the
        // full universe this is exactly rank_by_scores.
        let mut order: Vec<usize> = (0..universe.len()).collect();
        order.sort_by(|&a, &b| {
            crate::feedback::cmp_scores_desc(scores[a], scores[b])
                .then(universe[a].cmp(&universe[b]))
        });
        let ranking: Vec<usize> = order.into_iter().map(|i| universe[i]).collect();

        LrfCsvmOutcome {
            ranking,
            scores,
            unlabeled_ids: fit.unlabeled_ids,
            report: fit.report,
        }
    }

    /// Steps 1–2 of Fig. 1 — unlabeled selection and coupled training —
    /// producing the round's trained decision function plus diagnostics.
    /// The retrieval step is deliberately *not* here: the returned scorer
    /// is partition-invariant, so callers may score the universe locally
    /// (`run_inner`) or scatter disjoint slices across shard workers and
    /// get bit-identical results.
    fn fit_on(
        &self,
        ctx: &QueryContext<'_>,
        universe: &[usize],
        warm: Option<&mut WarmState>,
    ) -> CsvmFit {
        let cfg = &self.config;
        let db = ctx.db;

        // Previous-round seeds for step 1's labeled-only SVMs: the labeled
        // prefix of the last coupled solution is bounded by the same `C` as
        // a labeled-only solve, so it prefix-maps directly.
        let (seed_content, seed_log) = match warm.as_deref() {
            Some(w) => (w.content.clone(), w.log.clone()),
            None => (None, None),
        };

        // ---- Step 1: initial per-modality SVMs on the labeled round. ----
        let content0 = RfSvm::new(*cfg).train_content_svm_warm(ctx, seed_content.as_deref());
        let log0 = Lrf2Svms::new(*cfg).train_log_svm_warm(ctx, seed_log.as_deref());

        let content_scores = RfSvm::score_subset(db, &content0.model, universe);
        let log_scores = Lrf2Svms::score_subset_log(ctx.log, &log0.model, universe);
        let labeled: std::collections::HashSet<usize> =
            ctx.example.labeled.iter().map(|&(id, _)| id).collect();
        let scored: Vec<(usize, f64)> = universe
            .iter()
            .zip(content_scores.iter().zip(&log_scores))
            .filter(|(id, _)| !labeled.contains(id))
            .map(|(&id, (c, l))| (id, c + l))
            .collect();

        let (unlabeled_ids, y_init) = self.select_unlabeled_in(ctx, scored);

        // ---- Step 2: coupled training — on borrowed slices. The round's
        // samples are row views of the database's flat matrix and
        // references into the log store; nothing is cloned to train.
        let labeled_x: Vec<&[f64]> = ctx
            .example
            .labeled
            .iter()
            .map(|&(id, _)| db.feature(id))
            .collect();
        let labeled_r: Vec<&SparseVector> = ctx
            .example
            .labeled
            .iter()
            .map(|&(id, _)| ctx.log.log_vector(id))
            .collect();
        let y: Vec<f64> = ctx.example.labeled.iter().map(|&(_, l)| l).collect();
        let unl_x: Vec<&[f64]> = unlabeled_ids.iter().map(|&id| db.feature(id)).collect();
        let unl_r: Vec<&SparseVector> = unlabeled_ids
            .iter()
            .map(|&id| ctx.log.log_vector(id))
            .collect();

        let gamma_content = cfg
            .gamma_content
            .unwrap_or(1.0 / lrf_features::TOTAL_DIMS as f64);
        let outcome: CoupledOutcome<_, _, _, _> = train_coupled(
            &labeled_x,
            &labeled_r,
            &y,
            &unl_x,
            &unl_r,
            &y_init,
            RbfKernel::new(gamma_content),
            cfg.log_kernel,
            &cfg.coupled,
        )
        .expect("coupled training cannot fail on validated feedback rounds");

        if let Some(w) = warm {
            let n_l = y.len();
            let mut diag = RoundDiagnostics::all_converged();
            diag.absorb(&content0.stats);
            diag.absorb(&log0.stats);
            diag.absorb(&outcome.content.stats);
            diag.absorb(&outcome.log.stats);
            w.content = Some(outcome.content.alpha[..n_l].to_vec());
            w.log = Some(outcome.log.alpha[..n_l].to_vec());
            w.last = Some(diag);
        }

        CsvmFit {
            scorer: SummedScorer {
                content: outcome.content.model,
                log: outcome.log.model,
            },
            unlabeled_ids,
            report: outcome.report,
        }
    }

    /// Step 1's selection over the full database (exercised directly by
    /// the selection-invariant tests): `dist[id]` is the combined SVM
    /// distance of image `id`.
    #[cfg(test)]
    fn select_unlabeled(&self, ctx: &QueryContext<'_>, dist: &[f64]) -> (Vec<usize>, Vec<f64>) {
        let labeled: std::collections::HashSet<usize> =
            ctx.example.labeled.iter().map(|&(id, _)| id).collect();
        let scored: Vec<(usize, f64)> = dist
            .iter()
            .enumerate()
            .filter(|(id, _)| !labeled.contains(id))
            .map(|(id, &d)| (id, d))
            .collect();
        self.select_unlabeled_in(ctx, scored)
    }

    /// Step 1's selection over explicit `(id, combined distance)`
    /// candidates: returns `(ids, initial pseudo-labels)`.
    fn select_unlabeled_in(
        &self,
        ctx: &QueryContext<'_>,
        mut scored: Vec<(usize, f64)>,
    ) -> (Vec<usize>, Vec<f64>) {
        // Candidates sorted by descending combined distance, ties by id
        // (total order: a NaN distance sorts last, never panics the sort).
        scored.sort_by(|a, b| crate::feedback::cmp_scores_desc(a.1, b.1).then(a.0.cmp(&b.0)));

        let n = self.config.n_unlabeled.min(scored.len());
        if n == 0 {
            return (Vec::new(), Vec::new());
        }

        let chosen: Vec<(usize, f64)> = match self.config.selection {
            UnlabeledSelection::MaxMinCombinedDistance => {
                let n_top = n / 2;
                let n_bottom = n - n_top;
                let mut chosen: Vec<(usize, f64)> = scored[..n_top].to_vec();
                chosen.extend_from_slice(&scored[scored.len() - n_bottom..]);
                chosen
            }
            UnlabeledSelection::ClosestToBoundary => {
                let mut by_abs = scored.clone();
                by_abs.sort_by(|a, b| a.1.abs().total_cmp(&b.1.abs()).then(a.0.cmp(&b.0)));
                by_abs.truncate(n);
                by_abs
            }
            UnlabeledSelection::Random => {
                use rand::seq::SliceRandom;
                use rand::SeedableRng;
                let mut rng = rand::rngs::StdRng::seed_from_u64(
                    self.config.random_init_seed ^ ctx.example.query as u64,
                );
                // Shuffle in id order so the draw is independent of the
                // caller's candidate ordering.
                let mut shuffled = scored.clone();
                shuffled.sort_by_key(|&(id, _)| id);
                shuffled.shuffle(&mut rng);
                shuffled.truncate(n);
                shuffled
            }
        };

        let y_init: Vec<f64> = match (self.config.init, self.config.selection) {
            // Selection-side init only makes sense for the max/min split.
            (PseudoLabelInit::BySelectionSide, UnlabeledSelection::MaxMinCombinedDistance) => {
                let n_top = n / 2;
                (0..n).map(|i| if i < n_top { 1.0 } else { -1.0 }).collect()
            }
            (PseudoLabelInit::Random, _) => {
                use rand::Rng;
                use rand::SeedableRng;
                let mut rng = rand::rngs::StdRng::seed_from_u64(
                    self.config.random_init_seed ^ (ctx.example.query as u64).rotate_left(17),
                );
                (0..n)
                    .map(|_| if rng.gen_bool(0.5) { 1.0 } else { -1.0 })
                    .collect()
            }
            // ByDistanceSign, and the fallback for BySelectionSide under
            // non-max/min selections.
            _ => chosen
                .iter()
                .map(|&(_, d)| if d >= 0.0 { 1.0 } else { -1.0 })
                .collect(),
        };

        (chosen.into_iter().map(|(id, _)| id).collect(), y_init)
    }
}

impl RelevanceFeedback for LrfCsvm {
    fn name(&self) -> &'static str {
        "LRF-CSVM"
    }

    fn rank(&self, ctx: &QueryContext<'_>) -> Vec<usize> {
        self.run(ctx).ranking
    }

    fn scores(&self, ctx: &QueryContext<'_>) -> Option<Vec<f64>> {
        Some(self.run(ctx).scores)
    }

    fn score_ids(&self, ctx: &QueryContext<'_>, ids: &[usize]) -> Option<Vec<f64>> {
        Some(self.run_pooled(ctx, ids).scores)
    }

    fn fit_warm(
        &self,
        ctx: &QueryContext<'_>,
        pool: &[usize],
        warm: &mut WarmState,
    ) -> Option<ScorerRef> {
        Some(std::sync::Arc::new(
            self.fit_on(ctx, pool, Some(warm)).scorer,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrf_cbir::{collect_log, precision_at, CorelDataset, CorelSpec, QueryProtocol};
    use lrf_logdb::{LogStore, SimulationConfig};

    fn setup(noise: f64, sessions: usize) -> (CorelDataset, LogStore) {
        let ds = CorelDataset::build(CorelSpec::tiny(4, 12, 19));
        let log = collect_log(
            &ds.db,
            &SimulationConfig {
                n_sessions: sessions,
                judged_per_session: 10,
                rounds_per_query: 2,
                noise,
                seed: 23,
            },
        );
        (ds, log)
    }

    fn small_config() -> LrfConfig {
        // Shrink the pool + annealing for test speed; rho stays at the
        // calibrated scale so transduction cannot dominate the tiny corpus.
        LrfConfig {
            n_unlabeled: 8,
            coupled: crate::config::CoupledConfig {
                rho_init: 0.01,
                rho: 0.05,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn rank_is_a_permutation_with_diagnostics() {
        let (ds, log) = setup(0.1, 20);
        let proto = QueryProtocol {
            n_queries: 1,
            n_labeled: 8,
            seed: 0,
        };
        let example = proto.feedback_example(&ds.db, 7);
        let scheme = LrfCsvm::new(small_config());
        let out = scheme.run(&QueryContext {
            db: &ds.db,
            log: &log,
            example: &example,
        });
        let mut sorted = out.ranking.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..ds.db.len()).collect::<Vec<_>>());
        assert_eq!(out.unlabeled_ids.len(), 8);
        assert!(out.report.retrains >= out.report.rho_steps);
        assert_eq!(scheme.name(), "LRF-CSVM");
    }

    #[test]
    fn unlabeled_pool_excludes_labeled_images() {
        let (ds, log) = setup(0.0, 20);
        let proto = QueryProtocol {
            n_queries: 1,
            n_labeled: 10,
            seed: 0,
        };
        let example = proto.feedback_example(&ds.db, 3);
        let scheme = LrfCsvm::new(small_config());
        let out = scheme.run(&QueryContext {
            db: &ds.db,
            log: &log,
            example: &example,
        });
        for &(id, _) in &example.labeled {
            assert!(
                !out.unlabeled_ids.contains(&id),
                "labeled id {id} leaked into pool"
            );
        }
        // no duplicates
        let mut ids = out.unlabeled_ids.clone();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), out.unlabeled_ids.len());
    }

    #[test]
    fn selection_strategies_differ() {
        let (ds, log) = setup(0.0, 20);
        let proto = QueryProtocol {
            n_queries: 1,
            n_labeled: 8,
            seed: 0,
        };
        let example = proto.feedback_example(&ds.db, 5);
        let ctx = QueryContext {
            db: &ds.db,
            log: &log,
            example: &example,
        };
        let maxmin = LrfCsvm::new(small_config()).run(&ctx).unlabeled_ids;
        let boundary = LrfCsvm::new(LrfConfig {
            selection: UnlabeledSelection::ClosestToBoundary,
            ..small_config()
        })
        .run(&ctx)
        .unlabeled_ids;
        assert_ne!(maxmin, boundary, "strategies should pick different pools");
    }

    #[test]
    fn selection_side_init_labels_match_pool_order() {
        let (ds, log) = setup(0.0, 20);
        let proto = QueryProtocol {
            n_queries: 1,
            n_labeled: 8,
            seed: 0,
        };
        let example = proto.feedback_example(&ds.db, 5);
        let cfg = small_config();
        let scheme = LrfCsvm::new(cfg);
        let ctx = QueryContext {
            db: &ds.db,
            log: &log,
            example: &example,
        };

        // Reproduce step 1 manually to check the split.
        let content0 = RfSvm::new(cfg).train_content_svm(&ctx);
        let log0 = Lrf2Svms::new(cfg).train_log_svm(&ctx);
        let cs = RfSvm::score_all(&ds.db, &content0.model);
        let ls = Lrf2Svms::score_all_log(&log, &log0.model);
        let dist: Vec<f64> = cs.iter().zip(&ls).map(|(a, b)| a + b).collect();
        let (ids, init) = scheme.select_unlabeled(&ctx, &dist);
        let n_top = ids.len() / 2;
        for (i, y0) in init.iter().enumerate() {
            assert_eq!(*y0, if i < n_top { 1.0 } else { -1.0 });
        }
        // Top half really does have larger dist than bottom half.
        let top_min = ids[..n_top]
            .iter()
            .map(|&id| dist[id])
            .fold(f64::INFINITY, f64::min);
        let bottom_max = ids[n_top..]
            .iter()
            .map(|&id| dist[id])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(top_min >= bottom_max);
    }

    #[test]
    fn beats_or_matches_rf_svm_with_clean_log() {
        let (ds, log) = setup(0.0, 60);
        let proto = QueryProtocol {
            n_queries: 8,
            n_labeled: 10,
            seed: 13,
        };
        let lrf = LrfCsvm::new(small_config());
        let rf = crate::rf_svm::RfSvm::default();
        let mut p_lrf = 0.0;
        let mut p_rf = 0.0;
        let queries = proto.sample_queries(&ds.db);
        for &q in &queries {
            let example = proto.feedback_example(&ds.db, q);
            let ctx = QueryContext {
                db: &ds.db,
                log: &log,
                example: &example,
            };
            let rel = |id: usize| ds.db.same_category(id, q);
            p_lrf += precision_at(&lrf.rank(&ctx), rel, 12);
            p_rf += precision_at(&rf.rank(&ctx), rel, 12);
        }
        assert!(
            p_lrf >= p_rf,
            "coupled SVM should not lose to content-only: {p_lrf} vs {p_rf}"
        );
    }

    #[test]
    fn empty_log_still_produces_valid_ranking() {
        let ds = CorelDataset::build(CorelSpec::tiny(3, 6, 4));
        let log = LogStore::new(ds.db.len());
        let proto = QueryProtocol {
            n_queries: 1,
            n_labeled: 6,
            seed: 0,
        };
        let example = proto.feedback_example(&ds.db, 1);
        let ranked = LrfCsvm::new(small_config()).rank(&QueryContext {
            db: &ds.db,
            log: &log,
            example: &example,
        });
        assert_eq!(ranked.len(), ds.db.len());
    }

    #[test]
    fn tiny_database_clamps_pool() {
        // Database smaller than n_unlabeled + labeled: pool must clamp.
        let ds = CorelDataset::build(CorelSpec::tiny(2, 5, 6));
        let log = LogStore::new(ds.db.len());
        let proto = QueryProtocol {
            n_queries: 1,
            n_labeled: 6,
            seed: 0,
        };
        let example = proto.feedback_example(&ds.db, 0);
        let cfg = LrfConfig {
            n_unlabeled: 100,
            ..small_config()
        };
        let out = LrfCsvm::new(cfg).run(&QueryContext {
            db: &ds.db,
            log: &log,
            example: &example,
        });
        assert_eq!(out.unlabeled_ids.len(), ds.db.len() - 6);
    }

    #[test]
    fn random_selection_is_deterministic_per_query() {
        let (ds, log) = setup(0.0, 10);
        let proto = QueryProtocol {
            n_queries: 1,
            n_labeled: 8,
            seed: 0,
        };
        let example = proto.feedback_example(&ds.db, 2);
        let cfg = LrfConfig {
            selection: UnlabeledSelection::Random,
            ..small_config()
        };
        let ctx = QueryContext {
            db: &ds.db,
            log: &log,
            example: &example,
        };
        let a = LrfCsvm::new(cfg).run(&ctx).unlabeled_ids;
        let b = LrfCsvm::new(cfg).run(&ctx).unlabeled_ids;
        assert_eq!(a, b);
    }
}
