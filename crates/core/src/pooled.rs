//! Index-fed candidate-pool re-ranking.
//!
//! At scale, no relevance-feedback scheme can afford to score every image
//! per query. The production path is the two-stage architecture the
//! related systems (PinView; Barz & Denzler) assume:
//!
//! 1. an [`AnnIndex`] retrieves a candidate pool — `pool_size` nearest
//!    neighbors of the query feature (sublinear for IVF/LSH);
//! 2. the learned scheme scores *only the pool*
//!    ([`RelevanceFeedback::score_ids`]) and re-ranks it; images outside
//!    the pool trail in id order (every evaluation cutoff that matters is
//!    well inside the pool).
//!
//! With the exact flat backend and `pool_size ≥ N` this degrades — by
//! construction, not by accident — to the paper's full ranking, so the
//! pooled path is a strict generalization of the reproduction.

use crate::feedback::{QueryContext, RelevanceFeedback, WarmState};
use lrf_index::{AnnIndex, SearchStats};

/// The two-stage (index → re-rank) retrieval driver.
#[derive(Clone, Copy)]
pub struct PooledRetrieval<'a> {
    /// Candidate generator.
    pub index: &'a dyn AnnIndex,
    /// Candidates fetched per query (clamped to the database size).
    pub pool_size: usize,
}

impl<'a> PooledRetrieval<'a> {
    /// Creates the driver.
    pub fn new(index: &'a dyn AnnIndex, pool_size: usize) -> Self {
        assert!(pool_size > 0, "pool size must be positive");
        Self { index, pool_size }
    }

    /// The candidate pool for a query: the index's nearest neighbors of
    /// the query feature, in index (distance) order, with the round's
    /// labeled ids appended if an approximate backend missed any — the
    /// scheme trained on them, so they must be rankable.
    pub fn pool(&self, ctx: &QueryContext<'_>) -> Vec<usize> {
        self.pool_with_stats(ctx).0
    }

    /// [`pool`](Self::pool) plus the index's per-query [`SearchStats`]
    /// (distance evaluations, candidates, buckets probed) so a serving
    /// layer can account the candidate-generation work per request.
    pub fn pool_with_stats(&self, ctx: &QueryContext<'_>) -> (Vec<usize>, SearchStats) {
        let query_feature = ctx.db.feature(ctx.example.query);
        let (neighbors, stats) = self
            .index
            .search_with_stats(query_feature, self.pool_size.min(ctx.db.len()));
        let mut pool: Vec<usize> = neighbors.into_iter().map(|(id, _)| id).collect();
        let mut in_pool = vec![false; ctx.db.len()];
        for &id in &pool {
            in_pool[id] = true;
        }
        for &(id, _) in &ctx.example.labeled {
            if !in_pool[id] {
                in_pool[id] = true;
                pool.push(id);
            }
        }
        (pool, stats)
    }

    /// Full-database ranking: pool members re-ranked by the scheme's
    /// subset scores (descending, ties by id), then every out-of-pool id
    /// ascending. Schemes without a decision function (Euclidean) keep the
    /// pool's distance order, which *is* their ranking.
    pub fn rank<S: RelevanceFeedback + ?Sized>(
        &self,
        scheme: &S,
        ctx: &QueryContext<'_>,
    ) -> Vec<usize> {
        rank_candidates(scheme, ctx, &self.pool(ctx))
    }
}

/// Ranks an explicit candidate `pool` under `scheme` and appends every
/// out-of-pool id in ascending order, yielding a full-database permutation.
/// The shared re-rank step of [`PooledRetrieval`] and the stateful session
/// API ([`crate::rounds::FeedbackLoop`]): both paths go through this one
/// function, which is what makes their rankings bit-identical by
/// construction.
pub fn rank_candidates<S: RelevanceFeedback + ?Sized>(
    scheme: &S,
    ctx: &QueryContext<'_>,
    pool: &[usize],
) -> Vec<usize> {
    rank_candidates_warm(scheme, ctx, pool, &mut WarmState::default())
}

/// [`rank_candidates`] with session warm-start state threaded through to
/// the scheme's solver ([`RelevanceFeedback::score_ids_warm`]). The
/// stateful session API ([`crate::rounds::FeedbackLoop`]) calls this with
/// its persistent [`WarmState`]; `rank_candidates` itself passes a fresh
/// one, so the one-shot and first-round stateful paths remain the same
/// code and the same arithmetic.
pub fn rank_candidates_warm<S: RelevanceFeedback + ?Sized>(
    scheme: &S,
    ctx: &QueryContext<'_>,
    pool: &[usize],
    warm: &mut WarmState,
) -> Vec<usize> {
    match scheme.score_ids_warm(ctx, pool, warm) {
        Some(scores) => rank_pool_by_scores(ctx.db.len(), pool, &scores),
        None => {
            let mut head = pool.to_vec();
            let mut in_head = vec![false; ctx.db.len()];
            for &id in &head {
                in_head[id] = true;
            }
            head.extend((0..ctx.db.len()).filter(|&id| !in_head[id]));
            head
        }
    }
}

/// The score → full-ranking step shared by every scored path: pool members
/// sorted by descending score (ties by ascending id, NaN last), then every
/// out-of-pool id appended ascending. `scores` is aligned with `pool`.
///
/// Factored out so the in-process re-rank ([`rank_candidates_warm`]) and a
/// scatter-gather serving plane (which gathers the same scores from shard
/// workers) merge through the *same* comparator — the two paths cannot
/// drift apart in tie-break order.
pub fn rank_pool_by_scores(n_images: usize, pool: &[usize], scores: &[f64]) -> Vec<usize> {
    assert_eq!(pool.len(), scores.len(), "scores must align with the pool");
    let mut order: Vec<usize> = (0..pool.len()).collect();
    order.sort_by(|&a, &b| {
        crate::feedback::cmp_scores_desc(scores[a], scores[b]).then(pool[a].cmp(&pool[b]))
    });
    let mut head: Vec<usize> = order.into_iter().map(|i| pool[i]).collect();
    let mut in_head = vec![false; n_images];
    for &id in &head {
        in_head[id] = true;
    }
    head.extend((0..n_images).filter(|&id| !in_head[id]));
    head
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LrfConfig;
    use crate::euclidean::EuclideanScheme;
    use crate::lrf_csvm::LrfCsvm;
    use crate::rf_svm::RfSvm;
    use lrf_cbir::{collect_log, precision_at, CorelDataset, CorelSpec, QueryProtocol};
    use lrf_logdb::SimulationConfig;

    fn setup() -> (CorelDataset, lrf_logdb::LogStore) {
        let ds = CorelDataset::build(CorelSpec::tiny(4, 12, 19));
        let log = collect_log(
            &ds.db,
            &SimulationConfig {
                n_sessions: 24,
                judged_per_session: 10,
                rounds_per_query: 2,
                noise: 0.1,
                seed: 23,
            },
        );
        (ds, log)
    }

    fn small_config() -> LrfConfig {
        LrfConfig {
            n_unlabeled: 8,
            coupled: crate::config::CoupledConfig {
                rho_init: 0.01,
                rho: 0.05,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn full_pool_over_flat_index_reproduces_the_full_ranking() {
        // pool_size = N + exact backend ⇒ the pooled path must equal the
        // schemes' full-database ranking for every scheme with scores.
        let (ds, log) = setup();
        let index = lrf_cbir::build_flat_index(&ds.db);
        let pooled = PooledRetrieval::new(&index, ds.db.len());
        let proto = QueryProtocol {
            n_queries: 1,
            n_labeled: 8,
            seed: 0,
        };
        for q in [0usize, 17, 40] {
            let example = proto.feedback_example(&ds.db, q);
            let ctx = QueryContext {
                db: &ds.db,
                log: &log,
                example: &example,
            };
            let rf = RfSvm::new(small_config());
            assert_eq!(pooled.rank(&rf, &ctx), rf.rank(&ctx), "RF-SVM query {q}");
            let csvm = LrfCsvm::new(small_config());
            assert_eq!(
                pooled.rank(&csvm, &ctx),
                csvm.rank(&ctx),
                "LRF-CSVM query {q}"
            );
        }
    }

    #[test]
    fn euclidean_pooled_head_is_the_index_order() {
        let (ds, log) = setup();
        let index = lrf_cbir::build_flat_index(&ds.db);
        let pooled = PooledRetrieval::new(&index, 12);
        let proto = QueryProtocol {
            n_queries: 1,
            n_labeled: 6,
            seed: 0,
        };
        let example = proto.feedback_example(&ds.db, 3);
        let ctx = QueryContext {
            db: &ds.db,
            log: &log,
            example: &example,
        };
        let ranked = pooled.rank(&EuclideanScheme, &ctx);
        assert_eq!(&ranked[..12], &lrf_cbir::top_k_euclidean(&ds.db, 3, 12)[..]);
        let mut sorted = ranked.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..ds.db.len()).collect::<Vec<_>>());
    }

    #[test]
    fn pooled_ranking_is_always_a_permutation() {
        let (ds, log) = setup();
        let index = lrf_cbir::build_lsh_index(
            &ds.db,
            &lrf_index::LshConfig {
                n_tables: 2,
                n_bits: 8,
                probes: 1,
                seed: 3,
            },
        );
        let pooled = PooledRetrieval::new(&index, 16);
        let proto = QueryProtocol {
            n_queries: 1,
            n_labeled: 8,
            seed: 0,
        };
        for q in [2usize, 25] {
            let example = proto.feedback_example(&ds.db, q);
            let ctx = QueryContext {
                db: &ds.db,
                log: &log,
                example: &example,
            };
            let ranked = pooled.rank(&LrfCsvm::new(small_config()), &ctx);
            let mut sorted = ranked.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..ds.db.len()).collect::<Vec<_>>(), "query {q}");
        }
    }

    #[test]
    fn pool_with_stats_accounts_the_search_work() {
        let (ds, log) = setup();
        let index = lrf_cbir::build_flat_index(&ds.db);
        let pooled = PooledRetrieval::new(&index, 12);
        let proto = QueryProtocol {
            n_queries: 1,
            n_labeled: 6,
            seed: 0,
        };
        let example = proto.feedback_example(&ds.db, 3);
        let ctx = QueryContext {
            db: &ds.db,
            log: &log,
            example: &example,
        };
        let (pool, stats) = pooled.pool_with_stats(&ctx);
        assert_eq!(
            pool,
            pooled.pool(&ctx),
            "stats variant must not change the pool"
        );
        // The flat backend evaluates every database distance per query.
        assert_eq!(stats.distance_evals, ds.db.len());
        assert!(stats.candidates > 0);
    }

    #[test]
    fn labeled_ids_always_enter_the_pool() {
        // A starved approximate index may miss labeled images; the pool
        // must still include them.
        let (ds, log) = setup();
        let index = lrf_cbir::build_lsh_index(
            &ds.db,
            &lrf_index::LshConfig {
                n_tables: 1,
                n_bits: 10,
                probes: 0,
                seed: 9,
            },
        );
        let pooled = PooledRetrieval::new(&index, 4);
        let proto = QueryProtocol {
            n_queries: 1,
            n_labeled: 10,
            seed: 0,
        };
        let example = proto.feedback_example(&ds.db, 11);
        let ctx = QueryContext {
            db: &ds.db,
            log: &log,
            example: &example,
        };
        let pool = pooled.pool(&ctx);
        for &(id, _) in &example.labeled {
            assert!(pool.contains(&id), "labeled id {id} missing from pool");
        }
    }

    #[test]
    fn pooled_precision_tracks_full_precision_at_modest_pools() {
        // A pool of 3×k candidates should retain almost all of the full
        // ranking's precision@k — the whole premise of two-stage retrieval.
        let (ds, log) = setup();
        let index = lrf_cbir::build_flat_index(&ds.db);
        let pooled = PooledRetrieval::new(&index, 30);
        let proto = QueryProtocol {
            n_queries: 6,
            n_labeled: 8,
            seed: 5,
        };
        let scheme = RfSvm::new(small_config());
        let (mut p_full, mut p_pool) = (0.0, 0.0);
        let queries = proto.sample_queries(&ds.db);
        for &q in &queries {
            let example = proto.feedback_example(&ds.db, q);
            let ctx = QueryContext {
                db: &ds.db,
                log: &log,
                example: &example,
            };
            let rel = |id: usize| ds.db.same_category(id, q);
            p_full += precision_at(&scheme.rank(&ctx), rel, 10);
            p_pool += precision_at(&pooled.rank(&scheme, &ctx), rel, 10);
        }
        assert!(
            p_pool >= p_full - 0.5,
            "pooled precision collapsed: {p_pool} vs full {p_full} over {} queries",
            queries.len()
        );
    }
}
