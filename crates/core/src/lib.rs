//! # lrf-core — log-based relevance feedback by coupled SVM
//!
//! The paper's contribution, plus every compared scheme, behind one trait:
//!
//! * [`feedback::RelevanceFeedback`] — a scheme ranks the database given a
//!   query's feedback round ([`QueryContext`]).
//! * [`euclidean::EuclideanScheme`] — the paper's `Euclidean` reference
//!   (no learning; the initial content ranking).
//! * [`rf_svm::RfSvm`] — the `RF-SVM` baseline: a regular SVM trained on
//!   the labeled low-level features only (Tong & Chang style).
//! * [`lrf_2svms::Lrf2Svms`] — the `LRF-2SVMs` baseline: two independent
//!   SVMs (content + log) trained on the labeled set, decisions summed —
//!   the paper's "straightforward approach" that "may lose some coupling
//!   information".
//! * [`coupled`] — the **coupled SVM** (Eq. 1): two max-margin models
//!   forced to agree on a shared unlabeled pool whose pseudo-labels are
//!   optimization variables, trained by alternating optimization with
//!   ρ-annealing and Δ-gated label correction (§4.2).
//! * [`lrf_csvm::LrfCsvm`] — the practical `LRF-CSVM` algorithm of Fig. 1:
//!   unlabeled selection by combined SVM distance, coupled training,
//!   ranking by `CSVM_Dist`.
//! * [`kernels`] — RBF/linear kernels over sparse feedback-log vectors
//!   (implementations of [`lrf_svm::Kernel`] for
//!   [`lrf_logdb::SparseVector`]).
//! * [`multi`] — the generalization the paper sketches ("naturally
//!   generalized for learning on a multiple-modality problem"): a coupled
//!   machine over *k* dense modalities.
//! * [`pooled`] — the scale path: an `lrf-index` backend retrieves a
//!   candidate pool, the scheme re-ranks only the pool
//!   ([`feedback::RelevanceFeedback::score_ids`]); with the exact flat
//!   backend and a full pool this reproduces the paper's ranking exactly.
//! * [`rounds`] — the serving path: [`rounds::FeedbackLoop`] turns the
//!   one-shot schemes into resumable multi-round sessions (accumulated
//!   judgments, typed errors, log-session flush) for `lrf-service`. Each
//!   round after the first warm-starts its solver from the previous
//!   round's dual solution ([`feedback::WarmState`]) and surfaces solver
//!   health via [`feedback::RoundDiagnostics`].
//!
//! ## Quickstart
//!
//! ```
//! use lrf_cbir::{CorelDataset, CorelSpec, QueryProtocol, collect_log};
//! use lrf_core::{LrfCsvm, QueryContext, RelevanceFeedback};
//! use lrf_logdb::SimulationConfig;
//!
//! // A miniature dataset + feedback log.
//! let ds = CorelDataset::build(CorelSpec::tiny(3, 8, 7));
//! let log = collect_log(&ds.db, &SimulationConfig {
//!     n_sessions: 20, judged_per_session: 6, rounds_per_query: 2, noise: 0.1, seed: 1,
//! });
//!
//! // One feedback round for query image 0.
//! let protocol = QueryProtocol { n_queries: 1, n_labeled: 6, seed: 0 };
//! let example = protocol.feedback_example(&ds.db, 0);
//!
//! // Rank the database with the paper's algorithm.
//! let scheme = LrfCsvm::default();
//! let ranked = scheme.rank(&QueryContext { db: &ds.db, log: &log, example: &example });
//! assert_eq!(ranked.len(), ds.db.len());
//! ```

pub mod active;
pub mod config;
pub mod coupled;
pub mod euclidean;
pub mod feedback;
pub mod kernels;
pub mod log_collection;
pub mod lrf_2svms;
pub mod lrf_csvm;
pub mod multi;
pub mod pooled;
pub mod rf_svm;
pub mod rounds;

pub use active::RoundSelection;
pub use config::{CoupledConfig, LrfConfig, PseudoLabelInit, UnlabeledSelection};
pub use coupled::{train_coupled, CoupledOutcome, TrainReport};
pub use euclidean::EuclideanScheme;
pub use feedback::{
    PoolScorer, QueryContext, RelevanceFeedback, RoundDiagnostics, ScorerRef, WarmState,
};
pub use kernels::{LogCosineRbfKernel, LogKernel, LogLinearKernel, LogRbfKernel};
pub use log_collection::collect_feedback_log;
pub use lrf_2svms::Lrf2Svms;
pub use lrf_csvm::LrfCsvm;
pub use pooled::{rank_candidates, rank_candidates_warm, rank_pool_by_scores, PooledRetrieval};
pub use rf_svm::RfSvm;
pub use rounds::{FeedbackLoop, RoundError, SchemeKind};
