//! Multi-modality coupled SVM — the generalization the paper sketches.
//!
//! "Without losing generality, we formalize the coupled SVM for learning on
//! data with two types of information. It can be naturally generalized for
//! learning on a multiple-modality problem." This module is that
//! generalization for *k* dense modalities:
//!
//! * one max-margin machine per modality, all sharing labels and the
//!   unlabeled pseudo-labels `Y'`;
//! * alternating optimization with the same ρ-annealing schedule;
//! * the label-correction rule generalizes conjunctively: flip `y'_j` when
//!   **every** modality has positive slack on it and the summed slack
//!   exceeds `Δ` (for `k = 2` this is exactly Fig. 1's rule).

use crate::coupled::TrainReport;
use lrf_svm::{train_warm, Kernel, SmoParams, SvmError, SvmModel, TrainedSvm};
use serde::{Deserialize, Serialize};

/// Kernel choice for a dense modality (an enum so heterogeneous modalities
/// can live in one `Vec<ModalityData>` without generics).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum DenseKernel {
    /// `K(a,b) = aᵀb`.
    Linear,
    /// `K(a,b) = exp(−γ‖a−b‖²)`.
    Rbf {
        /// Width parameter γ.
        gamma: f64,
    },
}

impl Kernel<[f64]> for DenseKernel {
    #[inline]
    fn compute(&self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            DenseKernel::Linear => lrf_svm::kernel::dot(a, b),
            DenseKernel::Rbf { gamma } => (-gamma * lrf_svm::kernel::squared_distance(a, b)).exp(),
        }
    }
}

/// One modality's data and hyperparameters.
#[derive(Clone, Debug)]
pub struct ModalityData {
    /// Labeled samples (aligned with the shared label vector).
    pub labeled: Vec<Vec<f64>>,
    /// Unlabeled samples (aligned with the shared pseudo-label vector).
    pub unlabeled: Vec<Vec<f64>>,
    /// Kernel for this modality.
    pub kernel: DenseKernel,
    /// Labeled-slack penalty `C` for this modality.
    pub c: f64,
}

/// Configuration of the multi-modality trainer (the annealing/correction
/// knobs of [`crate::CoupledConfig`], without the two fixed per-modality
/// penalties — those live on each [`ModalityData`]).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MultiCoupledConfig {
    /// Final unlabeled regularization weight ρ.
    pub rho: f64,
    /// Initial annealed ρ*.
    pub rho_init: f64,
    /// Label-correction gate Δ (summed slack across all modalities).
    pub delta: f64,
    /// Cap on correction rounds per ρ* step.
    pub max_correction_rounds: usize,
    /// Whether to run a final pass at ρ* = ρ.
    pub final_full_rho_pass: bool,
    /// Seed each retrain with the previous machines' dual solutions (see
    /// [`crate::CoupledConfig::warm_start`]).
    pub warm_start: bool,
    /// Inner solver parameters.
    pub smo: SmoParams,
}

impl Default for MultiCoupledConfig {
    fn default() -> Self {
        Self {
            rho: 0.5,
            rho_init: 1e-4,
            delta: 2.0,
            max_correction_rounds: 10,
            final_full_rho_pass: true,
            warm_start: true,
            smo: SmoParams::default(),
        }
    }
}

/// Result of [`train_multi_coupled`].
#[derive(Clone, Debug)]
pub struct MultiCoupledOutcome {
    /// One trained machine per modality, in input order.
    pub machines: Vec<TrainedSvm<[f64], DenseKernel>>,
    /// Training diagnostics (shared across modalities).
    pub report: TrainReport,
}

impl MultiCoupledOutcome {
    /// The coupled relevance score of a sample given per-modality views:
    /// the sum of all machines' decision values.
    ///
    /// # Panics
    /// Panics if `views.len()` differs from the number of modalities.
    pub fn coupled_score(&self, views: &[Vec<f64>]) -> f64 {
        assert_eq!(
            views.len(),
            self.machines.len(),
            "one view per modality required"
        );
        self.machines
            .iter()
            .zip(views)
            .map(|(m, v)| m.model.decision(v))
            .sum()
    }

    /// Borrow the per-modality models.
    pub fn models(&self) -> impl Iterator<Item = &SvmModel<[f64], DenseKernel>> {
        self.machines.iter().map(|m| &m.model)
    }
}

/// Trains the k-modality coupled machine.
///
/// # Errors
/// Propagates solver errors.
///
/// # Panics
/// Panics on empty modality lists or misaligned sample counts.
pub fn train_multi_coupled(
    modalities: &[ModalityData],
    y: &[f64],
    y_init: &[f64],
    cfg: &MultiCoupledConfig,
) -> Result<MultiCoupledOutcome, SvmError> {
    assert!(!modalities.is_empty(), "need at least one modality");
    assert!(
        cfg.rho > 0.0 && cfg.rho_init > 0.0 && cfg.rho_init <= cfg.rho,
        "bad rho schedule"
    );
    let n_l = y.len();
    let n_u = y_init.len();
    for (m, data) in modalities.iter().enumerate() {
        assert_eq!(
            data.labeled.len(),
            n_l,
            "modality {m} labeled count mismatch"
        );
        assert_eq!(
            data.unlabeled.len(),
            n_u,
            "modality {m} unlabeled count mismatch"
        );
        assert!(data.c > 0.0, "modality {m} penalty must be positive");
    }

    let mut y_prime = y_init.to_vec();
    let mut report = TrainReport {
        rho_steps: 0,
        retrains: 0,
        flips: 0,
        correction_capped: false,
        final_labels: Vec::new(),
    };

    // Concatenated per-modality sample arrays — borrowed row views into
    // the caller's modality data, not clones.
    let all: Vec<Vec<&[f64]>> = modalities
        .iter()
        .map(|m| {
            m.labeled
                .iter()
                .chain(&m.unlabeled)
                .map(Vec::as_slice)
                .collect()
        })
        .collect();

    let train_all = |rho_star: f64,
                     y_prime: &[f64],
                     retrains: &mut usize,
                     warm: Option<&[TrainedSvm<[f64], DenseKernel>]>|
     -> Result<Vec<TrainedSvm<[f64], DenseKernel>>, SvmError> {
        let mut labels = Vec::with_capacity(n_l + n_u);
        labels.extend_from_slice(y);
        labels.extend_from_slice(y_prime);
        let mut out = Vec::with_capacity(modalities.len());
        for (m, data) in modalities.iter().enumerate() {
            let mut bounds = vec![data.c; n_l];
            bounds.extend(std::iter::repeat_n(rho_star * data.c, n_u));
            let seed = warm.map(|w| w[m].alpha.as_slice());
            out.push(train_warm(
                &all[m],
                &labels,
                &bounds,
                data.kernel,
                &cfg.smo,
                seed,
            )?);
        }
        *retrains += 1;
        Ok(out)
    };

    let correction = |machines: &mut Vec<TrainedSvm<[f64], DenseKernel>>,
                      y_prime: &mut Vec<f64>,
                      report: &mut TrainReport,
                      rho_star: f64|
     -> Result<(), SvmError> {
        for round in 0.. {
            if round >= cfg.max_correction_rounds {
                report.correction_capped = true;
                break;
            }
            // Slack per modality per unlabeled point.
            let slacks: Vec<Vec<f64>> = machines
                .iter()
                .zip(modalities)
                .map(|(mach, data)| mach.slacks(&data.unlabeled, y_prime))
                .collect();
            let mut flipped = false;
            for j in 0..n_u {
                let all_positive = slacks.iter().all(|s| s[j] > 0.0);
                let total: f64 = slacks.iter().map(|s| s[j]).sum();
                if all_positive && total > cfg.delta {
                    y_prime[j] = -y_prime[j];
                    report.flips += 1;
                    flipped = true;
                }
            }
            if !flipped {
                break;
            }
            *machines = train_all(
                rho_star,
                y_prime,
                &mut report.retrains,
                cfg.warm_start.then_some(&machines[..]),
            )?;
        }
        Ok(())
    };

    if n_u == 0 {
        let machines = train_all(cfg.rho, &y_prime, &mut report.retrains, None)?;
        report.rho_steps = 1;
        return Ok(MultiCoupledOutcome { machines, report });
    }

    let mut rho_star = cfg.rho_init.min(cfg.rho);
    let mut machines = train_all(rho_star, &y_prime, &mut report.retrains, None)?;
    correction(&mut machines, &mut y_prime, &mut report, rho_star)?;
    report.rho_steps += 1;

    while rho_star < cfg.rho {
        rho_star = (2.0 * rho_star).min(cfg.rho);
        if rho_star < cfg.rho || cfg.final_full_rho_pass {
            machines = train_all(
                rho_star,
                &y_prime,
                &mut report.retrains,
                cfg.warm_start.then_some(machines.as_slice()),
            )?;
            correction(&mut machines, &mut y_prime, &mut report, rho_star)?;
            report.rho_steps += 1;
        }
    }

    report.final_labels = y_prime;
    Ok(MultiCoupledOutcome { machines, report })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three views of the same two-cluster concept, with different scales
    /// and one linear modality.
    fn three_modality_problem() -> (Vec<ModalityData>, Vec<f64>, Vec<f64>) {
        let y = vec![1.0, 1.0, -1.0, -1.0];
        let mk = |scale: f64, kernel: DenseKernel| ModalityData {
            labeled: vec![
                vec![scale, scale * 0.9],
                vec![scale * 1.1, scale],
                vec![-scale, -scale * 0.9],
                vec![-scale * 1.1, -scale],
            ],
            unlabeled: vec![vec![scale * 0.8, scale], vec![-scale, -scale * 1.2]],
            kernel,
            c: 10.0,
        };
        let modalities = vec![
            mk(1.0, DenseKernel::Rbf { gamma: 0.5 }),
            mk(3.0, DenseKernel::Rbf { gamma: 0.1 }),
            mk(0.5, DenseKernel::Linear),
        ];
        (modalities, y, vec![1.0, -1.0])
    }

    #[test]
    fn trains_k_machines_consistently() {
        let (mods, y, y_init) = three_modality_problem();
        let out = train_multi_coupled(&mods, &y, &y_init, &MultiCoupledConfig::default()).unwrap();
        assert_eq!(out.machines.len(), 3);
        for (m, data) in out.machines.iter().zip(&mods) {
            for (x, &label) in data.labeled.iter().zip(&y) {
                assert!(m.model.decision(x) * label > 0.0);
            }
        }
        // Coupled score sums all modalities.
        let views: Vec<Vec<f64>> = mods.iter().map(|m| m.unlabeled[0].clone()).collect();
        assert!(out.coupled_score(&views) > 0.0);
    }

    #[test]
    fn two_modality_case_matches_pairwise_semantics() {
        // With k = 2 the flip rule must equal Fig. 1's: initialize wrong,
        // expect corrections.
        let (mut mods, y, _) = three_modality_problem();
        mods.truncate(2);
        let cfg = MultiCoupledConfig {
            delta: 1.0,
            ..Default::default()
        };
        let out = train_multi_coupled(&mods, &y, &[-1.0, 1.0], &cfg).unwrap();
        assert_eq!(out.report.final_labels, vec![1.0, -1.0]);
        assert!(out.report.flips >= 2);
    }

    #[test]
    fn empty_unlabeled_pool_ok() {
        let (mut mods, y, _) = three_modality_problem();
        for m in &mut mods {
            m.unlabeled.clear();
        }
        let out = train_multi_coupled(&mods, &y, &[], &MultiCoupledConfig::default()).unwrap();
        assert_eq!(out.report.rho_steps, 1);
    }

    #[test]
    #[should_panic(expected = "labeled count mismatch")]
    fn misaligned_modalities_panic() {
        let (mut mods, y, y_init) = three_modality_problem();
        mods[1].labeled.pop();
        let _ = train_multi_coupled(&mods, &y, &y_init, &MultiCoupledConfig::default());
    }

    #[test]
    #[should_panic(expected = "one view per modality")]
    fn score_requires_all_views() {
        let (mods, y, y_init) = three_modality_problem();
        let out = train_multi_coupled(&mods, &y, &y_init, &MultiCoupledConfig::default()).unwrap();
        let _ = out.coupled_score(&[vec![0.0, 0.0]]);
    }

    #[test]
    fn single_modality_reduces_to_plain_transductive_svm() {
        let (mut mods, y, y_init) = three_modality_problem();
        mods.truncate(1);
        let out = train_multi_coupled(&mods, &y, &y_init, &MultiCoupledConfig::default()).unwrap();
        assert_eq!(out.machines.len(), 1);
        for (x, &label) in mods[0].labeled.iter().zip(&y) {
            assert!(out.machines[0].model.decision(x) * label > 0.0);
        }
    }
}
