//! Paper-faithful log collection: multi-round relevance feedback.
//!
//! §6.3 of the paper: users query the CBIR system, judge the initial
//! content-based screen, and then "employ the relevance feedback tool to
//! improve the retrieval performance" — every refined round is logged as
//! its own session. The refinement in the authors' system was their SVM
//! relevance feedback (\[10, 11\] in the paper), i.e. the `RF-SVM` scheme.
//!
//! This collector reproduces that loop:
//!
//! * round 0: the Euclidean top-`N_l` of the database (what the system
//!   shows before any feedback);
//! * round `r > 0`: an SVM is trained on the judgments accumulated in this
//!   interaction (most recent judgment wins for re-shown images) and the
//!   top-`N_l` of its refined ranking — *including* already-confirmed
//!   positives, which naturally rank highest — forms the next screen,
//!   exactly as the era's feedback UIs presented results;
//! * each round is one [`lrf_logdb::LogSession`].
//!
//! Two properties of this protocol matter downstream. First, refined
//! rounds chase the user's *semantic* category across the feature space,
//! co-judging relevant images from different appearance clusters. Second,
//! because confirmed positives are re-shown and re-marked alongside newly
//! found ones, every interaction's discoveries end up sharing sessions —
//! the co-judgment graph of the relevance matrix is *connected* within a
//! category instead of fragmenting into per-round islands. Both properties
//! are what let the log-based schemes bridge the semantic gap.

use crate::config::LrfConfig;
use lrf_cbir::{rank_by_euclidean, ImageDatabase};
use lrf_logdb::{simulate_sessions, LogStore, Relevance, SimulationConfig};
use lrf_svm::{train, RbfKernel};

/// Collects a feedback log whose refined rounds come from RF-SVM, as in
/// the paper's collection procedure.
///
/// `lrf` supplies the SVM hyperparameters used by the *collection-time*
/// refinement (the deployed system's configuration); it is typically the
/// same config later used for retrieval.
pub fn collect_feedback_log(
    db: &ImageDatabase,
    config: &SimulationConfig,
    lrf: &LrfConfig,
) -> LogStore {
    let gamma = lrf
        .gamma_content
        .unwrap_or(1.0 / lrf_features::TOTAL_DIMS as f64);
    let sessions = simulate_sessions(config, db.categories(), |query, judged, k| {
        let ranking = if judged.is_empty() {
            rank_by_euclidean(db, db.feature(query))
        } else {
            refine_with_svm(db, judged, gamma, lrf)
        };
        ranking.into_iter().take(k).collect()
    });
    let mut store = LogStore::new(db.len());
    for s in sessions {
        store.record(s);
    }
    store
}

/// One RF-SVM refinement round over accumulated judgments. An image
/// re-judged in a later round keeps only its most recent judgment for
/// training (the user's current opinion). Single-class judgment sets fall
/// back to the solver's constant model.
fn refine_with_svm(
    db: &ImageDatabase,
    judged: &[(usize, Relevance)],
    gamma: f64,
    lrf: &LrfConfig,
) -> Vec<usize> {
    // Deduplicate, last judgment wins; keep deterministic id order.
    let mut latest: std::collections::BTreeMap<usize, Relevance> =
        std::collections::BTreeMap::new();
    for &(id, r) in judged {
        latest.insert(id, r);
    }
    // Borrowed row views — a session's judged set is never deep-copied.
    let samples: Vec<&[f64]> = latest.keys().map(|&id| db.feature(id)).collect();
    let labels: Vec<f64> = latest.values().map(|r| r.sign()).collect();
    let bounds = vec![lrf.coupled.c_content; samples.len()];
    let svm = train(
        &samples,
        &labels,
        &bounds,
        RbfKernel::new(gamma),
        &lrf.coupled.smo,
    )
    .expect("collection-time SVM cannot fail on validated judgments");
    let scores = svm.model.decision_batch_rows(db.features_flat(), db.dim());
    crate::feedback::rank_by_scores(&scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrf_cbir::{CorelDataset, CorelSpec};

    fn cfg(n_sessions: usize, k: usize, rounds: usize, noise: f64, seed: u64) -> SimulationConfig {
        SimulationConfig {
            n_sessions,
            judged_per_session: k,
            rounds_per_query: rounds,
            noise,
            seed,
        }
    }

    #[test]
    fn collects_requested_sessions() {
        let ds = CorelDataset::build(CorelSpec::tiny(3, 10, 3));
        let log = collect_feedback_log(&ds.db, &cfg(9, 6, 3, 0.1, 1), &LrfConfig::default());
        assert_eq!(log.n_sessions(), 9);
        assert_eq!(log.n_images(), ds.db.len());
    }

    #[test]
    fn is_deterministic() {
        let ds = CorelDataset::build(CorelSpec::tiny(2, 8, 5));
        let c = cfg(6, 5, 2, 0.1, 9);
        let lrf = LrfConfig::default();
        assert_eq!(
            collect_feedback_log(&ds.db, &c, &lrf),
            collect_feedback_log(&ds.db, &c, &lrf)
        );
    }

    #[test]
    fn refined_rounds_reshow_confirmed_positives() {
        // The refined screen is the model's top-k, which re-contains the
        // positives confirmed in the previous round (they score highest),
        // connecting each interaction's discoveries through shared
        // sessions.
        let ds = CorelDataset::build(CorelSpec::tiny(3, 10, 7));
        let log = collect_feedback_log(&ds.db, &cfg(6, 8, 2, 0.0, 3), &LrfConfig::default());
        let mut any_overlap = false;
        for pair in 0..3 {
            let a = log.session(2 * pair);
            let b = log.session(2 * pair + 1);
            if a.iter().any(|(id, _)| b.judgment(id).is_some()) {
                any_overlap = true;
            }
        }
        assert!(
            any_overlap,
            "refined rounds should re-judge confirmed images"
        );
    }

    #[test]
    fn refined_collection_reaches_more_of_the_category_than_content_only() {
        // The whole point of RF-driven collection: across an interaction,
        // refined rounds recall more same-category images than repeating
        // content-ranked screens. Compare total relevant judgments.
        let ds = CorelDataset::build(CorelSpec::tiny(4, 25, 11));
        let c = cfg(30, 10, 3, 0.0, 13);
        let refined = collect_feedback_log(&ds.db, &c, &LrfConfig::default());
        let content_only = lrf_cbir::collect_log(&ds.db, &c);
        let count_relevant =
            |log: &LogStore| -> usize { log.sessions().map(|s| s.n_relevant()).sum() };
        let r = count_relevant(&refined);
        let c0 = count_relevant(&content_only);
        assert!(
            r * 10 >= c0 * 9,
            "refined collection should not find drastically fewer relevant: {r} vs {c0}"
        );
    }
}
