//! The `LRF-2SVMs` baseline: independent SVMs per modality, summed.
//!
//! "The straightforward approach to integrate the user feedback log with
//! the low-level image content is to learn two modalities respectively and
//! then sum up their results. Such an approach is feasible but it may lose
//! some coupling information." Train one SVM on the labeled feature
//! vectors, one on the labeled log vectors, and rank by
//! `f_w(x_i) + f_u(r_i)`.

use crate::config::LrfConfig;
use crate::feedback::{
    rank_by_scores, PoolScorer, QueryContext, RelevanceFeedback, RoundDiagnostics, ScorerRef,
    WarmState,
};
use crate::kernels::LogKernel;
use crate::rf_svm::RfSvm;
use lrf_logdb::SparseVector;
use lrf_svm::{train_warm, SvmModel, TrainedSvm};

/// Linear combination of two independently trained SVMs.
#[derive(Clone, Debug, Default)]
pub struct Lrf2Svms {
    /// Shared configuration.
    pub config: LrfConfig,
}

impl Lrf2Svms {
    /// Creates the scheme with an explicit configuration.
    pub fn new(config: LrfConfig) -> Self {
        config.validate();
        Self { config }
    }

    /// Trains the log-side SVM on the labeled round, borrowing the log
    /// vectors from the store (no clone per sample). Exposed for reuse by
    /// LRF-CSVM (this is its log-side initial model).
    pub fn train_log_svm(&self, ctx: &QueryContext<'_>) -> TrainedSvm<SparseVector, LogKernel> {
        self.train_log_svm_warm(ctx, None)
    }

    /// [`train_log_svm`](Self::train_log_svm), optionally seeded with the
    /// previous round's log-side alphas (labeled-set order).
    pub fn train_log_svm_warm(
        &self,
        ctx: &QueryContext<'_>,
        warm: Option<&[f64]>,
    ) -> TrainedSvm<SparseVector, LogKernel> {
        let samples: Vec<&SparseVector> = ctx
            .example
            .labeled
            .iter()
            .map(|&(id, _)| ctx.log.log_vector(id))
            .collect();
        let labels: Vec<f64> = ctx.example.labeled.iter().map(|&(_, y)| y).collect();
        let bounds = vec![self.config.coupled.c_log; samples.len()];
        train_warm(
            &samples,
            &labels,
            &bounds,
            self.config.log_kernel,
            &self.config.coupled.smo,
            warm,
        )
        .expect("log SVM training cannot fail on validated feedback rounds")
    }

    /// Scores every database image under a log model: one parallel batch
    /// pass over the store's log vectors.
    pub fn score_all_log(
        log: &lrf_logdb::LogStore,
        model: &SvmModel<SparseVector, LogKernel>,
    ) -> Vec<f64> {
        model.decision_batch(log.log_vectors())
    }

    /// Scores a subset of images under a log model (aligned with `ids`).
    pub fn score_subset_log(
        log: &lrf_logdb::LogStore,
        model: &SvmModel<SparseVector, LogKernel>,
        ids: &[usize],
    ) -> Vec<f64> {
        let rows: Vec<&SparseVector> = ids.iter().map(|&id| log.log_vector(id)).collect();
        model.decision_batch(&rows)
    }
}

impl RelevanceFeedback for Lrf2Svms {
    fn name(&self) -> &'static str {
        "LRF-2SVMs"
    }

    fn rank(&self, ctx: &QueryContext<'_>) -> Vec<usize> {
        let combined = self.scores(ctx).expect("LRF-2SVMs always produces scores");
        rank_by_scores(&combined)
    }

    fn scores(&self, ctx: &QueryContext<'_>) -> Option<Vec<f64>> {
        let content = RfSvm::new(self.config).train_content_svm(ctx);
        let logside = self.train_log_svm(ctx);
        let content_scores = RfSvm::score_all(ctx.db, &content.model);
        let log_scores = Self::score_all_log(ctx.log, &logside.model);
        Some(
            content_scores
                .iter()
                .zip(&log_scores)
                .map(|(c, l)| c + l)
                .collect(),
        )
    }

    fn score_ids(&self, ctx: &QueryContext<'_>, ids: &[usize]) -> Option<Vec<f64>> {
        let content = RfSvm::new(self.config).train_content_svm(ctx);
        let logside = self.train_log_svm(ctx);
        let content_scores = RfSvm::score_subset(ctx.db, &content.model, ids);
        let log_scores = Self::score_subset_log(ctx.log, &logside.model, ids);
        Some(
            content_scores
                .iter()
                .zip(&log_scores)
                .map(|(c, l)| c + l)
                .collect(),
        )
    }

    fn fit_warm(
        &self,
        ctx: &QueryContext<'_>,
        _pool: &[usize],
        warm: &mut WarmState,
    ) -> Option<ScorerRef> {
        let content = RfSvm::new(self.config).train_content_svm_warm(ctx, warm.content.as_deref());
        let logside = self.train_log_svm_warm(ctx, warm.log.as_deref());
        let mut diag = RoundDiagnostics::all_converged();
        diag.absorb(&content.stats);
        diag.absorb(&logside.stats);
        warm.content = Some(content.alpha.clone());
        warm.log = Some(logside.alpha.clone());
        warm.last = Some(diag);
        Some(std::sync::Arc::new(SummedScorer {
            content: content.model,
            log: logside.model,
        }))
    }
}

/// [`PoolScorer`] for the two-modality schemes: one content model plus one
/// log model, summed per id — the `f_w(x_i) + f_u(r_i)` of the paper.
/// Shared by LRF-2SVMs (independent machines) and LRF-CSVM (the coupled
/// outcome's machines); only how the models were *trained* differs, so
/// shard-side scoring is one code path.
pub(crate) struct SummedScorer {
    pub(crate) content: SvmModel<[f64], lrf_svm::RbfKernel>,
    pub(crate) log: SvmModel<SparseVector, LogKernel>,
}

impl PoolScorer for SummedScorer {
    fn score_ids(
        &self,
        db: &lrf_cbir::ImageDatabase,
        log: &lrf_logdb::LogStore,
        ids: &[usize],
    ) -> Vec<f64> {
        let content_scores = RfSvm::score_subset(db, &self.content, ids);
        let log_scores = Lrf2Svms::score_subset_log(log, &self.log, ids);
        content_scores
            .iter()
            .zip(&log_scores)
            .map(|(c, l)| c + l)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrf_cbir::{collect_log, precision_at, CorelDataset, CorelSpec, QueryProtocol};
    use lrf_logdb::SimulationConfig;

    fn setup(noise: f64, sessions: usize) -> (CorelDataset, lrf_logdb::LogStore) {
        let ds = CorelDataset::build(CorelSpec::tiny(4, 12, 19));
        let log = collect_log(
            &ds.db,
            &SimulationConfig {
                n_sessions: sessions,
                judged_per_session: 10,
                rounds_per_query: 2,
                noise,
                seed: 23,
            },
        );
        (ds, log)
    }

    #[test]
    fn rank_is_a_permutation() {
        let (ds, log) = setup(0.1, 12);
        let proto = QueryProtocol {
            n_queries: 1,
            n_labeled: 8,
            seed: 0,
        };
        let example = proto.feedback_example(&ds.db, 3);
        let ranked = Lrf2Svms::default().rank(&QueryContext {
            db: &ds.db,
            log: &log,
            example: &example,
        });
        let mut sorted = ranked.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..ds.db.len()).collect::<Vec<_>>());
        assert_eq!(Lrf2Svms::default().name(), "LRF-2SVMs");
    }

    #[test]
    fn log_information_helps_on_average() {
        // With a dense enough clean log, LRF-2SVMs must beat RF-SVM on
        // average precision — the paper's first empirical claim.
        let (ds, log) = setup(0.0, 60);
        let proto = QueryProtocol {
            n_queries: 8,
            n_labeled: 10,
            seed: 77,
        };
        let two = Lrf2Svms::default();
        let rf = RfSvm::default();
        let mut p_two = 0.0;
        let mut p_rf = 0.0;
        let queries = proto.sample_queries(&ds.db);
        for &q in &queries {
            let example = proto.feedback_example(&ds.db, q);
            let ctx = QueryContext {
                db: &ds.db,
                log: &log,
                example: &example,
            };
            let rel = |id: usize| ds.db.same_category(id, q);
            p_two += precision_at(&two.rank(&ctx), rel, 12);
            p_rf += precision_at(&rf.rank(&ctx), rel, 12);
        }
        assert!(
            p_two >= p_rf,
            "log info should help: LRF-2SVMs {p_two} vs RF-SVM {p_rf}"
        );
    }

    #[test]
    fn empty_log_degrades_gracefully() {
        // With zero sessions every log vector is empty: the log SVM sees a
        // single point; ranking must still be a valid permutation.
        let ds = CorelDataset::build(CorelSpec::tiny(3, 6, 4));
        let log = lrf_logdb::LogStore::new(ds.db.len());
        let proto = QueryProtocol {
            n_queries: 1,
            n_labeled: 6,
            seed: 0,
        };
        let example = proto.feedback_example(&ds.db, 1);
        let ranked = Lrf2Svms::default().rank(&QueryContext {
            db: &ds.db,
            log: &log,
            example: &example,
        });
        assert_eq!(ranked.len(), ds.db.len());
    }
}
