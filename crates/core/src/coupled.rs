//! The coupled support vector machine (Eq. 1) trained by alternating
//! optimization (§4.2, Fig. 1).
//!
//! Two max-margin machines — one per information modality — share a pool of
//! unlabeled points whose pseudo-labels `Y'` are optimization variables:
//!
//! ```text
//! min  ½‖w‖² + ½‖u‖² + C_w Σξ + C_u Ση + ρC_w Σξ' + ρC_u Ση'
//! s.t. labeled:   y_i (wᵀx_i + b_w) ≥ 1 − ξ_i,   y_i (uᵀr_i + b_u) ≥ 1 − η_i
//!      unlabeled: y'_j(wᵀx'_j + b_w) ≥ 1 − ξ'_j, y'_j(uᵀr'_j + b_u) ≥ 1 − η'_j
//! ```
//!
//! **Alternating optimization.** With `Y'` fixed, the problem splits into
//! two independent soft-margin SVM QPs whose only nonstandard feature is
//! the per-sample bound (`C` labeled / `ρ*C` unlabeled) — solved by
//! `lrf-svm`. With the models fixed, the optimal `Y'` minimizes
//! `Σ_j C_w·hinge(y'_j, f_w) + C_u·hinge(y'_j, f_u)`, an integer program
//! the paper approximates by flipping exactly the labels both machines
//! reject: `ξ'_j > 0 ∧ η'_j > 0 ∧ ξ'_j + η'_j > Δ`.
//!
//! **Annealing.** `ρ*` starts at `10⁻⁴` so unlabeled points cannot dominate
//! early, and doubles per outer round up to `ρ` — "similar to the approach
//! in transductive SVM" (Joachims).
//!
//! **Warm starts.** Every retrain inside one [`train_coupled`] call solves
//! a QP over the *same* concatenated sample set — only the bounds (`ρ*`
//! doubling) and a few pseudo-labels change between rounds. With
//! [`CoupledConfig::warm_start`] (the default) each solve is seeded with
//! the previous pair's dual solution via [`lrf_svm::train_warm`], which
//! clips it to the new bounds and repairs feasibility; the annealing
//! schedule's dozen-plus retrains then each start a stone's throw from
//! their optimum instead of from zero.

use crate::config::CoupledConfig;
use lrf_svm::{train_warm, Kernel, SvmError, TrainedSvm};
use serde::{Deserialize, Serialize};
use std::borrow::Borrow;

/// Diagnostics of one coupled training run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Number of ρ* annealing steps executed (including the final full-ρ
    /// pass when enabled).
    pub rho_steps: usize,
    /// Total SVM *pair* trainings (each counts one content + one log QP).
    pub retrains: usize,
    /// Total pseudo-label flips performed by the correction loop.
    pub flips: usize,
    /// Whether any correction loop hit its round cap (possible oscillation).
    pub correction_capped: bool,
    /// Final pseudo-labels of the unlabeled pool.
    pub final_labels: Vec<f64>,
}

/// Result of [`train_coupled`]: the two final models plus diagnostics.
pub struct CoupledOutcome<S1: ?Sized + ToOwned, K1, S2: ?Sized + ToOwned, K2> {
    /// The content-modality machine (`w`, `b_w`).
    pub content: TrainedSvm<S1, K1>,
    /// The log-modality machine (`u`, `b_u`).
    pub log: TrainedSvm<S2, K2>,
    /// Training diagnostics.
    pub report: TrainReport,
}

impl<S1, K1, S2, K2> CoupledOutcome<S1, K1, S2, K2>
where
    S1: ?Sized + ToOwned,
    K1: Kernel<S1>,
    S2: ?Sized + ToOwned,
    K2: Kernel<S2>,
{
    /// The paper's `CSVM_Dist`: the sum of both machines' decision values —
    /// the relevance score the final retrieval ranks by.
    pub fn coupled_score(&self, x: &S1, r: &S2) -> f64 {
        self.content.model.decision(x) + self.log.model.decision(r)
    }
}

impl<S1, K1, S2, K2> Clone for CoupledOutcome<S1, K1, S2, K2>
where
    S1: ?Sized + ToOwned,
    S2: ?Sized + ToOwned,
    TrainedSvm<S1, K1>: Clone,
    TrainedSvm<S2, K2>: Clone,
{
    fn clone(&self) -> Self {
        Self {
            content: self.content.clone(),
            log: self.log.clone(),
            report: self.report.clone(),
        }
    }
}

impl<S1, K1, S2, K2> std::fmt::Debug for CoupledOutcome<S1, K1, S2, K2>
where
    S1: ?Sized + ToOwned,
    S2: ?Sized + ToOwned,
    TrainedSvm<S1, K1>: std::fmt::Debug,
    TrainedSvm<S2, K2>: std::fmt::Debug,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoupledOutcome")
            .field("content", &self.content)
            .field("log", &self.log)
            .field("report", &self.report)
            .finish()
    }
}

/// Trains the coupled SVM over two modalities.
///
/// * `labeled_a` / `labeled_b` — the `N_l` labeled samples in each modality
///   (same images, aligned by index) with shared labels `y`.
/// * `unlabeled_a` / `unlabeled_b` — the `N'` unlabeled samples, with
///   initial pseudo-labels `y_init` (±1).
/// * `kernel_a` / `kernel_b` — the per-modality kernels.
///
/// Samples are taken by borrow (`B1: Borrow<S1>`, `B2: Borrow<S2>`):
/// callers pass `&[f64]` row views of the database's flat matrix and
/// `&SparseVector` references straight out of the log store; no training
/// round copies a feature. Only the final models' support vectors are
/// materialized (via `ToOwned`).
///
/// # Errors
/// Propagates solver errors (invalid labels/bounds, non-finite kernels).
///
/// # Panics
/// Panics if the modality arrays are misaligned.
#[allow(clippy::too_many_arguments)] // mirrors the paper's explicit operands
pub fn train_coupled<S1, B1, K1, S2, B2, K2>(
    labeled_a: &[B1],
    labeled_b: &[B2],
    y: &[f64],
    unlabeled_a: &[B1],
    unlabeled_b: &[B2],
    y_init: &[f64],
    kernel_a: K1,
    kernel_b: K2,
    cfg: &CoupledConfig,
) -> Result<CoupledOutcome<S1, K1, S2, K2>, SvmError>
where
    S1: ?Sized + ToOwned,
    B1: Borrow<S1>,
    K1: Kernel<S1> + Clone,
    S2: ?Sized + ToOwned,
    B2: Borrow<S2>,
    K2: Kernel<S2> + Clone,
{
    cfg.validate();
    assert_eq!(
        labeled_a.len(),
        labeled_b.len(),
        "labeled modalities misaligned"
    );
    assert_eq!(
        labeled_a.len(),
        y.len(),
        "labels misaligned with labeled samples"
    );
    assert_eq!(
        unlabeled_a.len(),
        unlabeled_b.len(),
        "unlabeled modalities misaligned"
    );
    assert_eq!(
        unlabeled_a.len(),
        y_init.len(),
        "initial pseudo-labels misaligned"
    );

    let n_l = labeled_a.len();
    let n_u = unlabeled_a.len();
    let mut y_prime = y_init.to_vec();

    // Concatenated *borrowed* sample views reused across retrains — a
    // vector of references, not of cloned samples.
    let all_a: Vec<&S1> = labeled_a
        .iter()
        .chain(unlabeled_a)
        .map(Borrow::borrow)
        .collect();
    let all_b: Vec<&S2> = labeled_b
        .iter()
        .chain(unlabeled_b)
        .map(Borrow::borrow)
        .collect();

    let mut report = TrainReport {
        rho_steps: 0,
        retrains: 0,
        flips: 0,
        correction_capped: false,
        final_labels: Vec::new(),
    };

    #[allow(clippy::type_complexity)]
    let train_pair = |rho_star: f64,
                      y_prime: &[f64],
                      retrains: &mut usize,
                      warm_a: Option<&[f64]>,
                      warm_b: Option<&[f64]>|
     -> Result<(TrainedSvm<S1, K1>, TrainedSvm<S2, K2>), SvmError> {
        let mut labels = Vec::with_capacity(n_l + n_u);
        labels.extend_from_slice(y);
        labels.extend_from_slice(y_prime);
        let mut bounds_a = vec![cfg.c_content; n_l];
        bounds_a.extend(std::iter::repeat_n(rho_star * cfg.c_content, n_u));
        let mut bounds_b = vec![cfg.c_log; n_l];
        bounds_b.extend(std::iter::repeat_n(rho_star * cfg.c_log, n_u));
        let a = train_warm(
            &all_a,
            &labels,
            &bounds_a,
            kernel_a.clone(),
            &cfg.smo,
            warm_a,
        )?;
        let b = train_warm(
            &all_b,
            &labels,
            &bounds_b,
            kernel_b.clone(),
            &cfg.smo,
            warm_b,
        )?;
        *retrains += 1;
        Ok((a, b))
    };

    // Degenerate-but-legal case: no unlabeled points. The coupled problem
    // collapses to two independent labeled SVMs.
    if n_u == 0 {
        let (a, b) = train_pair(cfg.rho, &y_prime, &mut report.retrains, None, None)?;
        report.rho_steps = 1;
        return Ok(CoupledOutcome {
            content: a,
            log: b,
            report,
        });
    }

    let mut rho_star = cfg.rho_init.min(cfg.rho);
    let mut pair = train_pair(rho_star, &y_prime, &mut report.retrains, None, None)?;
    run_label_correction(
        &mut pair,
        unlabeled_a,
        unlabeled_b,
        &mut y_prime,
        cfg,
        &mut report,
        rho_star,
        &train_pair,
    )?;
    report.rho_steps += 1;

    // Fig. 1: WHILE (ρ* < ρ) { train; correct; ρ* = min(2ρ*, ρ) }.
    while rho_star < cfg.rho {
        rho_star = (2.0 * rho_star).min(cfg.rho);
        // The loop body trains at the *new* ρ* only while it is still below
        // ρ; the final value is covered by `final_full_rho_pass` below.
        if rho_star < cfg.rho || cfg.final_full_rho_pass {
            let (wa, wb) = warm_seeds(cfg, &pair);
            pair = train_pair(
                rho_star,
                &y_prime,
                &mut report.retrains,
                wa.as_deref(),
                wb.as_deref(),
            )?;
            run_label_correction(
                &mut pair,
                unlabeled_a,
                unlabeled_b,
                &mut y_prime,
                cfg,
                &mut report,
                rho_star,
                &train_pair,
            )?;
            report.rho_steps += 1;
        }
    }

    report.final_labels = y_prime;
    Ok(CoupledOutcome {
        content: pair.0,
        log: pair.1,
        report,
    })
}

/// The dual seeds for the next retrain: clones of the current pair's alpha
/// vectors when warm starting is enabled, `None` (cold solves) otherwise.
/// Cloned because the retrain overwrites the pair the seeds come from.
fn warm_seeds<S1, K1, S2, K2>(
    cfg: &CoupledConfig,
    pair: &(TrainedSvm<S1, K1>, TrainedSvm<S2, K2>),
) -> (Option<Vec<f64>>, Option<Vec<f64>>)
where
    S1: ?Sized + ToOwned,
    S2: ?Sized + ToOwned,
{
    if cfg.warm_start {
        (Some(pair.0.alpha.clone()), Some(pair.1.alpha.clone()))
    } else {
        (None, None)
    }
}

/// The inner correction loop of Fig. 1: while any unlabeled point has
/// positive slack on *both* modalities exceeding `Δ` in sum, flip those
/// pseudo-labels and retrain both machines.
#[allow(clippy::too_many_arguments)]
fn run_label_correction<S1, B1, K1, S2, B2, K2, F>(
    pair: &mut (TrainedSvm<S1, K1>, TrainedSvm<S2, K2>),
    unlabeled_a: &[B1],
    unlabeled_b: &[B2],
    y_prime: &mut [f64],
    cfg: &CoupledConfig,
    report: &mut TrainReport,
    rho_star: f64,
    train_pair: &F,
) -> Result<(), SvmError>
where
    S1: ?Sized + ToOwned,
    B1: Borrow<S1>,
    K1: Kernel<S1>,
    S2: ?Sized + ToOwned,
    B2: Borrow<S2>,
    K2: Kernel<S2>,
    F: Fn(
        f64,
        &[f64],
        &mut usize,
        Option<&[f64]>,
        Option<&[f64]>,
    ) -> Result<(TrainedSvm<S1, K1>, TrainedSvm<S2, K2>), SvmError>,
{
    for round in 0.. {
        if round >= cfg.max_correction_rounds {
            report.correction_capped = true;
            break;
        }
        let xi = pair.0.slacks(unlabeled_a, y_prime);
        let eta = pair.1.slacks(unlabeled_b, y_prime);
        let mut flipped_any = false;
        for j in 0..y_prime.len() {
            if xi[j] > 0.0 && eta[j] > 0.0 && xi[j] + eta[j] > cfg.delta {
                y_prime[j] = -y_prime[j];
                report.flips += 1;
                flipped_any = true;
            }
        }
        if !flipped_any {
            break;
        }
        let (wa, wb) = warm_seeds(cfg, pair);
        *pair = train_pair(
            rho_star,
            y_prime,
            &mut report.retrains,
            wa.as_deref(),
            wb.as_deref(),
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::LogRbfKernel;
    use lrf_logdb::SparseVector;
    use lrf_svm::{RbfKernel, SmoParams};

    /// Two modalities that agree: content clusers at ±1, log vectors with
    /// matching session signatures.
    #[allow(clippy::type_complexity)]
    fn agreeing_problem() -> (
        Vec<Vec<f64>>,
        Vec<SparseVector>,
        Vec<f64>,
        Vec<Vec<f64>>,
        Vec<SparseVector>,
    ) {
        let labeled_a = vec![
            vec![1.0, 0.9],
            vec![0.9, 1.1],
            vec![-1.0, -0.9],
            vec![-1.1, -1.0],
        ];
        let labeled_b = vec![
            SparseVector::from_entries(vec![(0, 1.0)]),
            SparseVector::from_entries(vec![(0, 1.0), (1, 1.0)]),
            SparseVector::from_entries(vec![(0, -1.0)]),
            SparseVector::from_entries(vec![(0, -1.0), (1, -1.0)]),
        ];
        let y = vec![1.0, 1.0, -1.0, -1.0];
        let unlabeled_a = vec![vec![0.8, 1.0], vec![-0.9, -1.1]];
        let unlabeled_b = vec![
            SparseVector::from_entries(vec![(1, 1.0)]),
            SparseVector::from_entries(vec![(1, -1.0)]),
        ];
        (labeled_a, labeled_b, y, unlabeled_a, unlabeled_b)
    }

    fn kernels() -> (RbfKernel, LogRbfKernel) {
        (RbfKernel::new(0.5), LogRbfKernel::new(0.5))
    }

    #[test]
    fn trains_and_classifies_consistently() {
        let (la, lb, y, ua, ub) = agreeing_problem();
        let (ka, kb) = kernels();
        let out = train_coupled(
            &la,
            &lb,
            &y,
            &ua,
            &ub,
            &[1.0, -1.0],
            ka,
            kb,
            &CoupledConfig::default(),
        )
        .unwrap();
        // Both machines classify the labeled data correctly.
        for (i, x) in la.iter().enumerate() {
            assert!(
                out.content.model.decision(x) * y[i] > 0.0,
                "content sample {i}"
            );
        }
        for (i, r) in lb.iter().enumerate() {
            assert!(out.log.model.decision(r) * y[i] > 0.0, "log sample {i}");
        }
        // Coupled score agrees with the shared structure.
        assert!(out.coupled_score(&ua[0], &ub[0]) > out.coupled_score(&ua[1], &ub[1]));
        assert!(out.report.retrains >= 1);
        assert!(
            out.report.rho_steps >= 2,
            "annealing must take multiple steps"
        );
        assert_eq!(out.report.final_labels, vec![1.0, -1.0]);
    }

    #[test]
    fn wrong_pseudo_labels_get_corrected() {
        // Initialize the pseudo-labels INVERTED: the correction loop must
        // flip them back because both modalities place the points firmly on
        // the other side.
        let (la, lb, y, ua, ub) = agreeing_problem();
        let (ka, kb) = kernels();
        let cfg = CoupledConfig {
            delta: 1.0,
            ..Default::default()
        };
        let out = train_coupled(&la, &lb, &y, &ua, &ub, &[-1.0, 1.0], ka, kb, &cfg).unwrap();
        assert_eq!(
            out.report.final_labels,
            vec![1.0, -1.0],
            "correction should recover the consistent labeling (flips={})",
            out.report.flips
        );
        assert!(out.report.flips >= 2);
    }

    #[test]
    fn no_unlabeled_pool_degrades_to_independent_svms() {
        let (la, lb, y, _, _) = agreeing_problem();
        let (ka, kb) = kernels();
        let out = train_coupled(
            &la,
            &lb,
            &y,
            &[],
            &[],
            &[],
            ka,
            kb,
            &CoupledConfig::default(),
        )
        .unwrap();
        assert_eq!(out.report.rho_steps, 1);
        assert_eq!(out.report.flips, 0);
        for (i, x) in la.iter().enumerate() {
            assert!(out.content.model.decision(x) * y[i] > 0.0);
        }
    }

    #[test]
    fn annealing_step_count_matches_schedule() {
        // rho_init 1e-4 doubling to rho 0.5: steps at 1e-4, 2e-4, ..., plus
        // the final pass. ceil(log2(0.5/1e-4)) = 13 doublings.
        let (la, lb, y, ua, ub) = agreeing_problem();
        let (ka, kb) = kernels();
        let cfg = CoupledConfig::default();
        let out = train_coupled(&la, &lb, &y, &ua, &ub, &[1.0, -1.0], ka, kb, &cfg).unwrap();
        let expected = ((cfg.rho / cfg.rho_init).log2().ceil() as usize) + 1;
        assert_eq!(
            out.report.rho_steps, expected,
            "steps {}",
            out.report.rho_steps
        );
    }

    #[test]
    fn disabling_final_pass_trains_fewer_steps() {
        let (la, lb, y, ua, ub) = agreeing_problem();
        let (ka, kb) = kernels();
        let with_pass = CoupledConfig::default();
        let without_pass = CoupledConfig {
            final_full_rho_pass: false,
            ..with_pass
        };
        let a = train_coupled(&la, &lb, &y, &ua, &ub, &[1.0, -1.0], ka, kb, &with_pass).unwrap();
        let b = train_coupled(&la, &lb, &y, &ua, &ub, &[1.0, -1.0], ka, kb, &without_pass).unwrap();
        assert_eq!(a.report.rho_steps, b.report.rho_steps + 1);
    }

    #[test]
    fn correction_cap_terminates_oscillation() {
        // A pool of contradictory points (content says +, log says −) with
        // a tiny Δ invites oscillation; the cap must terminate training and
        // be reported.
        let la = vec![vec![1.0, 1.0], vec![-1.0, -1.0]];
        let lb = vec![
            SparseVector::from_entries(vec![(0, 1.0)]),
            SparseVector::from_entries(vec![(0, -1.0)]),
        ];
        let y = vec![1.0, -1.0];
        // Unlabeled: content features positive-side, log vectors negative-side.
        let ua = vec![vec![1.2, 0.8], vec![0.9, 1.3]];
        let ub = vec![
            SparseVector::from_entries(vec![(0, -1.0)]),
            SparseVector::from_entries(vec![(0, -1.0), (1, -1.0)]),
        ];
        let (ka, kb) = kernels();
        let cfg = CoupledConfig {
            delta: 0.0,
            max_correction_rounds: 2,
            rho: 1.0,
            ..Default::default()
        };
        let out = train_coupled(&la, &lb, &y, &ua, &ub, &[1.0, 1.0], ka, kb, &cfg).unwrap();
        // Must terminate (the assertion is that we got here) and flag the cap
        // if it oscillated; either way, the report is internally consistent.
        assert!(out.report.retrains >= out.report.rho_steps);
        if out.report.correction_capped {
            assert!(out.report.flips > 0);
        }
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_modalities_panic() {
        let (la, lb, y, ua, _) = agreeing_problem();
        let (ka, kb) = kernels();
        let _ = train_coupled(
            &la,
            &lb,
            &y,
            &ua,
            &[],
            &[1.0, -1.0],
            ka,
            kb,
            &CoupledConfig::default(),
        );
    }

    #[test]
    fn rho_larger_weights_move_unlabeled_influence() {
        // With rho → 0 the unlabeled points have ~no influence; with a big
        // rho they pull the boundary. Verify the decision values differ.
        let (la, lb, y, ua, ub) = agreeing_problem();
        let (ka, kb) = kernels();
        let weak = CoupledConfig {
            rho: 1e-4,
            rho_init: 1e-4,
            ..Default::default()
        };
        let strong = CoupledConfig {
            rho: 2.0,
            rho_init: 1e-4,
            ..Default::default()
        };
        let out_weak = train_coupled(&la, &lb, &y, &ua, &ub, &[1.0, -1.0], ka, kb, &weak).unwrap();
        let out_strong =
            train_coupled(&la, &lb, &y, &ua, &ub, &[1.0, -1.0], ka, kb, &strong).unwrap();
        let probe = vec![0.5, 0.6];
        let d_weak = out_weak.content.model.decision(&probe);
        let d_strong = out_strong.content.model.decision(&probe);
        assert!(
            (d_weak - d_strong).abs() > 1e-6,
            "rho must matter: {d_weak} vs {d_strong}"
        );
    }

    #[test]
    fn warm_started_retrains_match_cold_training() {
        // Warm starting the annealing schedule's retrains is a pure
        // performance device: the final models must agree with cold
        // training on decision values (within the solver tolerance) and on
        // the transductive outcome (identical final pseudo-labels), while
        // spending no more total SMO iterations.
        let (la, lb, y, ua, ub) = agreeing_problem();
        let (ka, kb) = kernels();
        let warm_cfg = CoupledConfig::default();
        assert!(warm_cfg.warm_start, "warm starts must be the default");
        let cold_cfg = CoupledConfig {
            warm_start: false,
            ..warm_cfg
        };
        let warm = train_coupled(&la, &lb, &y, &ua, &ub, &[1.0, -1.0], ka, kb, &warm_cfg).unwrap();
        let cold = train_coupled(&la, &lb, &y, &ua, &ub, &[1.0, -1.0], ka, kb, &cold_cfg).unwrap();
        assert_eq!(warm.report.final_labels, cold.report.final_labels);
        assert_eq!(warm.report.retrains, cold.report.retrains);
        for x in la.iter().chain(&ua) {
            let dw = warm.content.model.decision(x);
            let dc = cold.content.model.decision(x);
            assert!(
                (dw - dc).abs() < 1e-2,
                "content decisions diverged: warm {dw} vs cold {dc}"
            );
        }
        for r in lb.iter().chain(&ub) {
            let dw = warm.log.model.decision(r);
            let dc = cold.log.model.decision(r);
            assert!(
                (dw - dc).abs() < 1e-2,
                "log decisions diverged: warm {dw} vs cold {dc}"
            );
        }
    }

    #[test]
    fn smo_params_are_threaded_through() {
        // An absurdly low iteration cap must be respected (convergence flag
        // off) — proving the inner solver reads the provided SmoParams.
        let (la, lb, y, ua, ub) = agreeing_problem();
        let (ka, kb) = kernels();
        let cfg = CoupledConfig {
            smo: SmoParams {
                max_iter: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let out = train_coupled(&la, &lb, &y, &ua, &ub, &[1.0, -1.0], ka, kb, &cfg).unwrap();
        assert!(!out.content.stats.converged);
    }
}
