//! The `Euclidean` reference scheme.
//!
//! No learning: rank by ascending Euclidean distance to the query's feature
//! vector. This is the paper's reference curve and also what produced the
//! initial screen the user judged.

use crate::feedback::{QueryContext, RelevanceFeedback};
use lrf_cbir::rank_by_euclidean;

/// Plain content-distance ranking.
#[derive(Clone, Copy, Debug, Default)]
pub struct EuclideanScheme;

impl RelevanceFeedback for EuclideanScheme {
    fn name(&self) -> &'static str {
        "Euclidean"
    }

    fn rank(&self, ctx: &QueryContext<'_>) -> Vec<usize> {
        rank_by_euclidean(ctx.db, ctx.db.feature(ctx.example.query))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrf_cbir::{collect_log, CorelDataset, CorelSpec, QueryProtocol};
    use lrf_logdb::SimulationConfig;

    #[test]
    fn ranks_query_first_and_is_a_permutation() {
        let ds = CorelDataset::build(CorelSpec::tiny(3, 6, 42));
        let log = collect_log(
            &ds.db,
            &SimulationConfig {
                n_sessions: 4,
                judged_per_session: 4,
                rounds_per_query: 1,
                noise: 0.0,
                seed: 1,
            },
        );
        let proto = QueryProtocol {
            n_queries: 1,
            n_labeled: 4,
            seed: 0,
        };
        let example = proto.feedback_example(&ds.db, 5);
        let ranked = EuclideanScheme.rank(&QueryContext {
            db: &ds.db,
            log: &log,
            example: &example,
        });
        assert_eq!(ranked[0], 5);
        let mut sorted = ranked.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..ds.db.len()).collect::<Vec<_>>());
        assert_eq!(EuclideanScheme.name(), "Euclidean");
    }
}
