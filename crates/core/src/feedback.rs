//! The common interface every compared scheme implements.

use lrf_cbir::{FeedbackExample, ImageDatabase};
use lrf_logdb::LogStore;

/// Everything a scheme sees when ranking: the database, the accumulated
/// feedback log, and the current query's feedback round.
#[derive(Clone, Copy, Debug)]
pub struct QueryContext<'a> {
    /// The image database (features + ground truth for evaluation only).
    pub db: &'a ImageDatabase,
    /// The historical feedback log (`R` of §2).
    pub log: &'a LogStore,
    /// The current round: query id and the `N_l` labeled images.
    pub example: &'a FeedbackExample,
}

/// A relevance-feedback scheme: given one feedback round, produce a full
/// ranking of the database (most relevant first).
pub trait RelevanceFeedback {
    /// Human-readable scheme name as used in the paper's tables
    /// (`"Euclidean"`, `"RF-SVM"`, `"LRF-2SVMs"`, `"LRF-CSVM"`).
    fn name(&self) -> &'static str;

    /// Ranks every image id in `ctx.db`, most relevant first. The returned
    /// permutation must contain each id exactly once.
    fn rank(&self, ctx: &QueryContext<'_>) -> Vec<usize>;

    /// Per-image decision scores aligned with image ids, when the scheme
    /// has a real decision function (SVM-based schemes). Presentation
    /// policies (see `active`) need score *magnitudes* — a ranking alone
    /// cannot express uncertainty. Default: `None`.
    fn scores(&self, _ctx: &QueryContext<'_>) -> Option<Vec<f64>> {
        None
    }
}

/// Sorts image ids by descending score with deterministic id tie-breaking —
/// the shared final step of every learning scheme.
pub fn rank_by_scores(scores: &[f64]) -> Vec<usize> {
    let mut ids: Vec<usize> = (0..scores.len()).collect();
    ids.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_by_scores_descends_with_stable_ties() {
        let ranked = rank_by_scores(&[0.1, 0.9, 0.5, 0.9]);
        assert_eq!(ranked, vec![1, 3, 2, 0]);
    }

    #[test]
    fn rank_by_scores_handles_nan_without_panicking() {
        // NaN scores compare "equal" and fall back to id ordering rather
        // than panicking mid-query.
        let ranked = rank_by_scores(&[f64::NAN, 1.0, f64::NAN]);
        assert_eq!(ranked.len(), 3);
        let mut sorted = ranked.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn rank_by_scores_empty() {
        assert!(rank_by_scores(&[]).is_empty());
    }
}
