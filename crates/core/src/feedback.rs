//! The common interface every compared scheme implements.

use lrf_cbir::{FeedbackExample, ImageDatabase};
use lrf_logdb::LogStore;
use lrf_svm::SolveStats;
use serde::{Deserialize, Serialize};

/// Solver diagnostics for the most recent retrain of a scheme, aggregated
/// over however many SVMs the scheme trains (content + log side for the
/// two-machine and coupled schemes). Surfaced by
/// [`crate::rounds::FeedbackLoop::last_diagnostics`] so a
/// `max_iter`-capped solve is observable instead of silent.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RoundDiagnostics {
    /// Whether *every* solve of the round reached its KKT tolerance (vs.
    /// hitting `max_iter`).
    pub converged: bool,
    /// Total SMO iterations across the round's solves.
    pub iterations: usize,
    /// Kernel-row cache hits across the round's solves.
    pub cache_hits: u64,
    /// Kernel-row cache misses across the round's solves.
    pub cache_misses: u64,
}

impl RoundDiagnostics {
    /// Folds one solver run into the round's aggregate.
    pub fn absorb(&mut self, stats: &SolveStats) {
        self.converged &= stats.converged;
        self.iterations += stats.iterations;
        self.cache_hits += stats.cache_hits;
        self.cache_misses += stats.cache_misses;
    }

    /// The identity element for [`absorb`](Self::absorb): converged until
    /// a non-converged solve is folded in.
    pub fn all_converged() -> Self {
        Self {
            converged: true,
            ..Self::default()
        }
    }
}

/// Warm-start state a session carries between feedback rounds: the
/// previous round's dual solutions, per modality. The labeled set only
/// ever grows by appending (`FeedbackLoop::mark`), so entry `i` of a
/// stored alpha vector still describes sample `i` of the next round's
/// training set and any newly labeled tail starts cold — exactly the
/// prefix mapping [`lrf_svm::train_warm`] implements.
#[derive(Clone, Debug, Default)]
pub struct WarmState {
    /// Previous content-side alphas, in labeled-set (mark) order.
    pub content: Option<Vec<f64>>,
    /// Previous log-side alphas, in labeled-set order.
    pub log: Option<Vec<f64>>,
    /// Diagnostics from the most recent retrain, `None` until a scheme
    /// that actually trains has run.
    pub last: Option<RoundDiagnostics>,
}

/// Everything a scheme sees when ranking: the database, the accumulated
/// feedback log, and the current query's feedback round.
#[derive(Clone, Copy, Debug)]
pub struct QueryContext<'a> {
    /// The image database (features + ground truth for evaluation only).
    pub db: &'a ImageDatabase,
    /// The historical feedback log (`R` of §2).
    pub log: &'a LogStore,
    /// The current round: query id and the `N_l` labeled images.
    pub example: &'a FeedbackExample,
}

/// A trained, immutable decision function over image ids — the unit of
/// work a scatter-gather scoring plane distributes. Produced by
/// [`RelevanceFeedback::fit_warm`]; owns its support vectors, so it is
/// `'static` and can be shipped to shard workers behind an `Arc`.
///
/// **Partition invariance contract:** `score_ids` must be a pure per-id
/// function — for any partition of `ids` into disjoint subsets, scoring
/// the subsets and stitching the results back in order is bit-identical
/// to scoring `ids` in one call. Every SVM scorer satisfies this because
/// a decision value depends only on the model and the one row being
/// scored ([`lrf_svm::SvmModel::decision_batch`] is asserted
/// bit-identical to the serial per-row loop).
pub trait PoolScorer: Send + Sync {
    /// Decision scores aligned with `ids`.
    fn score_ids(&self, db: &ImageDatabase, log: &LogStore, ids: &[usize]) -> Vec<f64>;
}

/// A shareable handle to a trained scorer — the currency of the
/// scatter-gather scoring plane. A plain atomically-refcounted pointer
/// (never a loom type: scorers cross real thread boundaries in
/// production builds).
pub type ScorerRef = std::sync::Arc<dyn PoolScorer>;

/// A relevance-feedback scheme: given one feedback round, produce a full
/// ranking of the database (most relevant first).
pub trait RelevanceFeedback {
    /// Human-readable scheme name as used in the paper's tables
    /// (`"Euclidean"`, `"RF-SVM"`, `"LRF-2SVMs"`, `"LRF-CSVM"`).
    fn name(&self) -> &'static str;

    /// Ranks every image id in `ctx.db`, most relevant first. The returned
    /// permutation must contain each id exactly once.
    fn rank(&self, ctx: &QueryContext<'_>) -> Vec<usize>;

    /// Per-image decision scores aligned with image ids, when the scheme
    /// has a real decision function (SVM-based schemes). Presentation
    /// policies (see `active`) need score *magnitudes* — a ranking alone
    /// cannot express uncertainty. Default: `None`.
    fn scores(&self, _ctx: &QueryContext<'_>) -> Option<Vec<f64>> {
        None
    }

    /// Decision scores for a *subset* of images, aligned with `ids` — the
    /// hook the index-fed candidate-pool re-rank (`pooled`) runs on. The
    /// default scores the whole database and projects; the SVM schemes
    /// override it to score only the candidates, which is where the
    /// index's pruning actually pays off at scale.
    fn score_ids(&self, ctx: &QueryContext<'_>, ids: &[usize]) -> Option<Vec<f64>> {
        self.scores(ctx)
            .map(|all| ids.iter().map(|&id| all[id]).collect())
    }

    /// Trains the scheme's decision function for one round and returns it
    /// as a shippable [`PoolScorer`], seeding the solver from `warm` and
    /// depositing the new solution (and [`RoundDiagnostics`]) back. The
    /// `pool` is the candidate universe of the round — schemes whose
    /// training itself depends on the retrieval universe (LRF-CSVM's
    /// unlabeled selection) draw from it, so fitting against a pool and
    /// then scoring that pool reproduces the fused path exactly.
    ///
    /// `None` means the scheme has no trainable decision function
    /// (Euclidean): callers fall back to [`score_ids`](Self::score_ids) /
    /// pool order. Schemes with scores override this; the split is what
    /// lets a serving coordinator train **once** and scatter the scoring
    /// across shard workers.
    fn fit_warm(
        &self,
        _ctx: &QueryContext<'_>,
        _pool: &[usize],
        _warm: &mut WarmState,
    ) -> Option<ScorerRef> {
        None
    }

    /// [`score_ids`](Self::score_ids) with session warm-start state: the
    /// scheme may seed its solver from `warm`'s previous-round alphas and
    /// must deposit the new solution (and [`RoundDiagnostics`]) back for
    /// the next round. Routed through [`fit_warm`](Self::fit_warm) — fit
    /// once, score the pool locally — so the in-process path and a
    /// scatter-gather serving plane run the *same* trained model; schemes
    /// without training (Euclidean) fall back to the cold
    /// [`score_ids`](Self::score_ids), and a fresh [`WarmState`] makes
    /// this identical to `score_ids` by construction.
    fn score_ids_warm(
        &self,
        ctx: &QueryContext<'_>,
        ids: &[usize],
        warm: &mut WarmState,
    ) -> Option<Vec<f64>> {
        match self.fit_warm(ctx, ids, warm) {
            Some(scorer) => Some(scorer.score_ids(ctx.db, ctx.log, ids)),
            None => self.score_ids(ctx, ids),
        }
    }
}

/// Descending-score comparison that is a total order: NaN scores sort
/// *after* every real score (a broken decision value must not surface an
/// image, and a non-total comparator can panic inside `sort_by`). Shared
/// by every ranking path so full and pooled rankings stay bit-identical.
pub fn cmp_scores_desc(a: f64, b: f64) -> std::cmp::Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
        (false, false) => b.partial_cmp(&a).expect("both scores are non-NaN"),
    }
}

/// Sorts image ids by descending score with deterministic id tie-breaking —
/// the shared final step of every learning scheme. NaN scores rank last.
pub fn rank_by_scores(scores: &[f64]) -> Vec<usize> {
    let mut ids: Vec<usize> = (0..scores.len()).collect();
    ids.sort_by(|&a, &b| cmp_scores_desc(scores[a], scores[b]).then(a.cmp(&b)));
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_by_scores_descends_with_stable_ties() {
        let ranked = rank_by_scores(&[0.1, 0.9, 0.5, 0.9]);
        assert_eq!(ranked, vec![1, 3, 2, 0]);
    }

    #[test]
    fn rank_by_scores_puts_nan_last_deterministically() {
        // A NaN decision value must neither panic the sort (the comparator
        // is total) nor surface its image: NaNs rank after every real
        // score, ties among them by id.
        let ranked = rank_by_scores(&[f64::NAN, 1.0, f64::NAN, -5.0]);
        assert_eq!(ranked, vec![1, 3, 0, 2]);
    }

    #[test]
    fn rank_by_scores_empty() {
        assert!(rank_by_scores(&[]).is_empty());
    }
}
