//! Active selection of the next feedback round.
//!
//! The paper motivates log-based feedback with the cost of feedback cycles:
//! "it is advantageous ... to achieve satisfactory results within as few
//! feedback cycles as possible. Although some research studies have
//! suggested employing active learning techniques to speed up the
//! relevance feedback procedure [Tong & Chang] ..." — this module provides
//! those round-selection policies so the multi-round evaluation harness
//! (and downstream systems) can compare them on top of any ranking scheme.
//!
//! Given a scheme's current *scores* over the database, the policy picks
//! which `k` unjudged images to put in front of the user next:
//!
//! * [`RoundSelection::TopConfident`] — the conventional presentation: the
//!   `k` best-scoring unjudged images ("show me more results"). Maximizes
//!   immediate precision; labels confirm what the model already believes.
//! * [`RoundSelection::MostUncertain`] — Tong & Chang's SVM active
//!   learning: the `k` unjudged images nearest the decision boundary
//!   (smallest `|score|`). Maximizes information per judgment at the cost
//!   of showing doubtful results.
//! * [`RoundSelection::Mixed`] — half confident (user satisfaction), half
//!   uncertain (model improvement), a common practical compromise.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Policy for choosing the next round's screen.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoundSelection {
    /// Highest-scoring unjudged images.
    TopConfident,
    /// Unjudged images closest to the decision boundary (`|score|` min).
    MostUncertain,
    /// `k/2` top-confident plus `k/2` most-uncertain (deduplicated).
    Mixed,
}

impl RoundSelection {
    /// Selects up to `k` unjudged image ids given per-image scores.
    ///
    /// `judged` is the set of already-labeled ids (never re-selected —
    /// round selection is about *new* judgments, unlike the log-collection
    /// protocol where re-showing is realistic). Ties break by id for
    /// determinism.
    pub fn select(&self, scores: &[f64], judged: &HashSet<usize>, k: usize) -> Vec<usize> {
        let mut candidates: Vec<usize> = (0..scores.len())
            .filter(|id| !judged.contains(id))
            .collect();
        match self {
            RoundSelection::TopConfident => {
                sort_by_key_desc(&mut candidates, |id| scores[id]);
                candidates.truncate(k);
                candidates
            }
            RoundSelection::MostUncertain => {
                sort_by_key_asc(&mut candidates, |id| scores[id].abs());
                candidates.truncate(k);
                candidates
            }
            RoundSelection::Mixed => {
                let half = k / 2;
                let mut confident = candidates.clone();
                sort_by_key_desc(&mut confident, |id| scores[id]);
                confident.truncate(half);
                let taken: HashSet<usize> = confident.iter().copied().collect();
                let mut uncertain: Vec<usize> = candidates
                    .into_iter()
                    .filter(|id| !taken.contains(id))
                    .collect();
                sort_by_key_asc(&mut uncertain, |id| scores[id].abs());
                uncertain.truncate(k - confident.len());
                confident.extend(uncertain);
                confident
            }
        }
    }
}

fn sort_by_key_desc(ids: &mut [usize], key: impl Fn(usize) -> f64) {
    ids.sort_by(|&a, &b| {
        key(b)
            .partial_cmp(&key(a))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
}

fn sort_by_key_asc(ids: &mut [usize], key: impl Fn(usize) -> f64) {
    ids.sort_by(|&a, &b| {
        key(a)
            .partial_cmp(&key(b))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn judged(ids: &[usize]) -> HashSet<usize> {
        ids.iter().copied().collect()
    }

    #[test]
    fn top_confident_takes_best_unjudged() {
        let scores = [0.9, -0.1, 0.8, 0.5, -0.7];
        let sel = RoundSelection::TopConfident.select(&scores, &judged(&[0]), 2);
        assert_eq!(sel, vec![2, 3]);
    }

    #[test]
    fn most_uncertain_takes_smallest_magnitude() {
        let scores = [0.9, -0.1, 0.8, 0.05, -0.7];
        let sel = RoundSelection::MostUncertain.select(&scores, &judged(&[]), 2);
        assert_eq!(sel, vec![3, 1]);
    }

    #[test]
    fn mixed_combines_without_duplicates() {
        let scores = [0.9, -0.1, 0.8, 0.05, -0.7, 0.6];
        let sel = RoundSelection::Mixed.select(&scores, &judged(&[]), 4);
        assert_eq!(sel.len(), 4);
        let unique: HashSet<usize> = sel.iter().copied().collect();
        assert_eq!(unique.len(), 4);
        // contains the top score and the most uncertain one
        assert!(sel.contains(&0));
        assert!(sel.contains(&3));
    }

    #[test]
    fn never_selects_judged_images() {
        let scores = [0.9, 0.8, 0.7, 0.6];
        for policy in [
            RoundSelection::TopConfident,
            RoundSelection::MostUncertain,
            RoundSelection::Mixed,
        ] {
            let sel = policy.select(&scores, &judged(&[0, 1]), 4);
            assert!(!sel.contains(&0) && !sel.contains(&1), "{policy:?}");
            assert_eq!(sel.len(), 2, "{policy:?} should be capped by availability");
        }
    }

    #[test]
    fn empty_candidate_pool_yields_empty_screen() {
        let scores = [0.1, 0.2];
        let sel = RoundSelection::TopConfident.select(&scores, &judged(&[0, 1]), 3);
        assert!(sel.is_empty());
    }

    #[test]
    fn deterministic_tie_breaking() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let a = RoundSelection::TopConfident.select(&scores, &judged(&[]), 2);
        assert_eq!(a, vec![0, 1]);
        let b = RoundSelection::MostUncertain.select(&scores, &judged(&[]), 2);
        assert_eq!(b, vec![0, 1]);
    }
}
