//! The `RF-SVM` baseline: regular SVM relevance feedback on content only.
//!
//! "In a regular SVM based relevance feedback algorithm [Tong & Chang],
//! only the low-level features of image content is considered" — train one
//! SVM on the judged images' feature vectors and rank the database by the
//! decision value.

use crate::config::LrfConfig;
use crate::feedback::{
    rank_by_scores, PoolScorer, QueryContext, RelevanceFeedback, RoundDiagnostics, ScorerRef,
    WarmState,
};
use lrf_svm::{train_warm, RbfKernel, SvmModel, TrainedSvm};

/// Content-only SVM relevance feedback.
#[derive(Clone, Debug, Default)]
pub struct RfSvm {
    /// Shared configuration (only `coupled.c_content`, `coupled.smo`, and
    /// `gamma_content` are read by this scheme).
    pub config: LrfConfig,
}

impl RfSvm {
    /// Creates the scheme with an explicit configuration.
    pub fn new(config: LrfConfig) -> Self {
        config.validate();
        Self { config }
    }

    /// Trains the content SVM for one feedback round on borrowed row views
    /// of the database's flat matrix — no feature is cloned. Exposed for
    /// reuse by the log-based schemes (this is exactly their content-side
    /// initial model).
    pub fn train_content_svm(&self, ctx: &QueryContext<'_>) -> TrainedSvm<[f64], RbfKernel> {
        self.train_content_svm_warm(ctx, None)
    }

    /// [`train_content_svm`](Self::train_content_svm), optionally seeded
    /// with the previous round's content-side alphas (labeled-set order;
    /// the set grows by appending, so the seed prefix-maps onto the new
    /// round's samples).
    pub fn train_content_svm_warm(
        &self,
        ctx: &QueryContext<'_>,
        warm: Option<&[f64]>,
    ) -> TrainedSvm<[f64], RbfKernel> {
        let samples: Vec<&[f64]> = ctx
            .example
            .labeled
            .iter()
            .map(|&(id, _)| ctx.db.feature(id))
            .collect();
        let labels: Vec<f64> = ctx.example.labeled.iter().map(|&(_, y)| y).collect();
        let bounds = vec![self.config.coupled.c_content; samples.len()];
        let gamma = self
            .config
            .gamma_content
            .unwrap_or(1.0 / lrf_features::TOTAL_DIMS as f64);
        train_warm(
            &samples,
            &labels,
            &bounds,
            RbfKernel::new(gamma),
            &self.config.coupled.smo,
            warm,
        )
        .expect("content SVM training cannot fail on validated feedback rounds")
    }

    /// Scores every database image under a content model: one parallel
    /// batch pass over the flat feature matrix.
    pub fn score_all(db: &lrf_cbir::ImageDatabase, model: &SvmModel<[f64], RbfKernel>) -> Vec<f64> {
        model.decision_batch_rows(db.features_flat(), db.dim())
    }

    /// Scores a subset of images under a content model (aligned with
    /// `ids`) — the candidate-pool path. Batched over borrowed rows.
    pub fn score_subset(
        db: &lrf_cbir::ImageDatabase,
        model: &SvmModel<[f64], RbfKernel>,
        ids: &[usize],
    ) -> Vec<f64> {
        let rows: Vec<&[f64]> = ids.iter().map(|&id| db.feature(id)).collect();
        model.decision_batch(&rows)
    }
}

impl RelevanceFeedback for RfSvm {
    fn name(&self) -> &'static str {
        "RF-SVM"
    }

    fn rank(&self, ctx: &QueryContext<'_>) -> Vec<usize> {
        let svm = self.train_content_svm(ctx);
        rank_by_scores(&Self::score_all(ctx.db, &svm.model))
    }

    fn scores(&self, ctx: &QueryContext<'_>) -> Option<Vec<f64>> {
        let svm = self.train_content_svm(ctx);
        Some(Self::score_all(ctx.db, &svm.model))
    }

    fn score_ids(&self, ctx: &QueryContext<'_>, ids: &[usize]) -> Option<Vec<f64>> {
        let svm = self.train_content_svm(ctx);
        Some(Self::score_subset(ctx.db, &svm.model, ids))
    }

    fn fit_warm(
        &self,
        ctx: &QueryContext<'_>,
        _pool: &[usize],
        warm: &mut WarmState,
    ) -> Option<ScorerRef> {
        let svm = self.train_content_svm_warm(ctx, warm.content.as_deref());
        let mut diag = RoundDiagnostics::all_converged();
        diag.absorb(&svm.stats);
        warm.content = Some(svm.alpha.clone());
        warm.last = Some(diag);
        Some(std::sync::Arc::new(ContentScorer { model: svm.model }))
    }
}

/// [`PoolScorer`] for the content-only scheme: one trained content model,
/// scored per id over borrowed database rows. The model owns its support
/// vectors, so the scorer is `'static` and shard-shippable.
pub(crate) struct ContentScorer {
    pub(crate) model: SvmModel<[f64], RbfKernel>,
}

impl PoolScorer for ContentScorer {
    fn score_ids(
        &self,
        db: &lrf_cbir::ImageDatabase,
        _log: &lrf_logdb::LogStore,
        ids: &[usize],
    ) -> Vec<f64> {
        RfSvm::score_subset(db, &self.model, ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrf_cbir::{collect_log, precision_at, CorelDataset, CorelSpec, QueryProtocol};
    use lrf_logdb::SimulationConfig;

    fn setup() -> (CorelDataset, lrf_logdb::LogStore) {
        let ds = CorelDataset::build(CorelSpec::tiny(4, 10, 3));
        let log = collect_log(
            &ds.db,
            &SimulationConfig {
                n_sessions: 8,
                judged_per_session: 6,
                rounds_per_query: 2,
                noise: 0.0,
                seed: 2,
            },
        );
        (ds, log)
    }

    #[test]
    fn rank_is_a_permutation() {
        let (ds, log) = setup();
        let proto = QueryProtocol {
            n_queries: 1,
            n_labeled: 8,
            seed: 0,
        };
        let example = proto.feedback_example(&ds.db, 0);
        let ranked = RfSvm::default().rank(&QueryContext {
            db: &ds.db,
            log: &log,
            example: &example,
        });
        let mut sorted = ranked.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..ds.db.len()).collect::<Vec<_>>());
    }

    #[test]
    fn labeled_positives_rank_above_labeled_negatives() {
        let (ds, log) = setup();
        let proto = QueryProtocol {
            n_queries: 1,
            n_labeled: 10,
            seed: 0,
        };
        // Query near a category boundary gets mixed labels.
        let example = (0..ds.db.len())
            .map(|q| proto.feedback_example(&ds.db, q))
            .find(|ex| {
                let pos = ex.labeled.iter().filter(|&&(_, y)| y > 0.0).count();
                pos >= 2 && pos <= ex.labeled.len() - 2
            })
            .expect("some query must have mixed feedback");
        let ranked = RfSvm::default().rank(&QueryContext {
            db: &ds.db,
            log: &log,
            example: &example,
        });
        let pos_mean: f64 = example
            .labeled
            .iter()
            .filter(|&&(_, y)| y > 0.0)
            .map(|&(id, _)| ranked.iter().position(|&r| r == id).unwrap() as f64)
            .sum::<f64>()
            / example.labeled.iter().filter(|&&(_, y)| y > 0.0).count() as f64;
        let neg_mean: f64 = example
            .labeled
            .iter()
            .filter(|&&(_, y)| y < 0.0)
            .map(|&(id, _)| ranked.iter().position(|&r| r == id).unwrap() as f64)
            .sum::<f64>()
            / example.labeled.iter().filter(|&&(_, y)| y < 0.0).count() as f64;
        assert!(
            pos_mean < neg_mean,
            "positives should rank earlier: pos {pos_mean} vs neg {neg_mean}"
        );
    }

    #[test]
    fn batched_scores_match_per_image_decisions() {
        // The ranking contract of the refactor: the batch scorer feeding
        // every SVM scheme is bit-identical to scoring one image at a time.
        let (ds, log) = setup();
        let proto = QueryProtocol {
            n_queries: 1,
            n_labeled: 8,
            seed: 0,
        };
        let example = proto.feedback_example(&ds.db, 5);
        let svm = RfSvm::default().train_content_svm(&QueryContext {
            db: &ds.db,
            log: &log,
            example: &example,
        });
        let batched = RfSvm::score_all(&ds.db, &svm.model);
        let serial: Vec<f64> = (0..ds.db.len())
            .map(|id| svm.model.decision(ds.db.feature(id)))
            .collect();
        assert_eq!(batched, serial);
        let ids: Vec<usize> = (0..ds.db.len()).step_by(3).collect();
        let subset = RfSvm::score_subset(&ds.db, &svm.model, &ids);
        let expect: Vec<f64> = ids.iter().map(|&id| serial[id]).collect();
        assert_eq!(subset, expect);
    }

    #[test]
    fn single_class_feedback_still_ranks() {
        let (ds, log) = setup();
        // Fabricate an all-relevant round.
        let example = lrf_cbir::FeedbackExample {
            query: 0,
            labeled: vec![(0, 1.0), (1, 1.0), (2, 1.0)],
        };
        let ranked = RfSvm::default().rank(&QueryContext {
            db: &ds.db,
            log: &log,
            example: &example,
        });
        assert_eq!(ranked.len(), ds.db.len());
    }

    #[test]
    fn improves_over_random_on_average() {
        let (ds, log) = setup();
        let proto = QueryProtocol {
            n_queries: 6,
            n_labeled: 8,
            seed: 5,
        };
        let scheme = RfSvm::default();
        let mut total = 0.0;
        let queries = proto.sample_queries(&ds.db);
        for &q in &queries {
            let example = proto.feedback_example(&ds.db, q);
            let ranked = scheme.rank(&QueryContext {
                db: &ds.db,
                log: &log,
                example: &example,
            });
            total += precision_at(&ranked, |id| ds.db.same_category(id, q), 10);
        }
        let mean = total / queries.len() as f64;
        assert!(
            mean > 0.25 + 0.1,
            "RF-SVM precision {mean} not above chance"
        );
    }
}
