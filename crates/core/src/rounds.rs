//! Resumable feedback rounds — the stateful API the serving plane drives.
//!
//! Every scheme in this crate is a pure function of one
//! [`QueryContext`]: hand it a feedback round, get a ranking. That is the
//! right shape for the evaluation protocol (build the round, rank, score)
//! but the wrong shape for a live session, where judgments arrive one at a
//! time over multiple rounds and each retrain must see *everything the user
//! has said so far*. [`FeedbackLoop`] is the bridge: it accumulates
//! judgments across rounds, validates them (typed errors, no panics — a
//! service must survive bad input), re-derives the scheme's
//! [`FeedbackExample`] on demand, and converts the finished session into a
//! [`LogSession`] for the feedback log — closing the loop the paper
//! describes, where today's sessions become tomorrow's log vectors.
//!
//! Determinism contract: a [`FeedbackLoop`]'s *first* `rerank` is
//! bit-identical to the one-shot path ([`crate::pooled::rank_candidates`]
//! on the equivalent [`FeedbackExample`]) — same code, empty
//! [`WarmState`] — and the multi-session service asserts exactly this
//! against its serial reference. Later rounds warm-start each retrain from
//! the previous round's dual solution ([`WarmState`]): the solver converges
//! to the same KKT tolerance from a much closer seed, so rankings agree
//! with the cold path up to score ties within `eps`, at a fraction of the
//! iterations.

use crate::config::LrfConfig;
use crate::euclidean::EuclideanScheme;
use crate::feedback::{QueryContext, RelevanceFeedback, RoundDiagnostics, ScorerRef, WarmState};
use crate::lrf_2svms::Lrf2Svms;
use crate::lrf_csvm::LrfCsvm;
use crate::pooled::{rank_candidates_warm, rank_pool_by_scores};
use crate::rf_svm::RfSvm;
use lrf_cbir::{FeedbackExample, ImageDatabase};
use lrf_logdb::{LogSession, LogStore, Relevance};
use serde::{Deserialize, Serialize};

/// Which relevance-feedback scheme a session runs — the serializable
/// selector the service API carries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchemeKind {
    /// No learning: content distance only (the initial ranking, frozen).
    Euclidean,
    /// Content-only SVM relevance feedback (Tong & Chang baseline).
    RfSvm,
    /// Independent content + log SVMs, decisions summed.
    Lrf2Svms,
    /// The paper's coupled SVM (Fig. 1).
    #[default]
    LrfCsvm,
}

impl SchemeKind {
    /// The scheme's name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::Euclidean => "Euclidean",
            SchemeKind::RfSvm => "RF-SVM",
            SchemeKind::Lrf2Svms => "LRF-2SVMs",
            SchemeKind::LrfCsvm => "LRF-CSVM",
        }
    }

    /// Instantiates the scheme object behind the shared trait.
    pub fn build(self, config: LrfConfig) -> Box<dyn RelevanceFeedback + Send + Sync> {
        match self {
            SchemeKind::Euclidean => Box::new(EuclideanScheme),
            SchemeKind::RfSvm => Box::new(RfSvm::new(config)),
            SchemeKind::Lrf2Svms => Box::new(Lrf2Svms::new(config)),
            SchemeKind::LrfCsvm => Box::new(LrfCsvm::new(config)),
        }
    }

    /// All kinds, in comparison-table order.
    pub fn all() -> [SchemeKind; 4] {
        [
            SchemeKind::Euclidean,
            SchemeKind::RfSvm,
            SchemeKind::Lrf2Svms,
            SchemeKind::LrfCsvm,
        ]
    }
}

/// A rejected judgment — the session stays usable after any of these.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoundError {
    /// The image id is outside the database.
    UnknownImage {
        /// The offending id.
        image: usize,
        /// Database size the session was opened over.
        n_images: usize,
    },
    /// The image was already judged in this session (a session is one
    /// user's screen history; re-judging indicates a client bug).
    DuplicateJudgment {
        /// The re-judged image id.
        image: usize,
    },
}

impl std::fmt::Display for RoundError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoundError::UnknownImage { image, n_images } => {
                write!(f, "image {image} outside database of {n_images}")
            }
            RoundError::DuplicateJudgment { image } => {
                write!(f, "image {image} already judged in this session")
            }
        }
    }
}

impl std::error::Error for RoundError {}

/// One user's resumable feedback session: accumulated judgments + the
/// scheme that re-ranks on each round.
pub struct FeedbackLoop {
    kind: SchemeKind,
    scheme: Box<dyn RelevanceFeedback + Send + Sync>,
    query: usize,
    n_images: usize,
    /// `(image_id, ±1.0)` in mark order — the order the SMO solver sees,
    /// so replaying the same marks reproduces the same model bit-for-bit.
    labeled: Vec<(usize, f64)>,
    rounds: usize,
    /// Previous round's dual solutions: because marks only append, the
    /// stored alphas prefix-map onto the next retrain's sample set.
    warm: WarmState,
}

impl FeedbackLoop {
    /// Opens a session for `query` over a database of `n_images`.
    ///
    /// # Panics
    /// Panics if `query >= n_images` (the caller resolves queries against
    /// its own database; an unknown query is a caller bug, unlike the
    /// user-supplied judgments which get typed errors).
    pub fn new(kind: SchemeKind, config: LrfConfig, query: usize, n_images: usize) -> Self {
        assert!(
            query < n_images,
            "query {query} outside database of {n_images}"
        );
        Self {
            kind,
            scheme: kind.build(config),
            query,
            n_images,
            labeled: Vec::new(),
            rounds: 0,
            warm: WarmState::default(),
        }
    }

    /// The session's query image id.
    pub fn query(&self) -> usize {
        self.query
    }

    /// The scheme this session runs.
    pub fn kind(&self) -> SchemeKind {
        self.kind
    }

    /// Completed retrain/re-rank rounds.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Number of accumulated judgments.
    pub fn n_judged(&self) -> usize {
        self.labeled.len()
    }

    /// The accumulated judgment for `image`, if any (`+1.0` / `−1.0`).
    pub fn judgment(&self, image: usize) -> Option<f64> {
        self.labeled
            .iter()
            .find(|&&(id, _)| id == image)
            .map(|&(_, y)| y)
    }

    /// Records one judgment. Rejects out-of-range ids and re-judgments with
    /// a typed error; the session state is unchanged on error.
    pub fn mark(&mut self, image: usize, relevant: bool) -> Result<(), RoundError> {
        if image >= self.n_images {
            return Err(RoundError::UnknownImage {
                image,
                n_images: self.n_images,
            });
        }
        if self.judgment(image).is_some() {
            return Err(RoundError::DuplicateJudgment { image });
        }
        self.labeled
            .push((image, if relevant { 1.0 } else { -1.0 }));
        Ok(())
    }

    /// The scheme input equivalent to everything marked so far.
    pub fn example(&self) -> FeedbackExample {
        FeedbackExample {
            query: self.query,
            labeled: self.labeled.clone(),
        }
    }

    /// Retrains on the accumulated judgments and ranks `pool` (candidate
    /// ids from the retrieval front-end), returning a full-database
    /// permutation: re-ranked pool first, out-of-pool ids trailing in id
    /// order — exactly [`crate::pooled::rank_candidates`] on
    /// [`Self::example`] (the first round bit-identically; warm-started
    /// later rounds within the solver tolerance).
    ///
    /// # Panics
    /// Panics if `db`/`log` don't cover the session's `n_images` or `pool`
    /// holds an out-of-range id (infrastructure mismatch, not user input).
    pub fn rerank(&mut self, db: &ImageDatabase, log: &LogStore, pool: &[usize]) -> Vec<usize> {
        assert_eq!(db.len(), self.n_images, "database changed under session");
        let example = self.example();
        let ctx = QueryContext {
            db,
            log,
            example: &example,
        };
        let ranking = rank_candidates_warm(self.scheme.as_ref(), &ctx, pool, &mut self.warm);
        self.rounds += 1;
        ranking
    }

    /// [`rerank`](Self::rerank) with the *scoring* step delegated to the
    /// caller — the coordinator half of a scatter-gather serving plane.
    /// The scheme still trains exactly once, here, on the coordinator
    /// (via [`RelevanceFeedback::fit_warm`]); `scatter` receives the
    /// trained [`crate::feedback::PoolScorer`] plus the pool and returns
    /// decision scores
    /// aligned with the pool, typically by slicing the pool across shard
    /// workers and stitching their score vectors back in pool order. The
    /// scorer's partition-invariance contract makes that stitched vector
    /// bit-identical to scoring the pool in one call, so this method and
    /// [`rerank`](Self::rerank) produce the same ranking by construction
    /// (and the sharded service asserts it end to end).
    ///
    /// Schemes with no trainable decision function (Euclidean) never call
    /// `scatter` and fall back to the ordinary local path.
    ///
    /// # Panics
    /// Same contract as [`rerank`](Self::rerank), plus: panics if
    /// `scatter` returns a score vector not aligned with `pool`.
    pub fn rerank_scattered<F>(
        &mut self,
        db: &ImageDatabase,
        log: &LogStore,
        pool: &[usize],
        scatter: F,
    ) -> Vec<usize>
    where
        F: FnOnce(&ScorerRef, &[usize]) -> Vec<f64>,
    {
        assert_eq!(db.len(), self.n_images, "database changed under session");
        let example = self.example();
        let ctx = QueryContext {
            db,
            log,
            example: &example,
        };
        let ranking = match self.scheme.fit_warm(&ctx, pool, &mut self.warm) {
            Some(scorer) => {
                let scores = scatter(&scorer, pool);
                rank_pool_by_scores(db.len(), pool, &scores)
            }
            None => rank_candidates_warm(self.scheme.as_ref(), &ctx, pool, &mut self.warm),
        };
        self.rounds += 1;
        ranking
    }

    /// Solver diagnostics from the most recent [`rerank`](Self::rerank):
    /// `None` before the first round or for schemes that never train
    /// (Euclidean). A round whose diagnostics say `!converged` hit the
    /// solver's `max_iter` cap somewhere — the ranking is still usable but
    /// approximate, and a service should surface it rather than stay
    /// silent.
    pub fn last_diagnostics(&self) -> Option<RoundDiagnostics> {
        self.warm.last
    }

    /// The finished session as a feedback-log unit (empty if the user
    /// judged nothing — callers typically skip flushing those).
    pub fn to_log_session(&self) -> LogSession {
        LogSession::new(
            self.labeled
                .iter()
                .map(|&(id, y)| (id, Relevance::from_bool(y > 0.0)))
                .collect(),
        )
    }
}

impl std::fmt::Debug for FeedbackLoop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FeedbackLoop")
            .field("kind", &self.kind)
            .field("query", &self.query)
            .field("n_judged", &self.labeled.len())
            .field("rounds", &self.rounds)
            .field("warm", &self.warm.content.is_some())
            .field("last_diagnostics", &self.warm.last)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pooled::{rank_candidates, PooledRetrieval};
    use lrf_cbir::{collect_log, CorelDataset, CorelSpec, QueryProtocol};
    use lrf_logdb::SimulationConfig;

    fn setup() -> (CorelDataset, LogStore) {
        let ds = CorelDataset::build(CorelSpec::tiny(4, 12, 19));
        let log = collect_log(
            &ds.db,
            &SimulationConfig {
                n_sessions: 24,
                judged_per_session: 10,
                rounds_per_query: 2,
                noise: 0.1,
                seed: 23,
            },
        );
        (ds, log)
    }

    fn small_config() -> LrfConfig {
        LrfConfig {
            n_unlabeled: 8,
            coupled: crate::config::CoupledConfig {
                rho_init: 0.01,
                rho: 0.05,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn scheme_kinds_build_and_name() {
        for kind in SchemeKind::all() {
            let scheme = kind.build(small_config());
            assert_eq!(scheme.name(), kind.name());
        }
        assert_eq!(SchemeKind::default(), SchemeKind::LrfCsvm);
    }

    #[test]
    fn loop_reproduces_the_one_shot_path_bit_for_bit() {
        // The determinism contract: marking a protocol round's labels one
        // by one, then reranking, equals the stateless pooled rank on the
        // equivalent FeedbackExample.
        let (ds, log) = setup();
        let proto = QueryProtocol {
            n_queries: 1,
            n_labeled: 8,
            seed: 0,
        };
        let index = lrf_cbir::build_flat_index(&ds.db);
        let pooled = PooledRetrieval::new(&index, ds.db.len());
        for kind in [SchemeKind::RfSvm, SchemeKind::LrfCsvm] {
            let example = proto.feedback_example(&ds.db, 7);
            let mut fb = FeedbackLoop::new(kind, small_config(), 7, ds.db.len());
            for &(id, y) in &example.labeled {
                fb.mark(id, y > 0.0).unwrap();
            }
            assert_eq!(fb.example(), example);
            let ctx = QueryContext {
                db: &ds.db,
                log: &log,
                example: &example,
            };
            let pool = pooled.pool(&ctx);
            let stateful = fb.rerank(&ds.db, &log, &pool);
            let scheme = kind.build(small_config());
            let oneshot = rank_candidates(scheme.as_ref(), &ctx, &pool);
            assert_eq!(stateful, oneshot, "{}", kind.name());
            assert_eq!(fb.rounds(), 1);
        }
    }

    #[test]
    fn warm_rounds_rank_like_the_one_shot_path() {
        // Satellite of the warm-start work: drive multi-round sessions and
        // check every round's ranking against the stateless (cold) ranking
        // on the equivalent accumulated example. Warm starting changes the
        // solver's path to the optimum, not the optimum itself — both runs
        // stop at the same KKT tolerance, so decision values agree within
        // a small multiple of `eps` and the rankings may disagree only
        // where the cold scores are essentially tied.
        let (ds, log) = setup();
        let proto = QueryProtocol {
            n_queries: 1,
            n_labeled: 12,
            seed: 3,
        };
        let pool: Vec<usize> = (0..ds.db.len()).collect();
        for kind in [SchemeKind::RfSvm, SchemeKind::Lrf2Svms, SchemeKind::LrfCsvm] {
            let example = proto.feedback_example(&ds.db, 9);
            let mut fb = FeedbackLoop::new(kind, small_config(), 9, ds.db.len());
            // Three rounds of four marks each.
            for (round, chunk) in example.labeled.chunks(4).enumerate() {
                for &(id, y) in chunk {
                    fb.mark(id, y > 0.0).unwrap();
                }
                let stateful = fb.rerank(&ds.db, &log, &pool);
                let sofar = fb.example();
                let ctx = QueryContext {
                    db: &ds.db,
                    log: &log,
                    example: &sofar,
                };
                let cold_scheme = kind.build(small_config());
                let cold = rank_candidates(cold_scheme.as_ref(), &ctx, &pool);
                let cold_scores = cold_scheme
                    .score_ids(&ctx, &pool)
                    .expect("SVM schemes produce scores");
                let mut score_of = vec![0.0; ds.db.len()];
                for (k, &id) in pool.iter().enumerate() {
                    score_of[id] = cold_scores[k];
                }
                for (pos, (&w, &c)) in stateful.iter().zip(&cold).enumerate() {
                    if w != c {
                        let gap = (score_of[w] - score_of[c]).abs();
                        assert!(
                            gap < 5e-2,
                            "{} round {round} pos {pos}: warm put {w}, cold put {c}, \
                             but their cold scores differ by {gap}",
                            kind.name()
                        );
                    }
                }
            }
            let diag = fb.last_diagnostics().expect("SVM schemes report stats");
            assert!(diag.converged, "{} did not converge", kind.name());
            assert!(diag.iterations > 0);
        }
    }

    #[test]
    fn diagnostics_surface_iteration_capped_solves() {
        let (ds, log) = setup();
        let mut cfg = small_config();
        cfg.coupled.smo.max_iter = 1;
        let mut fb = FeedbackLoop::new(SchemeKind::RfSvm, cfg, 0, ds.db.len());
        assert_eq!(fb.last_diagnostics(), None, "no rounds yet");
        for id in 0..6 {
            fb.mark(id, id % 2 == 0).unwrap();
        }
        let pool: Vec<usize> = (0..ds.db.len()).collect();
        let _ = fb.rerank(&ds.db, &log, &pool);
        let diag = fb.last_diagnostics().expect("trained round reports stats");
        assert!(!diag.converged, "max_iter=1 must be surfaced: {diag:?}");
        // Euclidean never trains: diagnostics stay empty.
        let mut eu = FeedbackLoop::new(SchemeKind::Euclidean, small_config(), 0, ds.db.len());
        eu.mark(0, true).unwrap();
        let _ = eu.rerank(&ds.db, &log, &pool);
        assert_eq!(eu.last_diagnostics(), None);
    }

    #[test]
    fn judgments_accumulate_across_rounds() {
        let (ds, log) = setup();
        let mut fb = FeedbackLoop::new(SchemeKind::RfSvm, small_config(), 0, ds.db.len());
        fb.mark(0, true).unwrap();
        fb.mark(1, false).unwrap();
        let pool: Vec<usize> = (0..ds.db.len()).collect();
        let _ = fb.rerank(&ds.db, &log, &pool);
        // Round 2 marks more; the example now holds all four judgments in
        // mark order.
        fb.mark(2, true).unwrap();
        fb.mark(3, false).unwrap();
        let _ = fb.rerank(&ds.db, &log, &pool);
        assert_eq!(fb.rounds(), 2);
        assert_eq!(
            fb.example().labeled,
            vec![(0, 1.0), (1, -1.0), (2, 1.0), (3, -1.0)]
        );
    }

    #[test]
    fn invalid_judgments_get_typed_errors_and_leave_state_intact() {
        let (ds, _) = setup();
        let n = ds.db.len();
        let mut fb = FeedbackLoop::new(SchemeKind::LrfCsvm, small_config(), 1, n);
        fb.mark(4, true).unwrap();
        assert_eq!(
            fb.mark(n + 3, true),
            Err(RoundError::UnknownImage {
                image: n + 3,
                n_images: n
            })
        );
        assert_eq!(
            fb.mark(4, false),
            Err(RoundError::DuplicateJudgment { image: 4 })
        );
        assert_eq!(fb.n_judged(), 1);
        assert_eq!(fb.judgment(4), Some(1.0));
        // Errors render.
        assert!(RoundError::DuplicateJudgment { image: 4 }
            .to_string()
            .contains("already judged"));
    }

    #[test]
    fn finished_sessions_flush_as_log_sessions() {
        let (ds, _) = setup();
        let mut fb = FeedbackLoop::new(SchemeKind::RfSvm, small_config(), 2, ds.db.len());
        fb.mark(2, true).unwrap();
        fb.mark(9, false).unwrap();
        fb.mark(5, true).unwrap();
        let session = fb.to_log_session();
        assert_eq!(session.len(), 3);
        assert_eq!(session.judgment(2), Some(Relevance::Relevant));
        assert_eq!(session.judgment(9), Some(Relevance::Irrelevant));
        assert_eq!(session.n_relevant(), 2);
        // Flushing closes the paper's loop: the session lands in a store
        // and becomes a new dimension of every judged image's log vector.
        let mut store = LogStore::new(ds.db.len());
        let sid = store.record(session);
        assert_eq!(store.entry(5, sid), 1.0);
    }

    #[test]
    #[should_panic(expected = "outside database")]
    fn unknown_query_is_a_caller_bug() {
        let _ = FeedbackLoop::new(SchemeKind::Euclidean, small_config(), 10, 10);
    }
}
