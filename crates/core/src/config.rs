//! Configuration for the coupled SVM and the LRF-CSVM algorithm.
//!
//! The paper reports no concrete constants; every default below is
//! documented with its rationale and is swept by the ablation benches in
//! `lrf-bench` (see `EXPERIMENTS.md` for measured sensitivity).

use lrf_svm::SmoParams;
use serde::{Deserialize, Serialize};

/// Parameters of the coupled-SVM optimization (Eq. 1 + the annealing
/// schedule of Fig. 1).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CoupledConfig {
    /// Penalty `C_w` on labeled content-side slack.
    pub c_content: f64,
    /// Penalty `C_u` on labeled log-side slack.
    pub c_log: f64,
    /// Final unlabeled regularization weight `ρ` (unlabeled points receive
    /// `ρ*·C` during annealing, capped at `ρ·C`). The paper increases ρ*
    /// "until it achieves a setting threshold" without reporting it. The
    /// default 0.05 is calibrated: pseudo-label precision on this corpus is
    /// ≈ 0.5 (see EXPERIMENTS.md § analysis), so larger ρ lets wrong
    /// pseudo-positives poison the boundary — the ρ ablation bench shows
    /// the collapse.
    pub rho: f64,
    /// Starting value of the annealed `ρ*` (Fig. 1: `ρ* = 10⁻⁴`).
    pub rho_init: f64,
    /// Label-correction gate `Δ`: flip `y'_i` when `ξ'_i > 0 ∧ η'_i > 0 ∧
    /// ξ'_i + η'_i > Δ`. At `Δ = 2` only points misclassified beyond the
    /// margin by *both* modalities flip; the calibrated default 0.5 flips
    /// more aggressively, demoting doubtful pseudo-positives (marginally
    /// better on this corpus; swept by the Δ ablation).
    pub delta: f64,
    /// Cap on label-correction rounds per ρ* step. Fig. 1's inner loop has
    /// no termination proof (flips can oscillate); the cap guarantees
    /// bounded retrieval latency and is surfaced in [`crate::TrainReport`].
    pub max_correction_rounds: usize,
    /// Run one extra train/correct pass at `ρ* = ρ` after the doubling loop
    /// exits. Fig. 1 as written never trains at exactly `ρ` (the loop exits
    /// when `ρ*` reaches it); the paper's intent — "increase ρ until it
    /// achieves a setting threshold" — is preserved by this final pass.
    pub final_full_rho_pass: bool,
    /// Seed every retrain inside one [`crate::train_coupled`] call with the
    /// previous pair's dual solution (clipped to the new `ρ*` bounds and
    /// repaired). The annealing schedule re-solves the same sample set a
    /// dozen-plus times, so warm solves converge in a fraction of the cold
    /// iterations; the final models agree with cold training within the
    /// solver's KKT tolerance. Disable to reproduce cold-start behavior.
    pub warm_start: bool,
    /// Inner QP solver parameters.
    pub smo: SmoParams,
}

impl Default for CoupledConfig {
    fn default() -> Self {
        Self {
            c_content: 1.0,
            c_log: 0.5,
            rho: 0.05,
            rho_init: 1e-4,
            delta: 0.5,
            max_correction_rounds: 10,
            final_full_rho_pass: true,
            warm_start: true,
            smo: SmoParams::default(),
        }
    }
}

impl CoupledConfig {
    /// Validates parameter ranges.
    ///
    /// # Panics
    /// Panics on non-positive penalties, `rho_init > rho`, or a negative Δ.
    pub fn validate(&self) {
        assert!(self.c_content > 0.0, "c_content must be positive");
        assert!(self.c_log > 0.0, "c_log must be positive");
        assert!(
            self.rho > 0.0 && self.rho_init > 0.0,
            "rho values must be positive"
        );
        assert!(self.rho_init <= self.rho, "rho_init must not exceed rho");
        assert!(self.delta >= 0.0, "delta must be nonnegative");
    }
}

/// How LRF-CSVM picks its `N'` unlabeled samples (Fig. 1 step 1 vs. the
/// §6.5 discussion).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnlabeledSelection {
    /// The paper's strategy: `N'/2` with the largest combined SVM distance
    /// (closest to the positive labeled data) and `N'/2` with the smallest
    /// (closest to the negative).
    MaxMinCombinedDistance,
    /// The active-learning alternative the paper reports as *not* working
    /// ("did not achieve promising improvements"): the `N'` samples closest
    /// to the decision boundary (smallest `|dist|`). Kept to reproduce the
    /// §6.5 negative result.
    ClosestToBoundary,
    /// Uniform random selection (ablation control).
    Random,
}

/// How the pseudo-labels `Y'` are initialized before alternating
/// optimization.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PseudoLabelInit {
    /// `+1` for the max-distance half, `−1` for the min-distance half —
    /// the initialization §6.5 argues provides "more precise label
    /// information", reducing transductive effort.
    BySelectionSide,
    /// Sign of each sample's own combined SVM distance.
    ByDistanceSign,
    /// Random signs (the §4.2 fallback: "randomly choose a set of labels").
    Random,
}

/// Full configuration of the LRF-CSVM algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LrfConfig {
    /// Coupled-SVM parameters.
    pub coupled: CoupledConfig,
    /// Number of unlabeled samples `N'` engaged in the learning task.
    /// "It is impossible to engage all of the unlabeled data." The default
    /// 10 is calibrated: pseudo-positive precision decays quickly with pool
    /// depth on this corpus (0.52 at N'=10 → 0.35 at N'=40; see
    /// EXPERIMENTS.md), so small pools dominate. Swept by the N' ablation.
    pub n_unlabeled: usize,
    /// Unlabeled selection strategy.
    pub selection: UnlabeledSelection,
    /// Pseudo-label initialization.
    pub init: PseudoLabelInit,
    /// Seed used only when `init == PseudoLabelInit::Random`.
    pub random_init_seed: u64,
    /// RBF width for the content kernel; `None` → LIBSVM default `1/d`.
    /// The paper reports no kernel parameters; the default (`Some(1.0)`) is
    /// calibrated so RF-SVM's improvement over Euclidean matches the
    /// paper's ratio (see EXPERIMENTS.md § calibration).
    pub gamma_content: Option<f64>,
    /// Kernel over the sparse log vectors. Default: cosine-normalized RBF
    /// (see [`crate::kernels::LogCosineRbfKernel`] for why normalization
    /// matters on sparse ±1 data).
    pub log_kernel: crate::kernels::LogKernel,
}

impl Default for LrfConfig {
    fn default() -> Self {
        Self {
            coupled: CoupledConfig::default(),
            n_unlabeled: 10,
            selection: UnlabeledSelection::MaxMinCombinedDistance,
            init: PseudoLabelInit::BySelectionSide,
            random_init_seed: 0x1f2e3d4c,
            gamma_content: Some(1.0),
            log_kernel: crate::kernels::LogKernel::Rbf { gamma: 0.1 },
        }
    }
}

impl LrfConfig {
    /// Validates parameter ranges (delegates to [`CoupledConfig::validate`]).
    pub fn validate(&self) {
        self.coupled.validate();
        assert!(self.n_unlabeled >= 2, "need at least two unlabeled samples");
        match self.log_kernel {
            crate::kernels::LogKernel::Rbf { gamma }
            | crate::kernels::LogKernel::CosineRbf { gamma } => {
                assert!(gamma > 0.0, "log kernel gamma must be positive");
            }
            crate::kernels::LogKernel::Linear => {}
        }
        if let Some(g) = self.gamma_content {
            assert!(g > 0.0, "gamma_content must be positive");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        CoupledConfig::default().validate();
        LrfConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "rho_init")]
    fn rho_init_above_rho_rejected() {
        let cfg = CoupledConfig {
            rho_init: 2.0,
            rho: 1.0,
            ..Default::default()
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "c_content")]
    fn nonpositive_c_rejected() {
        let cfg = CoupledConfig {
            c_content: 0.0,
            ..Default::default()
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "unlabeled")]
    fn too_few_unlabeled_rejected() {
        let cfg = LrfConfig {
            n_unlabeled: 1,
            ..Default::default()
        };
        cfg.validate();
    }

    #[test]
    fn config_serializes() {
        let cfg = LrfConfig::default();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: LrfConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
